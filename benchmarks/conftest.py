"""Shared fixtures and scale configuration for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper's
evaluation section: it runs the same pipeline the paper describes (on the
pure-Python substrate documented in DESIGN.md) and prints the corresponding
rows/series so that the qualitative result — who wins, by how much, where
the knees are — can be compared against the publication directly.

Monte-Carlo budgets default to a "quick" scale so that the whole suite runs
in a few minutes; set the environment variable ``REPRO_BENCH_SCALE=full`` to
use the paper's original budgets (1000 attacks, 500-sample keyspace, 24-hour
trace with 1000-trial detection estimates), or ``REPRO_BENCH_SCALE=smoke``
for a tiny budget that only exercises the plumbing (used by CI's docs job to
verify the ``BENCH_*.json`` emission stays alive).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np
import pytest

from repro import case14, case30, solve_dc_opf
from repro.mtd.effectiveness import EffectivenessEvaluator
from repro.opf.reactance_opf import solve_reactance_opf


@dataclass(frozen=True)
class BenchScale:
    """Monte-Carlo budgets used by the benchmark modules."""

    name: str
    n_attacks: int
    n_keyspace: int
    n_random_trials: int
    n_hours: int
    deltas: tuple[float, ...] = (0.5, 0.8, 0.9, 0.95)


_SMOKE = BenchScale(name="smoke", n_attacks=40, n_keyspace=10, n_random_trials=2, n_hours=4)
_QUICK = BenchScale(name="quick", n_attacks=400, n_keyspace=100, n_random_trials=5, n_hours=24)
_FULL = BenchScale(name="full", n_attacks=1000, n_keyspace=500, n_random_trials=5, n_hours=24)
_SCALES = {"smoke": _SMOKE, "quick": _QUICK, "full": _FULL}


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    """The active benchmark scale (see module docstring)."""
    return _SCALES.get(os.environ.get("REPRO_BENCH_SCALE", "").lower(), _QUICK)


@pytest.fixture(scope="session")
def net14():
    """IEEE 14-bus system with the paper's evaluation settings."""
    return case14()


@pytest.fixture(scope="session")
def net30():
    """IEEE 30-bus system (Fig. 6(b))."""
    return case30()


@pytest.fixture(scope="session")
def baseline14(net14):
    """No-MTD operating point of the 14-bus system at nominal (static) load,
    set by the joint dispatch + reactance OPF of paper eq. (1)."""
    return solve_reactance_opf(net14, n_random_starts=2, seed=0)


@pytest.fixture(scope="session")
def baseline30(net30):
    """No-MTD operating point of the 30-bus system (dispatch-only OPF; the
    30-bus case is not congested at its nominal load, so eq. (1) reduces to
    the dispatch problem)."""
    return solve_dc_opf(net30)


@pytest.fixture(scope="session")
def evaluator14(net14, baseline14, scale):
    """Attack ensemble and effectiveness evaluator for the 14-bus system,
    pinned to the attacker's knowledge of the pre-perturbation matrix."""
    return EffectivenessEvaluator(
        net14,
        operating_angles_rad=baseline14.angles_rad,
        base_reactances=baseline14.reactances,
        n_attacks=scale.n_attacks,
        seed=1,
    )


@pytest.fixture(scope="session")
def evaluator30(net30, baseline30, scale):
    """Effectiveness evaluator for the 30-bus system.

    The measurement-noise level is calibrated per case (see EXPERIMENTS.md):
    the 30-bus system spreads the same relative attack magnitude over twice
    as many measurements, so a proportionally lower noise floor is needed for
    the detection-probability transition to span its achievable
    subspace-angle range, as in the paper's Fig. 6(b).
    """
    return EffectivenessEvaluator(
        net30,
        operating_angles_rad=baseline30.angles_rad,
        base_reactances=baseline30.reactances,
        n_attacks=scale.n_attacks,
        noise_sigma=0.0007,
        seed=2,
    )


