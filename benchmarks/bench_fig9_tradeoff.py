"""Fig. 9 — trade-off between MTD effectiveness and operational cost.

At the evening-peak load (6 PM of the daily trace, ≈220 MW total) the SPA
threshold is swept; for each threshold the minimum-cost perturbation is
designed, its operational-cost increase over the no-MTD optimum (paper
eq. (1)) is computed, and its effectiveness η'(δ) is estimated on attacks
crafted from one-hour-stale knowledge.

Expected shape: the cost is near zero for low effectiveness levels and rises
steeply as η'(δ) approaches one (the paper reports 0.96 % at η'(0.9) = 0.8
and 2.31 % at η'(0.9) = 0.9).
"""

from __future__ import annotations

import numpy as np

from repro import nyiso_like_winter_day
from repro.analysis.reporting import format_table
from repro.mtd.effectiveness import EffectivenessEvaluator
from repro.mtd.tradeoff import compute_tradeoff_curve
from repro.opf.reactance_opf import solve_reactance_opf

from _bench_utils import emit_bench_json, gamma_grid, print_banner, time_call

#: Hour index of 6 PM in the daily profile (hour 0 = 1 AM).
SIX_PM = 17


def compute_evening_tradeoff(network, scale):
    """The Fig. 9 trade-off curve at the 6 PM operating point."""
    profile = nyiso_like_winter_day()
    loads_6pm = network.loads_mw() * (profile[SIX_PM] / network.total_load_mw())
    loads_5pm = network.loads_mw() * (profile[SIX_PM - 1] / network.total_load_mw())

    # No-MTD baseline at 6 PM (paper eq. (1)).
    baseline = solve_reactance_opf(network, loads_mw=loads_6pm, n_random_starts=2, seed=0)
    # Attacker knowledge: the 5 PM operating point (one hour stale).
    stale = solve_reactance_opf(network, loads_mw=loads_5pm, n_random_starts=2, seed=0)

    evaluator = EffectivenessEvaluator(
        network,
        operating_angles_rad=stale.angles_rad,
        base_reactances=stale.reactances,
        n_attacks=scale.n_attacks,
        seed=4,
    )
    curve = compute_tradeoff_curve(
        network,
        evaluator,
        gamma_thresholds=gamma_grid(0.45),
        loads_mw=loads_6pm,
        deltas=scale.deltas,
        baseline_opf=baseline,
        seed=0,
    )
    return curve


def bench_fig9_tradeoff(benchmark, net14, scale):
    """Regenerate the Fig. 9 curve and time the sweep."""
    curve, sweep_seconds = benchmark.pedantic(
        time_call, args=(compute_evening_tradeoff, net14, scale), rounds=1, iterations=1
    )

    print_banner(
        "Fig. 9 — MTD effectiveness vs operational cost at the 6 PM load, IEEE 14-bus"
    )
    print(
        format_table(
            ["gamma_th", "achieved gamma", "cost increase (%)"]
            + [f"eta'({d})" for d in scale.deltas],
            [
                [round(p.gamma_threshold, 2), round(p.achieved_spa, 3),
                 round(p.cost_increase_percent, 2)]
                + [round(p.eta[d], 3) for d in scale.deltas]
                for p in curve
            ],
        )
    )
    print("Paper shape: cost is ~0 at low effectiveness and rises steeply as "
          "eta'(delta) approaches 1 (reported 0.96% at eta'(0.9)=0.8, 2.31% at 0.9).")

    costs = curve.costs_percent()
    etas = curve.eta_series(0.9)
    emit_bench_json(
        "fig9",
        {
            "figure": "fig9",
            "scale": scale.name,
            "n_attacks": scale.n_attacks,
            "n_gamma_points": len(curve),
            "sweep_seconds": sweep_seconds,
            "max_cost_increase_percent": float(costs[-1]),
            "max_eta_0.9": float(etas[-1]),
        },
    )
    assert np.all(costs >= -1e-9)
    # Cost grows along the sweep and the most effective designs are not free.
    assert costs[-1] >= costs[0]
    assert costs[-1] > 0.1
    # Effectiveness grows along the sweep.
    assert etas[-1] >= etas[0]
