"""Ablation — how much D-FACTS coverage does an effective MTD need?

The paper fixes six D-FACTS-equipped branches on the 14-bus system.  This
ablation varies the number of equipped branches and reports, for each
placement, the maximum achievable subspace angle, the effectiveness of the
max-angle perturbation, and the share of the attack space that structurally
survives (the dimension of ``Col(H) ∩ Col(H')`` relative to ``Col(H)``).

Expected outcome: more D-FACTS coverage increases the achievable angle and
effectiveness and shrinks the surviving-attack subspace.  The surviving
dimension has a structural floor: perturbing ``|L_D|`` of the ``L`` lines of
an ``N``-bus grid generically leaves
``max(N − 1 − |L_D|, 2(N − 1) − L)`` independent stealthy attack directions,
so even full coverage of the 14-bus system (L = 20 < 2·13) cannot eliminate
every stealthy attack — which is why the paper's effectiveness metric is a
fraction rather than a yes/no property.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import case14
from repro.analysis.reporting import format_table
from repro.grid.matrices import reduced_measurement_matrix
from repro.mtd.conditions import surviving_attack_fraction
from repro.mtd.design import max_spa_perturbation
from repro.mtd.effectiveness import EffectivenessEvaluator
from repro.opf.dc_opf import solve_dc_opf

from _bench_utils import print_banner

#: D-FACTS placements compared: the paper's six lines plus sparser and
#: denser alternatives (1-indexed MATPOWER branch numbers).
PLACEMENTS = {
    "2 lines": (1, 5),
    "4 lines": (1, 5, 9, 11),
    "6 lines (paper)": (1, 5, 9, 11, 17, 19),
    "10 lines": (1, 3, 5, 7, 9, 11, 13, 15, 17, 19),
    "all 20 lines": tuple(range(1, 21)),
}


def evaluate_placements(n_attacks):
    """One row per placement: achievable angle, effectiveness, survivors."""
    rows = []
    for label, branches in PLACEMENTS.items():
        network = case14(dfacts_branches=branches)
        baseline = solve_dc_opf(network)
        evaluator = EffectivenessEvaluator(
            network, operating_angles_rad=baseline.angles_rad,
            n_attacks=n_attacks, seed=6,
        )
        design = max_spa_perturbation(network, require_feasible_dispatch=False, seed=0)
        effectiveness = evaluator.evaluate(design.perturbed_reactances)
        survivors = surviving_attack_fraction(
            reduced_measurement_matrix(network),
            reduced_measurement_matrix(network, design.perturbed_reactances),
        )
        rows.append(
            (label, len(branches), design.achieved_spa, effectiveness.eta(0.9), survivors)
        )
    return rows


def bench_ablation_dfacts_placement(benchmark, scale):
    """Sweep D-FACTS coverage levels."""
    rows = benchmark.pedantic(
        evaluate_placements, args=(min(scale.n_attacks, 300),), rounds=1, iterations=1
    )

    print_banner("Ablation — D-FACTS coverage vs achievable MTD protection (IEEE 14-bus)")
    n_states = 13
    n_lines_total = 20
    print(
        format_table(
            ["placement", "#lines", "max gamma (rad)", "eta'(0.9) at max gamma",
             "surviving fraction (measured)", "surviving fraction (structural floor)"],
            [
                [label, count, round(spa, 3), round(eta, 3), round(survivors, 3),
                 round(max(n_states - count, 2 * n_states - n_lines_total) / n_states, 3)]
                for label, count, spa, eta, survivors in rows
            ],
        )
    )
    print("Expected: protection improves with coverage, and the measured surviving "
          "fraction matches the structural floor max(N-1-|L_D|, 2(N-1)-L)/(N-1) — "
          "even full coverage of the 14-bus grid leaves 6 stealthy directions.")

    spas = [spa for _, _, spa, _, _ in rows]
    survivors = [s for *_rest, s in rows]
    counts = [count for _, count, *_rest in rows]
    assert spas[0] <= spas[-1] + 1e-9
    assert survivors[0] >= survivors[-1] - 1e-9
    for count, measured in zip(counts, survivors):
        floor = max(n_states - count, 2 * n_states - n_lines_total) / n_states
        assert measured == pytest.approx(floor, abs=0.08)
