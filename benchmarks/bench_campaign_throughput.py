"""Campaign orchestrator throughput — beyond the paper.

Runs a parameter-grid campaign (random-MTD Monte Carlo on the IEEE 14-bus
case) through the full persistent pipeline — plan expansion, sharded
execution, ndjson/SQLite store — and records sustained scenarios/sec, the
cost of the durability layer relative to the in-memory engine, and the
replay speed of a completed campaign (a resumed campaign must execute
nothing and answer from the store).

The point budget follows the benchmark scale (``REPRO_BENCH_SCALE``):
smoke exercises the plumbing, quick/full measure sustained throughput.
"""

from __future__ import annotations

import tempfile

from repro.campaign import CampaignDefinition, CampaignOrchestrator, plan_campaign
from repro.campaign.query import query_results
from repro.engine import AttackSpec, GridSpec, MTDSpec, ScenarioEngine, ScenarioSpec

from _bench_utils import emit_bench_json, print_banner, time_call

#: Grid-point budget per benchmark scale.
POINTS_BY_SCALE = {"smoke": 8, "quick": 64, "full": 128}

#: Interleaved repeats per timed arm.  The overhead ratio is taken over
#: the per-arm minima: a single-shot ratio is at the mercy of scheduler
#: preemption and of cold-start asymmetry (the campaign arm used to run
#: first and alone pay the process-global cache warmup), which made the
#: ``store_overhead`` assert flaky on loaded machines.
REPEATS = 3


def campaign_definition(n_points: int, n_attacks: int) -> CampaignDefinition:
    base = ScenarioSpec(
        name="bench-campaign",
        grid=GridSpec(case="ieee14", baseline="dc-opf"),
        attack=AttackSpec(n_attacks=min(n_attacks, 100), seed=1),
        mtd=MTDSpec(policy="random", max_relative_change=0.1),
        n_trials=2,
        base_seed=31,
        deltas=(0.5, 0.9),
        metric="eta(0.9)",
    )
    ratios = tuple(round(0.04 + 0.002 * k, 3) for k in range(n_points // 4))
    changes = (0.02, 0.05, 0.1, 0.2)
    return CampaignDefinition(
        name="bench-campaign",
        base=base,
        grids=({"attack.ratio": ratios, "mtd.max_relative_change": changes},),
        shard_size=8,
    )


def run_campaign_into(store_dir: str, definition: CampaignDefinition):
    orchestrator = CampaignOrchestrator(store_dir, n_workers=1, batch_size=8)
    return orchestrator.run(definition)


def bench_campaign_throughput(benchmark, scale):
    """Time a full campaign run, an in-memory reference, and the replay."""
    n_points = POINTS_BY_SCALE.get(scale.name, POINTS_BY_SCALE["quick"])
    definition = campaign_definition(n_points, scale.n_attacks)
    plan = plan_campaign(definition)

    with tempfile.TemporaryDirectory(prefix="bench-campaign-") as tmp:
        store_dir = f"{tmp}/bench.campaign"
        report, campaign_first = benchmark.pedantic(
            time_call, args=(run_campaign_into, store_dir, definition),
            rounds=1, iterations=1,
        )

        # In-memory reference: the same points through the bare engine.
        # Both arms repeat REPEATS times (a campaign resumes rather than
        # re-executes against an existing store, so every campaign repeat
        # gets a fresh store directory) and the ratio is taken over the
        # per-arm minima, which all benefit equally from warm caches.
        engine = ScenarioEngine(batch_size=8)
        campaign_times = [campaign_first]
        engine_times = [time_call(engine.run_suite, plan.points)[1]]
        for repeat in range(1, REPEATS):
            _, campaign_s = time_call(
                run_campaign_into, f"{tmp}/bench-{repeat}.campaign", definition
            )
            campaign_times.append(campaign_s)
            engine_times.append(time_call(engine.run_suite, plan.points)[1])
        campaign_seconds = min(campaign_times)
        engine_seconds = min(engine_times)

        # Replay: a completed campaign resumes without executing anything.
        orchestrator = CampaignOrchestrator(store_dir)
        replay, replay_seconds = time_call(orchestrator.resume)

        # Query throughput: the first query pays the plan expansion (for
        # plan-order sorting); repeated queries must answer from the
        # per-store memo instead of re-expanding and re-hashing the plan.
        # Timing alone cannot prove that at small plan sizes, so the warm
        # loop also counts plan expansions directly.
        _, plan_seconds = time_call(plan_campaign, definition)
        store = orchestrator.store
        _, cold_query_seconds = time_call(query_results, store)
        import repro.campaign.plan as plan_module

        real_plan_campaign = plan_module.plan_campaign
        warm_plan_expansions = 0

        def counting_plan_campaign(definition):
            nonlocal warm_plan_expansions
            warm_plan_expansions += 1
            return real_plan_campaign(definition)

        plan_module.plan_campaign = counting_plan_campaign
        try:
            warm_times = [time_call(query_results, store)[1] for _ in range(5)]
        finally:
            plan_module.plan_campaign = real_plan_campaign
        warm_query_seconds = sum(warm_times) / len(warm_times)

    scenarios_per_sec = plan.n_items / campaign_seconds if campaign_seconds > 0 else 0.0
    store_overhead = campaign_seconds / engine_seconds if engine_seconds > 0 else 1.0

    print_banner(
        f"Campaign throughput — {plan.n_items} scenarios x "
        f"{definition.base.n_trials} trials, IEEE 14-bus, shard size "
        f"{definition.shard_size}"
    )
    print(f"campaign run : {campaign_seconds:.3f}s  "
          f"({scenarios_per_sec:.1f} scenarios/sec, durable, "
          f"best of {REPEATS})")
    print(f"bare engine  : {engine_seconds:.3f}s  "
          f"(store overhead {store_overhead:.2f}x, best of {REPEATS})")
    print(f"replay/resume: {replay_seconds:.3f}s  "
          f"({len(replay.executed)} executed, {len(replay.skipped)} skipped)")
    print(f"query        : cold {cold_query_seconds*1e3:.1f}ms (incl. "
          f"{plan_seconds*1e3:.1f}ms plan expansion), warm "
          f"{warm_query_seconds*1e3:.1f}ms (plan-order memoised)")

    emit_bench_json(
        "campaign",
        {
            "benchmark": "campaign_throughput",
            "scale": scale.name,
            "n_scenarios": plan.n_items,
            "n_trials_per_scenario": definition.base.n_trials,
            "shard_size": definition.shard_size,
            "repeats": REPEATS,
            "campaign_seconds": campaign_seconds,
            "engine_seconds": engine_seconds,
            "replay_seconds": replay_seconds,
            "scenarios_per_sec": scenarios_per_sec,
            "store_overhead": store_overhead,
            "plan_seconds": plan_seconds,
            "cold_query_seconds": cold_query_seconds,
            "warm_query_seconds": warm_query_seconds,
        },
    )

    assert report.complete
    assert len(report.executed) == plan.n_items
    assert replay.executed == () and len(replay.skipped) == plan.n_items
    assert scenarios_per_sec > 0
    # The durability layer must stay cheap next to the trials themselves.
    if scale.name != "smoke":
        assert store_overhead < 5.0, (
            f"campaign store overhead {store_overhead:.2f}x over the bare engine"
        )
    # Repeated queries must not re-pay the O(plan) expansion: with the
    # plan-order memo warm, the 5-query warm loop performs zero plan
    # expansions (counted, not timed — robust at every scale).
    assert warm_plan_expansions == 0, (
        f"{warm_plan_expansions} plan expansion(s) during warm queries: "
        "repeated queries re-expand the campaign plan"
    )
