"""Fig. 6(a) — MTD effectiveness η'(δ) versus the subspace angle γ (IEEE 14-bus).

For a sweep of SPA thresholds the MTD perturbation is designed (paper
eq. (4), two-stage solver), and the fraction of pre-perturbation stealthy
attacks whose post-MTD detection probability exceeds δ ∈ {0.5, 0.8, 0.9,
0.95} is estimated over a random attack ensemble with ‖a‖₁/‖z‖₁ ≈ 0.08 and
a BDD false-positive rate of 5·10⁻⁴, exactly as in the paper's setup.

Expected shape: every η'(δ) series increases monotonically with γ, from
near zero at small angles to close to one at the largest achievable angle.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import monotonicity_fraction
from repro.analysis.reporting import format_table

from _bench_utils import (
    emit_bench_json,
    exact_angle_perturbations,
    gamma_grid,
    print_banner,
    time_call,
)


def sweep_effectiveness(network, evaluator, baseline, deltas):
    """(gamma, {delta: eta}) rows across the achievable SPA range."""
    perturbations = exact_angle_perturbations(
        network, baseline.reactances, gamma_grid(0.50)
    )
    rows = []
    for achieved, reactances in perturbations:
        result = evaluator.evaluate(reactances)
        rows.append((achieved, {d: result.eta(d) for d in deltas}))
    return rows


def bench_fig6a_effectiveness_14bus(benchmark, net14, baseline14, evaluator14, scale):
    """Regenerate the Fig. 6(a) series and time the full sweep."""
    (rows, sweep_seconds) = benchmark.pedantic(
        time_call,
        args=(sweep_effectiveness, net14, evaluator14, baseline14, scale.deltas),
        rounds=1,
        iterations=1,
    )
    emit_bench_json(
        "fig6a",
        {
            "figure": "fig6a",
            "case": "ieee14",
            "scale": scale.name,
            "n_attacks": scale.n_attacks,
            "n_gamma_points": len(rows),
            "sweep_seconds": sweep_seconds,
        },
    )

    print_banner(
        f"Fig. 6(a) — eta'(delta) vs gamma(Ht, H't'), IEEE 14-bus "
        f"({scale.n_attacks} attacks, FP rate 5e-4)"
    )
    print(
        format_table(
            ["gamma (rad)"] + [f"eta'({d})" for d in scale.deltas],
            [
                [round(gamma, 3)] + [round(etas[d], 3) for d in scale.deltas]
                for gamma, etas in rows
            ],
        )
    )
    print("Paper shape: every series is monotone increasing in gamma; at the "
          "largest angle ~97% of attacks have detection probability > 0.95.")

    for delta in scale.deltas:
        series = np.array([etas[delta] for _, etas in rows])
        assert monotonicity_fraction(series) >= 0.7
        assert series[-1] >= series[0]
    if scale.name != "smoke":
        # Smoke budgets (tens of attacks) only exercise the plumbing; the
        # quantitative shape is asserted at the quick/full budgets.
        top = rows[-1][1]
        assert top[0.5] > 0.8
