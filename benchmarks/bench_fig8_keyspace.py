"""Fig. 8 — fraction of the random-MTD keyspace that is actually effective.

A keyspace of random reactance perturbations (within 2 % of the operating
values, as in the prior work's formulation) is sampled and, for every
confidence level δ, the fraction of perturbations achieving η'(δ) ≥ 0.9 is
reported.  The paper finds that fewer than 10 % of the random perturbations
satisfy η'(0.9) ≥ 0.9, which motivates the formal design criterion.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.mtd.random_mtd import RandomMTDBaseline

from _bench_utils import print_banner

DELTA_GRID = (0.1, 0.3, 0.5, 0.7, 0.9)
ETA_TARGET = 0.9


def sample_keyspace_fractions(network, evaluator, n_samples):
    """(delta → fraction of keyspace with η'(δ) ≥ 0.9) plus the raw keyspace."""
    baseline = RandomMTDBaseline(network, evaluator, max_relative_change=0.02)
    keyspace = baseline.sample_keyspace(n_samples, seed=8)
    fractions = {
        delta: keyspace.fraction_meeting(delta, ETA_TARGET) for delta in DELTA_GRID
    }
    return fractions, keyspace


def bench_fig8_keyspace(benchmark, net14, evaluator14, scale):
    """Regenerate the Fig. 8 curve and time the keyspace evaluation."""
    fractions, keyspace = benchmark.pedantic(
        sample_keyspace_fractions,
        args=(net14, evaluator14, scale.n_keyspace),
        rounds=1,
        iterations=1,
    )

    print_banner(
        f"Fig. 8 — fraction of {scale.n_keyspace} random MTD perturbations with "
        f"eta'(delta) >= {ETA_TARGET}, IEEE 14-bus"
    )
    print(
        format_table(
            ["delta", "fraction of keyspace"],
            [[delta, round(fractions[delta], 3)] for delta in DELTA_GRID],
        )
    )
    spas = keyspace.spa_values()
    print(f"Subspace angles achieved by the random keyspace: "
          f"median {np.median(spas):.4f} rad, max {spas.max():.4f} rad.")
    print("Paper shape: the fraction decreases with delta and is below 10% at "
          "delta = 0.9.")

    values = [fractions[delta] for delta in DELTA_GRID]
    assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))
    assert fractions[0.9] < 0.10
