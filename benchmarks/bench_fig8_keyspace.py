"""Fig. 8 — fraction of the random-MTD keyspace that is actually effective.

A keyspace of random reactance perturbations (within 2 % of the operating
values, as in the prior work's formulation) is sampled and, for every
confidence level δ, the fraction of perturbations achieving η'(δ) ≥ 0.9 is
reported.  The paper finds that fewer than 10 % of the random perturbations
satisfy η'(0.9) ≥ 0.9, which motivates the formal design criterion.

The keyspace is sampled through the scenario engine: one trial per random
key, all judged against the ensemble pinned by ``AttackSpec.seed``, so the
whole benchmark is a single declarative spec (and parallelises/caches for
free when run through an engine configured to do so).
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.engine import AttackSpec, GridSpec, MTDSpec, ScenarioEngine, ScenarioSpec

from _bench_utils import emit_bench_json, print_banner

DELTA_GRID = (0.1, 0.3, 0.5, 0.7, 0.9)
ETA_TARGET = 0.9

#: Trials per batched-kernel block when sampling the keyspace.
KEYSPACE_BATCH_SIZE = 32


def keyspace_spec(n_samples, n_attacks):
    """The Fig. 8 experiment as a scenario spec."""
    return ScenarioSpec(
        name="fig8-keyspace",
        grid=GridSpec(case="ieee14", baseline="reactance-opf"),
        attack=AttackSpec(n_attacks=n_attacks, seed=1),
        mtd=MTDSpec(policy="random", max_relative_change=0.02),
        n_trials=n_samples,
        base_seed=8,
        deltas=DELTA_GRID,
        metric="eta(0.9)",
    )


def sample_keyspace_fractions(engine, n_samples, n_attacks):
    """(delta → fraction of keyspace with η'(δ) ≥ 0.9) plus the raw result."""
    result = engine.run(keyspace_spec(n_samples, n_attacks))
    fractions = {
        delta: result.fraction_meeting(f"eta({delta:g})", ETA_TARGET)
        for delta in DELTA_GRID
    }
    return fractions, result


def bench_fig8_keyspace(benchmark, scale):
    """Regenerate the Fig. 8 curve and time the keyspace evaluation."""
    engine = ScenarioEngine(batch_size=KEYSPACE_BATCH_SIZE)
    fractions, result = benchmark.pedantic(
        sample_keyspace_fractions,
        args=(engine, scale.n_keyspace, scale.n_attacks),
        rounds=1,
        iterations=1,
    )
    emit_bench_json(
        "fig8",
        {
            "figure": "fig8",
            "case": "ieee14",
            "scale": scale.name,
            "n_attacks": scale.n_attacks,
            "n_keyspace": scale.n_keyspace,
            "batch_size": KEYSPACE_BATCH_SIZE,
            "engine_seconds": result.elapsed_seconds,
        },
    )

    print_banner(
        f"Fig. 8 — fraction of {scale.n_keyspace} random MTD perturbations with "
        f"eta'(delta) >= {ETA_TARGET}, IEEE 14-bus"
    )
    print(
        format_table(
            ["delta", "fraction of keyspace"],
            [[delta, round(fractions[delta], 3)] for delta in DELTA_GRID],
        )
    )
    spas = result.summarize("spa")
    print(f"Subspace angles achieved by the random keyspace: "
          f"median {spas.median:.4f} rad, p95 {spas.percentile(95):.4f} rad, "
          f"max {spas.values.max():.4f} rad.")
    print("Paper shape: the fraction decreases with delta and is below 10% at "
          "delta = 0.9.")

    values = [fractions[delta] for delta in DELTA_GRID]
    assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))
    assert fractions[0.9] < 0.10
