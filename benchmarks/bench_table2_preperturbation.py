"""Table II — pre-perturbation power flows, dispatch and OPF cost (4-bus).

Regenerates the motivating example's operating point by solving the DC
optimal power flow of the 4-bus system.

Paper values: flows 126.56 / 173.44 / -43.44 / -26.56 MW, dispatch 350 / 150
MW, cost 1.15 x 10^4 $.
"""

from __future__ import annotations

import numpy as np

from repro import case4gs, solve_dc_opf
from repro.analysis.reporting import format_table

from _bench_utils import emit_bench_json, print_banner, time_call

#: Paper reference values used for the shape check.
PAPER_FLOWS_MW = np.array([126.56, 173.44, -43.44, -26.56])
PAPER_DISPATCH_MW = np.array([350.0, 150.0])
PAPER_COST = 1.15e4


def bench_table2_preperturbation(benchmark):
    """Regenerate Table II and time the OPF solve."""
    network = case4gs()
    result, opf_seconds = benchmark.pedantic(
        time_call, args=(solve_dc_opf, network), rounds=3, iterations=1
    )

    print_banner("Table II — pre-perturbation flows, dispatch and OPF cost (4-bus)")
    print(
        format_table(
            ["Line 1", "Line 2", "Line 3", "Line 4", "Gen 1", "Gen 2", "Cost ($)"],
            [
                list(np.round(result.flows_mw, 2))
                + list(np.round(result.dispatch_mw, 1))
                + [round(result.cost, 1)]
            ],
        )
    )
    print(f"Paper reference: flows {PAPER_FLOWS_MW.tolist()} MW, "
          f"dispatch {PAPER_DISPATCH_MW.tolist()} MW, cost ${PAPER_COST:.0f}.")

    emit_bench_json(
        "table2",
        {
            "table": "table2",
            "opf_seconds": opf_seconds,
            "opf_cost": float(result.cost),
        },
    )

    np.testing.assert_allclose(result.flows_mw, PAPER_FLOWS_MW, atol=0.02)
    np.testing.assert_allclose(result.dispatch_mw, PAPER_DISPATCH_MW, atol=1e-3)
    assert result.cost == float(np.round(result.cost, 6))
    assert abs(result.cost - PAPER_COST) < 1.0
