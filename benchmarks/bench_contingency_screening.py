"""N-1 contingency screening — incremental LODF vs per-outage rebuild.

A contingency screen asks for post-outage branch flows across a large set
of single-branch outages.  The historical route rebuilds the PTDF from a
fresh reduced-susceptance factorisation per contingency; the incremental
route factorises the base case once and applies the vectorised rank-1
LODF flow transfer to every outage in one BLAS pass
(:func:`repro.powerflow.screen_branch_outages`).

This benchmark screens a large outage list on the 300-bus synthetic case
(cycling through every non-bridge branch until the budget is filled, the
shape of an exhaustive N-1 + sensitivity sweep) and asserts:

* the incremental screen is at least ``MIN_SPEEDUP`` faster than the
  per-outage rebuild reference (quick/full scales; smoke only exercises
  the plumbing);
* the two routes agree bit-close, row for row;
* a bridge outage in the screened list is rejected with an
  :class:`~repro.exceptions.IslandingError` naming the branch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    IslandingError,
    bridge_branches,
    load_case,
    ptdf_matrix,
    screen_branch_outages,
    solve_dc_opf,
)

from _bench_utils import emit_bench_json, print_banner, time_call

#: The screening workload's case (300 buses / 539 branches).
CASE = "synthetic300"

#: Outage-list length per benchmark scale (outages cycle over the
#: non-bridge branches until the budget is filled).
N_OUTAGES_BY_SCALE = {"smoke": 50, "quick": 1000, "full": 1000}

#: Acceptance bar: the incremental screen must beat the per-outage
#: rebuild by at least this factor at quick/full scales.
MIN_SPEEDUP = 5.0

#: Flow agreement tolerance (MW) between the two routes.  The rank-1
#: identity is exact in real arithmetic; the tolerance only absorbs
#: floating-point noise on ~1e3 MW flows.
FLOW_ATOL_MW = 1e-6

#: Repeats of the (fast) incremental arm; its best time is compared with
#: a single run of the rebuild arm, whose seconds-long duration already
#: averages out scheduler noise.
INCREMENTAL_REPEATS = 3


def screening_workload(n_outages: int):
    """The base network, its OPF injections, and the cycled outage list."""
    network = load_case(CASE)
    baseline = solve_dc_opf(network)
    injections = -network.loads_mw()
    for gen, output in zip(network.generators, baseline.dispatch_mw):
        injections[gen.bus] += output
    candidates = sorted(set(range(network.n_branches)) - set(bridge_branches(network)))
    outages = [candidates[i % len(candidates)] for i in range(n_outages)]
    return network, injections, outages


def bench_contingency_screening(scale):
    """Time the incremental screen against the rebuild reference."""
    n_outages = N_OUTAGES_BY_SCALE.get(scale.name, N_OUTAGES_BY_SCALE["quick"])
    network, injections, outages = screening_workload(n_outages)

    # Warm the process-global topology/factorisation caches so neither arm
    # pays first-touch costs, then pre-build the base PTDF the incremental
    # arm reuses (its one factorisation is timed inside the screen).
    ptdf_matrix(network)

    incremental_times = []
    fast = None
    for _ in range(INCREMENTAL_REPEATS):
        fast, seconds = time_call(
            screen_branch_outages, network, outages, injections, method="incremental"
        )
        incremental_times.append(seconds)
    incremental_seconds = min(incremental_times)

    slow, rebuild_seconds = time_call(
        screen_branch_outages, network, outages, injections, method="rebuild"
    )
    speedup = (
        rebuild_seconds / incremental_seconds if incremental_seconds > 0 else float("inf")
    )
    max_diff = float(np.max(np.abs(fast.flows_mw - slow.flows_mw)))

    # Islanding rejection: a bridge smuggled into the screened list is
    # refused with a precise, named error on the incremental route.
    bridge = bridge_branches(network)[0]
    with pytest.raises(IslandingError) as excinfo:
        screen_branch_outages(network, [outages[0], bridge], injections)
    assert bridge in excinfo.value.branches

    print_banner(
        f"N-1 contingency screening on {CASE} ({scale.name} scale, "
        f"{n_outages} outages over {network.n_branches} branches)"
    )
    print(f"incremental screen: {incremental_seconds * 1000:.1f} ms "
          f"(best of {INCREMENTAL_REPEATS}; one factorisation + rank-1 transfer)")
    print(f"rebuild reference : {rebuild_seconds:.2f} s "
          f"({n_outages} reduced-B factorisations)")
    print(f"speedup           : {speedup:.1f}x (bar {MIN_SPEEDUP:g}x)")
    print(f"max |flow diff|   : {max_diff:.2e} MW over "
          f"{fast.flows_mw.size} screened flows")

    emit_bench_json(
        "contingency",
        {
            "benchmark": "contingency_screening",
            "scale": scale.name,
            "case": CASE,
            "n_buses": network.n_buses,
            "n_branches": network.n_branches,
            "n_outages": n_outages,
            "incremental_seconds": incremental_seconds,
            "incremental_repeats": INCREMENTAL_REPEATS,
            "rebuild_seconds": rebuild_seconds,
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
            "max_flow_abs_diff_mw": max_diff,
            "flow_atol_mw": FLOW_ATOL_MW,
            "islanding_rejected": True,
        },
    )

    assert fast.method == "incremental" and slow.method == "rebuild"
    assert fast.flows_mw.shape == (n_outages, network.n_branches)
    np.testing.assert_allclose(
        fast.flows_mw, slow.flows_mw, rtol=0, atol=FLOW_ATOL_MW,
        err_msg="incremental screen diverged from the rebuild reference",
    )
    # Tiny smoke budgets are dominated by constant costs; the bar is only
    # meaningful at real outage counts.
    if scale.name != "smoke":
        assert speedup >= MIN_SPEEDUP, (
            f"incremental screening speedup only {speedup:.1f}x "
            f"(bar {MIN_SPEEDUP:g}x over the per-outage rebuild)"
        )
