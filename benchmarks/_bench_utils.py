"""Small helpers shared by the benchmark modules (kept outside conftest so
that they can be imported explicitly without relying on pytest's conftest
module injection)."""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.grid.matrices import reduced_measurement_matrix
from repro.mtd.design import max_spa_perturbation, spa_of_reactances

#: Headline-metric preference per BENCH payload, first match wins.  A copy
#: of scripts/check_bench_manifest.py's tuple (that script must import
#: without repro/numpy, this module needs both) — a tier-1 test pins the
#: two in sync.
KEY_METRIC_CANDIDATES = (
    "overhead_ratio",
    "speedup",
    "min_speedup",
    "trials_per_second",
    "campaign_seconds",
    "incremental_seconds",
    "day_seconds",
    "sweep_seconds",
    "engine_seconds",
    "total_seconds",
    "table_seconds",
    "opf_seconds",
    "redispatch_seconds",
    "elapsed_seconds",
)


def print_banner(title: str) -> None:
    """Visual separator used by every benchmark's report."""
    print("\n" + "=" * 78)
    print(title)
    print("=" * 78)


def time_call(fn: Callable, *args, **kwargs) -> tuple[Any, float]:
    """Run ``fn(*args, **kwargs)`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def emit_bench_json(name: str, payload: dict) -> Path:
    """Write a ``BENCH_<name>.json`` timing record and return its path.

    The record lands in the directory named by the ``REPRO_BENCH_OUT``
    environment variable (default: the ``benchmarks/`` directory itself),
    so every figure benchmark leaves a machine-readable perf trace next to
    its printed tables.  CI's docs job runs the fig6a benchmark in smoke
    mode and asserts the file appears, so BENCH emission cannot silently
    break.
    """
    out_dir = Path(os.environ.get("REPRO_BENCH_OUT", Path(__file__).resolve().parent))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    record = {"name": name, "created_unix": time.time(), **payload}
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"[bench] wrote {path}")
    _append_history(out_dir, record)
    return path


def _git_sha() -> str | None:
    """Short sha of the working tree, or ``None`` outside a git checkout."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = result.stdout.strip()
    return sha if result.returncode == 0 and sha else None


def _append_history(out_dir: Path, record: dict) -> None:
    """Append the record's headline metric to the perf timeline.

    One fsync'd line per emission into ``history.ndjson`` next to the
    BENCH records; ``scripts/check_bench_manifest.py --compare`` reads it
    back to flag regressions.  Records with no recognised headline metric
    are skipped (nothing to trend).
    """
    for candidate in KEY_METRIC_CANDIDATES:
        value = record.get(candidate)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            metric, metric_value = candidate, float(value)
            break
    else:
        return
    entry = {
        "name": record["name"],
        "created_unix": record["created_unix"],
        "git_sha": _git_sha(),
        "scale": record.get("scale"),
        "metric": metric,
        "value": metric_value,
    }
    line = (json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n").encode()
    with (out_dir / "history.ndjson").open("ab") as handle:
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())


def gamma_grid(upper: float, step: float = 0.05) -> np.ndarray:
    """The γ_th sweep used by the Fig. 6 / Fig. 9 benchmarks."""
    return np.arange(step, upper + 1e-9, step)


def exact_angle_perturbations(network, base_reactances, gammas):
    """Perturbations hitting each target subspace angle (nearly) exactly.

    The Fig. 6 experiments study effectiveness as a function of the angle
    alone, so the perturbation magnitude is what matters, not its cost.  The
    helper walks along the segment from the base reactances towards the
    maximum-angle perturbation and bisects to each requested angle, yielding
    a clean, monotone x-axis.

    Returns a list of ``(achieved_angle, reactance_vector)`` pairs; targets
    beyond the achievable range are skipped.
    """
    base = np.asarray(base_reactances, dtype=float)
    far = max_spa_perturbation(
        network, attacker_reactances=base, require_feasible_dispatch=False, seed=0
    ).perturbed_reactances
    attacker_matrix = reduced_measurement_matrix(network, base)

    def angle_at(t: float) -> float:
        return spa_of_reactances(network, attacker_matrix, base + t * (far - base))

    achievable = angle_at(1.0)
    results = []
    for gamma in gammas:
        if gamma > achievable + 1e-9:
            continue
        t_low, t_high = 0.0, 1.0
        for _ in range(40):
            t_mid = 0.5 * (t_low + t_high)
            if angle_at(t_mid) >= gamma:
                t_high = t_mid
            else:
                t_low = t_mid
        x = base + t_high * (far - base)
        results.append((angle_at(t_high), x))
    return results


__all__ = [
    "print_banner",
    "time_call",
    "emit_bench_json",
    "gamma_grid",
    "exact_angle_perturbations",
]
