"""Small helpers shared by the benchmark modules (kept outside conftest so
that they can be imported explicitly without relying on pytest's conftest
module injection)."""

from __future__ import annotations

import numpy as np

from repro.grid.matrices import reduced_measurement_matrix
from repro.mtd.design import max_spa_perturbation, spa_of_reactances


def print_banner(title: str) -> None:
    """Visual separator used by every benchmark's report."""
    print("\n" + "=" * 78)
    print(title)
    print("=" * 78)


def gamma_grid(upper: float, step: float = 0.05) -> np.ndarray:
    """The γ_th sweep used by the Fig. 6 / Fig. 9 benchmarks."""
    return np.arange(step, upper + 1e-9, step)


def exact_angle_perturbations(network, base_reactances, gammas):
    """Perturbations hitting each target subspace angle (nearly) exactly.

    The Fig. 6 experiments study effectiveness as a function of the angle
    alone, so the perturbation magnitude is what matters, not its cost.  The
    helper walks along the segment from the base reactances towards the
    maximum-angle perturbation and bisects to each requested angle, yielding
    a clean, monotone x-axis.

    Returns a list of ``(achieved_angle, reactance_vector)`` pairs; targets
    beyond the achievable range are skipped.
    """
    base = np.asarray(base_reactances, dtype=float)
    far = max_spa_perturbation(
        network, attacker_reactances=base, require_feasible_dispatch=False, seed=0
    ).perturbed_reactances
    attacker_matrix = reduced_measurement_matrix(network, base)

    def angle_at(t: float) -> float:
        return spa_of_reactances(network, attacker_matrix, base + t * (far - base))

    achievable = angle_at(1.0)
    results = []
    for gamma in gammas:
        if gamma > achievable + 1e-9:
            continue
        t_low, t_high = 0.0, 1.0
        for _ in range(40):
            t_mid = 0.5 * (t_low + t_high)
            if angle_at(t_mid) >= gamma:
                t_high = t_mid
            else:
                t_low = t_mid
        x = base + t_high * (far - base)
        results.append((angle_at(t_high), x))
    return results


__all__ = ["print_banner", "gamma_grid", "exact_angle_perturbations"]
