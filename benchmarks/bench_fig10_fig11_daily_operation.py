"""Figs. 10 and 11 — MTD operational cost and subspace angles over a day.

The IEEE 14-bus system is driven with the synthetic NYISO-like winter-day
profile (the substitution for the paper's 25-JAN-2016 trace, see DESIGN.md).
At each hour the SPA threshold is tuned to the smallest value achieving
η'(0.9) ≥ 0.9 against one-hour-stale attacker knowledge, and the resulting
cost premium over the no-MTD optimum (paper eq. (1)) is recorded.

* Fig. 10 — total load and MTD cost increase per hour.  Expected shape: the
  premium is concentrated in the high-load (congested) hours and near zero
  overnight.
* Fig. 11 — the three subspace angles γ(H_t, H_{t'}), γ(H_t, H'_{t'}) and
  γ(H_{t'}, H'_{t'}).  Expected shape: γ(H_t, H_{t'}) stays near zero
  (consecutive no-MTD systems are nearly identical), so the design metric
  γ(H_t, H'_{t'}) tracks the cost-relevant γ(H_{t'}, H'_{t'}).

Both figures come from the same simulated day, so a single benchmark
regenerates them.
"""

from __future__ import annotations

import numpy as np

from repro import nyiso_like_winter_day
from repro.analysis.reporting import format_table
from repro.mtd.scheduler import DailyMTDScheduler

from _bench_utils import emit_bench_json, print_banner, time_call

HOUR_LABELS = [
    "1AM", "2AM", "3AM", "4AM", "5AM", "6AM", "7AM", "8AM", "9AM", "10AM",
    "11AM", "12PM", "1PM", "2PM", "3PM", "4PM", "5PM", "6PM", "7PM", "8PM",
    "9PM", "10PM", "11PM", "12AM",
]

#: Attack-ensemble cap of the hourly scheduler runs (the 24-hour sweep re-prices
#: the ensemble every hour, so the full-scale budget would dominate the day).
N_ATTACKS_CAP = 300


def scheduler_n_attacks(scale) -> int:
    """The ensemble size the simulated day actually uses."""
    return min(scale.n_attacks, N_ATTACKS_CAP)


def simulate_day(network, scale):
    """One simulated day of hourly MTD operation."""
    profile = nyiso_like_winter_day()[: scale.n_hours]
    scheduler = DailyMTDScheduler(
        network,
        hourly_total_loads_mw=profile,
        delta=0.9,
        eta_target=0.9,
        n_attacks=scheduler_n_attacks(scale),
        seed=0,
    )
    return scheduler.run()


def bench_fig10_fig11_daily_operation(benchmark, net14, scale):
    """Regenerate the Fig. 10 / Fig. 11 series and time the simulated day."""
    result, day_seconds = benchmark.pedantic(
        time_call, args=(simulate_day, net14, scale), rounds=1, iterations=1
    )

    print_banner("Fig. 10 — MTD operational cost and total load over a day (IEEE 14-bus)")
    print(
        format_table(
            ["Hour", "Total load (MW)", "Cost increase (%)", "gamma_th", "eta'(0.9)"],
            [
                [HOUR_LABELS[r.hour], round(r.total_load_mw, 1),
                 round(r.cost_increase_percent, 2), round(r.gamma_threshold, 2),
                 round(r.achieved_eta, 2)]
                for r in result
            ],
        )
    )

    print_banner("Fig. 11 — subspace angles over the day (radians)")
    print(
        format_table(
            ["Hour", "gamma(Ht, Ht')", "gamma(Ht, H't')", "gamma(Ht', H't')"],
            [
                [HOUR_LABELS[r.hour], round(r.spa_attacker_vs_baseline, 3),
                 round(r.spa_attacker_vs_mtd, 3), round(r.spa_baseline_vs_mtd, 3)]
                for r in result
            ],
        )
    )

    loads = result.loads()
    costs = result.cost_increases_percent()
    series = result.spa_series()
    peak_half = loads >= np.median(loads)
    print(f"\nMean premium in the high-load half of the day: "
          f"{costs[peak_half].mean():.2f}% vs {costs[~peak_half].mean():.2f}% in the "
          "low-load half.")
    print("Paper shape: the cost premium concentrates in the high-load hours, and "
          "gamma(Ht, Ht') stays near zero so the attacker's stale knowledge remains "
          "representative of the current system.")

    emit_bench_json(
        "fig10_fig11",
        {
            "figure": "fig10-fig11",
            "scale": scale.name,
            "n_hours": scale.n_hours,
            "n_attacks": scheduler_n_attacks(scale),
            "day_seconds": day_seconds,
            "seconds_per_hour": day_seconds / max(1, scale.n_hours),
            "mean_cost_increase_percent": float(costs.mean()),
        },
    )

    # Fig. 10 shape: costs are non-negative and the expensive hours are the
    # loaded ones.
    assert np.all(costs >= -1e-9)
    if costs.max() > 0:
        assert costs[peak_half].mean() >= costs[~peak_half].mean() - 1e-9
    # Fig. 11 shape: consecutive no-MTD systems stay nearly aligned compared
    # with the deliberately designed separation.
    assert np.median(series["gamma(Ht, Ht')"]) <= 0.1
    assert np.all(
        series["gamma(Ht, Ht')"] <= series["gamma(Ht, H't')"] + 1e-9
    )
