"""Figs. 10 and 11 — MTD operational cost and subspace angles over a day.

The IEEE 14-bus system is driven with the synthetic NYISO-like winter-day
profile (the substitution for the paper's 25-JAN-2016 trace) through the
time-series operation engine: at each hour the SPA threshold is tuned to
the smallest value achieving η'(0.9) ≥ 0.9 against one-hour-stale attacker
knowledge, and the resulting cost premium over the no-MTD optimum (paper
eq. (1)) is recorded.

* Fig. 10 — total load and MTD cost increase per hour.  Expected shape: the
  premium is concentrated in the high-load (congested) hours and near zero
  overnight.
* Fig. 11 — the three subspace angles γ(H_t, H_{t'}), γ(H_t, H'_{t'}) and
  γ(H_{t'}, H'_{t'}).  Expected shape: γ(H_t, H_{t'}) stays near zero
  (consecutive no-MTD systems are nearly identical), so the design metric
  γ(H_t, H'_{t'}) tracks the cost-relevant γ(H_{t'}, H'_{t'}).

Both figures come from the same simulated day, so a single benchmark
regenerates them — and times the engine against the historical execution
strategy (linear γ-grid scan, no per-hour design memoisation, serial
hours), asserting the bisection + context-reuse + parallel-hours path is
at least 2x faster while producing record-for-record identical results.
"""

from __future__ import annotations

import os

import numpy as np

from repro.analysis.reporting import format_table
from repro.engine.runner import ScenarioEngine
from repro.timeseries import (
    OperationResult,
    ProfileSpec,
    TuningSpec,
    daily_operation_spec,
)

from _bench_utils import emit_bench_json, print_banner, time_call

HOUR_LABELS = [
    "1AM", "2AM", "3AM", "4AM", "5AM", "6AM", "7AM", "8AM", "9AM", "10AM",
    "11AM", "12PM", "1PM", "2PM", "3PM", "4PM", "5PM", "6PM", "7PM", "8PM",
    "9PM", "10PM", "11PM", "12AM",
]

#: Attack-ensemble cap of the hourly runs (the 24-hour sweep re-prices the
#: ensemble every hour, so the full-scale budget would dominate the day).
N_ATTACKS_CAP = 300


def scheduler_n_attacks(scale) -> int:
    """The ensemble size the simulated day actually uses."""
    return min(scale.n_attacks, N_ATTACKS_CAP)


def day_spec(scale, *, legacy: bool):
    """The Fig. 10 operation spec at the benchmark scale.

    ``legacy=True`` pins the historical execution strategy — linear grid
    scan with a fresh design per probe — which selects the same thresholds
    and produces identical records, only slower.
    """
    return daily_operation_spec(
        name="fig10-bench-legacy" if legacy else "fig10-bench",
        profile=ProfileSpec(hours=None if scale.n_hours >= 24 else scale.n_hours),
        tuning=TuningSpec(
            method="scan" if legacy else "bisect",
            reuse_design_context=not legacy,
        ),
        n_attacks=scheduler_n_attacks(scale),
        seed=0,
    )


def run_day(spec, n_workers: int) -> OperationResult:
    engine = ScenarioEngine(n_workers=n_workers)
    return OperationResult.from_scenario(engine.run(spec, use_cache=False))


def bench_fig10_fig11_daily_operation(benchmark, scale):
    """Regenerate the Fig. 10 / Fig. 11 series; time engine vs legacy path."""
    n_workers = max(1, min(4, os.cpu_count() or 1))
    result, day_first = benchmark.pedantic(
        time_call, args=(run_day, day_spec(scale, legacy=False), n_workers),
        rounds=1, iterations=1,
    )
    legacy_result, legacy_first = time_call(
        run_day, day_spec(scale, legacy=True), 1
    )
    day_times, legacy_times = [day_first], [legacy_first]
    # The speedup is asserted on per-arm minima over a second,
    # order-reversed pair: a single-shot ratio inherits whatever
    # preemption or frequency-scaling noise hits either arm, which made
    # the 2x bar flaky on loaded machines.  Smoke budgets skip the extra
    # pair (their ratio is never asserted).
    if scale.name != "smoke":
        legacy_times.append(time_call(run_day, day_spec(scale, legacy=True), 1)[1])
        day_times.append(
            time_call(run_day, day_spec(scale, legacy=False), n_workers)[1]
        )
    day_seconds = min(day_times)
    legacy_seconds = min(legacy_times)
    speedup = legacy_seconds / day_seconds if day_seconds > 0 else 1.0

    print_banner("Fig. 10 — MTD operational cost and total load over a day (IEEE 14-bus)")
    print(
        format_table(
            ["Hour", "Total load (MW)", "Cost increase (%)", "gamma_th", "eta'(0.9)", "probes"],
            [
                [HOUR_LABELS[r.hour_of_day], round(r.total_load_mw, 1),
                 round(r.cost_increase_percent, 2), round(r.gamma_threshold, 2),
                 round(r.achieved_eta, 2), r.n_tuning_probes]
                for r in result
            ],
        )
    )

    print_banner("Fig. 11 — subspace angles over the day (radians)")
    print(
        format_table(
            ["Hour", "gamma(Ht, Ht')", "gamma(Ht, H't')", "gamma(Ht', H't')"],
            [
                [HOUR_LABELS[r.hour_of_day], round(r.spa_attacker_vs_baseline, 3),
                 round(r.spa_attacker_vs_mtd, 3), round(r.spa_baseline_vs_mtd, 3)]
                for r in result
            ],
        )
    )

    loads = result.loads()
    costs = result.cost_increases_percent()
    series = result.spa_series()
    peak_half = loads >= np.median(loads)
    print(f"\nMean premium in the high-load half of the day: "
          f"{costs[peak_half].mean():.2f}% vs {costs[~peak_half].mean():.2f}% in the "
          "low-load half.")
    print(f"Engine (bisection + design reuse, {n_workers} worker(s)): "
          f"{day_seconds:.2f}s for {len(result)} hours "
          f"(best of {len(day_times)}), "
          f"{result.total_tuning_probes()} tuning probes.")
    print(f"Legacy strategy (linear scan, fresh designs, serial): "
          f"{legacy_seconds:.2f}s (best of {len(legacy_times)}), "
          f"{legacy_result.total_tuning_probes()} probes "
          f"-> {speedup:.2f}x speedup.")

    common = {
        "scale": scale.name,
        "n_hours": len(result),
        "n_attacks": scheduler_n_attacks(scale),
        "n_workers": n_workers,
        "timing_repeats": len(day_times),
        "day_seconds": day_seconds,
        "legacy_seconds": legacy_seconds,
        "speedup_vs_legacy": speedup,
    }
    emit_bench_json(
        "fig10",
        {
            "figure": "fig10",
            **common,
            "seconds_per_hour": day_seconds / max(1, len(result)),
            "tuning_probes": result.total_tuning_probes(),
            "legacy_tuning_probes": legacy_result.total_tuning_probes(),
            "mean_cost_increase_percent": float(costs.mean()),
            "peak_cost_increase_percent": float(costs.max()),
        },
    )
    emit_bench_json(
        "fig11",
        {
            "figure": "fig11",
            **common,
            "median_gamma_attacker_vs_baseline": float(np.median(series["gamma(Ht, Ht')"])),
            "median_gamma_attacker_vs_mtd": float(np.median(series["gamma(Ht, H't')"])),
            "median_gamma_baseline_vs_mtd": float(np.median(series["gamma(Ht', H't')"])),
        },
    )

    # The engine path must agree with the historical strategy record for
    # record (probe counts differ by design).  Bisection's same-grid-value
    # guarantee only holds while η'(γ) is monotone over the grid; at large
    # attack budgets an individual hour can violate that (e.g. hour 18 at
    # the quick scale), in which case scan finds the *smallest* passing
    # value and bisection a possibly larger one — both must still meet the
    # η target, and bisection can only land above scan, never below.
    eta_target = day_spec(scale, legacy=False).operation.tuning.eta_target
    for fast, slow in zip(result, legacy_result):
        if fast.gamma_threshold == slow.gamma_threshold:
            assert fast.cost_increase_percent == slow.cost_increase_percent, (fast, slow)
            assert fast.spa_attacker_vs_mtd == slow.spa_attacker_vs_mtd, (fast, slow)
        else:
            assert fast.gamma_threshold > slow.gamma_threshold, (fast, slow)
            assert fast.achieved_eta >= eta_target, (fast, slow)
            assert slow.achieved_eta >= eta_target, (fast, slow)
    # Fig. 10 shape: costs are non-negative and the expensive hours are the
    # loaded ones.
    assert np.all(costs >= -1e-9)
    if costs.max() > 0:
        assert costs[peak_half].mean() >= costs[~peak_half].mean() - 1e-9
    # Fig. 11 shape: consecutive no-MTD systems stay nearly aligned compared
    # with the deliberately designed separation.  Not every single hour:
    # where the tuned threshold is tiny (an uncongested hour needs almost no
    # MTD) the designed separation can dip below that hour's natural
    # inter-hour drift, so the claim is about the bulk of the day.
    assert np.median(series["gamma(Ht, Ht')"]) <= 0.1
    aligned = series["gamma(Ht, Ht')"] <= series["gamma(Ht, H't')"] + 1e-9
    assert aligned.mean() >= 0.75, series
    # The acceptance bar: bisection + design reuse + parallel hours buy at
    # least 2x over the historical execution strategy (smoke budgets are too
    # small for stable timing).  The bar holds even on a single-core runner:
    # bisection + design-context reuse alone measure ~3.7x serial on the
    # fig10 setting, so the parallel-hours contribution is margin, not a
    # requirement.
    if scale.name != "smoke":
        assert speedup >= 2.0, f"fig10 speedup only {speedup:.2f}x"
