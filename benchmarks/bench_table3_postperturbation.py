"""Table III — post-perturbation dispatch and OPF cost (4-bus).

Regenerates the motivating example's cost table: for each single-line
reactance perturbation (η = 0.2) the system is re-dispatched and the new OPF
cost is compared against the pre-perturbation optimum.

Paper values (generation of G1 / G2 and cost):
    Δx1: 337.4 / 162.6, 1.1626e4      Δx2: 340.5 / 159.5, 1.1595e4
    Δx3: 348.6 / 151.4, 1.1514e4      Δx4: 346.0 / 154.0, 1.1540e4
(the published table prints Δx2's cost as 1.595e4, an apparent typo).
The qualitative findings to reproduce: every perturbation increases the
cost, and Δx3 is the cheapest.
"""

from __future__ import annotations

import numpy as np

from repro import case4gs, solve_dc_opf
from repro.analysis.reporting import format_table
from repro.mtd.perturbation import ReactancePerturbation

from _bench_utils import emit_bench_json, print_banner, time_call

ETA = 0.2


def compute_post_perturbation_costs() -> list[tuple[str, float, float, float]]:
    """(label, G1, G2, cost) for each single-line perturbation."""
    network = case4gs()
    rows = []
    for line in range(network.n_branches):
        perturbation = ReactancePerturbation.single_line(network, line, ETA)
        result = solve_dc_opf(network, reactances=perturbation.perturbed_reactances)
        rows.append(
            (f"Delta-x{line + 1}", float(result.dispatch_mw[0]),
             float(result.dispatch_mw[1]), float(result.cost))
        )
    return rows


def bench_table3_postperturbation(benchmark):
    """Regenerate Table III and time the four re-dispatches."""
    rows, redispatch_seconds = benchmark.pedantic(
        time_call, args=(compute_post_perturbation_costs,), rounds=3, iterations=1
    )
    baseline = solve_dc_opf(case4gs())

    print_banner("Table III — post-perturbation dispatch and OPF cost (4-bus)")
    print(
        format_table(
            ["MTD", "Gen 1 (MW)", "Gen 2 (MW)", "OPF cost ($)", "Increase (%)"],
            [
                [label, round(g1, 2), round(g2, 2), round(cost, 1),
                 round(100.0 * (cost - baseline.cost) / baseline.cost, 2)]
                for label, g1, g2, cost in rows
            ],
        )
    )
    print("Paper reference: every perturbation increases the cost; "
          "Delta-x3 is the cheapest, Delta-x1 the most expensive.")

    costs = [cost for *_rest, cost in rows]
    emit_bench_json(
        "table3",
        {
            "table": "table3",
            "n_perturbations": len(rows),
            "redispatch_seconds": redispatch_seconds,
            "max_cost_increase_percent": float(
                100.0 * (max(costs) - baseline.cost) / baseline.cost
            ),
        },
    )
    assert all(cost >= baseline.cost - 1e-6 for cost in costs)
    assert int(np.argmin(costs)) == 2
    assert max(costs) > baseline.cost + 1.0
