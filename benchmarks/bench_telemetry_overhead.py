"""Telemetry overhead — instrumented runs must cost (almost) nothing.

The telemetry subsystem promises that collection never perturbs results
and barely perturbs timing: the hot paths guard every metric emission
behind a single attribute read, and the enabled path only bumps
process-local counters and bisects fixed histogram boundaries.  This
benchmark pins both halves of the promise on the Fig. 7 workload
(random-MTD trials through the batched engine kernel):

* trials with telemetry enabled are **bit-identical** to trials with it
  disabled;
* the enabled/disabled overhead stays under ``MAX_OVERHEAD_RATIO``.

The overhead budget is asserted on a **projected** ratio that is robust
to machine noise: the workload's telemetry event counts are exact (the
registry itself reports them) and the per-event costs are microbenched
in tight loops, so ``projected = 1 + safety * event_cost / batch_time``
cannot be blown up by scheduler jitter.  The direct A/B wall ratio is
also measured (interleaved, alternating order, min-of-repeats) and
recorded in ``BENCH_telemetry.json``; on a quiet machine it matches the
projection, but on a loaded single-core CI box the same arm varies by
2x between repeats, so only a gross-regression backstop is asserted on
it.
"""

from __future__ import annotations

import tempfile
import time

from repro import telemetry
from repro.engine import AttackSpec, GridSpec, MTDSpec, ScenarioSpec, run_trial_batch
from repro.telemetry import metrics as _metrics
from repro.telemetry.config import DEFAULT_PROGRESS_INTERVAL
from repro.telemetry.progress import ProgressWriter, ShardProgress, set_current, tick
from repro.telemetry.spans import drain_spans, span as _span

from _bench_utils import emit_bench_json, print_banner

#: Projected enabled/disabled ratio budget (asserted at quick/full).
MAX_OVERHEAD_RATIO = 1.05

#: Gross-regression backstop on the directly measured A/B ratio: even on
#: a noisy machine, instrumentation must never come near doubling the
#: batch time.
MAX_MEASURED_RATIO = 1.5

#: Safety factor applied to the microbenched per-event costs before
#: projecting (in-situ events run cold against a polluted cache, unlike a
#: tight microbench loop).
COST_SAFETY_FACTOR = 2.0

#: Interleaved repeats per arm for the measured ratio.
REPEATS = 8


def overhead_spec(scale) -> ScenarioSpec:
    """The Fig. 7 workload: random-MTD trials on the 14-bus system,
    scaled past the figure's five trials so one batch takes tens of
    milliseconds."""
    return ScenarioSpec(
        name="telemetry-overhead",
        grid=GridSpec(case="ieee14", baseline="dc-opf"),
        attack=AttackSpec(n_attacks=scale.n_attacks, seed=1),
        mtd=MTDSpec(policy="random", max_relative_change=0.02),
        n_trials=max(8 * scale.n_random_trials, 2),
        base_seed=7,
        deltas=(0.5, 0.9),
    )


def _timed_batch(spec: ScenarioSpec, enabled: bool) -> tuple[list, float]:
    # CPU time, not wall time: the workload is pure compute, and on a
    # loaded machine scheduler preemption adds wall-time noise far larger
    # than the budget under test.
    prev = telemetry.set_enabled(enabled)
    try:
        start = time.process_time()
        trials = run_trial_batch(spec)
        elapsed = time.process_time() - start
    finally:
        telemetry.set_enabled(prev)
        drain_spans()
    return trials, elapsed


def _event_counts(spec: ScenarioSpec) -> tuple[int, int]:
    """Exact (counter_increments, span_and_histogram_records) one enabled
    batch emits — read back from the registry itself."""
    prev = telemetry.set_enabled(True)
    before = _metrics.snapshot()
    try:
        run_trial_batch(spec)
    finally:
        telemetry.set_enabled(prev)
        drain_spans()
    delta = _metrics.snapshot().subtract(before)
    n_counters = sum(delta.counters.values())
    n_records = sum(h["count"] for h in delta.histograms.values())
    return n_counters, n_records


def _per_event_costs() -> tuple[float, float]:
    """Tight-loop seconds per counter increment and per span (the span
    cost includes its ``span.seconds`` histogram record)."""
    n = 20000
    prev = telemetry.set_enabled(True)
    try:
        start = time.process_time()
        for _ in range(n):
            _metrics.counter("bench.calibration")
        counter_cost = (time.process_time() - start) / n
        start = time.process_time()
        for _ in range(n):
            with _span("bench.calibration"):
                pass
        span_cost = (time.process_time() - start) / n
    finally:
        telemetry.set_enabled(prev)
        drain_spans()
        _metrics.reset()
    return counter_cost, span_cost


def _progress_costs() -> tuple[float, float, float]:
    """Per-call costs of the live progress stream's three hot shapes.

    Returns ``(idle_tick, limited_tick, forced_emit)`` seconds:

    * *idle tick* — ``progress.tick()`` with no sink installed, the cost
      every serial trial-loop iteration pays when nothing is watched
      (one module-global read and a ``None`` check);
    * *limited tick* — a tick with a sink installed but rate-limited
      away (one clock read against the heartbeat interval);
    * *forced emit* — a full fsync'd heartbeat append, the cost paid at
      most once per heartbeat interval per shard.
    """
    n = 20000
    set_current(None)
    start = time.process_time()
    for _ in range(n):
        tick()
    idle_cost = (time.process_time() - start) / n

    with tempfile.TemporaryDirectory() as tmp:
        writer = ProgressWriter(tmp, min_interval=3600.0)
        progress = ShardProgress(writer, shard=0, total=1)
        set_current(progress)
        try:
            start = time.process_time()
            for _ in range(n):
                tick()
            limited_cost = (time.process_time() - start) / n
        finally:
            set_current(None)
        m = 200
        start = time.perf_counter()  # emit cost is I/O (fsync): wall time
        for index in range(m):
            writer.emit("heartbeat", force=True, shard=0, done=index)
        emit_cost = (time.perf_counter() - start) / m
        writer.close()
    return idle_cost, limited_cost, emit_cost


def bench_telemetry_overhead(scale):
    """Project and measure the batched kernel's telemetry overhead."""
    spec = overhead_spec(scale)
    telemetry.reset()

    # Warm process-global caches (topology, analytic memo) so neither arm
    # pays first-touch costs.
    baseline_trials, _ = _timed_batch(spec, enabled=False)
    for _ in range(2):
        _timed_batch(spec, enabled=True)

    off_times, on_times = [], []
    for repeat in range(REPEATS):
        # Alternate which arm goes first: running one arm always second
        # hands it any systematic within-pair drift (frequency scaling,
        # allocator state) and biases the ratio.
        if repeat % 2 == 0:
            off_trials, off_s = _timed_batch(spec, enabled=False)
            on_trials, on_s = _timed_batch(spec, enabled=True)
        else:
            on_trials, on_s = _timed_batch(spec, enabled=True)
            off_trials, off_s = _timed_batch(spec, enabled=False)
        off_times.append(off_s)
        on_times.append(on_s)
        # Bit-identity: collection never changes the science.
        assert [t.metrics for t in on_trials] == [t.metrics for t in off_trials]
        assert [t.metrics for t in off_trials] == [
            t.metrics for t in baseline_trials
        ]

    best_off, best_on = min(off_times), min(on_times)
    measured_ratio = best_on / best_off if best_off > 0 else float("inf")

    n_counters, n_records = _event_counts(spec)
    counter_cost, span_cost = _per_event_costs()
    # Histogram records outside spans are counted at span cost too — a
    # strict overestimate.
    event_seconds = COST_SAFETY_FACTOR * (
        n_counters * counter_cost + n_records * span_cost
    )
    projected_ratio = 1.0 + event_seconds / best_off if best_off > 0 else float("inf")

    # Progress stream: event volume is rate-limited (at most one fsync'd
    # heartbeat per interval per shard, never O(trials)), so its overhead
    # has two bounded terms — one rate-limited tick per trial, plus the
    # emit cost amortised over the heartbeat interval.
    idle_tick_cost, limited_tick_cost, emit_cost = _progress_costs()
    tick_seconds = spec.n_trials * limited_tick_cost
    emit_fraction = emit_cost / DEFAULT_PROGRESS_INTERVAL
    progress_ratio = 1.0 + COST_SAFETY_FACTOR * (
        (tick_seconds / best_off if best_off > 0 else float("inf")) + emit_fraction
    )
    combined_ratio = projected_ratio + (progress_ratio - 1.0)

    print_banner(
        f"Telemetry overhead on the Fig. 7 workload ({scale.name} scale, "
        f"{spec.n_trials} trials x {scale.n_attacks} attacks)"
    )
    print(f"batch floor:      disabled {best_off * 1000:.2f} ms, "
          f"enabled {best_on * 1000:.2f} ms (measured {measured_ratio:.3f}x)")
    print(f"events per batch: {n_counters} counter increments, "
          f"{n_records} span/histogram records")
    print(f"per-event cost:   counter {counter_cost * 1e6:.2f} us, "
          f"span {span_cost * 1e6:.2f} us (x{COST_SAFETY_FACTOR:g} safety)")
    print(f"progress stream:  idle tick {idle_tick_cost * 1e9:.0f} ns, "
          f"limited tick {limited_tick_cost * 1e9:.0f} ns, "
          f"fsync emit {emit_cost * 1e6:.1f} us "
          f"(<= {1.0 / DEFAULT_PROGRESS_INTERVAL:g} emit/s per shard)")
    print(f"projected ratio:  {projected_ratio:.4f}x metrics+spans, "
          f"{progress_ratio:.4f}x progress, {combined_ratio:.4f}x combined "
          f"(budget {MAX_OVERHEAD_RATIO}x)")

    emit_bench_json(
        "telemetry",
        {
            "scale": scale.name,
            "workload": {
                "case": "ieee14",
                "n_attacks": scale.n_attacks,
                "n_trials": spec.n_trials,
                "repeats": REPEATS,
            },
            "disabled_seconds": best_off,
            "enabled_seconds": best_on,
            "measured_ratio": measured_ratio,
            "events": {
                "counter_increments": n_counters,
                "span_histogram_records": n_records,
                "counter_cost_seconds": counter_cost,
                "span_cost_seconds": span_cost,
                "cost_safety_factor": COST_SAFETY_FACTOR,
            },
            "progress": {
                "idle_tick_cost_seconds": idle_tick_cost,
                "limited_tick_cost_seconds": limited_tick_cost,
                "emit_cost_seconds": emit_cost,
                "heartbeat_interval_seconds": DEFAULT_PROGRESS_INTERVAL,
                "max_emits_per_shard_per_second": 1.0 / DEFAULT_PROGRESS_INTERVAL,
                "projected_ratio": progress_ratio,
            },
            "overhead_ratio": combined_ratio,
            "overhead_ratio_metrics_only": projected_ratio,
            "max_overhead_ratio": MAX_OVERHEAD_RATIO,
            "max_measured_ratio": MAX_MEASURED_RATIO,
            "bit_identical": True,
        },
    )

    # Tiny smoke batches are dominated by constant costs and timer
    # granularity; the ratios are only meaningful at real budgets.
    if scale.name != "smoke":
        assert combined_ratio <= MAX_OVERHEAD_RATIO, (
            f"projected telemetry+progress overhead {combined_ratio:.3f}x "
            f"exceeds the {MAX_OVERHEAD_RATIO}x budget "
            f"(metrics+spans {projected_ratio:.3f}x, progress "
            f"{progress_ratio:.3f}x)"
        )
        assert measured_ratio <= MAX_MEASURED_RATIO, (
            f"measured telemetry overhead {measured_ratio:.3f}x exceeds the "
            f"{MAX_MEASURED_RATIO}x gross backstop"
        )
