"""Table I — BDD residuals of stealthy attacks under single-line MTDs.

Regenerates the motivating example's detection table: two stealthy attacks
crafted from the 4-bus system's pre-perturbation measurement matrix are
checked against the BDD of the system after each of the four single-line
reactance perturbations (η = 0.2, no measurement noise).  A residual of zero
means the attack remains stealthy under that MTD.

Paper values (for reference):
    Attack 1: 2.82, 2.87, 0, 0      Attack 2: 0, 0, 2.87, 2.82
"""

from __future__ import annotations

import numpy as np

from repro import case4gs, stealthy_attack
from repro.analysis.reporting import format_table
from repro.estimation.measurement import MeasurementSystem
from repro.estimation.state_estimator import WLSStateEstimator
from repro.mtd.perturbation import ReactancePerturbation

from _bench_utils import emit_bench_json, print_banner, time_call

#: Relative reactance change of the motivating example.
ETA = 0.2

#: The two state biases of Table I (entries for buses 2, 3 and 4).
ATTACK_BIASES = {
    "Attack 1": np.array([1.0, 1.0, 1.0]),
    "Attack 2": np.array([0.0, 0.0, 1.0]),
}


def compute_residual_table() -> dict[str, list[float]]:
    """Noise-free attack residuals under the four single-line perturbations."""
    network = case4gs()
    system = MeasurementSystem.for_network(network)
    attacker_matrix = system.matrix()
    table: dict[str, list[float]] = {}
    for name, bias in ATTACK_BIASES.items():
        attack = stealthy_attack(attacker_matrix, bias)
        residuals = []
        for line in range(network.n_branches):
            perturbation = ReactancePerturbation.single_line(network, line, ETA)
            estimator = WLSStateEstimator(
                system.with_reactances(perturbation.perturbed_reactances)
            )
            residuals.append(float(np.linalg.norm(estimator.attack_residual(attack))))
        table[name] = residuals
    return table


def bench_table1_residuals(benchmark):
    """Regenerate Table I and time the residual computation."""
    table, table_seconds = benchmark.pedantic(
        time_call, args=(compute_residual_table,), rounds=3, iterations=1
    )

    print_banner("Table I — BDD residuals under single-line MTD perturbations (4-bus)")
    rows = [
        [name] + [round(value, 2) for value in residuals]
        for name, residuals in table.items()
    ]
    print(format_table(["", "r'(1)", "r'(2)", "r'(3)", "r'(4)"], rows))
    print("Expected pattern: each attack is missed (residual 0) by exactly two "
          "of the four perturbations, as in the paper.")

    emit_bench_json(
        "table1",
        {
            "table": "table1",
            "n_attacks": len(ATTACK_BIASES),
            "n_perturbations": len(next(iter(table.values()))),
            "table_seconds": table_seconds,
        },
    )

    # Sanity: the zero / non-zero pattern of the paper must hold.
    attack1, attack2 = table["Attack 1"], table["Attack 2"]
    assert attack1[0] > 1.0 and attack1[1] > 1.0
    assert abs(attack1[2]) < 1e-8 and abs(attack1[3]) < 1e-8
    assert abs(attack2[0]) < 1e-8 and abs(attack2[1]) < 1e-8
    assert attack2[2] > 1.0 and attack2[3] > 1.0
