"""Ablation — does the subspace-angle heuristic track true effectiveness?

The paper's design criterion replaces the (intractable) effectiveness metric
η'(δ) with the subspace angle γ(H, H') and conjectures that the two are
monotonically related (Section V-C, Appendix C).  This ablation samples
perturbations across the whole D-FACTS range — random ones of several
magnitudes plus designed ones — and reports the Spearman rank correlation
between the achieved angle and the measured effectiveness.

Expected outcome: a strong positive rank correlation (≥ 0.8), i.e. ranking
perturbations by γ is almost the same as ranking them by η'(δ).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import rank_correlation
from repro.analysis.reporting import format_table
from repro.mtd.design import design_mtd_perturbation, spa_of_reactances
from repro.mtd.perturbation import ReactancePerturbation

from _bench_utils import print_banner


def collect_spa_vs_effectiveness(network, evaluator, deltas):
    """(spa, {delta: eta}) samples across random and designed perturbations."""
    samples = []
    attacker_matrix = evaluator.attacker_matrix

    # Random perturbations of increasing magnitude.
    for magnitude in (0.05, 0.1, 0.2, 0.3, 0.5):
        for seed in range(4):
            perturbation = ReactancePerturbation.random(
                network,
                max_relative_change=magnitude,
                base_reactances=evaluator.base_reactances,
                seed=seed,
            )
            spa = spa_of_reactances(network, attacker_matrix, perturbation.perturbed_reactances)
            etas = evaluator.evaluate(perturbation.perturbed_reactances)
            samples.append((spa, {d: etas.eta(d) for d in deltas}))

    # Designed perturbations across the achievable range.
    for gamma in (0.05, 0.15, 0.25):
        design = design_mtd_perturbation(
            network,
            gamma_threshold=gamma,
            attacker_reactances=evaluator.base_reactances,
            method="two-stage",
            seed=0,
        )
        etas = evaluator.evaluate(design.perturbed_reactances)
        samples.append((design.achieved_spa, {d: etas.eta(d) for d in deltas}))
    return samples


def bench_ablation_spa_heuristic(benchmark, net14, evaluator14, scale):
    """Quantify how well the SPA heuristic ranks perturbations."""
    samples = benchmark.pedantic(
        collect_spa_vs_effectiveness,
        args=(net14, evaluator14, scale.deltas),
        rounds=1,
        iterations=1,
    )

    spas = np.array([spa for spa, _ in samples])
    print_banner(
        "Ablation — subspace-angle heuristic vs measured effectiveness (IEEE 14-bus)"
    )
    rows = []
    correlations = {}
    for delta in scale.deltas:
        etas = np.array([sample[delta] for _, sample in samples])
        correlations[delta] = rank_correlation(spas, etas)
        rows.append([delta, round(correlations[delta], 3)])
    print(format_table(["delta", "Spearman rank correlation (gamma vs eta')"], rows))
    print(f"Samples: {len(samples)} perturbations spanning gamma in "
          f"[{spas.min():.3f}, {spas.max():.3f}] rad.")
    print("Expected: strong positive correlation — the heuristic metric orders "
          "perturbations (nearly) the same way as the true effectiveness.")

    assert correlations[0.5] > 0.8
    assert all(value > 0.5 for value in correlations.values())
