"""Fig. 6(b) — MTD effectiveness versus subspace angle on the IEEE 30-bus system.

Same experiment as Fig. 6(a) on the larger network, demonstrating that the
subspace-angle design criterion scales beyond the 14-bus case: perturbations
achieving a larger γ(H_t, H'_t') detect a larger fraction of the
pre-perturbation stealthy attacks.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import monotonicity_fraction
from repro.analysis.reporting import format_table

from _bench_utils import emit_bench_json, print_banner, time_call
from bench_fig6a_effectiveness_14bus import sweep_effectiveness


def bench_fig6b_effectiveness_30bus(benchmark, net30, baseline30, evaluator30, scale):
    """Regenerate the Fig. 6(b) series and time the full sweep."""
    (rows, sweep_seconds) = benchmark.pedantic(
        time_call,
        args=(sweep_effectiveness, net30, evaluator30, baseline30, scale.deltas),
        rounds=1,
        iterations=1,
    )
    emit_bench_json(
        "fig6b",
        {
            "figure": "fig6b",
            "case": "ieee30",
            "scale": scale.name,
            "n_attacks": scale.n_attacks,
            "n_gamma_points": len(rows),
            "sweep_seconds": sweep_seconds,
        },
    )

    print_banner(
        f"Fig. 6(b) — eta'(delta) vs gamma(Ht, H't'), IEEE 30-bus "
        f"({scale.n_attacks} attacks, FP rate 5e-4)"
    )
    print(
        format_table(
            ["gamma (rad)"] + [f"eta'({d})" for d in scale.deltas],
            [
                [round(gamma, 3)] + [round(etas[d], 3) for d in scale.deltas]
                for gamma, etas in rows
            ],
        )
    )
    print("Paper shape: as on the 14-bus system, effectiveness increases "
          "monotonically with the subspace angle.")

    for delta in scale.deltas:
        series = np.array([etas[delta] for _, etas in rows])
        assert monotonicity_fraction(series) >= 0.7
        assert series[-1] >= series[0]
