"""Fig. 7 — effectiveness of five randomly chosen MTD perturbations.

Five random reactance perturbations (the strategy of the prior MTD work the
paper compares against, constrained to within 2 % of the operating values)
are evaluated against the shared attack ensemble.  The figure's message is
the high variability across trials: random perturbations cannot guarantee a
level of attack detection.

The trials are driven through the scenario engine: each benchmark run is a
declarative :class:`~repro.engine.spec.ScenarioSpec` whose trials draw one
random perturbation each from seed-spawned streams, against the ensemble
pinned by ``AttackSpec.seed``.

Beyond the paper, the benchmark repeats the same sweep on the 118-bus
synthetic case twice — once through the legacy per-attack ``reference``
kernel and once through the batched kernel — and records both timings (and
their ratio) in ``BENCH_fig7.json``; the batched kernel must be at least
3x faster at the quick/full budgets.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.engine import AttackSpec, GridSpec, MTDSpec, ScenarioEngine, ScenarioSpec
from repro.grid.cases.registry import load_case
from repro.mtd.effectiveness import EffectivenessEvaluator
from repro.mtd.random_mtd import RandomMTDBaseline
from repro.opf.dc_opf import solve_dc_opf

from _bench_utils import emit_bench_json, print_banner, time_call

#: δ grid of the paper's Fig. 7 (x-axis).
DELTA_GRID = (0.1, 0.2, 0.4, 0.6, 0.8, 0.9)

#: Large case for the batched-vs-reference kernel comparison.
SCALE_CASE = "synthetic118"

#: Minimum batched-kernel speedup asserted at the quick/full budgets.
MIN_SPEEDUP = 3.0


def random_mtd_spec(n_trials, n_attacks, max_relative_change=0.02):
    """The Fig. 7 experiment as a scenario spec."""
    return ScenarioSpec(
        name=f"fig7-random-mtd-{max_relative_change:g}",
        grid=GridSpec(case="ieee14", baseline="reactance-opf"),
        attack=AttackSpec(n_attacks=n_attacks, seed=1),
        mtd=MTDSpec(policy="random", max_relative_change=max_relative_change),
        n_trials=n_trials,
        base_seed=5,
        deltas=DELTA_GRID,
        metric="eta(0.9)",
    )


def evaluate_random_trials(engine, n_trials, n_attacks, max_relative_change=0.02):
    """η'(δ) of each random trial over the δ grid."""
    result = engine.run(random_mtd_spec(n_trials, n_attacks, max_relative_change))
    return [
        {delta: trial.metrics[f"eta({delta:g})"] for delta in DELTA_GRID}
        for trial in result.trials
    ]


def kernel_comparison(case, n_trials, n_attacks, max_relative_change=0.02):
    """Time the Fig. 7 sweep on a large case: reference vs batched kernel.

    The same random perturbations (drawn once, seeded as in the Fig. 7
    spec) are priced against the same pinned attack ensemble by both
    kernels; returns the two wall-clock timings plus the maximum
    probability disagreement as a cross-check.
    """
    network = load_case(case)
    baseline = solve_dc_opf(network)
    evaluator = EffectivenessEvaluator(
        network,
        operating_angles_rad=baseline.angles_rad,
        base_reactances=baseline.reactances,
        n_attacks=n_attacks,
        seed=1,
    )
    sampler = RandomMTDBaseline(
        network, evaluator, max_relative_change=max_relative_change
    )
    rng = np.random.default_rng(5)
    perturbations = [
        sampler.draw_perturbation(seed=rng).perturbed_reactances
        for _ in range(n_trials)
    ]

    reference, reference_seconds = time_call(
        lambda: [evaluator.evaluate(x, kernel="reference") for x in perturbations]
    )
    batched, batched_seconds = time_call(
        lambda: [evaluator.evaluate(x, kernel="batched") for x in perturbations]
    )
    max_disagreement = max(
        float(np.max(np.abs(r.detection_probabilities - b.detection_probabilities)))
        for r, b in zip(reference, batched)
    )
    return reference_seconds, batched_seconds, max_disagreement


def bench_fig7_random_mtd(benchmark, scale):
    """Regenerate the Fig. 7 trials and time their evaluation."""
    engine = ScenarioEngine(batch_size=scale.n_random_trials)
    (trials, engine_seconds) = benchmark.pedantic(
        time_call,
        args=(evaluate_random_trials, engine, scale.n_random_trials, scale.n_attacks),
        rounds=1,
        iterations=1,
    )
    # Complementary view: random perturbations spanning the full D-FACTS
    # range (±50 %), which exhibit the trial-to-trial variability Fig. 7
    # emphasises even though individual trials can be moderately effective.
    wide_trials = evaluate_random_trials(
        engine, scale.n_random_trials, scale.n_attacks, max_relative_change=0.5
    )

    print_banner(
        f"Fig. 7 — eta'(delta) of {scale.n_random_trials} randomly chosen MTD "
        "perturbations (within 2% of the operating reactances), IEEE 14-bus"
    )
    print(
        format_table(
            ["delta"] + [f"Trial {i + 1}" for i in range(len(trials))],
            [
                [delta] + [round(trial[delta], 3) for trial in trials]
                for delta in DELTA_GRID
            ],
        )
    )
    print()
    print(
        format_table(
            ["delta"] + [f"Trial {i + 1}" for i in range(len(wide_trials))],
            [
                [delta] + [round(trial[delta], 3) for trial in wide_trials]
                for delta in DELTA_GRID
            ],
            title="Same experiment with random perturbations over the full ±50% "
                  "D-FACTS range",
        )
    )
    print("Paper shape: large spread across trials and low values at high delta — "
          "randomly selected perturbations cannot guarantee effective detection.")

    # Beyond the paper: the same sweep on the 118-bus synthetic case, timed
    # through both detection kernels.
    reference_seconds, batched_seconds, max_disagreement = kernel_comparison(
        SCALE_CASE, scale.n_random_trials, scale.n_attacks
    )
    speedup = reference_seconds / batched_seconds if batched_seconds > 0 else float("inf")
    print_banner(
        f"Fig. 7 sweep on {SCALE_CASE}: reference kernel {reference_seconds:.3f}s "
        f"vs batched kernel {batched_seconds:.3f}s ({speedup:.1f}x, "
        f"max |Delta P_D| = {max_disagreement:.2e})"
    )
    emit_bench_json(
        "fig7",
        {
            "figure": "fig7",
            "scale": scale.name,
            "n_attacks": scale.n_attacks,
            "n_random_trials": scale.n_random_trials,
            "engine": {
                "case": "ieee14",
                "batch_size": scale.n_random_trials,
                "seconds": engine_seconds,
            },
            "kernel_comparison": {
                "case": SCALE_CASE,
                "reference_seconds": reference_seconds,
                "batched_seconds": batched_seconds,
                "speedup": speedup,
                "max_probability_disagreement": max_disagreement,
            },
        },
    )

    # Each trial's eta is non-increasing in delta, and no 2% random trial
    # reaches the paper's eta'(0.9) >= 0.9 target.
    for trial in trials:
        values = [trial[delta] for delta in DELTA_GRID]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))
    assert max(trial[0.9] for trial in trials) < 0.9
    # The wide keyspace shows real spread across trials.
    if scale.name != "smoke":
        wide_eta_05 = [trial[0.4] for trial in wide_trials]
        assert max(wide_eta_05) - min(wide_eta_05) > 0.1
    # The two kernels must agree (to floating point) ...
    assert max_disagreement < 1e-9
    # ... and the batched kernel must deliver the promised speedup at real
    # budgets (tiny smoke batches are dominated by constant overheads).
    if scale.name != "smoke":
        assert speedup >= MIN_SPEEDUP, (
            f"batched kernel speedup {speedup:.2f}x below the {MIN_SPEEDUP}x target"
        )
