"""Fig. 7 — effectiveness of five randomly chosen MTD perturbations.

Five random reactance perturbations (the strategy of the prior MTD work the
paper compares against, constrained to within 2 % of the operating values)
are evaluated against the shared attack ensemble.  The figure's message is
the high variability across trials: random perturbations cannot guarantee a
level of attack detection.

The trials are driven through the scenario engine: each benchmark run is a
declarative :class:`~repro.engine.spec.ScenarioSpec` whose trials draw one
random perturbation each from seed-spawned streams, against the ensemble
pinned by ``AttackSpec.seed``.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.engine import AttackSpec, GridSpec, MTDSpec, ScenarioEngine, ScenarioSpec

from _bench_utils import print_banner

#: δ grid of the paper's Fig. 7 (x-axis).
DELTA_GRID = (0.1, 0.2, 0.4, 0.6, 0.8, 0.9)


def random_mtd_spec(n_trials, n_attacks, max_relative_change=0.02):
    """The Fig. 7 experiment as a scenario spec."""
    return ScenarioSpec(
        name=f"fig7-random-mtd-{max_relative_change:g}",
        grid=GridSpec(case="ieee14", baseline="reactance-opf"),
        attack=AttackSpec(n_attacks=n_attacks, seed=1),
        mtd=MTDSpec(policy="random", max_relative_change=max_relative_change),
        n_trials=n_trials,
        base_seed=5,
        deltas=DELTA_GRID,
        metric="eta(0.9)",
    )


def evaluate_random_trials(engine, n_trials, n_attacks, max_relative_change=0.02):
    """η'(δ) of each random trial over the δ grid."""
    result = engine.run(random_mtd_spec(n_trials, n_attacks, max_relative_change))
    return [
        {delta: trial.metrics[f"eta({delta:g})"] for delta in DELTA_GRID}
        for trial in result.trials
    ]


def bench_fig7_random_mtd(benchmark, scale):
    """Regenerate the Fig. 7 trials and time their evaluation."""
    engine = ScenarioEngine()
    trials = benchmark.pedantic(
        evaluate_random_trials,
        args=(engine, scale.n_random_trials, scale.n_attacks),
        rounds=1,
        iterations=1,
    )
    # Complementary view: random perturbations spanning the full D-FACTS
    # range (±50 %), which exhibit the trial-to-trial variability Fig. 7
    # emphasises even though individual trials can be moderately effective.
    wide_trials = evaluate_random_trials(
        engine, scale.n_random_trials, scale.n_attacks, max_relative_change=0.5
    )

    print_banner(
        f"Fig. 7 — eta'(delta) of {scale.n_random_trials} randomly chosen MTD "
        "perturbations (within 2% of the operating reactances), IEEE 14-bus"
    )
    print(
        format_table(
            ["delta"] + [f"Trial {i + 1}" for i in range(len(trials))],
            [
                [delta] + [round(trial[delta], 3) for trial in trials]
                for delta in DELTA_GRID
            ],
        )
    )
    print()
    print(
        format_table(
            ["delta"] + [f"Trial {i + 1}" for i in range(len(wide_trials))],
            [
                [delta] + [round(trial[delta], 3) for trial in wide_trials]
                for delta in DELTA_GRID
            ],
            title="Same experiment with random perturbations over the full ±50% "
                  "D-FACTS range",
        )
    )
    print("Paper shape: large spread across trials and low values at high delta — "
          "randomly selected perturbations cannot guarantee effective detection.")

    # Each trial's eta is non-increasing in delta, and no 2% random trial
    # reaches the paper's eta'(0.9) >= 0.9 target.
    for trial in trials:
        values = [trial[delta] for delta in DELTA_GRID]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))
    assert max(trial[0.9] for trial in trials) < 0.9
    # The wide keyspace shows real spread across trials.
    wide_eta_05 = [trial[0.4] for trial in wide_trials]
    assert max(wide_eta_05) - min(wide_eta_05) > 0.1
