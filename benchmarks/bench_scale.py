"""Scale benchmark — dense QR vs sparse Q-less factorization backends.

The estimation stack factorises one weighted Jacobian per (case,
perturbation) pair and then answers batched residual queries from the
factorisation.  Below :data:`~repro.grid.matrices.SPARSE_BUS_THRESHOLD`
buses the dense thin-QR path is optimal; above it the ``O(M·n²)`` SVD
guard plus QR and the dense ``(M, n)`` factor ``Q`` dominate the trial
budget.  This benchmark times both backends through the public
:class:`~repro.estimation.linear_model.LinearModel` API across the scale
suite's case ladder (IEEE 14 → synthetic 300 → synthetic 1354 bus):

* **factorize** — ``LinearModel.from_measurement_system(system, backend=…)``,
  i.e. Jacobian assembly (dense vs CSR builder) + observability guard +
  factorisation, the once-per-perturbation cost the engine's model cache
  amortises;
* **solve** — a batched :meth:`~repro.estimation.linear_model.LinearModel.
  estimate_batch` over ``B`` measurement rows (states + residual norms +
  fitted measurements), the per-trial cost.

Correctness is cross-checked in the same run: the dense backend must be
*bit-identical* to an inline reference of the pre-backend arithmetic
(``np.linalg.qr`` of ``W^{1/2}H`` + triangular solve), and the sparse
backend must agree with the dense one within the documented tolerance
(states and residual norms to ~1e-9 relative — the same bound the tier-1
agreement tests pin).  The sparse path must clear :data:`MIN_SPEEDUP` on
every case of at least :data:`LARGE_CASE_BUSES` buses at the quick/full
budgets.  Timings land in ``BENCH_scale.json`` (checked by CI's docs job).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.analysis.reporting import format_table
from repro.estimation.linear_model import LinearModel
from repro.estimation.measurement import MeasurementSystem
from repro.grid.cases.registry import load_case

from _bench_utils import emit_bench_json, print_banner, time_call

#: Case ladder per scale.  Smoke (CI's docs job) stops at 300 buses so the
#: dense reference stays cheap; quick/full climb to the production-scale
#: 1354-bus synthetic case the sparse backend exists for.
CASES = {
    "smoke": ("ieee14", "synthetic300"),
    "quick": ("ieee14", "synthetic300", "synthetic1354"),
    "full": ("ieee14", "synthetic300", "synthetic1354"),
}

#: Minimum sparse-over-dense factorize+solve speedup asserted at the
#: quick/full budgets for cases of at least :data:`LARGE_CASE_BUSES` buses.
MIN_SPEEDUP = 3.0

#: Bus count from which the speedup floor is enforced.  Small cases are
#: *expected* to favour the dense path — that is why ``backend="auto"``
#: keeps them on it.
LARGE_CASE_BUSES = 1000

#: Measurement rows per batched solve, by scale name.
N_TRIALS = {"smoke": 16, "quick": 64, "full": 256}

#: Agreement tolerance between the backends (relative, on states and
#: residual norms).  Documented in docs/architecture.md and pinned tighter
#: by tests/test_estimation_backends.py.
AGREEMENT_RTOL = 1e-9


def _reference_dense(system: MeasurementSystem, Z: np.ndarray) -> dict:
    """The pre-backend arithmetic, inlined: QR of ``W^{1/2}H`` + solves."""
    H = system.matrix()
    sqrt_w = np.sqrt(system.weights())
    q, r = np.linalg.qr(sqrt_w[:, None] * H)
    weighted = Z * sqrt_w
    coeffs = weighted @ q
    theta = scipy.linalg.solve_triangular(r, coeffs.T).T
    residual_norms = np.linalg.norm(weighted - coeffs @ q.T, axis=1)
    return {"q": q, "r": r, "theta": theta, "residual_norms": residual_norms}


def compare_backends(case: str, n_trials: int) -> dict:
    """Time factorize + batched solve through both backends for one case."""
    network = load_case(case)
    system = MeasurementSystem.for_network(network)
    rng = np.random.default_rng(network.n_buses)
    Z = rng.normal(0.0, system.noise_sigma, size=(n_trials, system.n_measurements))

    dense, dense_factorize = time_call(
        LinearModel.from_measurement_system, system, backend="dense"
    )
    sparse, sparse_factorize = time_call(
        LinearModel.from_measurement_system, system, backend="sparse"
    )
    dense_est, dense_solve = time_call(dense.estimate_batch, Z)
    sparse_est, sparse_solve = time_call(sparse.estimate_batch, Z)

    # Dense bit-identity: the refactored backend must reproduce the
    # pre-backend expressions byte-for-byte, factors and solves alike.
    ref = _reference_dense(system, Z)
    assert np.array_equal(dense.q, ref["q"]), f"{case}: dense Q drifted"
    assert np.array_equal(dense.r, ref["r"]), f"{case}: dense R drifted"
    assert np.array_equal(dense_est.angles_rad, ref["theta"]), (
        f"{case}: dense states drifted from the reference arithmetic"
    )
    assert np.array_equal(dense_est.residual_norms, ref["residual_norms"]), (
        f"{case}: dense residual norms drifted from the reference arithmetic"
    )

    # Sparse agreement: same estimates within the documented tolerance.
    theta_scale = np.abs(dense_est.angles_rad).max() or 1.0
    assert np.allclose(
        sparse_est.angles_rad,
        dense_est.angles_rad,
        rtol=AGREEMENT_RTOL,
        atol=AGREEMENT_RTOL * theta_scale,
    ), f"{case}: sparse states disagree with dense beyond {AGREEMENT_RTOL}"
    assert np.allclose(
        sparse_est.residual_norms,
        dense_est.residual_norms,
        rtol=AGREEMENT_RTOL,
        atol=0.0,
    ), f"{case}: sparse residual norms disagree with dense beyond {AGREEMENT_RTOL}"

    dense_total = dense_factorize + dense_solve
    sparse_total = sparse_factorize + sparse_solve
    return {
        "case": case,
        "n_buses": network.n_buses,
        "n_measurements": system.n_measurements,
        "n_states": system.n_states,
        "n_trials": n_trials,
        "dense_factorize_seconds": dense_factorize,
        "sparse_factorize_seconds": sparse_factorize,
        "dense_solve_seconds": dense_solve,
        "sparse_solve_seconds": sparse_solve,
        "factorize_speedup": (
            dense_factorize / sparse_factorize if sparse_factorize > 0 else float("inf")
        ),
        "speedup": dense_total / sparse_total if sparse_total > 0 else float("inf"),
        "dense_trials_per_second": n_trials / dense_total if dense_total > 0 else float("inf"),
        "sparse_trials_per_second": n_trials / sparse_total if sparse_total > 0 else float("inf"),
        "max_state_delta": float(
            np.abs(sparse_est.angles_rad - dense_est.angles_rad).max()
        ),
    }


def bench_scale(benchmark, scale):
    """Time dense-QR vs sparse Q-less factorize + solve across case sizes."""
    cases = CASES.get(scale.name, CASES["quick"])
    n_trials = N_TRIALS.get(scale.name, N_TRIALS["quick"])
    results, total_seconds = benchmark.pedantic(
        time_call,
        args=(lambda: [compare_backends(case, n_trials) for case in cases],),
        rounds=1,
        iterations=1,
    )

    print_banner(
        f"Factorization backends — factorize + {n_trials}-row batched solve "
        f"per case (scale: {scale.name})"
    )
    print(
        format_table(
            [
                "case",
                "buses",
                "dense fact (s)",
                "sparse fact (s)",
                "dense solve (s)",
                "sparse solve (s)",
                "speedup",
            ],
            [
                [
                    r["case"],
                    str(r["n_buses"]),
                    f"{r['dense_factorize_seconds']:.4f}",
                    f"{r['sparse_factorize_seconds']:.4f}",
                    f"{r['dense_solve_seconds']:.4f}",
                    f"{r['sparse_solve_seconds']:.4f}",
                    f"{r['speedup']:.1f}x",
                ]
                for r in results
            ],
        )
    )
    print(
        "The sparse backend factorises the gain matrix G = HᵀWH with a "
        "COLAMD-ordered sparse LU and never materialises Q or a dense H; "
        "the dense backend keeps the original SVD-guarded thin QR.  Small "
        "cases favour dense (which is why backend='auto' keeps them on "
        "it); at 1000+ buses the sparse path wins on both factorize and "
        "end-to-end cost."
    )

    # Headline metric: end-to-end speedup on the largest benchmarked case.
    headline = results[-1]["speedup"]
    emit_bench_json(
        "scale",
        {
            "scale": scale.name,
            "n_trials": n_trials,
            "total_seconds": total_seconds,
            "speedup": headline,
            "cases": results,
            "min_speedup_target": MIN_SPEEDUP,
            "large_case_buses": LARGE_CASE_BUSES,
            "agreement_rtol": AGREEMENT_RTOL,
        },
    )

    # Bit-identity and agreement are asserted inside compare_backends; the
    # speedup floor holds for production-scale cases at real budgets
    # (smoke stops below LARGE_CASE_BUSES anyway).
    if scale.name != "smoke":
        for r in results:
            if r["n_buses"] >= LARGE_CASE_BUSES:
                assert r["speedup"] >= MIN_SPEEDUP, (
                    f"{r['case']}: sparse-backend speedup {r['speedup']:.2f}x "
                    f"below the {MIN_SPEEDUP}x target"
                )
