"""Network-core benchmark — perturbed-network derivation throughput.

The MTD loop derives thousands of reactance-perturbed variants of one base
case and rebuilds their measurement matrices.  This benchmark times that
exact hot path through both representations:

* **legacy object path** — the pre-arrays semantics, reproduced verbatim:
  a fully validated :class:`~repro.grid.network.PowerNetwork` construction
  (per-branch dataclass rebuild + structural re-validation including the
  BFS connectivity scan) followed by a from-scratch reduced measurement
  matrix build (``fromiter`` endpoint extraction + fresh incidence).
* **arrays path** — :meth:`NetworkArrays.with_reactances
  <repro.grid.arrays.NetworkArrays.with_reactances>` (positivity check +
  array swap, topology cache shared) followed by the cached-topology
  builders of :mod:`repro.grid.matrices`.

Both paths produce bit-identical matrices (asserted here and in
``tests/test_grid_arrays.py``); the arrays path must be at least
:data:`MIN_SPEEDUP` times faster at the quick/full budgets.  Timings land
in ``BENCH_network.json`` (checked by CI's docs job).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.grid.cases.registry import load_case
from repro.grid.matrices import reduced_measurement_matrix
from repro.grid.network import PowerNetwork

from _bench_utils import emit_bench_json, print_banner, time_call

#: Cases timed by the benchmark (small paper case + large synthetic case).
CASES = ("ieee14", "synthetic118")

#: Minimum arrays-path speedup asserted at the quick/full budgets.
MIN_SPEEDUP = 3.0

#: Perturbations derived per timed run, by scale name.
N_DERIVATIONS = {"smoke": 20, "quick": 200, "full": 1000}


def _legacy_derive(network: PowerNetwork, reactances: np.ndarray) -> PowerNetwork:
    """Pre-arrays ``with_reactances``: full validated construction."""
    new_branches = tuple(
        branch.with_reactance(reactances[branch.index]) for branch in network.branches
    )
    return PowerNetwork(
        buses=network.buses,
        branches=new_branches,
        generators=network.generators,
        base_mva=network.base_mva,
        name=network.name,
    )


def _legacy_reduced_measurement_matrix(network: PowerNetwork) -> np.ndarray:
    """Pre-arrays matrix build: endpoints and incidence rebuilt per call."""
    L, N = network.n_branches, network.n_buses
    from_bus = np.fromiter((b.from_bus for b in network.branches), dtype=int, count=L)
    to_bus = np.fromiter((b.to_bus for b in network.branches), dtype=int, count=L)
    A = np.zeros((N, L))
    cols = np.arange(L)
    A[from_bus, cols] = 1.0
    A[to_bus, cols] = -1.0
    x = np.fromiter((b.reactance for b in network.branches), dtype=float, count=L)
    b = 1.0 / x
    flows = b[:, None] * A.T
    injections = (A * b) @ A.T
    H = np.vstack([flows, -flows, injections])
    slack = network.slack_bus
    keep = np.array([i for i in range(N) if i != slack], dtype=int)
    return H[:, keep]


def _perturbations(network: PowerNetwork, count: int) -> list[np.ndarray]:
    """Reproducible ±20 % random reactance vectors for one case."""
    base = network.reactances()
    rng = np.random.default_rng(network.n_buses)
    return [
        base * (1.0 + rng.uniform(-0.2, 0.2, base.shape[0])) for _ in range(count)
    ]


def compare_paths(case: str, count: int) -> dict:
    """Time ``count`` derivation+rebuild round trips through both paths."""
    network = load_case(case)
    xs = _perturbations(network, count)

    def run_legacy() -> np.ndarray:
        H = None
        for x in xs:
            H = _legacy_reduced_measurement_matrix(_legacy_derive(network, x))
        return H

    def run_arrays() -> np.ndarray:
        arrays = network.arrays
        H = None
        for x in xs:
            H = reduced_measurement_matrix(arrays.with_reactances(x))
        return H

    legacy_H, legacy_seconds = time_call(run_legacy)
    arrays_H, arrays_seconds = time_call(run_arrays)
    assert np.array_equal(legacy_H, arrays_H), "paths disagree"
    return {
        "case": case,
        "n_derivations": count,
        "legacy_seconds": legacy_seconds,
        "arrays_seconds": arrays_seconds,
        "speedup": legacy_seconds / arrays_seconds if arrays_seconds > 0 else float("inf"),
        "legacy_per_derivation_us": 1e6 * legacy_seconds / count,
        "arrays_per_derivation_us": 1e6 * arrays_seconds / count,
    }


def bench_network_core(benchmark, scale):
    """Time perturbed-network derivation: arrays vs legacy object path."""
    count = N_DERIVATIONS.get(scale.name, N_DERIVATIONS["quick"])
    results, total_seconds = benchmark.pedantic(
        time_call,
        args=(lambda: [compare_paths(case, count) for case in CASES],),
        rounds=1,
        iterations=1,
    )

    print_banner(
        f"Network core — {count} perturbed-network derivations + measurement-"
        f"matrix rebuilds per case (scale: {scale.name})"
    )
    print(
        format_table(
            ["case", "legacy (s)", "arrays (s)", "speedup", "us/derivation (arrays)"],
            [
                [
                    r["case"],
                    f"{r['legacy_seconds']:.4f}",
                    f"{r['arrays_seconds']:.4f}",
                    f"{r['speedup']:.1f}x",
                    f"{r['arrays_per_derivation_us']:.1f}",
                ]
                for r in results
            ],
        )
    )
    print(
        "The arrays path derives a perturbed variant with one positivity "
        "check and rebuilds H from the shared topology cache; the legacy "
        "path re-validates the whole network (including a BFS connectivity "
        "scan) and rebuilds the incidence matrix from the component objects."
    )

    emit_bench_json(
        "network",
        {
            "scale": scale.name,
            "n_derivations": count,
            "total_seconds": total_seconds,
            "cases": results,
            "min_speedup_target": MIN_SPEEDUP,
        },
    )

    # Bit-identity is asserted inside compare_paths; the speedup target
    # holds at real budgets (tiny smoke runs are overhead-dominated, but in
    # practice clear 3x as well).
    if scale.name != "smoke":
        for r in results:
            assert r["speedup"] >= MIN_SPEEDUP, (
                f"{r['case']}: arrays-path speedup {r['speedup']:.2f}x below "
                f"the {MIN_SPEEDUP}x target"
            )
