"""Ablation — analytic versus Monte-Carlo detection-probability estimation.

The paper estimates each attack's detection probability with 1000 noisy
measurement draws.  The library additionally provides a closed-form
noncentral-χ² evaluation of the same quantity.  This ablation compares the
two estimators on the same attack ensemble and times them, documenting the
accuracy/cost trade-off behind the benchmarks' default use of the analytic
path.

Expected outcome: mean absolute difference within Monte-Carlo sampling error
(≈ 1/√trials), with the analytic path one to two orders of magnitude faster.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.mtd.design import design_mtd_perturbation

from _bench_utils import print_banner

#: Number of attacks compared (kept small: the MC path is expensive).
N_COMPARED = 25
#: Noise draws per attack for the Monte-Carlo estimator.
N_TRIALS = 500


def compare_estimators(network, evaluator):
    """Return (analytic, monte_carlo, analytic_time, mc_time) arrays."""
    design = design_mtd_perturbation(
        network,
        gamma_threshold=0.2,
        attacker_reactances=evaluator.base_reactances,
        method="two-stage",
        seed=0,
    )
    subset = evaluator.ensemble.subset(np.arange(N_COMPARED))

    start = time.perf_counter()
    analytic = evaluator.evaluate(design.perturbed_reactances, method="analytic")
    analytic_time = time.perf_counter() - start

    start = time.perf_counter()
    monte_carlo = evaluator.evaluate(
        design.perturbed_reactances,
        method="monte-carlo",
        n_noise_trials=N_TRIALS,
        seed=9,
    )
    mc_time = time.perf_counter() - start

    return (
        analytic.detection_probabilities[:N_COMPARED],
        monte_carlo.detection_probabilities[:N_COMPARED],
        analytic_time,
        mc_time,
        len(subset),
    )


def bench_ablation_detection_estimators(benchmark, net14, evaluator14):
    """Compare the two detection-probability estimators."""
    analytic, monte_carlo, analytic_time, mc_time, n = benchmark.pedantic(
        compare_estimators, args=(net14, evaluator14), rounds=1, iterations=1
    )

    differences = np.abs(analytic - monte_carlo)
    print_banner(
        "Ablation — analytic (noncentral chi-square) vs Monte-Carlo detection probability"
    )
    print(
        format_table(
            ["quantity", "value"],
            [
                ["attacks compared", n],
                ["noise draws per attack (MC)", N_TRIALS],
                ["mean |difference|", round(float(differences.mean()), 4)],
                ["max |difference|", round(float(differences.max()), 4)],
                ["analytic wall time (s), full ensemble", round(analytic_time, 3)],
                ["Monte-Carlo wall time (s), full ensemble", round(mc_time, 3)],
                ["speed-up", round(mc_time / max(analytic_time, 1e-9), 1)],
            ],
        )
    )
    print("Expected: differences within Monte-Carlo error (~1/sqrt(500) ≈ 0.045) and a "
          "large speed-up for the analytic path.")

    assert float(differences.mean()) < 0.05
    assert float(differences.max()) < 0.15
    assert mc_time > analytic_time
