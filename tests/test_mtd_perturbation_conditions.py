"""Tests for reactance perturbations and the Proposition 1 / Theorem 1 conditions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.fdi import stealthy_attack
from repro.exceptions import MTDDesignError
from repro.grid.matrices import reduced_measurement_matrix
from repro.mtd.conditions import (
    admits_no_undetectable_attacks,
    attack_remains_stealthy,
    surviving_attack_fraction,
    undetectable_attack_subspace,
)
from repro.mtd.perturbation import ReactancePerturbation


class TestReactancePerturbation:
    def test_identity_perturbation(self, net14):
        perturbation = ReactancePerturbation.identity(net14)
        np.testing.assert_allclose(perturbation.delta, np.zeros(20))
        assert perturbation.perturbed_branches == ()
        assert perturbation.magnitude() == pytest.approx(0.0)
        assert perturbation.respects_dfacts_limits()

    def test_single_line_perturbation(self, net4):
        perturbation = ReactancePerturbation.single_line(net4, 0, 0.2)
        assert perturbation.perturbed_branches == (0,)
        assert perturbation.relative_changes()[0] == pytest.approx(0.2)
        np.testing.assert_allclose(perturbation.relative_changes()[1:], np.zeros(3))

    def test_single_line_invalid_index(self, net4):
        with pytest.raises(MTDDesignError):
            ReactancePerturbation.single_line(net4, 9, 0.2)

    def test_single_line_negative_reactance_rejected(self, net4):
        with pytest.raises(MTDDesignError):
            ReactancePerturbation.single_line(net4, 0, -1.5)

    def test_delta_sign_convention(self, net4):
        """The paper defines Δx = x − x', so increasing a reactance gives a
        negative delta entry."""
        perturbation = ReactancePerturbation.single_line(net4, 1, 0.2)
        assert perturbation.delta[1] < 0.0

    def test_random_perturbation_respects_limits(self, net14):
        perturbation = ReactancePerturbation.random(net14, max_relative_change=0.3, seed=0)
        assert perturbation.respects_dfacts_limits()
        assert set(perturbation.perturbed_branches).issubset(set(net14.dfacts_branches))

    def test_random_perturbation_deterministic(self, net14):
        a = ReactancePerturbation.random(net14, 0.2, seed=5)
        b = ReactancePerturbation.random(net14, 0.2, seed=5)
        np.testing.assert_allclose(a.perturbed_reactances, b.perturbed_reactances)

    def test_random_without_dfacts_rejected(self, net14):
        with pytest.raises(MTDDesignError):
            ReactancePerturbation.random(net14, 0.2, branch_indices=[], seed=0)

    def test_out_of_range_perturbation_flagged(self, net14):
        x = net14.reactances()
        index = net14.dfacts_branches[0]
        x[index] *= 2.0  # beyond the +50% D-FACTS limit
        perturbation = ReactancePerturbation.from_perturbed(net14, x)
        assert not perturbation.respects_dfacts_limits()
        with pytest.raises(MTDDesignError):
            perturbation.require_valid()

    def test_non_dfacts_branch_perturbation_flagged(self, net14):
        x = net14.reactances()
        non_dfacts = next(
            i for i in range(net14.n_branches) if i not in net14.dfacts_branches
        )
        x[non_dfacts] *= 1.1
        perturbation = ReactancePerturbation.from_perturbed(net14, x)
        assert not perturbation.respects_dfacts_limits()

    def test_apply_returns_perturbed_network(self, net14):
        x = net14.reactances()
        index = net14.dfacts_branches[0]
        x[index] *= 1.4
        perturbed_net = ReactancePerturbation.from_perturbed(net14, x).apply()
        assert perturbed_net.reactances()[index] == pytest.approx(x[index])
        # Original untouched.
        assert net14.reactances()[index] != pytest.approx(x[index])

    def test_measurement_matrices(self, net14):
        x = net14.reactances()
        index = net14.dfacts_branches[0]
        x[index] *= 1.4
        perturbation = ReactancePerturbation.from_perturbed(net14, x)
        assert not np.allclose(
            perturbation.pre_measurement_matrix(), perturbation.post_measurement_matrix()
        )

    def test_wrong_vector_length_rejected(self, net14):
        with pytest.raises(MTDDesignError):
            ReactancePerturbation.from_perturbed(net14, np.ones(3))

    def test_non_positive_reactance_rejected(self, net14):
        x = net14.reactances()
        x[0] = -0.1
        with pytest.raises(MTDDesignError):
            ReactancePerturbation.from_perturbed(net14, x)


class TestProposition1:
    def test_attack_stealthy_under_identical_matrix(self, net14, rng):
        H = reduced_measurement_matrix(net14)
        attack = stealthy_attack(H, rng.standard_normal(13))
        assert attack_remains_stealthy(attack, H)

    def test_attack_detected_under_perturbed_matrix(self, net14, rng):
        H = reduced_measurement_matrix(net14)
        attack = stealthy_attack(H, rng.standard_normal(13))
        x = net14.reactances()
        for index in net14.dfacts_branches:
            x[index] *= 1.5
        H_perturbed = reduced_measurement_matrix(net14, x)
        assert not attack_remains_stealthy(attack, H_perturbed)

    def test_motivating_example_pattern(self, net4):
        """Table I's zero/non-zero pattern: attack 1 stays stealthy when line
        3 or 4 is perturbed, attack 2 when line 1 or 2 is perturbed."""
        H = reduced_measurement_matrix(net4)
        attack_1 = stealthy_attack(H, np.array([1.0, 1.0, 1.0]))
        attack_2 = stealthy_attack(H, np.array([0.0, 0.0, 1.0]))
        stealthy = {}
        for line in range(4):
            perturbation = ReactancePerturbation.single_line(net4, line, 0.2)
            H_post = perturbation.post_measurement_matrix()
            stealthy[line] = (
                attack_remains_stealthy(attack_1, H_post),
                attack_remains_stealthy(attack_2, H_post),
            )
        assert stealthy[0] == (False, True)
        assert stealthy[1] == (False, True)
        assert stealthy[2] == (True, False)
        assert stealthy[3] == (True, False)

    def test_attacks_in_intersection_stay_stealthy(self, net14, rng):
        """Any attack built from the intersection basis must bypass both
        systems — the constructive version of Proposition 1."""
        H = reduced_measurement_matrix(net14)
        x = net14.reactances()
        for index in net14.dfacts_branches:
            x[index] *= 1.5
        H_perturbed = reduced_measurement_matrix(net14, x)
        basis = undetectable_attack_subspace(H, H_perturbed)
        assert basis.shape[1] >= 1
        attack = basis @ rng.standard_normal(basis.shape[1])
        assert attack_remains_stealthy(attack, H_perturbed, tol=1e-6)
        assert attack_remains_stealthy(attack, H, tol=1e-6)


class TestTheorem1:
    def test_orthogonal_spaces_admit_no_stealthy_attacks(self):
        pre = np.eye(8)[:, :3]
        post = np.eye(8)[:, 3:6]
        assert admits_no_undetectable_attacks(pre, post, require_orthogonality=True)
        assert admits_no_undetectable_attacks(pre, post)
        assert undetectable_attack_subspace(pre, post).shape[1] == 0

    def test_identical_spaces_admit_all_attacks(self, net14):
        H = reduced_measurement_matrix(net14)
        assert not admits_no_undetectable_attacks(H, H)
        assert surviving_attack_fraction(H, H) == pytest.approx(1.0)

    def test_partial_dfacts_coverage_leaves_survivors(self, net14):
        """The realisable perturbations of the 14-bus case cannot eliminate
        every stealthy attack — which is exactly why the paper's η'(δ)
        saturates below 1."""
        H = reduced_measurement_matrix(net14)
        x = net14.reactances()
        for index in net14.dfacts_branches:
            x[index] *= 1.5
        H_perturbed = reduced_measurement_matrix(net14, x)
        assert not admits_no_undetectable_attacks(H, H_perturbed)
        fraction = surviving_attack_fraction(H, H_perturbed)
        assert 0.0 < fraction < 1.0

    def test_surviving_fraction_of_orthogonal_spaces_is_zero(self):
        pre = np.eye(10)[:, :4]
        post = np.eye(10)[:, 4:8]
        assert surviving_attack_fraction(pre, post) == pytest.approx(0.0)
