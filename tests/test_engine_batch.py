"""Tests of the engine's batched execution path.

The headline contract (and the PR's acceptance criterion): batched trial
execution is **bit-identical** to the serial per-trial path for the same
seed, for every detector method and MTD policy, under any chunking, and
with factorization caching active.  Also covers the ``batch_size`` knob's
plumbing (spec field, hash exclusion, engine dispatch) and the
``ResultCache`` corruption/eviction paths.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import (
    AttackSpec,
    GridSpec,
    MTDSpec,
    ResultCache,
    ScenarioEngine,
    ScenarioSpec,
    run_trial,
    run_trial_batch,
)
from repro.estimation.linear_model import LinearModelCache
from repro.exceptions import ConfigurationError


def small_spec(**overrides) -> ScenarioSpec:
    """A fast random-policy scenario (shared-ensemble, analytic detector)."""
    defaults = dict(
        name="batch-small",
        grid=GridSpec(case="ieee14", baseline="dc-opf"),
        attack=AttackSpec(n_attacks=16, seed=1),
        mtd=MTDSpec(policy="random", max_relative_change=0.2),
        n_trials=5,
        base_seed=23,
        deltas=(0.5, 0.9),
        metric="eta(0.9)",
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def serial_trials(spec):
    return [run_trial(spec, i) for i in range(spec.n_trials)]


class TestBatchedBitIdentity:
    def test_batched_identical_to_serial(self):
        spec = small_spec()
        serial = serial_trials(spec)
        for batch_size in (2, 3, spec.n_trials):
            batched = ScenarioEngine(batch_size=batch_size).run(spec)
            assert [t.metrics for t in batched.trials] == [t.metrics for t in serial]
            assert [t.trial_index for t in batched.trials] == list(range(spec.n_trials))

    def test_batched_identical_for_monte_carlo_detector(self):
        spec = small_spec().with_updates(
            {"detector.method": "monte-carlo", "detector.n_noise_trials": 25}
        )
        serial = serial_trials(spec)
        batched = ScenarioEngine(batch_size=spec.n_trials).run(spec)
        assert [t.metrics for t in batched.trials] == [t.metrics for t in serial]

    def test_batched_identical_for_none_policy(self):
        spec = small_spec().with_updates({"mtd.policy": "none"})
        serial = serial_trials(spec)
        batched = ScenarioEngine(batch_size=spec.n_trials).run(spec)
        assert [t.metrics for t in batched.trials] == [t.metrics for t in serial]

    def test_batched_identical_with_per_trial_ensembles(self):
        spec = small_spec().with_updates({"attack.seed": None})
        serial = serial_trials(spec)
        batched = ScenarioEngine(batch_size=2).run(spec)
        assert [t.metrics for t in batched.trials] == [t.metrics for t in serial]

    def test_parallel_batched_identical_to_serial(self):
        spec = small_spec(n_trials=4)
        serial = serial_trials(spec)
        batched = ScenarioEngine(n_workers=2, batch_size=2).run(spec)
        assert [t.metrics for t in batched.trials] == [t.metrics for t in serial]
        assert batched.n_workers == 2


class TestRunTrialBatch:
    def test_defaults_to_all_trials(self):
        spec = small_spec(n_trials=3)
        assert [t.trial_index for t in run_trial_batch(spec)] == [0, 1, 2]

    def test_respects_requested_order(self):
        spec = small_spec(n_trials=4)
        results = run_trial_batch(spec, [3, 0])
        assert [t.trial_index for t in results] == [3, 0]
        assert results[0].metrics == run_trial(spec, 3).metrics

    def test_rejects_out_of_range_indices(self):
        spec = small_spec(n_trials=2)
        with pytest.raises(ConfigurationError):
            run_trial_batch(spec, [0, 2])

    def test_shares_factorizations_across_trials(self):
        """'none'-policy trials all price the same reactances: one miss, rest hits.

        The Monte-Carlo detector consults the factorization cache on every
        trial (the analytic path may be short-circuited by the evaluator's
        own result memo), so its accounting is the clean observable.
        """
        spec = small_spec(n_trials=4).with_updates(
            {"mtd.policy": "none", "detector.method": "monte-carlo",
             "detector.n_noise_trials": 10}
        )
        cache = LinearModelCache()
        run_trial_batch(spec, model_cache=cache)
        assert cache.misses == 1
        assert cache.hits == spec.n_trials - 1

    def test_random_policy_misses_per_perturbation(self):
        spec = small_spec(n_trials=3).with_updates(
            {"detector.method": "monte-carlo", "detector.n_noise_trials": 10}
        )
        cache = LinearModelCache()
        run_trial_batch(spec, model_cache=cache)
        assert cache.misses == 3
        assert cache.hits == 0


class TestBatchSizeKnob:
    def test_spec_field_round_trips(self):
        spec = small_spec(batch_size=8)
        assert spec.batch_size == 8
        assert ScenarioSpec.from_dict(spec.to_dict()).batch_size == 8
        assert ScenarioSpec.from_json(spec.to_json()).batch_size == 8

    def test_batch_size_excluded_from_content_hash(self):
        spec = small_spec()
        assert spec.content_hash() == spec.with_updates(batch_size=16).content_hash()

    def test_spec_batch_size_validation(self):
        with pytest.raises(ConfigurationError):
            small_spec(batch_size=0)

    def test_engine_batch_size_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioEngine(batch_size=0)
        engine = ScenarioEngine()
        with pytest.raises(ConfigurationError):
            engine.run(small_spec(), batch_size=-1)

    def test_spec_batch_size_drives_engine(self):
        spec = small_spec(batch_size=2)
        serial = serial_trials(spec)
        result = ScenarioEngine().run(spec)
        assert [t.metrics for t in result.trials] == [t.metrics for t in serial]

    def test_batched_and_serial_share_cache_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec()
        ScenarioEngine(cache=cache, batch_size=2).run(spec)
        hit = ScenarioEngine(cache=cache).run(spec.with_updates(batch_size=None))
        assert hit.from_cache


class TestResultCacheCorruption:
    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec(n_trials=2)
        result = ScenarioEngine(cache=cache).run(spec)
        path = cache.path_for(spec)
        full = path.read_text()
        path.write_text(full[: len(full) // 2])  # truncated mid-JSON
        assert cache.get(spec) is None
        assert cache.misses >= 1
        # The engine transparently recomputes and heals the entry.
        rerun = ScenarioEngine(cache=cache).run(spec)
        assert not rerun.from_cache
        assert [t.metrics for t in rerun.trials] == [t.metrics for t in result.trials]
        assert cache.get(spec) is not None

    def test_stale_spec_hash_collision_is_a_miss(self, tmp_path):
        """An entry whose embedded hash disagrees with its filename is stale."""
        cache = ResultCache(tmp_path)
        spec = small_spec(n_trials=2)
        other = small_spec(n_trials=3)
        ScenarioEngine(cache=cache).run(other)
        # Simulate a hash collision / schema drift: another spec's payload
        # parked under this spec's filename.
        payload = json.loads(cache.path_for(other).read_text())
        cache.path_for(spec).write_text(json.dumps(payload))
        assert cache.get(spec) is None

    def test_entry_with_wrong_schema_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec(n_trials=2)
        hash_ = spec.content_hash()
        cache.path_for(spec).write_text(
            json.dumps({"spec_hash": hash_, "trials": "not-a-list"})
        )
        assert cache.get(spec) is None

    def test_clear_evicts_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec(n_trials=2)
        ScenarioEngine(cache=cache).run(spec)
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.get(spec) is None


class TestTelemetryNeutrality:
    """Telemetry collection must never perturb batched results."""

    @pytest.fixture(autouse=True)
    def _clean_telemetry(self):
        from repro import telemetry

        telemetry.disable()
        telemetry.reset()
        yield
        telemetry.disable()
        telemetry.reset()

    def test_batched_bit_identical_with_telemetry_enabled(self):
        from repro import telemetry

        spec = small_spec()
        serial = serial_trials(spec)
        telemetry.enable()
        for batch_size in (1, 2, spec.n_trials):
            chunks = [
                list(range(start, min(start + batch_size, spec.n_trials)))
                for start in range(0, spec.n_trials, batch_size)
            ]
            batched = [t for chunk in chunks for t in run_trial_batch(spec, chunk)]
            assert [t.metrics for t in batched] == [t.metrics for t in serial]

    def test_batch_snapshot_counts_model_cache_traffic(self):
        from repro import telemetry

        spec = small_spec(mtd=MTDSpec(policy="none"))
        telemetry.enable()
        trials, snapshot = run_trial_batch(spec, return_snapshot=True)
        assert len(trials) == spec.n_trials
        counters = snapshot["counters"]
        assert counters["engine.trials"] == spec.n_trials
        assert counters["engine.batches"] == 1
        # With the 'none' policy every trial shares one perturbation: at
        # most one memo miss (zero when the process-global memo is already
        # warm from earlier tests), every other trial hits.
        hits = counters.get("cache.analytic_memo.hits", 0)
        misses = counters.get("cache.analytic_memo.misses", 0)
        assert hits + misses == spec.n_trials
        assert hits >= spec.n_trials - 1
