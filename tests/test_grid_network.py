"""Tests for repro.grid.network.PowerNetwork."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GridModelError
from repro.grid.components import Branch, Bus, Generator
from repro.grid.network import PowerNetwork


def _toy_network() -> PowerNetwork:
    """A 3-bus triangle with one generator at the slack bus."""
    buses = (
        Bus(index=0, load_mw=0.0, is_slack=True),
        Bus(index=1, load_mw=40.0),
        Bus(index=2, load_mw=60.0),
    )
    branches = (
        Branch(index=0, from_bus=0, to_bus=1, reactance=0.1, rate_mw=100.0),
        Branch(index=1, from_bus=1, to_bus=2, reactance=0.2, rate_mw=100.0),
        Branch(index=2, from_bus=0, to_bus=2, reactance=0.3, rate_mw=100.0),
    )
    generators = (Generator(index=0, bus=0, p_max_mw=200.0, cost_per_mwh=10.0),)
    return PowerNetwork.from_components(buses, branches, generators, name="toy3")


class TestValidation:
    def test_valid_network_builds(self):
        net = _toy_network()
        assert net.n_buses == 3
        assert net.n_branches == 3
        assert net.n_generators == 1
        assert net.slack_bus == 0

    def test_missing_slack_rejected(self):
        buses = (Bus(index=0), Bus(index=1))
        branches = (Branch(index=0, from_bus=0, to_bus=1, reactance=0.1),)
        with pytest.raises(GridModelError, match="slack"):
            PowerNetwork.from_components(buses, branches, ())

    def test_two_slacks_rejected(self):
        buses = (Bus(index=0, is_slack=True), Bus(index=1, is_slack=True))
        branches = (Branch(index=0, from_bus=0, to_bus=1, reactance=0.1),)
        with pytest.raises(GridModelError, match="slack"):
            PowerNetwork.from_components(buses, branches, ())

    def test_non_contiguous_bus_indices_rejected(self):
        buses = (Bus(index=0, is_slack=True), Bus(index=2))
        branches = (Branch(index=0, from_bus=0, to_bus=2, reactance=0.1),)
        with pytest.raises(GridModelError, match="contiguous"):
            PowerNetwork.from_components(buses, branches, ())

    def test_branch_to_unknown_bus_rejected(self):
        buses = (Bus(index=0, is_slack=True), Bus(index=1))
        branches = (Branch(index=0, from_bus=0, to_bus=5, reactance=0.1),)
        with pytest.raises(GridModelError, match="unknown bus"):
            PowerNetwork.from_components(buses, branches, ())

    def test_generator_on_unknown_bus_rejected(self):
        buses = (Bus(index=0, is_slack=True), Bus(index=1))
        branches = (Branch(index=0, from_bus=0, to_bus=1, reactance=0.1),)
        generators = (Generator(index=0, bus=9, p_max_mw=10.0),)
        with pytest.raises(GridModelError, match="unknown bus"):
            PowerNetwork.from_components(buses, branches, generators)

    def test_disconnected_network_rejected(self):
        buses = tuple(
            Bus(index=i, is_slack=(i == 0)) for i in range(4)
        )
        branches = (
            Branch(index=0, from_bus=0, to_bus=1, reactance=0.1),
            Branch(index=1, from_bus=2, to_bus=3, reactance=0.1),
        )
        with pytest.raises(GridModelError, match="connected"):
            PowerNetwork.from_components(buses, branches, ())

    def test_invalid_base_mva_rejected(self):
        net = _toy_network()
        with pytest.raises(GridModelError):
            PowerNetwork.from_components(net.buses, net.branches, net.generators, base_mva=0.0)


class TestVectorViews:
    def test_loads_vector(self):
        net = _toy_network()
        np.testing.assert_allclose(net.loads_mw(), [0.0, 40.0, 60.0])
        assert net.total_load_mw() == pytest.approx(100.0)

    def test_reactances_vector(self):
        net = _toy_network()
        np.testing.assert_allclose(net.reactances(), [0.1, 0.2, 0.3])

    def test_flow_limits_vector(self):
        net = _toy_network()
        np.testing.assert_allclose(net.flow_limits_mw(), [100.0, 100.0, 100.0])

    def test_generator_views(self):
        net = _toy_network()
        np.testing.assert_array_equal(net.generator_buses(), [0])
        p_min, p_max = net.generator_limits_mw()
        np.testing.assert_allclose(p_min, [0.0])
        np.testing.assert_allclose(p_max, [200.0])
        np.testing.assert_allclose(net.generator_costs(), [10.0])
        assert net.total_generation_capacity_mw() == pytest.approx(200.0)

    def test_reactance_bounds_without_dfacts(self):
        net = _toy_network()
        x_min, x_max = net.reactance_bounds()
        np.testing.assert_allclose(x_min, net.reactances())
        np.testing.assert_allclose(x_max, net.reactances())

    def test_branch_between(self):
        net = _toy_network()
        assert net.branch_between(1, 2).index == 1
        assert net.branch_between(2, 0).index == 2
        with pytest.raises(GridModelError):
            net.branch_between(0, 0)

    def test_describe_mentions_size(self):
        text = _toy_network().describe()
        assert "buses=3" in text
        assert "branches=3" in text


class TestCopyWithChanges:
    def test_with_reactances(self):
        net = _toy_network()
        new = net.with_reactances([0.2, 0.2, 0.2])
        np.testing.assert_allclose(new.reactances(), [0.2, 0.2, 0.2])
        # original untouched
        np.testing.assert_allclose(net.reactances(), [0.1, 0.2, 0.3])

    def test_with_reactances_wrong_length(self):
        with pytest.raises(GridModelError):
            _toy_network().with_reactances([0.1, 0.2])

    def test_with_reactances_non_positive(self):
        with pytest.raises(GridModelError):
            _toy_network().with_reactances([0.1, -0.2, 0.3])

    def test_with_loads_vector(self):
        net = _toy_network().with_loads([0.0, 10.0, 20.0])
        assert net.total_load_mw() == pytest.approx(30.0)

    def test_with_loads_mapping(self):
        net = _toy_network().with_loads({1: 5.0})
        np.testing.assert_allclose(net.loads_mw(), [0.0, 5.0, 60.0])

    def test_with_loads_unknown_bus(self):
        with pytest.raises(GridModelError):
            _toy_network().with_loads({7: 5.0})

    def test_with_scaled_loads(self):
        net = _toy_network().with_scaled_loads(0.5)
        assert net.total_load_mw() == pytest.approx(50.0)

    def test_with_scaled_loads_negative_rejected(self):
        with pytest.raises(GridModelError):
            _toy_network().with_scaled_loads(-1.0)

    def test_with_dfacts_on(self):
        net = _toy_network().with_dfacts_on([0, 2], 0.8, 1.2)
        assert net.dfacts_branches == (0, 2)
        x_min, x_max = net.reactance_bounds()
        assert x_min[0] == pytest.approx(0.08)
        assert x_max[2] == pytest.approx(0.36)

    def test_with_dfacts_unknown_branch(self):
        with pytest.raises(GridModelError):
            _toy_network().with_dfacts_on([9], 0.8, 1.2)

    def test_with_flow_limits(self):
        net = _toy_network().with_flow_limits({1: 10.0})
        np.testing.assert_allclose(net.flow_limits_mw(), [100.0, 10.0, 100.0])

    def test_with_flow_limits_non_positive(self):
        with pytest.raises(GridModelError):
            _toy_network().with_flow_limits([0.0, 10.0, 10.0])
