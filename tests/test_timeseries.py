"""Tests of the time-series operation engine.

Covers the spec layer (profiles, tuning, operation components, JSON/hash),
the engine (golden compatibility with the pre-refactor scheduler, wrapper
equivalence, scan-vs-bisect agreement, parallel/batched/cached
bit-identity, warm-up and staleness policies) and the campaign integration
(daily-operation suites run, resume and query through the store).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import CampaignOrchestrator, query_results
from repro.campaign.suites import campaign_from_suite
from repro.engine import ResultCache, ScenarioEngine, ScenarioSpec, scenario_suite
from repro.engine.trial import run_trial
from repro.exceptions import ConfigurationError, MTDDesignError
from repro.loads.profiles import (
    available_shapes,
    day_shape,
    multi_day_profile,
    profile_for_network,
)
from repro.mtd.scheduler import DailyMTDScheduler
from repro.timeseries import (
    OperationEngine,
    OperationResult,
    OperationSpec,
    ProfileSpec,
    TuningSpec,
    build_operation_context,
    daily_operation_spec,
)

#: Pre-refactor ``DailyMTDScheduler`` output (captured from the serial loop
#: before it became a wrapper): IEEE 14-bus, loads [205, 212, 220] MW,
#: n_attacks=80, gamma_grid=arange(0.05, 0.45, 0.1), seed=0, historical
#: hour-0 behaviour (fresh attacker knowledge).  The engine must reproduce
#: these records bit-for-bit at the same settings.
GOLDEN_RECORDS = [
    {
        "hour": 0,
        "total_load_mw": 204.99999999999997,
        "baseline_cost": 4099.999999999962,
        "mtd_cost": 4127.00044545183,
        "cost_increase_percent": 0.6585474500455786,
        "gamma_threshold": 0.25000000000000006,
        "achieved_eta": 0.825,
        "spa_attacker_vs_baseline": 1.4788543577864024e-15,
        "spa_attacker_vs_mtd": 0.25000000040195813,
        "spa_baseline_vs_mtd": 0.25000000040195813,
    },
    {
        "hour": 1,
        "total_load_mw": 212.0,
        "baseline_cost": 4239.999999999884,
        "mtd_cost": 4328.425245996883,
        "cost_increase_percent": 2.0855010848349482,
        "gamma_threshold": 0.25000000000000006,
        "achieved_eta": 0.875,
        "spa_attacker_vs_baseline": 0.022568130007163748,
        "spa_attacker_vs_mtd": 0.25000000040195813,
        "spa_baseline_vs_mtd": 0.24810231194492838,
    },
    {
        "hour": 2,
        "total_load_mw": 219.99999999999997,
        "baseline_cost": 4401.550015954151,
        "mtd_cost": 4573.581193608292,
        "cost_increase_percent": 3.9084226472625674,
        "gamma_threshold": 0.25000000000000006,
        "achieved_eta": 0.8875,
        "spa_attacker_vs_baseline": 1.9232557098277964e-15,
        "spa_attacker_vs_mtd": 0.2500000000537033,
        "spa_baseline_vs_mtd": 0.2500000000537033,
    },
]

GOLDEN_KWARGS = dict(
    hourly_total_loads_mw=[205.0, 212.0, 220.0],
    n_attacks=80,
    gamma_grid=np.arange(0.05, 0.45, 0.1),
    seed=0,
)


def tiny_spec(**overrides) -> ScenarioSpec:
    """A fast operation spec for structural tests (seconds, not minutes)."""
    defaults = dict(
        name="ts-tiny",
        profile=ProfileSpec(
            explicit_totals_mw=(205.0, 212.0, 220.0),
            peak_load_mw=None,
            min_load_mw=None,
        ),
        tuning=TuningSpec(gamma_grid=(0.05, 0.2)),
        n_attacks=24,
        seed=0,
    )
    defaults.update(overrides)
    return daily_operation_spec(**defaults)


# ----------------------------------------------------------------------
# load profiles
# ----------------------------------------------------------------------
class TestSeasonalProfiles:
    def test_registered_shapes(self):
        assert {"winter-weekday", "winter-weekend", "summer-weekday", "flat"} <= set(
            available_shapes()
        )
        for name in available_shapes():
            assert day_shape(name).shape == (24,)

    def test_unknown_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            day_shape("spring-holiday")

    def test_weekend_lies_below_weekday(self):
        assert day_shape("winter-weekend").max() < day_shape("winter-weekday").max()

    def test_summer_peaks_in_the_afternoon(self):
        assert 14 <= int(np.argmax(day_shape("summer-weekday"))) <= 17

    def test_multi_day_profile_band_and_length(self):
        profile = multi_day_profile(
            ["winter-weekday", "winter-weekend"], peak_load_mw=220.0, min_load_mw=143.0
        )
        assert profile.shape == (48,)
        assert profile.max() == pytest.approx(220.0)
        assert profile.min() == pytest.approx(143.0)
        # The weekend day keeps its relative level against the weekday peak.
        assert profile[24:].max() < profile[:24].max()

    def test_multi_day_profile_validation(self):
        with pytest.raises(ConfigurationError):
            multi_day_profile([], 220.0, 143.0)
        with pytest.raises(ConfigurationError):
            multi_day_profile(["winter-weekday"], 100.0, 150.0)

    def test_profile_for_network_normalises_per_case(self, net14):
        profile = profile_for_network(net14, peak_fraction=1.0, min_fraction=0.65)
        assert profile.max() == pytest.approx(net14.total_load_mw())
        assert profile.min() == pytest.approx(0.65 * net14.total_load_mw())


class TestProfileSpec:
    def test_n_hours_and_truncation(self):
        assert ProfileSpec().n_hours() == 24
        assert ProfileSpec(n_days=3).n_hours() == 72
        assert ProfileSpec(n_days=2, hours=30).n_hours() == 30
        assert ProfileSpec(explicit_totals_mw=(1.0, 2.0), peak_load_mw=None,
                           min_load_mw=None, hours=1).n_hours() == 1

    def test_explicit_days_override_shape(self):
        spec = ProfileSpec(days=("winter-weekday", "winter-weekend"))
        assert spec.day_names() == ("winter-weekday", "winter-weekend")
        assert spec.n_hours() == 48

    def test_totals_absolute_band(self):
        totals = ProfileSpec(peak_load_mw=200.0, min_load_mw=100.0).totals_mw()
        assert totals.max() == pytest.approx(200.0)
        assert totals.min() == pytest.approx(100.0)

    def test_totals_per_case_normalisation(self):
        spec = ProfileSpec(peak_load_mw=None, min_load_mw=None,
                           peak_fraction=1.2, min_fraction=0.6)
        totals = spec.totals_mw(nominal_total_mw=100.0)
        assert totals.max() == pytest.approx(120.0)
        assert totals.min() == pytest.approx(60.0)
        with pytest.raises(ConfigurationError):
            spec.totals_mw()  # nominal total required in fraction mode

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProfileSpec(shape="bogus")
        with pytest.raises(ConfigurationError):
            ProfileSpec(n_days=0)
        with pytest.raises(ConfigurationError):
            ProfileSpec(peak_load_mw=100.0, min_load_mw=None)
        with pytest.raises(ConfigurationError):
            ProfileSpec(peak_load_mw=100.0, min_load_mw=150.0)
        with pytest.raises(ConfigurationError):
            ProfileSpec(hours=0)


# ----------------------------------------------------------------------
# spec layer
# ----------------------------------------------------------------------
class TestOperationSpecLayer:
    def test_tuning_validation(self):
        with pytest.raises(ConfigurationError):
            TuningSpec(method="newton")
        with pytest.raises(ConfigurationError):
            TuningSpec(gamma_grid=())
        with pytest.raises(ConfigurationError):
            TuningSpec(gamma_grid=(0.2, 0.1))
        with pytest.raises(ConfigurationError):
            TuningSpec(gamma_grid=(0.1, 2.0))
        with pytest.raises(ConfigurationError):
            TuningSpec(delta=0.0)

    def test_operation_validation(self):
        with pytest.raises(ConfigurationError):
            OperationSpec(staleness_hours=0)
        with pytest.raises(ConfigurationError):
            OperationSpec(warmup="cold")
        with pytest.raises(ConfigurationError):
            OperationSpec(rng="global")

    def test_scenario_requires_designed_policy_and_analytic_detector(self):
        with pytest.raises(ConfigurationError, match="designed"):
            tiny_spec().with_updates({"mtd.policy": "random"})
        with pytest.raises(ConfigurationError, match="analytic"):
            tiny_spec().with_updates({"detector.method": "monte-carlo"})

    def test_n_trials_pinned_to_horizon(self):
        spec = tiny_spec()
        assert spec.n_trials == 3
        # Overriding n_trials is a no-op: the horizon defines the count.
        assert spec.with_updates(n_trials=99).n_trials == 3
        assert spec.with_updates({"operation.profile.hours": 2}).n_trials == 2

    def test_json_round_trip_and_hash(self):
        spec = tiny_spec()
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()
        # The operation policy participates in the identity.
        changed = spec.with_updates({"operation.warmup": "fresh"})
        assert changed.content_hash() != spec.content_hash()
        assert spec.operation.content_hash() != changed.operation.content_hash()

    def test_plain_specs_keep_their_shape_and_hash(self):
        """Adding the operation component must not disturb existing specs:
        no ``operation`` key in their payload, hashes untouched."""
        plain = ScenarioSpec(name="plain")
        assert "operation" not in plain.to_dict()
        assert ScenarioSpec.from_dict(plain.to_dict()) == plain

    def test_deep_with_updates(self):
        spec = tiny_spec().with_updates(
            {"operation.tuning.method": "scan", "operation.profile.hours": 1}
        )
        assert spec.operation.tuning.method == "scan"
        assert spec.operation.profile.hours == 1
        with pytest.raises(ConfigurationError):
            tiny_spec().with_updates({"operation.bogus.path": 1})


# ----------------------------------------------------------------------
# engine: compatibility and determinism
# ----------------------------------------------------------------------
class TestGoldenCompatibility:
    def test_wrapper_reproduces_pre_refactor_records(self, net14):
        """The wrapper (historical settings) is bit-identical to the
        pre-refactor serial scheduler loop."""
        result = DailyMTDScheduler(net14, warmup="fresh", **GOLDEN_KWARGS).run()
        assert len(result) == len(GOLDEN_RECORDS)
        for record, expected in zip(result, GOLDEN_RECORDS):
            for field_name, value in expected.items():
                assert getattr(record, field_name) == value, field_name


class TestWrapperEquivalence:
    def test_wrapper_matches_engine_record_for_record(self, net14):
        """`DailyMTDScheduler` and the operation engine agree record for
        record on the same spec (the wrapper is a faithful shim)."""
        scheduler = DailyMTDScheduler(
            net14,
            hourly_total_loads_mw=[205.0, 220.0],
            n_attacks=24,
            gamma_grid=[0.05, 0.2],
            seed=3,
        )
        wrapped = scheduler.run()
        # An independently constructed registry spec with the wrapper's
        # settings: the spec-driven engine path must reproduce the wrapper
        # (whose own spec carries a fail-fast placeholder case) exactly.
        spec = daily_operation_spec(
            name="ts-wrapper-equivalent",
            case="ieee14",
            cost_baseline="reactance-opf",
            profile=ProfileSpec(
                explicit_totals_mw=(205.0, 220.0),
                peak_load_mw=None,
                min_load_mw=None,
            ),
            tuning=TuningSpec(method="scan", gamma_grid=(0.05, 0.2)),
            rng="legacy",
            n_attacks=24,
            seed=3,
        )
        engine_result = OperationEngine().run(spec, use_cache=False)
        assert len(wrapped) == len(engine_result) == 2
        for ours, theirs in zip(wrapped, engine_result):
            assert ours.hour == theirs.hour
            assert ours.total_load_mw == theirs.total_load_mw
            assert ours.baseline_cost == theirs.baseline_cost
            assert ours.mtd_cost == theirs.mtd_cost
            assert ours.cost_increase_percent == theirs.cost_increase_percent
            assert ours.gamma_threshold == theirs.gamma_threshold
            assert ours.achieved_eta == theirs.achieved_eta
            assert ours.spa_attacker_vs_baseline == theirs.spa_attacker_vs_baseline
            assert ours.spa_attacker_vs_mtd == theirs.spa_attacker_vs_mtd
            assert ours.spa_baseline_vs_mtd == theirs.spa_baseline_vs_mtd

    def test_wrapper_input_validation(self, net14):
        with pytest.raises(MTDDesignError):
            DailyMTDScheduler(net14, hourly_total_loads_mw=[])
        with pytest.raises(MTDDesignError):
            DailyMTDScheduler(net14, hourly_total_loads_mw=[150.0], cost_baseline="bogus")

    def test_wrapper_spec_fails_fast_outside_the_wrapper(self, net14):
        """The wrapper's spec names a placeholder case, so executing it
        without the wrapper's network errors instead of silently simulating
        a registry case."""
        from repro.exceptions import CaseNotFoundError

        scheduler = DailyMTDScheduler(
            net14, hourly_total_loads_mw=[200.0], n_attacks=8, gamma_grid=[0.05]
        )
        assert scheduler.spec.grid.case == "daily-scheduler-network"
        with pytest.raises(CaseNotFoundError):
            OperationEngine().run(scheduler.spec, use_cache=False)


class TestScanVsBisect:
    def test_agreement_on_the_fig10_setting(self):
        """Bisection selects the same thresholds and records as the linear
        scan on the Fig. 10 configuration, with no more probes."""
        base = scenario_suite("fig10")[0].with_updates(
            {"operation.profile.hours": 2, "attack.n_attacks": 24}
        )
        scan = base.with_updates({"operation.tuning.method": "scan"})
        bisect = base.with_updates({"operation.tuning.method": "bisect"})
        engine = ScenarioEngine()
        scan_result = OperationResult.from_scenario(engine.run(scan, use_cache=False))
        bisect_result = OperationResult.from_scenario(engine.run(bisect, use_cache=False))
        for a, b in zip(scan_result, bisect_result):
            assert a.gamma_threshold == b.gamma_threshold
            assert a.cost_increase_percent == b.cost_increase_percent
            assert a.achieved_eta == b.achieved_eta
            assert a.spa_attacker_vs_mtd == b.spa_attacker_vs_mtd
        assert (
            bisect_result.total_tuning_probes() <= scan_result.total_tuning_probes()
        )


class TestParallelBatchCache:
    def test_parallel_hours_bit_identical_to_serial_multi_day(self):
        """A horizon spanning two (short) days gives the same records on a
        process pool as serially — the seed-spawned per-hour streams make
        hour execution order-independent."""
        spec = tiny_spec(
            name="ts-par",
            profile=ProfileSpec(
                explicit_totals_mw=(205.0, 210.0, 215.0, 220.0, 212.0),
                peak_load_mw=None,
                min_load_mw=None,
            ),
            n_attacks=16,
            tuning=TuningSpec(gamma_grid=(0.05, 0.2)),
        )
        engine = ScenarioEngine()
        serial = engine.run(spec, use_cache=False)
        parallel = engine.run(spec, n_workers=2, use_cache=False)
        assert serial.trials == parallel.trials

    def test_batched_hours_bit_identical(self):
        spec = tiny_spec(name="ts-batch")
        engine = ScenarioEngine()
        serial = engine.run(spec, use_cache=False)
        batched = engine.run(spec, use_cache=False, batch_size=2)
        assert serial.trials == batched.trials

    def test_result_cache_replays_operation_runs(self, tmp_path):
        spec = tiny_spec(name="ts-cache")
        engine = ScenarioEngine(cache=ResultCache(tmp_path / "cache"))
        first = engine.run(spec)
        replay = engine.run(spec)
        assert replay.from_cache
        assert replay.trials == first.trials
        # The typed view rebuilds losslessly from the cached payload.
        records = OperationResult.from_scenario(replay).records
        assert [r.hour for r in records] == [0, 1, 2]

    def test_run_trial_dispatch_and_bounds(self):
        spec = tiny_spec(name="ts-dispatch")
        trial = run_trial(spec, 1)
        assert trial.trial_index == 1
        assert "gamma_threshold" in trial.metrics
        assert "cost_increase_percent" in trial.metrics
        with pytest.raises(ConfigurationError):
            run_trial(spec, 3)


class TestWarmupAndStaleness:
    @staticmethod
    def _context(net, **operation_overrides):
        spec = daily_operation_spec(
            name="ts-warmup",
            cost_baseline="dispatch-only",
            profile=ProfileSpec(
                explicit_totals_mw=(200.0, 210.0, 220.0),
                peak_load_mw=None,
                min_load_mw=None,
            ),
            n_attacks=8,
        ).with_updates(
            {f"operation.{key}": value for key, value in operation_overrides.items()}
        )
        return build_operation_context(spec, net)

    def test_wrap_around_uses_previous_days_last_hour(self, net14):
        hours = self._context(net14, warmup="wrap-around")
        # Hour 0's attacker operates at the *last* hour's load level…
        np.testing.assert_allclose(
            hours[0].knowledge_angles, hours[2].baseline.angles_rad
        )
        # …while later hours use the previous hour as before.
        np.testing.assert_allclose(
            hours[1].knowledge_angles, hours[0].baseline.angles_rad
        )

    def test_fresh_warmup_reproduces_the_historical_skew(self, net14):
        hours = self._context(net14, warmup="fresh")
        np.testing.assert_allclose(
            hours[0].knowledge_angles, hours[0].baseline.angles_rad
        )

    def test_staleness_two_hours(self, net14):
        hours = self._context(net14, staleness_hours=2, warmup="wrap-around")
        # t=0 wraps two hours back to hour 1 of the previous (identical) day.
        np.testing.assert_allclose(
            hours[0].knowledge_angles, hours[1].baseline.angles_rad
        )
        np.testing.assert_allclose(
            hours[2].knowledge_angles, hours[0].baseline.angles_rad
        )


# ----------------------------------------------------------------------
# campaign integration
# ----------------------------------------------------------------------
QUICK_OPERATION_OVERRIDES = {
    "attack.n_attacks": 6,
    "operation.profile.hours": 1,
    "operation.tuning.gamma_grid": (0.05,),
}


class TestDailyOperationCampaigns:
    def test_interrupted_suite_resumes_exactly_the_missing_work(self, tmp_path):
        definition = campaign_from_suite(
            "daily-ops", overrides=QUICK_OPERATION_OVERRIDES, shard_size=1
        )
        orchestrator = CampaignOrchestrator(tmp_path / "daily.campaign")
        interrupted = orchestrator.run(definition, shard_limit=2)
        assert not interrupted.complete
        assert len(interrupted.executed) == 2

        resumed = orchestrator.resume()
        assert resumed.complete
        assert set(resumed.skipped) == set(interrupted.executed)
        assert set(resumed.executed).isdisjoint(interrupted.executed)
        assert len(resumed.executed) == definition_points(definition) - 2

        # Query the store on operation fields and read the typed records back.
        results = query_results(
            orchestrator.store, where={"operation.warmup": "wrap-around"}
        )
        assert len(results) == definition_points(definition)
        for result in results:
            records = OperationResult.from_scenario(result).records
            assert len(records) == 1
            assert records[0].cost_increase_percent >= 0.0

    def test_fig10_suite_is_a_single_operation_point(self):
        suite = scenario_suite("fig10")
        assert len(suite) == 1
        assert suite[0].operation is not None
        assert suite[0].n_trials == 24
        # fig11 reads off the same simulated day.
        assert scenario_suite("fig11")[0].content_hash() == suite[0].content_hash()


def definition_points(definition) -> int:
    return len(definition.points)
