"""Tests of the telemetry subsystem: mergeable metrics, spans, reports.

The load-bearing contracts:

* snapshot merging is associative/commutative and deterministic, so
  cross-process totals are independent of shard assignment and completion
  order;
* histogram bucket counts merged across pool workers equal the counts of
  the same work run serially (fixed boundaries, no re-bucketing);
* telemetry collection never changes scientific outputs — trials with
  telemetry on are bit-identical to trials with it off, and stored records
  never contain a telemetry section;
* the orchestrator persists a well-formed ``telemetry.json`` next to the
  store manifest, rendered by the CLI verbs.
"""

from __future__ import annotations

import io
import json

import pytest

from repro import telemetry
from repro.campaign import CampaignDefinition, run_campaign
from repro.campaign.cli import main as cli_main
from repro.campaign.store import CampaignStore
from repro.engine import (
    AttackSpec,
    GridSpec,
    MTDSpec,
    ScenarioEngine,
    ScenarioSpec,
    run_trial,
    run_trial_batch,
)
from repro.estimation.linear_model import LinearModelCache
from repro.telemetry.metrics import MetricsRegistry, MetricsSnapshot, metric_key
from repro.telemetry.spans import drain_spans


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every test starts disabled with an empty registry and span buffer."""
    telemetry.disable()
    telemetry.reset()
    drain_spans()
    yield
    telemetry.disable()
    telemetry.reset()
    drain_spans()


def small_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="telemetry-small",
        grid=GridSpec(case="ieee14", baseline="dc-opf"),
        attack=AttackSpec(n_attacks=16, seed=1),
        mtd=MTDSpec(policy="random", max_relative_change=0.2),
        n_trials=4,
        base_seed=23,
        deltas=(0.5, 0.9),
        metric="eta(0.9)",
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


# ----------------------------------------------------------------------
# switch
# ----------------------------------------------------------------------
class TestSwitch:
    def test_disabled_by_default_and_helpers_noop(self):
        assert not telemetry.enabled()
        telemetry.counter("x")
        telemetry.histogram("y", 0.5)
        assert telemetry.snapshot().counters == {}

    def test_set_enabled_returns_previous(self):
        assert telemetry.set_enabled(True) is False
        assert telemetry.set_enabled(False) is True

    def test_enabled_scope_restores(self):
        with telemetry.enabled_scope():
            assert telemetry.enabled()
            telemetry.counter("scoped")
        assert not telemetry.enabled()
        assert telemetry.snapshot().counters["scoped"] == 1

    def test_env_switch(self, monkeypatch):
        from repro.telemetry.config import _State

        monkeypatch.setenv(telemetry.ENV_SWITCH, "1")
        assert _State().enabled
        monkeypatch.setenv(telemetry.ENV_SWITCH, "off")
        assert not _State().enabled


# ----------------------------------------------------------------------
# metrics and merging
# ----------------------------------------------------------------------
class TestMetrics:
    def test_metric_key_folds_labels_sorted(self):
        assert metric_key("a.b") == "a.b"
        assert metric_key("a.b", {"z": 1, "a": "x"}) == "a.b{a=x,z=1}"

    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("hits")
        reg.counter("hits", 4)
        reg.gauge("occupancy", 7.0)
        snap = reg.snapshot()
        assert snap.counters["hits"] == 5
        assert snap.gauges["occupancy"] == 7.0

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        reg.declare_histogram("h", (1.0, 2.0))
        for value in (0.5, 1.5, 1.7, 5.0):
            reg.histogram("h", value)
        payload = reg.snapshot().histograms["h"]
        assert payload["bucket_counts"] == [1, 2, 1]
        assert payload["count"] == 4
        assert payload["min"] == 0.5 and payload["max"] == 5.0

    def test_merge_is_associative_and_commutative(self):
        def snap(i):
            reg = MetricsRegistry()
            reg.counter("c", i + 1)
            reg.gauge("g", float(i))
            # Powers of two sum exactly in every order, so even the
            # histogram running sum is order-independent here.
            reg.histogram("h", 0.25 * 2**i, boundaries=(0.3, 0.6))
            return reg.snapshot()

        a, b, c = snap(0), snap(1), snap(2)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        swapped = c.merge(a).merge(b)
        assert left.to_dict() == right.to_dict() == swapped.to_dict()
        assert left.counters["c"] == 6
        assert left.gauges["g"] == 2.0
        assert left.histograms["h"]["count"] == 3

    def test_merged_histograms_equal_serial(self):
        """Split observations across registries; merged buckets == serial."""
        values = [0.01 * i for i in range(40)]
        serial = MetricsRegistry()
        for v in values:
            serial.histogram("h", v)
        parts = [MetricsRegistry() for _ in range(3)]
        for i, v in enumerate(values):
            parts[i % 3].histogram("h", v)
        merged = MetricsSnapshot.merge_all(p.snapshot() for p in parts)
        got = dict(merged.histograms["h"])
        want = dict(serial.snapshot().histograms["h"])
        # Bucket/count/min/max are exact; only the running sum is subject
        # to float addition order.
        assert got.pop("sum") == pytest.approx(want.pop("sum"))
        assert got == want

    def test_merge_rejects_boundary_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", 0.1, boundaries=(1.0,))
        b.histogram("h", 0.1, boundaries=(2.0,))
        with pytest.raises(ValueError, match="boundaries"):
            a.snapshot().merge(b.snapshot())

    def test_subtract_gives_delta(self):
        reg = MetricsRegistry()
        reg.counter("c", 2)
        reg.histogram("h", 0.1)
        before = reg.snapshot()
        reg.counter("c", 3)
        reg.histogram("h", 0.2)
        delta = reg.snapshot().subtract(before)
        assert delta.counters == {"c": 3}
        assert delta.histograms["h"]["count"] == 1

    def test_serialization_is_sorted_and_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("z.last")
        reg.counter("a.first")
        payload = reg.snapshot().to_dict()
        assert list(payload["counters"]) == ["a.first", "z.last"]
        rebuilt = MetricsSnapshot.from_dict(json.loads(json.dumps(payload)))
        assert rebuilt.to_dict() == payload

    def test_registry_merge_snapshot_accepts_serialized(self):
        reg = MetricsRegistry()
        reg.counter("c")
        other = MetricsRegistry()
        other.counter("c", 2)
        other.histogram("h", 0.3)
        reg.merge_snapshot(other.snapshot().to_dict())
        snap = reg.snapshot()
        assert snap.counters["c"] == 3
        assert snap.histograms["h"]["count"] == 1


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_disabled_returns_shared_null_span(self):
        from repro.telemetry.spans import NULL_SPAN

        assert telemetry.span("anything") is NULL_SPAN
        with telemetry.span("anything", key=1):
            pass
        assert drain_spans() == []

    def test_nesting_builds_tree(self):
        telemetry.enable()
        with telemetry.span("outer", shard=3):
            with telemetry.span("inner"):
                pass
            with telemetry.span("inner"):
                pass
        (root,) = drain_spans()
        assert root["name"] == "outer"
        assert root["attributes"] == {"shard": 3}
        assert [c["name"] for c in root["children"]] == ["inner", "inner"]
        assert root["wall_seconds"] >= 0.0

    def test_span_records_duration_histogram(self):
        telemetry.enable()
        with telemetry.span("timed"):
            pass
        keys = telemetry.snapshot().histograms
        assert "span.seconds{span=timed}" in keys


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
class TestReports:
    def make_snapshot(self) -> MetricsSnapshot:
        reg = MetricsRegistry()
        reg.counter("cache.linear_model.hits", 6)
        reg.counter("cache.linear_model.misses", 2)
        reg.counter("cache.result_cache.misses", 1)
        reg.counter("engine.trials", 8)
        return reg.snapshot()

    def test_cache_rates(self):
        rates = telemetry.cache_rates(self.make_snapshot())
        assert rates["linear_model"]["hits"] == 6
        assert rates["linear_model"]["hit_rate"] == pytest.approx(0.75)
        assert rates["result_cache"]["hit_rate"] == 0.0

    def test_build_write_read_round_trip(self, tmp_path):
        report = telemetry.build_report(
            self.make_snapshot(),
            elapsed_seconds=2.0,
            executed=3,
            trials_executed=8,
            shard_wall_seconds={1: 0.5, 0: 0.25},
        )
        assert report["throughput"]["trials_per_second"] == pytest.approx(4.0)
        assert report["environment"]["python"]
        path = telemetry.write_report(tmp_path, report)
        assert path == telemetry.telemetry_path(tmp_path)
        assert telemetry.read_report(tmp_path) == json.loads(path.read_text())

    def test_read_report_absent_or_corrupt(self, tmp_path):
        assert telemetry.read_report(tmp_path) is None
        telemetry.telemetry_path(tmp_path).write_text("{not json")
        assert telemetry.read_report(tmp_path) is None

    def test_format_report_renders_sections(self):
        report = telemetry.build_report(
            self.make_snapshot(), elapsed_seconds=1.0, executed=3, trials_executed=8
        )
        text = telemetry.format_report(report)
        assert "cache linear_model" in text
        assert "trials/sec" in text
        assert "engine.trials = 8" in text


# ----------------------------------------------------------------------
# structured logging
# ----------------------------------------------------------------------
class TestLogging:
    def test_json_lines_parse(self):
        stream = io.StringIO()
        telemetry.configure_logging("info", json_output=True, stream=stream)
        telemetry.log_event("unit.test", shard=3, wall_seconds=1.5)
        payload = json.loads(stream.getvalue().strip())
        assert payload["event"] == "unit.test"
        assert payload["shard"] == 3
        assert payload["level"] == "info"

    def test_reconfigure_does_not_double_log(self):
        first, second = io.StringIO(), io.StringIO()
        telemetry.configure_logging("info", json_output=True, stream=first)
        telemetry.configure_logging("info", json_output=True, stream=second)
        telemetry.log_event("once")
        assert first.getvalue() == ""
        assert len(second.getvalue().strip().splitlines()) == 1

    def test_level_filtering(self):
        stream = io.StringIO()
        telemetry.configure_logging("error", stream=stream)
        telemetry.log_event("suppressed")
        assert stream.getvalue() == ""


# ----------------------------------------------------------------------
# environment stamp
# ----------------------------------------------------------------------
class TestEnvironment:
    def test_environment_info_keys(self):
        info = telemetry.environment_info()
        for key in ("python", "numpy", "scipy", "cpu_count", "repro",
                    "sparse_bus_threshold"):
            assert key in info
        assert info["repro"] is not None
        json.dumps(info)  # JSON-safe

    def test_format_environment(self):
        assert "python" in telemetry.format_environment()


# ----------------------------------------------------------------------
# instrumented caches
# ----------------------------------------------------------------------
class TestCacheInstrumentation:
    def test_named_cache_mirrors_counters(self):
        telemetry.enable()
        cache = LinearModelCache(maxsize=1, telemetry_name="unit")
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("b", lambda: 2)  # evicts "a"
        counters = telemetry.snapshot().counters
        assert counters["cache.unit.hits"] == 1
        assert counters["cache.unit.misses"] == 2
        assert counters["cache.unit.evictions"] == 1

    def test_unnamed_cache_stays_invisible(self):
        telemetry.enable()
        cache = LinearModelCache(maxsize=4)
        cache.get_or_build("a", lambda: 1)
        assert not any(
            k.startswith("cache.") for k in telemetry.snapshot().counters
        )

    def test_evaluator_surfaces_cache_stats(self):
        from repro.engine.trial import _shared_evaluator

        spec = small_spec()
        evaluator = _shared_evaluator(spec.grid, spec.attack, spec.detector)
        stats = evaluator.cache_stats()
        assert set(stats) == {"analytic_memo"}
        assert {"hits", "misses", "evictions", "entries", "maxsize"} <= set(
            stats["analytic_memo"]
        )


# ----------------------------------------------------------------------
# engine integration: bit-identity and cross-process merging
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_trials_bit_identical_with_telemetry_on(self):
        spec = small_spec()
        off = [run_trial(spec, i) for i in range(spec.n_trials)]
        telemetry.enable()
        on = [run_trial(spec, i) for i in range(spec.n_trials)]
        on_batched = run_trial_batch(spec)
        assert [t.metrics for t in on] == [t.metrics for t in off]
        assert [t.metrics for t in on_batched] == [t.metrics for t in off]

    def test_scenario_result_excludes_telemetry_from_payload(self):
        spec = small_spec(n_trials=2)
        telemetry.enable()
        result = ScenarioEngine().run(spec, use_cache=False)
        assert result.telemetry is not None
        assert result.telemetry["counters"]["engine.trials"] == 2
        assert "telemetry" not in result.to_dict()

    def test_telemetry_off_leaves_result_field_none(self):
        result = ScenarioEngine().run(small_spec(n_trials=2), use_cache=False)
        assert result.telemetry is None

    def test_batch_return_snapshot(self):
        spec = small_spec(n_trials=3)
        telemetry.enable()
        trials, snapshot = run_trial_batch(spec, return_snapshot=True)
        assert len(trials) == 3
        assert snapshot["counters"]["engine.trials"] == 3
        telemetry.disable()
        trials, snapshot = run_trial_batch(spec, return_snapshot=True)
        assert len(trials) == 3 and snapshot == {}

    def test_pool_counters_equal_serial_counters(self):
        """Cross-process merge: pooled totals == serial totals, exactly."""
        spec = small_spec()
        telemetry.enable()
        serial = ScenarioEngine().run(spec, use_cache=False)
        pooled = ScenarioEngine(n_workers=2).run(spec, use_cache=False)
        pooled_batched = ScenarioEngine(n_workers=2, batch_size=2).run(
            spec, use_cache=False
        )
        assert [t.metrics for t in pooled.trials] == [t.metrics for t in serial.trials]
        assert [t.metrics for t in pooled_batched.trials] == [
            t.metrics for t in serial.trials
        ]
        assert (
            pooled.telemetry["counters"]["engine.trials"]
            == serial.telemetry["counters"]["engine.trials"]
            == spec.n_trials
        )
        # Histogram bucket counts cross the pool boundary exactly.
        key = "span.seconds{span=engine.trial}"
        assert (
            pooled.telemetry["histograms"][key]["count"]
            == serial.telemetry["histograms"][key]["count"]
            == spec.n_trials
        )

    def test_worker_cache_counters_cross_pool_boundary(self):
        """The acceptance check: worker-side cache hits reach the parent."""
        spec = small_spec(mtd=MTDSpec(policy="none"), n_trials=4)
        telemetry.enable()
        result = ScenarioEngine(n_workers=2, batch_size=2).run(spec, use_cache=False)
        counters = result.telemetry["counters"]
        # 'none' policy evaluates one perturbation per batch: the second
        # trial of each batch hits the worker-side linear-model memo.
        assert counters.get("cache.analytic_memo.hits", 0) >= 1


# ----------------------------------------------------------------------
# campaign integration: telemetry.json + CLI
# ----------------------------------------------------------------------
def tiny_definition(**overrides) -> CampaignDefinition:
    defaults = dict(
        name="telemetry-campaign",
        base=small_spec(n_trials=2),
        grids=({"mtd.max_relative_change": (0.1, 0.2)},),
        shard_size=1,
    )
    defaults.update(overrides)
    return CampaignDefinition(**defaults)


class TestCampaignIntegration:
    def test_run_writes_wellformed_telemetry_json(self, tmp_path):
        telemetry.enable()
        report = run_campaign(tiny_definition(), tmp_path / "store")
        payload = telemetry.read_report(tmp_path / "store")
        assert payload is not None
        assert payload == report.telemetry
        assert payload["partition"] == {"executed": 2, "from_cache": 0, "skipped": 0}
        assert payload["throughput"]["trials_executed"] == 4
        assert payload["shards"]["wall_seconds"].keys() == {"0", "1"}
        assert payload["metrics"]["counters"]["engine.trials"] == 4
        assert payload["environment"]["python"]
        assert payload["plan_hash"] == report.plan_hash

    def test_no_telemetry_json_when_disabled(self, tmp_path):
        report = run_campaign(tiny_definition(), tmp_path / "store")
        assert report.telemetry is None
        assert telemetry.read_report(tmp_path / "store") is None

    def test_stored_records_identical_with_telemetry_on_off(self, tmp_path):
        telemetry.enable()
        run_campaign(tiny_definition(), tmp_path / "on", n_workers=2)
        telemetry.disable()
        run_campaign(tiny_definition(), tmp_path / "off")

        def normalized(directory):
            records = {}
            for record in CampaignStore(directory).records():
                # Wall-clock fields vary between any two runs, telemetry
                # or not; everything else must match bit-for-bit.
                record.pop("created_unix", None)
                record.pop("elapsed_seconds", None)
                records[record["spec_hash"]] = record
            return records

        assert normalized(tmp_path / "on") == normalized(tmp_path / "off")

    def test_manifest_carries_environment_stamp(self, tmp_path):
        run_campaign(tiny_definition(), tmp_path / "store")
        manifest = CampaignStore(tmp_path / "store").read_manifest()
        assert manifest["environment"]["python"]

    def test_resume_accounting_unchanged_with_telemetry(self, tmp_path):
        telemetry.enable()
        first = run_campaign(
            tiny_definition(), tmp_path / "store", shard_limit=1
        )
        assert len(first.executed) == 1
        second = run_campaign(tiny_definition(), tmp_path / "store")
        assert len(second.skipped) == 1
        assert len(second.executed) == 1
        payload = telemetry.read_report(tmp_path / "store")
        assert payload["partition"]["skipped"] == 1


class TestCLI:
    def run_cli(self, *argv, capsys=None):
        return cli_main(list(argv))

    def test_telemetry_env_verb(self, capsys):
        assert cli_main(["telemetry", "env"]) == 0
        out = capsys.readouterr().out
        assert "python" in out and "cpu_count" in out

    def test_telemetry_show_missing_report(self, tmp_path, capsys):
        assert cli_main(["telemetry", "show", str(tmp_path)]) == 1
        assert "no telemetry report" in capsys.readouterr().err

    def test_campaign_run_with_telemetry_flag(self, tmp_path, capsys, monkeypatch):
        # The flag enables the process-global switch; restore it afterwards.
        monkeypatch.setattr(
            "repro.telemetry.config._STATE.enabled", False, raising=False
        )
        definition_path = tmp_path / "def.json"
        definition_path.write_text(tiny_definition().to_json())
        store = tmp_path / "store"
        code = cli_main(
            ["campaign", "run", str(definition_path), "--store", str(store),
             "--telemetry"]
        )
        assert code == 0
        assert "telemetry report" in capsys.readouterr().out
        payload = telemetry.read_report(store)
        assert payload["partition"]["executed"] == 2

        assert cli_main(["telemetry", "show", str(store)]) == 0
        out = capsys.readouterr().out
        assert "trials/sec" in out or "throughput" in out

        assert cli_main(
            ["campaign", "status", "--store", str(store), "--telemetry"]
        ) == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_logging_flags_accepted_before_and_after_subcommand(self, capsys):
        from repro.campaign.cli import build_parser

        # Root-position (historical) placement.
        args = build_parser().parse_args(["--log-json", "telemetry", "env"])
        assert args.log_json is True and args.log_level is None
        # Trailing placement, as a user naturally types it.
        args = build_parser().parse_args(
            ["telemetry", "env", "--log-level", "debug", "--log-json"]
        )
        assert args.log_json is True and args.log_level == "debug"
        # A subparser that never saw the flag must not clobber a
        # root-parsed value with its own default.
        args = build_parser().parse_args(["--log-level", "warning", "telemetry", "env"])
        assert args.log_level == "warning" and args.log_json is False
        for sub in (["campaign", "status", "--store", "s"],
                    ["campaign", "resume", "--store", "s"],
                    ["suites", "run", "fig7", "--store", "s"],
                    ["cases", "list"]):
            args = build_parser().parse_args(sub + ["--log-json"])
            assert args.log_json is True
