"""CLI, baseline round-trip, and gate self-check tests for ``repro lint``."""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint.baseline import (
    entries_from_findings,
    load_baseline,
    write_baseline,
)
from repro.analysis.lint.core import lint_paths
from repro.analysis.lint.reporters import LINT_REPORT_VERSION
from repro.campaign.cli import main as repro_main
from repro.exceptions import ReproError

REPO_ROOT = Path(__file__).resolve().parents[1]
COMMITTED_BASELINE = REPO_ROOT / ".repro-lint-baseline.json"

#: One minimal violation per rule — each must independently fail the gate.
SEEDED_VIOLATIONS = {
    "global-rng": "import numpy as np\nx = np.random.normal()\n",
    "wall-clock": "import time\nstamp = time.time()\n",
    "unsorted-iteration": (
        "from pathlib import Path\n"
        "names = [p.name for p in Path('.').glob('*.json')]\n"
    ),
    "spec-hash-fields": textwrap.dedent(
        """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class BadSpec:
            name: str = ""

            def content_hash(self):
                payload = {"name": self.name}
                payload.pop("name")
                return str(payload)
        """
    ),
    "frozen-mutation": (
        "class C:\n    pass\nobject.__setattr__(C(), 'x', 1)\n"
    ),
    "durable-write": "handle = open('log.txt', 'a')\n",
}


def run_lint_cli(*argv: str) -> int:
    """Invoke the wired-up ``python -m repro lint`` entry point."""
    return repro_main(["lint", *argv])


class TestSeededViolations:
    """Acceptance criterion: a seeded violation of each rule exits 1."""

    @pytest.mark.parametrize("rule", sorted(SEEDED_VIOLATIONS))
    def test_each_rule_fails_the_gate(self, rule, tmp_path, capsys):
        bad = tmp_path / "seeded.py"
        bad.write_text(SEEDED_VIOLATIONS[rule])
        assert run_lint_cli(str(bad)) == 1
        out = capsys.readouterr().out
        assert f"[{rule}]" in out

    def test_all_violations_in_one_file(self, tmp_path, capsys):
        bad = tmp_path / "everything.py"
        bad.write_text("\n".join(SEEDED_VIOLATIONS[r] for r in sorted(SEEDED_VIOLATIONS)))
        assert run_lint_cli(str(bad)) == 1
        out = capsys.readouterr().out
        for rule in SEEDED_VIOLATIONS:
            assert f"[{rule}]" in out

    def test_rule_filter_narrows_the_run(self, tmp_path, capsys):
        bad = tmp_path / "two.py"
        bad.write_text(SEEDED_VIOLATIONS["wall-clock"] + SEEDED_VIOLATIONS["durable-write"])
        assert run_lint_cli(str(bad), "--rule", "wall-clock") == 1
        out = capsys.readouterr().out
        assert "[wall-clock]" in out
        assert "[durable-write]" not in out

    def test_unknown_rule_is_a_usage_error(self, tmp_path, capsys):
        assert run_lint_cli(str(tmp_path), "--rule", "bogus") == 2
        assert "unknown rule" in capsys.readouterr().err


class TestCleanRuns:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("import numpy as np\n\ndef f(rng):\n    return rng.normal()\n")
        assert run_lint_cli(str(good)) == 0
        assert "clean" in capsys.readouterr().out

    def test_list_rules_catalogs_all_six(self, capsys):
        assert run_lint_cli("--list-rules") == 0
        out = capsys.readouterr().out
        for rule in SEEDED_VIOLATIONS:
            assert rule in out


class TestJsonReport:
    def test_json_schema_and_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(SEEDED_VIOLATIONS["global-rng"])
        assert run_lint_cli(str(bad), "--json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == LINT_REPORT_VERSION
        assert payload["exit_code"] == 1
        assert payload["files_checked"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "global-rng"
        assert finding["fingerprint"]
        assert sorted(payload["rules"]) == sorted(SEEDED_VIOLATIONS)

    def test_json_clean_run(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert run_lint_cli(str(good), "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["exit_code"] == 0


class TestBaselineRoundTrip:
    def test_write_then_filter_then_new_violation(self, tmp_path, capsys):
        bad = tmp_path / "grandfathered.py"
        bad.write_text(SEEDED_VIOLATIONS["wall-clock"])
        baseline_file = tmp_path / "baseline.json"

        # Without a baseline the violation fails the gate.
        assert run_lint_cli(str(bad)) == 1
        # Grandfather it.
        assert run_lint_cli(str(bad), "--write-baseline", "--baseline-file", str(baseline_file)) == 0
        assert baseline_file.exists()
        # Now the gate passes, reporting the finding as baselined.
        assert run_lint_cli(str(bad), "--baseline", "--baseline-file", str(baseline_file)) == 0
        assert "1 baselined" in capsys.readouterr().out
        # A *new* violation alongside the grandfathered one still fails.
        bad.write_text(SEEDED_VIOLATIONS["wall-clock"] + SEEDED_VIOLATIONS["durable-write"])
        assert run_lint_cli(str(bad), "--baseline", "--baseline-file", str(baseline_file)) == 1
        out = capsys.readouterr().out
        assert "[durable-write]" in out
        assert "[wall-clock]" not in out  # absorbed by the baseline

    def test_baseline_matching_survives_line_drift(self, tmp_path):
        bad = tmp_path / "drift.py"
        bad.write_text(SEEDED_VIOLATIONS["wall-clock"])
        baseline_file = tmp_path / "baseline.json"
        assert run_lint_cli(str(bad), "--write-baseline", "--baseline-file", str(baseline_file)) == 0
        # Shift the offending line down; the fingerprint must still match.
        bad.write_text("# a new leading comment\n\n" + SEEDED_VIOLATIONS["wall-clock"])
        assert run_lint_cli(str(bad), "--baseline", "--baseline-file", str(baseline_file)) == 0

    def test_duplicate_violation_needs_two_entries(self, tmp_path):
        bad = tmp_path / "dupes.py"
        bad.write_text(SEEDED_VIOLATIONS["wall-clock"])
        baseline_file = tmp_path / "baseline.json"
        assert run_lint_cli(str(bad), "--write-baseline", "--baseline-file", str(baseline_file)) == 0
        # The same offending line twice: one entry absorbs only one finding.
        bad.write_text("import time\nstamp = time.time()\nstamp = time.time()\n")
        assert run_lint_cli(str(bad), "--baseline", "--baseline-file", str(baseline_file)) == 1

    def test_stale_entry_is_an_error(self, tmp_path, capsys):
        bad = tmp_path / "fixed.py"
        bad.write_text(SEEDED_VIOLATIONS["wall-clock"])
        baseline_file = tmp_path / "baseline.json"
        assert run_lint_cli(str(bad), "--write-baseline", "--baseline-file", str(baseline_file)) == 0
        # Fix the violation: the now-unmatched entry must fail the run so
        # the baseline ratchets down instead of accreting dead weight.
        bad.write_text("x = 1\n")
        assert run_lint_cli(str(bad), "--baseline", "--baseline-file", str(baseline_file)) == 2
        assert "stale baseline entry" in capsys.readouterr().out

    def test_missing_baseline_file_is_an_error(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        missing = tmp_path / "nope.json"
        assert run_lint_cli(str(good), "--baseline", "--baseline-file", str(missing)) == 2
        assert "baseline file not found" in capsys.readouterr().err

    def test_load_rejects_malformed_payload(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("[]")
        with pytest.raises(ReproError, match="missing 'entries'"):
            load_baseline(path)

    def test_write_baseline_is_sorted_and_hand_editable(self, tmp_path):
        bad = tmp_path / "mixed.py"
        bad.write_text(SEEDED_VIOLATIONS["wall-clock"] + SEEDED_VIOLATIONS["durable-write"])
        result = lint_paths([bad])
        entries = entries_from_findings(result.findings)
        path = write_baseline(tmp_path / "b.json", entries)
        payload = json.loads(path.read_text())
        rules = [entry["rule"] for entry in payload["entries"]]
        assert rules == sorted(rules)
        # No opaque hashes stored: every field is a human-readable string.
        for entry in payload["entries"]:
            assert set(entry) == {"rule", "module", "scope", "code", "justification"}


class TestRepoGate:
    """The committed tree must be clean under its committed baseline."""

    def test_src_repro_is_clean_against_committed_baseline(self, capsys):
        status = run_lint_cli(
            str(REPO_ROOT / "src" / "repro"),
            "--baseline",
            "--baseline-file",
            str(COMMITTED_BASELINE),
        )
        out = capsys.readouterr().out
        assert status == 0, f"committed tree fails its own lint gate:\n{out}"
        assert "clean" in out

    def test_committed_baseline_is_minimal_and_justified(self):
        baseline = load_baseline(COMMITTED_BASELINE)
        # The baseline is a ratchet, not a dumping ground: every entry needs
        # a real one-line justification, and growth should be deliberate.
        assert 0 < len(baseline.entries) <= 5
        for entry in baseline.entries:
            assert entry.justification
            assert "TODO" not in entry.justification

    def test_check_contracts_script_passes(self):
        completed = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "check_contracts.py"), "--skip-mypy"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "static-analysis contracts: OK" in completed.stdout


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy not installed (CI installs it; the gate skips locally)",
)
def test_mypy_gate_passes():
    completed = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", str(REPO_ROOT / "pyproject.toml")],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
