"""Tests for the daily MTD scheduler and the load profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, MTDDesignError
from repro.loads.profiles import (
    hourly_loads_for_network,
    nyiso_like_winter_day,
    scale_profile_to_band,
)
from repro.mtd.scheduler import DailyMTDScheduler


class TestLoadProfiles:
    def test_profile_has_24_hours(self):
        profile = nyiso_like_winter_day()
        assert profile.shape == (24,)

    def test_band_respected(self):
        profile = nyiso_like_winter_day(peak_load_mw=220.0, min_load_mw=143.0)
        assert profile.max() == pytest.approx(220.0)
        assert profile.min() == pytest.approx(143.0)

    def test_evening_peak(self):
        """The peak must fall in the evening (hour index 17 = 6 PM)."""
        profile = nyiso_like_winter_day()
        assert int(np.argmax(profile)) == 17

    def test_overnight_trough(self):
        profile = nyiso_like_winter_day()
        assert int(np.argmin(profile)) in (1, 2, 3, 4)

    def test_invalid_band_rejected(self):
        with pytest.raises(ConfigurationError):
            nyiso_like_winter_day(peak_load_mw=100.0, min_load_mw=150.0)
        with pytest.raises(ConfigurationError):
            nyiso_like_winter_day(peak_load_mw=-1.0)

    def test_scale_profile_to_band(self):
        scaled = scale_profile_to_band(np.array([1.0, 2.0, 3.0]), 10.0, 30.0)
        np.testing.assert_allclose(scaled, [10.0, 20.0, 30.0])

    def test_scale_constant_profile(self):
        scaled = scale_profile_to_band(np.array([2.0, 2.0]), 10.0, 30.0)
        np.testing.assert_allclose(scaled, [20.0, 20.0])

    def test_scale_empty_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            scale_profile_to_band(np.array([]), 0.0, 1.0)

    def test_hourly_loads_keep_proportions(self, net14):
        totals = np.array([150.0, 200.0])
        loads = hourly_loads_for_network(net14, totals)
        assert len(loads) == 2
        for hour, total in enumerate(totals):
            assert loads[hour].sum() == pytest.approx(total)
            # Proportions match the nominal distribution.
            nominal = net14.loads_mw()
            mask = nominal > 0
            np.testing.assert_allclose(
                loads[hour][mask] / nominal[mask],
                np.full(mask.sum(), total / nominal.sum()),
            )

    def test_hourly_loads_default_profile(self, net14):
        loads = hourly_loads_for_network(net14)
        assert len(loads) == 24


class TestDailyScheduler:
    @pytest.fixture(scope="class")
    def short_run(self, net14):
        """A three-hour run shared by the assertions below.  Consecutive
        hourly loads differ by a few percent, as in a real trace, so the
        temporal-correlation property of Fig. 11 applies."""
        scheduler = DailyMTDScheduler(
            net14,
            hourly_total_loads_mw=[205.0, 212.0, 220.0],
            n_attacks=80,
            gamma_grid=np.arange(0.05, 0.45, 0.1),
            seed=0,
        )
        return scheduler.run()

    def test_one_record_per_hour(self, short_run):
        assert len(short_run) == 3
        assert [r.hour for r in short_run] == [0, 1, 2]

    def test_loads_recorded(self, short_run):
        np.testing.assert_allclose(short_run.loads(), [205.0, 212.0, 220.0])

    def test_costs_non_negative(self, short_run):
        assert np.all(short_run.cost_increases_percent() >= 0.0)

    def test_peak_hour_is_most_expensive(self, short_run):
        """Fig. 10's observation: the MTD premium grows with load."""
        costs = short_run.cost_increases_percent()
        assert costs[2] >= costs[0]
        assert short_run.peak_cost_hour() == 2 or costs[2] == pytest.approx(costs.max())

    def test_design_angle_meets_tuned_threshold(self, short_run):
        for record in short_run:
            assert record.spa_attacker_vs_mtd >= record.gamma_threshold - 1e-6

    def test_spa_series_keys(self, short_run):
        series = short_run.spa_series()
        assert set(series) == {
            "gamma(Ht, Ht')",
            "gamma(Ht, H't')",
            "gamma(Ht', H't')",
        }
        for values in series.values():
            assert values.shape == (3,)

    def test_baseline_matrices_stay_close(self, short_run):
        """γ(Ht, Ht') must remain small and below the designed γ(Ht, H't') —
        the temporal-correlation observation of Fig. 11."""
        series = short_run.spa_series()
        assert np.all(series["gamma(Ht, Ht')"] <= 0.1 + 1e-9)
        assert np.all(
            series["gamma(Ht, Ht')"] <= series["gamma(Ht, H't')"] + 1e-9
        )

    def test_effectiveness_reported(self, short_run):
        for record in short_run:
            assert 0.0 <= record.achieved_eta <= 1.0

    def test_empty_profile_rejected(self, net14):
        with pytest.raises(MTDDesignError):
            DailyMTDScheduler(net14, hourly_total_loads_mw=[])

    def test_invalid_baseline_mode_rejected(self, net14):
        with pytest.raises(MTDDesignError):
            DailyMTDScheduler(
                net14, hourly_total_loads_mw=[150.0], cost_baseline="bogus"
            )

    def test_dispatch_only_baseline_runs(self, net14):
        scheduler = DailyMTDScheduler(
            net14,
            hourly_total_loads_mw=[180.0],
            n_attacks=40,
            gamma_grid=[0.1, 0.2],
            cost_baseline="dispatch-only",
            seed=1,
        )
        result = scheduler.run()
        assert len(result) == 1
        assert result.records[0].cost_increase_percent >= 0.0
