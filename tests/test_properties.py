"""Property-based tests (hypothesis) on the library's core invariants.

The invariants tested here must hold on *any* valid network or input, not
only on the IEEE benchmark cases:

* DC power flow conserves power at every bus and is linear in the injections.
* Stealthy attacks ``a = Hc`` are invisible to the matching BDD for every
  ``c`` and undetectability is preserved under scaling.
* Principal angles are symmetric, bounded and invariant to column scaling.
* Attack-magnitude scaling achieves the requested ratio for every target.
* The detection probability is monotone in the attack magnitude.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.attacks.fdi import stealthy_attack
from repro.attacks.scaling import attack_measurement_ratio, scale_attack_to_measurement_ratio
from repro.estimation.bdd import BadDataDetector
from repro.estimation.measurement import MeasurementSystem
from repro.estimation.state_estimator import WLSStateEstimator
from repro.grid.cases import case14, synthetic_case
from repro.grid.matrices import reduced_measurement_matrix
from repro.mtd.subspace import principal_angles, subspace_angle
from repro.powerflow.dc import solve_dc_power_flow

# A modest profile: each property runs a few dozen cases, which keeps the
# whole suite fast while still exploring the input space.
PROPERTY_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_NET14 = case14()
_SYSTEM14 = MeasurementSystem.for_network(_NET14)
_H14 = _SYSTEM14.matrix()
_ESTIMATOR14 = WLSStateEstimator(_SYSTEM14)
_DETECTOR14 = BadDataDetector(_SYSTEM14)


state_bias_strategy = st.lists(
    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False, allow_infinity=False),
    min_size=13,
    max_size=13,
).map(np.array)


generation_strategy = st.lists(
    st.floats(min_value=0.0, max_value=40.0, allow_nan=False, allow_infinity=False),
    min_size=5,
    max_size=5,
).map(np.array)


@PROPERTY_SETTINGS
@given(generation=generation_strategy)
def test_power_flow_balances_at_every_bus(generation):
    """Net injection equals net outgoing flow at every non-slack bus."""
    result = solve_dc_power_flow(_NET14, generation_mw=generation)
    for bus in range(_NET14.n_buses):
        if bus == _NET14.slack_bus:
            continue
        outgoing = sum(
            result.flows_mw[br.index] for br in _NET14.branches if br.from_bus == bus
        )
        incoming = sum(
            result.flows_mw[br.index] for br in _NET14.branches if br.to_bus == bus
        )
        assert outgoing - incoming == pytest.approx(result.injections_mw[bus], abs=1e-6)


@PROPERTY_SETTINGS
@given(generation=generation_strategy, scale=st.floats(min_value=0.1, max_value=3.0))
def test_power_flow_is_linear_in_injections(generation, scale):
    """Scaling every injection scales every flow by the same factor."""
    base = solve_dc_power_flow(_NET14, injections_mw=np.zeros(14) + _injections(generation))
    scaled = solve_dc_power_flow(_NET14, injections_mw=scale * _injections(generation))
    np.testing.assert_allclose(scaled.flows_mw, scale * base.flows_mw, atol=1e-6)


def _injections(generation: np.ndarray) -> np.ndarray:
    injections = -_NET14.loads_mw()
    for gen in _NET14.generators:
        injections[gen.bus] += generation[gen.index]
    return injections


@PROPERTY_SETTINGS
@given(bias=state_bias_strategy)
def test_stealthy_attacks_have_zero_residual_on_matching_system(bias):
    """Proposition: (I − Γ)Hc = 0 for every state bias c."""
    attack = stealthy_attack(_H14, bias)
    assert _ESTIMATOR14.attack_residual_norm(attack) == pytest.approx(0.0, abs=1e-7)
    assert _DETECTOR14.detection_probability(attack) == pytest.approx(
        _DETECTOR14.false_positive_rate
    )


@PROPERTY_SETTINGS
@given(bias=state_bias_strategy, scale=st.floats(min_value=0.01, max_value=100.0))
def test_stealthiness_is_scale_invariant(bias, scale):
    """Scaling a stealthy attack keeps it stealthy on the matching system."""
    attack = scale * stealthy_attack(_H14, bias)
    assert _ESTIMATOR14.attack_residual_norm(attack) == pytest.approx(0.0, abs=1e-6)


@PROPERTY_SETTINGS
@given(
    bias=state_bias_strategy,
    small=st.floats(min_value=0.01, max_value=0.5),
    factor=st.floats(min_value=1.5, max_value=10.0),
)
def test_detection_probability_monotone_in_attack_magnitude(bias, small, factor):
    """Against a perturbed system, a larger attack is never harder to detect."""
    if not np.any(np.abs(bias) > 1e-3):
        return  # the all-zero attack is uninformative
    x = _NET14.reactances()
    for index in _NET14.dfacts_branches:
        x[index] *= 1.4
    detector = BadDataDetector(_SYSTEM14.with_reactances(x))
    attack = stealthy_attack(_H14, bias)
    p_small = detector.detection_probability(small * attack)
    p_large = detector.detection_probability(small * factor * attack)
    assert p_large >= p_small - 1e-9


@PROPERTY_SETTINGS
@given(
    bias=state_bias_strategy,
    ratio=st.floats(min_value=0.01, max_value=0.5),
)
def test_attack_scaling_achieves_any_ratio(bias, ratio):
    if not np.any(np.abs(bias) > 1e-6):
        return
    z = _SYSTEM14.noiseless_measurements(np.zeros(14) + _operating_angles())
    attack = stealthy_attack(_H14, bias)
    scaled = scale_attack_to_measurement_ratio(attack, z, target_ratio=ratio)
    assert attack_measurement_ratio(scaled, z) == pytest.approx(ratio, rel=1e-9)


def _operating_angles() -> np.ndarray:
    from repro.opf.dc_opf import solve_dc_opf

    return solve_dc_opf(_NET14).angles_rad


@PROPERTY_SETTINGS
@given(
    factors=st.lists(
        st.floats(min_value=0.5, max_value=1.5, allow_nan=False),
        min_size=6,
        max_size=6,
    )
)
def test_subspace_angle_properties(factors):
    """Symmetry, bounds and zero self-distance of the design metric, for any
    realisable D-FACTS perturbation."""
    x = _NET14.reactances()
    dfacts = list(_NET14.dfacts_branches)
    x[dfacts] = _NET14.reactances()[dfacts] * np.array(factors)
    H_perturbed = reduced_measurement_matrix(_NET14, x)
    angle_ab = subspace_angle(_H14, H_perturbed)
    angle_ba = subspace_angle(H_perturbed, _H14)
    assert angle_ab == pytest.approx(angle_ba, abs=1e-8)
    assert 0.0 <= angle_ab <= np.pi / 2 + 1e-9
    assert subspace_angle(H_perturbed, H_perturbed) == pytest.approx(0.0, abs=1e-9)
    angles = principal_angles(_H14, H_perturbed)
    assert np.all(np.diff(angles) >= -1e-12)


@PROPERTY_SETTINGS
@given(
    factors=st.lists(
        st.floats(min_value=0.5, max_value=1.5, allow_nan=False),
        min_size=6,
        max_size=6,
    ),
    scale=st.floats(min_value=0.5, max_value=2.0),
)
def test_subspace_angle_invariant_to_uniform_scaling(factors, scale):
    """γ(H, cH') = γ(H, H'): the metric sees column spaces, not magnitudes."""
    x = _NET14.reactances()
    dfacts = list(_NET14.dfacts_branches)
    x[dfacts] = _NET14.reactances()[dfacts] * np.array(factors)
    H_perturbed = reduced_measurement_matrix(_NET14, x)
    assert subspace_angle(_H14, H_perturbed) == pytest.approx(
        subspace_angle(_H14, scale * H_perturbed), abs=1e-8
    )


@PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_synthetic_networks_are_structurally_sound(seed):
    """Every generated network is connected, observable and adequately
    provisioned — the contract property tests elsewhere rely on."""
    net = synthetic_case(n_buses=9, seed=seed)
    assert net.n_buses == 9
    assert net.total_generation_capacity_mw() >= net.total_load_mw()
    H = reduced_measurement_matrix(net)
    assert np.linalg.matrix_rank(H) == net.n_buses - 1


@PROPERTY_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    generation_scale=st.floats(min_value=0.0, max_value=1.0),
)
def test_power_flow_balance_on_synthetic_networks(seed, generation_scale):
    """The nodal-balance invariant holds on arbitrary synthetic topologies."""
    net = synthetic_case(n_buses=7, seed=seed)
    _, p_max = net.generator_limits_mw()
    result = solve_dc_power_flow(net, generation_mw=generation_scale * p_max)
    for bus in range(net.n_buses):
        if bus == net.slack_bus:
            continue
        outgoing = sum(result.flows_mw[br.index] for br in net.branches if br.from_bus == bus)
        incoming = sum(result.flows_mw[br.index] for br in net.branches if br.to_bus == bus)
        assert outgoing - incoming == pytest.approx(result.injections_mw[bus], abs=1e-6)
