"""Tests for the MTD effectiveness metric and the operational-cost metric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mtd.cost import mtd_operational_cost
from repro.mtd.design import design_mtd_perturbation
from repro.mtd.effectiveness import EffectivenessEvaluator, EffectivenessResult
from repro.opf.dc_opf import solve_dc_opf


class TestEffectivenessResult:
    def test_eta_counts_threshold_fraction(self):
        result = EffectivenessResult(
            detection_probabilities=np.array([0.1, 0.6, 0.95, 0.99]),
            false_positive_rate=5e-4,
            method="analytic",
        )
        assert result.eta(0.5) == pytest.approx(0.75)
        assert result.eta(0.9) == pytest.approx(0.5)
        assert result.eta(0.99) == pytest.approx(0.25)

    def test_eta_curve_matches_pointwise(self):
        result = EffectivenessResult(
            detection_probabilities=np.array([0.2, 0.8]),
            false_positive_rate=5e-4,
            method="analytic",
        )
        np.testing.assert_allclose(
            result.eta_curve([0.1, 0.5, 0.9]), [1.0, 0.5, 0.0]
        )

    def test_invalid_delta_rejected(self):
        result = EffectivenessResult(
            detection_probabilities=np.array([0.5]),
            false_positive_rate=5e-4,
            method="analytic",
        )
        with pytest.raises(ConfigurationError):
            result.eta(1.5)

    def test_undetectable_fraction(self):
        result = EffectivenessResult(
            detection_probabilities=np.array([5e-4, 0.9]),
            false_positive_rate=5e-4,
            method="analytic",
        )
        assert result.undetectable_fraction() == pytest.approx(0.5)

    def test_summary_keys(self):
        result = EffectivenessResult(
            detection_probabilities=np.array([0.5, 0.7]),
            false_positive_rate=5e-4,
            method="analytic",
        )
        summary = result.summary()
        assert summary["n_attacks"] == 2
        assert 0.0 <= summary["eta(0.9)"] <= 1.0


class TestEffectivenessEvaluator:
    def test_identity_perturbation_is_ineffective(self, net14, evaluator14):
        """Without a perturbation every attack keeps its FP-rate detection
        probability (the pre-MTD vulnerability the paper starts from)."""
        result = evaluator14.evaluate(net14.reactances())
        assert result.eta(0.5) == pytest.approx(0.0)
        assert result.undetectable_fraction() == pytest.approx(1.0)

    def test_uniform_scaling_is_ineffective(self, net14, evaluator14):
        """H' = (1+η)H leaves the column space unchanged (paper Fig. 4a)."""
        result = evaluator14.evaluate(1.2 * net14.reactances())
        assert result.eta(0.5) == pytest.approx(0.0)

    def test_large_perturbation_is_effective(self, net14, evaluator14):
        x = net14.reactances()
        for index in net14.dfacts_branches:
            x[index] *= 1.5
        result = evaluator14.evaluate(x)
        assert result.eta(0.5) > 0.5

    def test_effectiveness_increases_with_subspace_angle(self, net14, evaluator14):
        """The paper's central conjecture (Fig. 6): η'(δ) grows with γ."""
        etas = []
        for gamma in (0.05, 0.15, 0.25):
            design = design_mtd_perturbation(
                net14, gamma_threshold=gamma, method="two-stage", seed=0
            )
            etas.append(evaluator14.evaluate(design.perturbed_reactances).eta(0.5))
        assert etas[0] <= etas[1] <= etas[2]
        assert etas[2] > etas[0]

    def test_monte_carlo_agrees_with_analytic(self, net14, opf14):
        evaluator = EffectivenessEvaluator(
            net14, operating_angles_rad=opf14.angles_rad, n_attacks=20, seed=3
        )
        x = net14.reactances()
        for index in net14.dfacts_branches:
            x[index] *= 0.6
        analytic = evaluator.evaluate(x, method="analytic")
        monte_carlo = evaluator.evaluate(x, method="monte-carlo", n_noise_trials=200, seed=5)
        np.testing.assert_allclose(
            analytic.detection_probabilities,
            monte_carlo.detection_probabilities,
            atol=0.12,
        )

    def test_unknown_method_rejected(self, net14, evaluator14):
        with pytest.raises(ConfigurationError):
            evaluator14.evaluate(net14.reactances(), method="bogus")

    def test_wrong_angle_length_rejected(self, net14):
        with pytest.raises(ConfigurationError):
            EffectivenessEvaluator(net14, operating_angles_rad=np.zeros(3))

    def test_evaluate_perturbation_wrapper(self, net14, evaluator14):
        from repro.mtd.perturbation import ReactancePerturbation

        perturbation = ReactancePerturbation.random(net14, 0.4, seed=1)
        direct = evaluator14.evaluate(perturbation.perturbed_reactances)
        wrapped = evaluator14.evaluate_perturbation(perturbation)
        np.testing.assert_allclose(
            direct.detection_probabilities, wrapped.detection_probabilities
        )


class TestOperationalCost:
    def test_identity_perturbation_costs_nothing(self, net14):
        breakdown = mtd_operational_cost(net14, net14.reactances())
        assert breakdown.relative_increase == pytest.approx(0.0, abs=1e-9)
        assert breakdown.percent_increase == pytest.approx(0.0, abs=1e-7)

    def test_cost_non_negative(self, net14):
        x = net14.reactances()
        for index in net14.dfacts_branches:
            x[index] *= 1.5
        breakdown = mtd_operational_cost(net14, x)
        assert breakdown.relative_increase >= 0.0
        assert breakdown.mtd_cost >= 0.0

    def test_reactance_opf_baseline_never_above_dispatch_only(self, net14):
        x = net14.reactances()
        for index in net14.dfacts_branches:
            x[index] *= 1.4
        dispatch_only = mtd_operational_cost(net14, x, baseline="dispatch-only")
        reactance_opf = mtd_operational_cost(net14, x, baseline="reactance-opf")
        assert reactance_opf.baseline_cost <= dispatch_only.baseline_cost + 1e-3
        assert reactance_opf.relative_increase >= dispatch_only.relative_increase - 1e-9

    def test_precomputed_baseline_reused(self, net14):
        baseline = solve_dc_opf(net14)
        breakdown = mtd_operational_cost(
            net14, net14.reactances(), baseline_result=baseline
        )
        assert breakdown.baseline is baseline
        assert breakdown.baseline_cost == pytest.approx(baseline.cost)

    def test_unknown_baseline_rejected(self, net14):
        with pytest.raises(ConfigurationError):
            mtd_operational_cost(net14, net14.reactances(), baseline="bogus")

    def test_absolute_increase_consistent(self, net14):
        x = net14.reactances()
        for index in net14.dfacts_branches:
            x[index] *= 0.6
        breakdown = mtd_operational_cost(net14, x)
        assert breakdown.absolute_increase == pytest.approx(
            breakdown.mtd_cost - breakdown.baseline_cost
        )

    def test_congested_system_shows_positive_premium(self, net14):
        """At the 6 PM-like load the best MTD perturbation that maximises the
        subspace angle is not free when priced against the eq-(1) baseline."""
        from repro.mtd.design import max_spa_perturbation

        loads = net14.loads_mw() * (220.0 / net14.total_load_mw())
        design = max_spa_perturbation(net14, loads_mw=loads, seed=0)
        breakdown = mtd_operational_cost(
            net14, design.perturbed_reactances, loads_mw=loads, baseline="reactance-opf"
        )
        assert breakdown.relative_increase > 0.0
