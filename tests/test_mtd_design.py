"""Tests for the MTD design strategies (paper eq. (4)) and the random baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MTDDesignError
from repro.grid.cases import case14
from repro.grid.matrices import reduced_measurement_matrix
from repro.mtd.design import (
    design_mtd_perturbation,
    max_spa_perturbation,
    spa_of_reactances,
)
from repro.mtd.random_mtd import RandomMTDBaseline
from repro.mtd.tradeoff import compute_tradeoff_curve


class TestMaxSPA:
    def test_stays_within_dfacts_limits(self, net14):
        design = max_spa_perturbation(net14, seed=0)
        assert design.perturbation.respects_dfacts_limits()

    def test_achieves_meaningful_separation(self, net14):
        design = max_spa_perturbation(net14, seed=0)
        assert design.achieved_spa > 0.2

    def test_beats_random_perturbations(self, net14):
        from repro.mtd.perturbation import ReactancePerturbation

        design = max_spa_perturbation(net14, seed=0)
        H = reduced_measurement_matrix(net14)
        for seed in range(5):
            random_perturbation = ReactancePerturbation.random(net14, 0.5, seed=seed)
            random_spa = spa_of_reactances(
                net14, H, random_perturbation.perturbed_reactances
            )
            assert design.achieved_spa >= random_spa - 1e-9

    def test_no_dfacts_rejected(self):
        net = case14(dfacts_branches=())
        with pytest.raises(MTDDesignError):
            max_spa_perturbation(net)


class TestTwoStageDesign:
    def test_meets_threshold(self, net14):
        for gamma in (0.05, 0.15, 0.25):
            design = design_mtd_perturbation(
                net14, gamma_threshold=gamma, method="two-stage", seed=0
            )
            assert design.achieved_spa >= gamma - 1e-6
            assert design.perturbation.respects_dfacts_limits()

    def test_dispatch_is_feasible(self, net14):
        design = design_mtd_perturbation(net14, gamma_threshold=0.2, method="two-stage", seed=0)
        limits = net14.flow_limits_mw()
        assert np.all(np.abs(design.opf.flows_mw) <= limits + 1e-3)
        assert design.opf.total_generation_mw() == pytest.approx(
            net14.total_load_mw(), abs=1e-3
        )

    def test_cost_monotone_in_threshold(self, net14):
        """Stricter SPA targets can only cost more (the Fig. 9 trade-off)."""
        loads = net14.loads_mw() * (220.0 / net14.total_load_mw())
        costs = []
        for gamma in (0.05, 0.15, 0.25):
            design = design_mtd_perturbation(
                net14, gamma_threshold=gamma, loads_mw=loads, method="two-stage", seed=0
            )
            costs.append(design.cost)
        assert costs[0] <= costs[1] + 1e-6
        assert costs[1] <= costs[2] + 1e-6

    def test_unreachable_threshold_rejected(self, net14):
        with pytest.raises(MTDDesignError):
            design_mtd_perturbation(net14, gamma_threshold=1.5, method="two-stage")

    def test_invalid_threshold_rejected(self, net14):
        with pytest.raises(MTDDesignError):
            design_mtd_perturbation(net14, gamma_threshold=-0.1)
        with pytest.raises(MTDDesignError):
            design_mtd_perturbation(net14, gamma_threshold=2.0)

    def test_no_dfacts_rejected(self):
        net = case14(dfacts_branches=())
        with pytest.raises(MTDDesignError):
            design_mtd_perturbation(net, gamma_threshold=0.1)

    def test_attacker_reactance_override(self, net14):
        """The SPA is measured against the supplied attacker knowledge."""
        x_attacker = net14.reactances()
        for index in net14.dfacts_branches:
            x_attacker[index] *= 0.5
        design = design_mtd_perturbation(
            net14,
            gamma_threshold=0.2,
            attacker_reactances=x_attacker,
            method="two-stage",
            seed=0,
        )
        attacker_matrix = reduced_measurement_matrix(net14, x_attacker)
        achieved = spa_of_reactances(net14, attacker_matrix, design.perturbed_reactances)
        assert achieved >= 0.2 - 1e-6


class TestJointDesign:
    def test_joint_meets_threshold_and_never_worse_than_heuristic(self, net14):
        gamma = 0.15
        loads = net14.loads_mw() * (220.0 / net14.total_load_mw())
        heuristic = design_mtd_perturbation(
            net14, gamma_threshold=gamma, loads_mw=loads, method="two-stage", seed=0
        )
        joint = design_mtd_perturbation(
            net14, gamma_threshold=gamma, loads_mw=loads, method="joint",
            n_random_starts=1, seed=0
        )
        assert joint.achieved_spa >= gamma - 1e-4
        assert joint.cost <= heuristic.cost + 1e-6

    def test_max_spa_method_dispatch(self, net14):
        design = design_mtd_perturbation(net14, gamma_threshold=0.1, method="max-spa", seed=0)
        assert design.method == "max-spa"
        assert design.achieved_spa > 0.2


class TestRandomBaseline:
    def test_small_random_perturbations_are_ineffective(self, net14, evaluator14):
        """The paper's Fig. 7/8 finding: 2 %-bounded random perturbations do
        not reliably achieve high effectiveness."""
        baseline = RandomMTDBaseline(net14, evaluator14, max_relative_change=0.02)
        keyspace = baseline.sample_keyspace(10, seed=0)
        assert keyspace.fraction_meeting(delta=0.9, eta_target=0.9) <= 0.1

    def test_keyspace_statistics_shapes(self, net14, evaluator14):
        baseline = RandomMTDBaseline(net14, evaluator14, max_relative_change=0.1)
        keyspace = baseline.sample_keyspace(6, seed=1)
        assert len(keyspace) == 6
        assert keyspace.eta_values(0.5).shape == (6,)
        assert keyspace.spa_values().shape == (6,)
        assert np.all(keyspace.spa_values() >= 0.0)

    def test_designed_mtd_beats_random_keyspace(self, net14, evaluator14):
        """The paper's headline comparison: the designed perturbation is at
        least as effective as every sampled random perturbation."""
        design = design_mtd_perturbation(net14, gamma_threshold=0.25, method="two-stage", seed=0)
        designed_eta = evaluator14.evaluate(design.perturbed_reactances).eta(0.5)
        baseline = RandomMTDBaseline(net14, evaluator14, max_relative_change=0.02)
        keyspace = baseline.sample_keyspace(8, seed=2)
        assert designed_eta >= float(np.max(keyspace.eta_values(0.5)))

    def test_subset_perturbation_mode(self, net14, evaluator14):
        baseline = RandomMTDBaseline(
            net14, evaluator14, max_relative_change=0.1, perturb_all_dfacts=False
        )
        perturbation = baseline.draw_perturbation(seed=3)
        assert 1 <= len(perturbation.perturbed_branches) <= len(net14.dfacts_branches)

    def test_invalid_parameters_rejected(self, net14, evaluator14):
        with pytest.raises(MTDDesignError):
            RandomMTDBaseline(net14, evaluator14, max_relative_change=0.0)
        baseline = RandomMTDBaseline(net14, evaluator14, max_relative_change=0.1)
        with pytest.raises(MTDDesignError):
            baseline.sample_keyspace(0)

    def test_no_dfacts_rejected(self, evaluator14):
        net = case14(dfacts_branches=())
        with pytest.raises(MTDDesignError):
            RandomMTDBaseline(net, evaluator14)


class TestTradeoffCurve:
    def test_curve_structure_and_monotone_trends(self, net14, evaluator14):
        gammas = [0.05, 0.15, 0.25]
        curve = compute_tradeoff_curve(
            net14, evaluator14, gamma_thresholds=gammas, seed=0
        )
        assert len(curve) == 3
        np.testing.assert_allclose(curve.gammas(), gammas)
        etas = curve.eta_series(0.5)
        assert etas[0] <= etas[-1]
        assert np.all(curve.costs_percent() >= 0.0)
        assert np.all(curve.achieved_spas() >= curve.gammas() - 1e-6)

    def test_infeasible_thresholds_skipped(self, net14, evaluator14):
        curve = compute_tradeoff_curve(
            net14, evaluator14, gamma_thresholds=[0.1, 1.4], seed=0
        )
        assert len(curve) == 1

    def test_infeasible_thresholds_raise_when_requested(self, net14, evaluator14):
        with pytest.raises(MTDDesignError):
            compute_tradeoff_curve(
                net14,
                evaluator14,
                gamma_thresholds=[1.4],
                skip_infeasible=False,
                seed=0,
            )

    def test_cheapest_point_meeting_target(self, net14, evaluator14):
        curve = compute_tradeoff_curve(
            net14, evaluator14, gamma_thresholds=[0.05, 0.25], seed=0
        )
        point = curve.cheapest_point_meeting(delta=0.5, eta_target=0.5)
        assert point is not None
        assert point.eta[0.5] >= 0.5
        assert curve.cheapest_point_meeting(delta=0.5, eta_target=1.01) is None
