"""Tests for MTD-design options added on top of the basic strategies:
cost-preferred anchoring and detection-only max-SPA results."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid.cases import case14
from repro.mtd.design import (
    design_mtd_perturbation,
    max_spa_perturbation,
    spa_of_reactances,
)
from repro.grid.matrices import reduced_measurement_matrix
from repro.opf.dc_opf import solve_dc_opf
from repro.opf.reactance_opf import solve_reactance_opf


class TestPreferredReactances:
    """The two-stage design should exploit a cost-preferred operating point."""

    @pytest.fixture(scope="class")
    def peak_setup(self):
        network = case14()
        loads = network.loads_mw() * (220.0 / network.total_load_mw())
        # The attacker's knowledge is the previous hour's (different) optimum;
        # the operator's preferred reactances are the current-hour optimum.
        stale = solve_reactance_opf(
            network, loads_mw=network.loads_mw() * (208.0 / network.total_load_mw()),
            n_random_starts=1, seed=0,
        )
        current = solve_reactance_opf(network, loads_mw=loads, n_random_starts=1, seed=0)
        return network, loads, stale, current

    def test_preferred_anchor_never_increases_cost(self, peak_setup):
        network, loads, stale, current = peak_setup
        without = design_mtd_perturbation(
            network, gamma_threshold=0.1, attacker_reactances=stale.reactances,
            loads_mw=loads, method="two-stage", seed=0,
        )
        with_preferred = design_mtd_perturbation(
            network, gamma_threshold=0.1, attacker_reactances=stale.reactances,
            loads_mw=loads, method="two-stage",
            preferred_reactances=current.reactances, seed=0,
        )
        assert with_preferred.cost <= without.cost + 1e-6
        assert with_preferred.achieved_spa >= 0.1 - 1e-6

    def test_loose_target_is_nearly_free_with_preferred_anchor(self, peak_setup):
        """When the current optimum already differs enough from the attacker's
        knowledge, a loose SPA target should cost (almost) nothing."""
        network, loads, stale, current = peak_setup
        design = design_mtd_perturbation(
            network, gamma_threshold=0.05, attacker_reactances=stale.reactances,
            loads_mw=loads, method="two-stage",
            preferred_reactances=current.reactances, seed=0,
        )
        assert design.cost <= current.cost * 1.01

    def test_spa_still_measured_against_attacker(self, peak_setup):
        network, loads, stale, current = peak_setup
        design = design_mtd_perturbation(
            network, gamma_threshold=0.2, attacker_reactances=stale.reactances,
            loads_mw=loads, method="two-stage",
            preferred_reactances=current.reactances, seed=0,
        )
        attacker_matrix = reduced_measurement_matrix(network, stale.reactances)
        measured = spa_of_reactances(network, attacker_matrix, design.perturbed_reactances)
        assert measured == pytest.approx(design.achieved_spa, abs=1e-9)
        assert measured >= 0.2 - 1e-6


class TestMaxSpaFeasibilityOption:
    @pytest.fixture(scope="class")
    def stressed_network(self):
        """Every line perturbable and the load raised by 10%: the baseline
        dispatch is still feasible but the maximum-separation perturbation
        leaves no feasible dispatch."""
        return case14(dfacts_branches=tuple(range(1, 21))).with_scaled_loads(1.1)

    def test_infeasible_dispatch_raises_by_default(self, stressed_network):
        from repro.exceptions import MTDDesignError

        with pytest.raises(MTDDesignError):
            max_spa_perturbation(stressed_network, seed=0)

    def test_detection_only_mode_returns_placeholder(self, stressed_network):
        design = max_spa_perturbation(
            stressed_network, require_feasible_dispatch=False, seed=0
        )
        assert design.achieved_spa > 0.3
        assert not design.opf.success
        assert design.opf.cost == float("inf")
        # The geometric outcome is still fully usable.
        assert design.perturbation.perturbed_reactances.shape == (20,)

    def test_feasible_case_unaffected_by_flag(self, net14):
        default = max_spa_perturbation(net14, seed=0)
        relaxed = max_spa_perturbation(net14, require_feasible_dispatch=False, seed=0)
        assert default.opf.success and relaxed.opf.success
        np.testing.assert_allclose(
            default.perturbed_reactances, relaxed.perturbed_reactances
        )

    def test_baseline_dispatch_cost_available(self, net14):
        design = max_spa_perturbation(net14, seed=0)
        lp = solve_dc_opf(net14, reactances=design.perturbed_reactances)
        assert design.opf.cost == pytest.approx(lp.cost)
