"""Tests of the live observability layer: the crash-safe progress event
stream, the ``campaign watch`` analysis/CLI, the OpenMetrics and OTLP
exporters, graceful telemetry-report error handling, and the bench perf
history.

The load-bearing contracts:

* the progress stream follows the store segments' crash-safety
  discipline — a torn final line is ignored, corrupt lines are skipped,
  and a ``kill -9`` mid-campaign leaves a parseable stream;
* stored campaign records are bit-identical with the progress stream on
  or off (observability never touches the science);
* ``watch --once`` on a finished store reports 100 % with zero stalls;
* OpenMetrics text round-trips counters/gauges/histogram buckets through
  ``parse_openmetrics`` and passes its own validator;
* ``telemetry show`` / ``load_report`` turn a missing or corrupt
  ``telemetry.json`` into one actionable error line, never a traceback.
"""

from __future__ import annotations

import importlib.util
import io
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro import telemetry
from repro.campaign import CampaignDefinition, run_campaign
from repro.campaign.cli import main as cli_main
from repro.campaign.store import CampaignStore
from repro.campaign.watch import (
    MetricsServer,
    analyze_progress,
    load_view,
    render_view,
    run_watch,
    view_metrics,
)
from repro.engine import (
    AttackSpec,
    DetectorSpec,
    GridSpec,
    MTDSpec,
    ScenarioSpec,
)
from repro.exceptions import TelemetryError
from repro.telemetry.export import (
    otlp_spans_payload,
    parse_openmetrics,
    render_openmetrics,
    validate_openmetrics,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.progress import (
    FORCED_KINDS,
    ProgressWriter,
    ShardProgress,
    progress_path,
    read_progress,
    set_current,
    tick,
)
from repro.telemetry.report import load_report
from repro.telemetry.spans import drain_spans

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = str(REPO_ROOT / "src")


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    drain_spans()
    set_current(None)
    yield
    telemetry.disable()
    telemetry.reset()
    drain_spans()
    set_current(None)


def small_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="live-small",
        grid=GridSpec(case="ieee14", baseline="dc-opf"),
        attack=AttackSpec(n_attacks=16, seed=1),
        mtd=MTDSpec(policy="random", max_relative_change=0.2),
        n_trials=2,
        base_seed=23,
        deltas=(0.5, 0.9),
        metric="eta(0.9)",
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def tiny_definition(**overrides) -> CampaignDefinition:
    defaults = dict(
        name="live-campaign",
        base=small_spec(),
        grids=({"mtd.max_relative_change": (0.1, 0.2)},),
        shard_size=1,
    )
    defaults.update(overrides)
    return CampaignDefinition(**defaults)


# ----------------------------------------------------------------------
# progress stream: writer, rate limiting, crash safety
# ----------------------------------------------------------------------
class TestProgressStream:
    def test_emit_and_read_back(self, tmp_path):
        with ProgressWriter(tmp_path, min_interval=0.0) as writer:
            writer.emit("run_start", campaign="c", n_items=3)
            writer.emit("heartbeat", shard=0, done=1)
        events = read_progress(tmp_path)
        assert [e["kind"] for e in events] == ["run_start", "heartbeat"]
        assert events[0]["campaign"] == "c"
        assert events[0]["pid"] == os.getpid()
        assert [e["seq"] for e in events] == [1, 2]
        assert all(e["ts"] > 0 for e in events)

    def test_torn_final_line_is_ignored(self, tmp_path):
        with ProgressWriter(tmp_path, min_interval=0.0) as writer:
            writer.emit("run_start", n_items=1)
            writer.emit("heartbeat", shard=0, done=1)
        with progress_path(tmp_path).open("ab") as handle:
            handle.write(b'{"kind": "heartbeat", "ts": 1.0, "done": 99')
        events = read_progress(tmp_path)
        assert [e["kind"] for e in events] == ["run_start", "heartbeat"]
        assert events[-1]["done"] == 1

    def test_corrupt_middle_line_is_skipped(self, tmp_path):
        writer = ProgressWriter(tmp_path, min_interval=0.0)
        writer.emit("run_start", n_items=1)
        writer.close()
        with progress_path(tmp_path).open("ab") as handle:
            handle.write(b"not json at all\n")
            handle.write(b'{"no_kind_field": true}\n')
        with ProgressWriter(tmp_path, min_interval=0.0) as writer:
            writer.emit("run_done", complete=True)
        assert [e["kind"] for e in read_progress(tmp_path)] == [
            "run_start",
            "run_done",
        ]

    def test_missing_stream_reads_empty(self, tmp_path):
        assert read_progress(tmp_path) == []

    def test_rate_limit_drops_heartbeats_but_not_forced_kinds(self, tmp_path):
        with ProgressWriter(tmp_path, min_interval=3600.0) as writer:
            for kind in sorted(FORCED_KINDS):
                assert writer.emit(kind) is not None
            assert writer.emit("heartbeat", done=1) is not None  # first one
            assert writer.emit("heartbeat", done=2) is None  # inside window
            assert writer.emit("heartbeat", force=True, done=3) is not None
        kinds = [e["kind"] for e in read_progress(tmp_path)]
        assert kinds.count("heartbeat") == 2
        assert set(kinds) >= FORCED_KINDS

    def test_zero_interval_emits_everything(self, tmp_path):
        with ProgressWriter(tmp_path, min_interval=0.0) as writer:
            for done in range(5):
                assert writer.emit("heartbeat", done=done) is not None
        assert len(read_progress(tmp_path)) == 5

    def test_shard_progress_lifecycle(self, tmp_path):
        writer = ProgressWriter(tmp_path, min_interval=0.0)
        progress = ShardProgress(writer, shard=3, total=2)
        progress.scenario_done(n_trials=4)
        progress.scenario_done(n_trials=4)
        progress.finish()
        writer.close()
        events = read_progress(tmp_path)
        assert [e["kind"] for e in events] == [
            "shard_start",
            "heartbeat",
            "heartbeat",
            "shard_done",
        ]
        final = events[-1]
        assert final["shard"] == 3
        assert final["done"] == 2 and final["total"] == 2
        assert final["trials_done"] == 8
        assert final["wall_seconds"] >= 0 and final["cpu_seconds"] >= 0

    def test_global_tick_is_a_noop_without_a_sink(self):
        tick(scenario="x", trial=1)  # must not raise, must not write

    def test_global_tick_routes_to_installed_sink(self, tmp_path):
        writer = ProgressWriter(tmp_path, min_interval=0.0)
        set_current(ShardProgress(writer, shard=0, total=1))
        tick(scenario="s", trial=2, n_trials=4)
        set_current(None)
        writer.close()
        beat = [e for e in read_progress(tmp_path) if e["kind"] == "heartbeat"][-1]
        assert beat["scenario"] == "s" and beat["trial"] == 2


# ----------------------------------------------------------------------
# watch analysis (pure, injected clock/pid probe)
# ----------------------------------------------------------------------
def _event(kind, ts, **fields):
    return {"v": 1, "kind": kind, "ts": ts, "pid": 1234, "seq": 1, **fields}


class TestAnalyzeProgress:
    @staticmethod
    def analyze(events, now, **kwargs):
        # The synthetic events carry a fake pid; probe it as alive unless a
        # test overrides the probe to exercise dead-writer detection.
        kwargs.setdefault("pid_probe", lambda pid: True)
        return analyze_progress(events, now=now, **kwargs)

    def run_events(self):
        return [
            _event("run_start", 0.0, campaign="c", plan_hash="abc", n_items=10,
                   completed=2, heartbeat_interval=1.0),
            _event("shard_start", 1.0, shard=0, done=0, total=4),
            _event("heartbeat", 2.0, shard=0, done=1, total=4,
                   trials_done=8, trials_per_sec=4.0),
            _event("heartbeat", 4.0, shard=0, done=3, total=4,
                   trials_done=24, trials_per_sec=6.0),
        ]

    def test_baseline_and_merged_shard_state(self):
        view = self.analyze(self.run_events(), now=5.0)
        assert view.campaign == "c" and view.plan_hash == "abc"
        assert view.n_items == 10 and view.baseline == 2
        assert view.completed == 5  # baseline 2 + shard done 3
        assert view.percent == pytest.approx(50.0)
        (shard,) = view.shards
        assert shard.done == 3 and shard.trials_per_sec == 6.0
        assert shard.state == "running"
        assert not view.complete and not view.stalled_shards

    def test_rate_and_eta_from_sliding_window(self):
        view = self.analyze(self.run_events(), now=5.0)
        # 3 scenarios over the 3 s between the first and last shard event.
        assert view.rate == pytest.approx(1.0)
        assert view.eta_seconds == pytest.approx(5.0)  # 5 remaining at 1/s

    def test_stall_detection_uses_injected_clock(self):
        events = self.run_events()
        quiet = self.analyze(events, now=4.5)
        assert quiet.shards[0].state == "running"
        # Median gap ~1.33 s, threshold 5x => silent for 100 s is stalled.
        stalled = self.analyze(events, now=104.0)
        assert stalled.shards[0].state == "stalled"
        assert [s.shard for s in stalled.stalled_shards] == [0]

    def test_dead_writer_beats_stalled(self):
        view = self.analyze(self.run_events(), now=104.0,
                            pid_probe=lambda pid: False)
        assert view.shards[0].state == "dead"

    def test_run_done_marks_complete_and_partition(self):
        events = self.run_events() + [
            _event("shard_done", 5.0, shard=0, done=4, total=4),
            _event("run_done", 5.1, executed=8, from_cache=0, skipped=2,
                   complete=True),
        ]
        view = self.analyze(events, now=1000.0)
        assert view.run_complete and view.complete
        assert view.partition == {"executed": 8, "from_cache": 0, "skipped": 2}
        assert view.completed == 10
        assert view.shards[0].state == "done"
        assert not view.stalled_shards  # done shards never stall

    def test_checkpointed_run_done_is_not_campaign_complete(self):
        events = self.run_events() + [
            _event("shard_done", 5.0, shard=0, done=4, total=4),
            _event("run_done", 5.1, executed=4, from_cache=0, skipped=2,
                   complete=False),
        ]
        view = self.analyze(events, now=1000.0)
        assert view.run_complete and not view.complete
        assert view.completed == 6  # baseline 2 + executed 4

    def test_only_the_last_run_start_is_analyzed(self):
        events = self.run_events() + [
            _event("run_done", 5.0, executed=4, complete=False),
            _event("run_start", 10.0, campaign="c", plan_hash="abc",
                   n_items=10, completed=6, heartbeat_interval=1.0),
            _event("shard_start", 11.0, shard=2, done=0, total=4),
        ]
        view = self.analyze(events, now=11.5)
        assert view.baseline == 6 and not view.run_complete
        assert [s.shard for s in view.shards] == [2]

    def test_empty_events_yield_empty_view(self):
        view = self.analyze([], now=1.0)
        assert view.n_items == 0 and view.shards == ()
        assert not view.complete

    def test_to_dict_is_json_ready(self):
        view = self.analyze(self.run_events(), now=5.0)
        payload = json.loads(json.dumps(view.to_dict()))
        assert payload["completed"] == 5 and payload["n_items"] == 10
        assert payload["shards"][0]["state"] == "running"

    def test_render_view_mentions_stalls(self):
        text = render_view(self.analyze(self.run_events(), now=104.0))
        assert "STALLED" in text and "shard   0" in text

    def test_view_metrics_exposes_gauges(self):
        snap = view_metrics(self.analyze(self.run_events(), now=5.0))
        assert snap.gauges["watch.items_total"] == 10.0
        assert snap.gauges["watch.shard.done{shard=0}"] == 3.0
        text = render_openmetrics(snap)
        assert validate_openmetrics(text) == []


# ----------------------------------------------------------------------
# OpenMetrics exporter: render / validate / parse round-trip
# ----------------------------------------------------------------------
class TestOpenMetrics:
    def snapshot(self):
        reg = MetricsRegistry()
        reg.counter("engine.trials", 7)
        reg.counter("cache.analytic.hits", 3, case="ieee14")
        reg.gauge("pool.workers", 2.0)
        reg.declare_histogram("span.seconds", (0.001, 0.01, 0.1, 1.0))
        for value in (0.0005, 0.004, 0.05, 0.5, 5.0):
            reg.histogram("span.seconds", value)
        return reg.snapshot()

    def test_rendered_text_validates(self):
        text = render_openmetrics(self.snapshot())
        assert validate_openmetrics(text) == []
        assert text.rstrip().endswith("# EOF")
        assert "repro_engine_trials_total" in text
        assert 'case="ieee14"' in text

    def test_round_trip_recovers_snapshot(self):
        snap = self.snapshot()
        back = parse_openmetrics(render_openmetrics(snap))
        assert back.counters == snap.counters
        assert back.gauges == snap.gauges
        hist = back.histograms["span.seconds"]
        want = snap.histograms["span.seconds"]
        assert hist["boundaries"] == list(want["boundaries"])
        assert hist["bucket_counts"] == list(want["bucket_counts"])
        assert hist["count"] == want["count"]
        assert hist["sum"] == pytest.approx(want["sum"])
        # min/max are not representable in the exposition format.
        assert hist["min"] is None and hist["max"] is None

    def test_float_values_round_trip_exactly(self):
        reg = MetricsRegistry()
        reg.gauge("g", 0.1 + 0.2)  # classic repr-sensitive value
        back = parse_openmetrics(render_openmetrics(reg.snapshot()))
        assert back.gauges["g"] == 0.1 + 0.2

    def test_name_collision_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("a.b", 1)
        reg.counter("a_b", 1)  # mangles to the same exposition name
        with pytest.raises(ValueError, match="both export as"):
            render_openmetrics(reg.snapshot())

    def test_validator_flags_missing_eof(self):
        text = render_openmetrics(self.snapshot())
        broken = text.replace("# EOF\n", "")
        assert any("EOF" in problem for problem in validate_openmetrics(broken))

    def test_validator_flags_undeclared_family(self):
        text = render_openmetrics(self.snapshot())
        broken = text.replace("# EOF", "repro_rogue_metric 1\n# EOF")
        assert validate_openmetrics(broken)

    def test_validator_flags_negative_counter(self):
        reg = MetricsRegistry()
        reg.counter("c", 5)
        text = render_openmetrics(reg.snapshot())
        broken = text.replace("repro_c_total 5", "repro_c_total -5")
        assert any("invalid" in problem for problem in validate_openmetrics(broken))

    def test_accepts_plain_mapping_payload(self):
        # telemetry.json stores the snapshot as a plain dict.
        payload = self.snapshot().to_dict()
        text = render_openmetrics(payload)
        assert validate_openmetrics(text) == []


# ----------------------------------------------------------------------
# OTLP exporter
# ----------------------------------------------------------------------
class TestOtlpExport:
    def spans(self):
        return [
            {
                "name": "campaign.run",
                "wall_seconds": 2.0,
                "cpu_seconds": 1.5,
                "start_unix": 100.0,
                "attributes": {"plan": "abc"},
                "children": [
                    {"name": "campaign.shard", "wall_seconds": 0.75,
                     "attributes": {"shard": 0}, "children": []},
                    {"name": "campaign.shard", "wall_seconds": 0.75,
                     "attributes": {"shard": 1}, "children": []},
                ],
            }
        ]

    def test_payload_shape_and_ids(self):
        payload = otlp_spans_payload(self.spans(), resource={"python": "3.x"})
        scope = payload["resourceSpans"][0]["scopeSpans"][0]
        assert scope["scope"]["name"] == "repro.telemetry"
        spans = scope["spans"]
        assert [s["name"] for s in spans] == [
            "campaign.run", "campaign.shard", "campaign.shard",
        ]
        root, child_a, child_b = spans
        assert len(root["traceId"]) == 32 and len(root["spanId"]) == 16
        assert root["parentSpanId"] == ""
        assert child_a["parentSpanId"] == root["spanId"]
        assert child_a["spanId"] != child_b["spanId"]
        for span in spans:
            assert int(span["endTimeUnixNano"]) >= int(span["startTimeUnixNano"])
        resource_keys = {
            a["key"]: a["value"]
            for a in payload["resourceSpans"][0]["resource"]["attributes"]
        }
        assert resource_keys["service.name"] == {"stringValue": "repro"}
        assert "python" in resource_keys

    def test_children_lay_out_sequentially_from_parent_start(self):
        spans = otlp_spans_payload(self.spans())["resourceSpans"][0][
            "scopeSpans"][0]["spans"]
        root, child_a, child_b = spans
        assert child_a["startTimeUnixNano"] == root["startTimeUnixNano"]
        gap = int(child_b["startTimeUnixNano"]) - int(child_a["startTimeUnixNano"])
        assert gap == int(0.75 * 1e9)

    def test_ids_are_deterministic(self):
        first = otlp_spans_payload(self.spans())
        second = otlp_spans_payload(self.spans())
        assert first == second

    def test_cpu_seconds_becomes_an_attribute(self):
        spans = otlp_spans_payload(self.spans())["resourceSpans"][0][
            "scopeSpans"][0]["spans"]
        attrs = {a["key"]: a["value"] for a in spans[0]["attributes"]}
        assert attrs["cpu_seconds"] == {"doubleValue": 1.5}


# ----------------------------------------------------------------------
# graceful telemetry.json failures
# ----------------------------------------------------------------------
class TestLoadReport:
    def test_missing_report_names_the_store(self, tmp_path):
        with pytest.raises(TelemetryError, match="no telemetry report"):
            load_report(tmp_path)
        with pytest.raises(TelemetryError, match="--telemetry"):
            load_report(tmp_path)

    def test_truncated_json_mentions_crash(self, tmp_path):
        (tmp_path / "telemetry.json").write_text('{"schema_version": 1, "met')
        with pytest.raises(TelemetryError, match="truncated"):
            load_report(tmp_path)

    def test_empty_file(self, tmp_path):
        (tmp_path / "telemetry.json").write_text("")
        with pytest.raises(TelemetryError, match="is empty"):
            load_report(tmp_path)

    def test_non_json(self, tmp_path):
        (tmp_path / "telemetry.json").write_text("<html>not json</html>")
        with pytest.raises(TelemetryError, match="not valid JSON"):
            load_report(tmp_path)

    def test_non_object_document(self, tmp_path):
        (tmp_path / "telemetry.json").write_text("[1, 2, 3]")
        with pytest.raises(TelemetryError, match="list"):
            load_report(tmp_path)


class TestCliGracefulErrors:
    def one_line(self, err: str) -> None:
        assert "Traceback" not in err
        assert len([line for line in err.strip().splitlines() if line]) == 1

    def test_show_missing_report(self, tmp_path, capsys):
        assert cli_main(["telemetry", "show", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "no telemetry report" in err
        self.one_line(err)

    def test_show_truncated_report(self, tmp_path, capsys):
        (tmp_path / "telemetry.json").write_text('{"schema_version": 1, "met')
        assert cli_main(["telemetry", "show", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "truncated" in err
        self.one_line(err)

    def test_show_non_json_report(self, tmp_path, capsys):
        (tmp_path / "telemetry.json").write_text("not json")
        assert cli_main(["telemetry", "show", str(tmp_path)]) == 1
        self.one_line(capsys.readouterr().err)

    def test_status_telemetry_flag_degrades_gracefully(self, tmp_path, capsys):
        telemetry.enable()
        run_campaign(tiny_definition(), tmp_path / "store")
        (tmp_path / "store" / "telemetry.json").write_text("not json")
        code = cli_main(
            ["campaign", "status", "--store", str(tmp_path / "store"),
             "--telemetry"]
        )
        out = capsys.readouterr()
        assert code == 0  # the store itself is fine
        assert "Traceback" not in out.err
        assert "not valid JSON" in out.out + out.err


# ----------------------------------------------------------------------
# campaign integration: stream contents, watch CLI, bit-identity
# ----------------------------------------------------------------------
class TestCampaignIntegration:
    def run_instrumented(self, store, monkeypatch, **kwargs):
        monkeypatch.setenv("REPRO_PROGRESS_INTERVAL", "0")
        telemetry.enable()
        return run_campaign(tiny_definition(), store, **kwargs)

    def test_stream_brackets_the_run(self, tmp_path, monkeypatch):
        store = tmp_path / "store"
        self.run_instrumented(store, monkeypatch)
        events = read_progress(store)
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_done"
        assert kinds.count("shard_start") == 2 and kinds.count("shard_done") == 2
        start = events[0]
        assert start["n_items"] == 2 and start["campaign"] == "live-campaign"
        done = events[-1]
        assert done["complete"] is True and done["executed"] == 2

    def test_no_stream_when_telemetry_is_off(self, tmp_path):
        run_campaign(tiny_definition(), tmp_path / "store")
        assert not progress_path(tmp_path / "store").exists()
        view = load_view(tmp_path / "store")
        assert view.source == "store" and view.complete

    def test_pool_workers_write_the_same_stream(self, tmp_path, monkeypatch):
        store = tmp_path / "store"
        self.run_instrumented(store, monkeypatch, n_workers=2)
        events = read_progress(store)
        kinds = [e["kind"] for e in events]
        assert kinds.count("shard_start") == 2 and kinds.count("shard_done") == 2
        pids = {e["pid"] for e in events if e["kind"] == "shard_done"}
        assert pids  # workers stamped their own pids
        view = analyze_progress(events)
        assert view.complete and view.completed == 2

    def test_watch_once_on_finished_store(self, tmp_path, monkeypatch):
        store = tmp_path / "store"
        self.run_instrumented(store, monkeypatch)
        out = io.StringIO()
        assert run_watch(store, once=True, json_output=True, out=out) == 0
        payload = json.loads(out.getvalue())
        assert payload["complete"] is True
        assert payload["completed"] == payload["n_items"] == 2
        assert payload["percent"] == 100.0
        assert payload["stalled"] == []
        assert payload["source"] == "progress"

    def test_watch_cli_verb(self, tmp_path, monkeypatch, capsys):
        store = tmp_path / "store"
        self.run_instrumented(store, monkeypatch)
        code = cli_main(
            ["campaign", "watch", "--store", str(store), "--once", "--json"]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["complete"] is True

    def test_watch_once_incomplete_checkpoint_exits_one(
        self, tmp_path, monkeypatch
    ):
        store = tmp_path / "store"
        self.run_instrumented(store, monkeypatch, shard_limit=1)
        out = io.StringIO()
        assert run_watch(store, once=True, json_output=True, out=out) == 1
        payload = json.loads(out.getvalue())
        assert payload["run_complete"] is True and payload["complete"] is False
        assert payload["completed"] == 1 and payload["n_items"] == 2

    def test_watch_missing_store_is_an_error(self, tmp_path, capsys):
        code = cli_main(
            ["campaign", "watch", "--store", str(tmp_path / "nope"), "--once"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_stored_records_identical_with_progress_on_off(
        self, tmp_path, monkeypatch
    ):
        self.run_instrumented(tmp_path / "on", monkeypatch)
        telemetry.disable()
        run_campaign(tiny_definition(), tmp_path / "off")

        def normalized(directory):
            records = {}
            for record in CampaignStore(directory).records():
                record.pop("created_unix", None)
                record.pop("elapsed_seconds", None)
                records[record["spec_hash"]] = record
            return records

        assert normalized(tmp_path / "on") == normalized(tmp_path / "off")
        assert progress_path(tmp_path / "on").exists()
        assert not progress_path(tmp_path / "off").exists()

    def test_metrics_prom_written_next_to_report(self, tmp_path, monkeypatch):
        store = tmp_path / "store"
        self.run_instrumented(store, monkeypatch)
        text = (store / "metrics.prom").read_text()
        assert validate_openmetrics(text) == []
        snap = parse_openmetrics(text)
        assert snap.counters.get("engine.trials", 0) > 0


class TestKillLeavesParseableStream:
    """kill -9 a heartbeating campaign: the stream stays parseable and the
    watcher keeps working off whatever was durable."""

    N_POINTS = 12

    def definition(self) -> CampaignDefinition:
        base = small_spec(
            name="kill-live",
            attack=AttackSpec(n_attacks=60, seed=1),
            detector=DetectorSpec(method="monte-carlo", n_noise_trials=1200),
            n_trials=1,
        )
        ratios = tuple(round(0.05 + 0.002 * k, 3) for k in range(self.N_POINTS))
        return CampaignDefinition(
            name="kill-live", base=base,
            grids=({"attack.ratio": ratios},), shard_size=2,
        )

    def test_kill_mid_campaign(self, tmp_path):
        def_path = tmp_path / "campaign.json"
        def_path.write_text(self.definition().to_json())
        store_dir = tmp_path / "kill.campaign"

        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = REPO_SRC + (os.pathsep + existing if existing else "")
        env["REPRO_TELEMETRY"] = "1"
        env["REPRO_PROGRESS_INTERVAL"] = "0"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", "run", str(def_path),
             "--store", str(store_dir)],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env,
        )
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                events = read_progress(store_dir)
                if sum(e["kind"] == "heartbeat" for e in events) >= 2:
                    break
                if process.poll() is not None:
                    pytest.fail("campaign finished before it could be killed")
                time.sleep(0.01)
            else:
                pytest.fail("campaign never heartbeat")
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=60)

        # Whatever the kill left behind must parse cleanly (a torn tail is
        # silently dropped) and must not claim the run finished.
        events = read_progress(store_dir)
        assert events and events[0]["kind"] == "run_start"
        assert all("kind" in e and "ts" in e and "pid" in e for e in events)
        assert events[-1]["kind"] != "run_done"
        view = analyze_progress(events)
        assert view.n_items == self.N_POINTS and not view.complete

        # The dead writer is detected once its silence exceeds the stall
        # threshold (its pid is gone, so the state is "dead", not merely
        # "stalled").
        late = analyze_progress(events, now=time.time() + 3600.0)
        assert late.shards  # at least one shard had started
        assert all(s.state == "dead" for s in late.shards if not s.complete)


# ----------------------------------------------------------------------
# scrape endpoint
# ----------------------------------------------------------------------
class TestMetricsServer:
    def test_serves_openmetrics_and_health(self):
        reg = MetricsRegistry()
        reg.counter("scrapes", 1)
        with MetricsServer(lambda: reg.snapshot(), port=0) as server:
            url = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{url}/metrics", timeout=10) as response:
                body = response.read().decode("utf-8")
                assert response.status == 200
                assert "openmetrics-text" in response.headers["Content-Type"]
            assert validate_openmetrics(body) == []
            assert "repro_scrapes_total 1" in body
            with urllib.request.urlopen(f"{url}/healthz", timeout=10) as response:
                assert response.read() == b"ok\n"

    def test_unknown_path_is_404(self):
        with MetricsServer(lambda: MetricsRegistry().snapshot(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope", timeout=10
                )
            assert excinfo.value.code == 404


# ----------------------------------------------------------------------
# bench perf history (scripts/check_bench_manifest.py --compare)
# ----------------------------------------------------------------------
def _load_manifest_script():
    path = REPO_ROOT / "scripts" / "check_bench_manifest.py"
    spec = importlib.util.spec_from_file_location("check_bench_manifest", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _load_bench_utils():
    path = REPO_ROOT / "benchmarks" / "_bench_utils.py"
    spec = importlib.util.spec_from_file_location("bench_utils_under_test", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchHistory:
    def write_record(self, bench_dir, name, value, created, scale="quick",
                     metric="sweep_seconds"):
        bench_dir.mkdir(parents=True, exist_ok=True)
        (bench_dir / f"BENCH_{name}.json").write_text(json.dumps({
            "name": name, "created_unix": created, "scale": scale,
            metric: value,
        }))

    def append_history(self, bench_dir, name, value, created, scale="quick",
                       metric="sweep_seconds"):
        bench_dir.mkdir(parents=True, exist_ok=True)
        entry = {"name": name, "created_unix": created, "git_sha": "deadbee",
                 "scale": scale, "metric": metric, "value": value}
        with (bench_dir / "history.ndjson").open("a") as handle:
            handle.write(json.dumps(entry) + "\n")

    def test_key_metric_candidates_stay_in_sync(self):
        script = _load_manifest_script()
        utils = _load_bench_utils()
        assert script.KEY_METRIC_CANDIDATES == utils.KEY_METRIC_CANDIDATES

    def test_key_metric_prefers_ratio_and_skips_bools(self):
        script = _load_manifest_script()
        record = {"bit_identical": True, "speedup": 3.0, "overhead_ratio": 1.01}
        assert script.key_metric(record) == ("overhead_ratio", 1.01)
        assert script.key_metric({"bit_identical": True}) is None

    def test_direction_heuristic(self):
        script = _load_manifest_script()
        assert script.lower_is_better("sweep_seconds")
        assert script.lower_is_better("overhead_ratio")
        assert not script.lower_is_better("speedup")
        assert not script.lower_is_better("min_speedup")
        assert not script.lower_is_better("trials_per_second")

    def test_emit_bench_json_appends_history(self, tmp_path, monkeypatch):
        utils = _load_bench_utils()
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
        utils.emit_bench_json("histtest", {"scale": "smoke", "sweep_seconds": 1.5})
        script = _load_manifest_script()
        entries = script.read_history(tmp_path)
        assert len(entries) == 1
        assert entries[0]["name"] == "histtest"
        assert entries[0]["metric"] == "sweep_seconds"
        assert entries[0]["value"] == 1.5
        assert entries[0]["scale"] == "smoke"

    def test_read_history_tolerates_torn_tail(self, tmp_path):
        script = _load_manifest_script()
        self.append_history(tmp_path, "a", 1.0, 100.0)
        with (tmp_path / "history.ndjson").open("ab") as handle:
            handle.write(b'{"name": "b", "value"')
        entries = script.read_history(tmp_path)
        assert [e["name"] for e in entries] == ["a"]

    def test_compare_flags_regression(self, tmp_path, capsys):
        script = _load_manifest_script()
        self.append_history(tmp_path, "x", 1.0, 100.0)
        self.write_record(tmp_path, "x", 1.5, 200.0)  # +50 % slower
        assert script.compare(bench_dir=tmp_path) == 1
        assert "regressed" in capsys.readouterr().err

    def test_compare_passes_improvement_and_small_noise(self, tmp_path, capsys):
        script = _load_manifest_script()
        self.append_history(tmp_path, "fast", 1.0, 100.0)
        self.write_record(tmp_path, "fast", 0.7, 200.0)  # improvement
        self.append_history(tmp_path, "noisy", 1.0, 100.0)
        self.write_record(tmp_path, "noisy", 1.1, 200.0)  # +10 % < threshold
        assert script.compare(bench_dir=tmp_path) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_respects_metric_direction(self, tmp_path, capsys):
        script = _load_manifest_script()
        self.append_history(tmp_path, "s", 4.0, 100.0, metric="speedup")
        self.write_record(tmp_path, "s", 2.0, 200.0, metric="speedup")
        assert script.compare(bench_dir=tmp_path) == 1  # speedup halved
        capsys.readouterr()
        self.write_record(tmp_path, "s", 8.0, 300.0, metric="speedup")
        assert script.compare(bench_dir=tmp_path) == 0  # speedup doubled

    def test_compare_skips_own_and_newer_entries(self, tmp_path, capsys):
        script = _load_manifest_script()
        # The record's own emission shares its timestamp: not a baseline.
        self.append_history(tmp_path, "x", 9.0, 200.0)
        self.write_record(tmp_path, "x", 9.0, 200.0)
        assert script.compare(bench_dir=tmp_path) == 0
        assert "no prior entry" in capsys.readouterr().out

    def test_compare_ignores_other_scales(self, tmp_path, capsys):
        script = _load_manifest_script()
        self.append_history(tmp_path, "x", 0.001, 100.0, scale="smoke")
        self.write_record(tmp_path, "x", 10.0, 200.0, scale="quick")
        assert script.compare(bench_dir=tmp_path) == 0
        assert "no prior entry" in capsys.readouterr().out

    def test_compare_threshold_is_tunable(self, tmp_path, capsys):
        script = _load_manifest_script()
        self.append_history(tmp_path, "x", 1.0, 100.0)
        self.write_record(tmp_path, "x", 1.1, 200.0)
        assert script.compare(threshold=0.05, bench_dir=tmp_path) == 1
        capsys.readouterr()
        assert script.compare(threshold=0.5, bench_dir=tmp_path) == 0

    def test_compare_without_history_is_a_noop(self, tmp_path, capsys):
        script = _load_manifest_script()
        self.write_record(tmp_path, "x", 1.0, 100.0)
        assert script.compare(bench_dir=tmp_path) == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_committed_history_matches_committed_records(self):
        # Every committed BENCH record with a headline metric has at least
        # its own seed entry in the committed timeline.
        script = _load_manifest_script()
        bench_dir = REPO_ROOT / "benchmarks"
        names = {e["name"] for e in script.read_history(bench_dir)}
        for path in bench_dir.glob("BENCH_*.json"):
            record = json.loads(path.read_text())
            if script.key_metric(record) is not None:
                assert record["name"] in names, path.name
