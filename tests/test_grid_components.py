"""Tests for repro.grid.components."""

from __future__ import annotations

import pytest

from repro.exceptions import GridModelError
from repro.grid.components import Branch, Bus, Generator


class TestBus:
    def test_valid_bus(self):
        bus = Bus(index=0, load_mw=12.5, name="Bus 1", is_slack=True)
        assert bus.load_mw == 12.5
        assert bus.is_slack

    def test_negative_index_rejected(self):
        with pytest.raises(GridModelError):
            Bus(index=-1)

    def test_negative_load_rejected(self):
        with pytest.raises(GridModelError):
            Bus(index=0, load_mw=-1.0)

    def test_with_load_returns_new_bus(self):
        bus = Bus(index=2, load_mw=10.0)
        updated = bus.with_load(20.0)
        assert updated.load_mw == 20.0
        assert bus.load_mw == 10.0
        assert updated.index == bus.index


class TestBranch:
    def test_valid_branch(self):
        branch = Branch(index=0, from_bus=0, to_bus=1, reactance=0.1, rate_mw=50.0)
        assert branch.susceptance == pytest.approx(10.0)
        assert branch.endpoints() == (0, 1)

    def test_self_loop_rejected(self):
        with pytest.raises(GridModelError):
            Branch(index=0, from_bus=1, to_bus=1, reactance=0.1)

    def test_non_positive_reactance_rejected(self):
        with pytest.raises(GridModelError):
            Branch(index=0, from_bus=0, to_bus=1, reactance=0.0)

    def test_non_positive_rate_rejected(self):
        with pytest.raises(GridModelError):
            Branch(index=0, from_bus=0, to_bus=1, reactance=0.1, rate_mw=0.0)

    def test_dfacts_limits_default_to_nominal(self):
        branch = Branch(index=0, from_bus=0, to_bus=1, reactance=0.2)
        assert branch.reactance_min == pytest.approx(0.2)
        assert branch.reactance_max == pytest.approx(0.2)

    def test_with_dfacts_sets_range(self):
        branch = Branch(index=0, from_bus=0, to_bus=1, reactance=0.2).with_dfacts(0.5, 1.5)
        assert branch.has_dfacts
        assert branch.reactance_min == pytest.approx(0.1)
        assert branch.reactance_max == pytest.approx(0.3)

    def test_invalid_dfacts_range_rejected(self):
        with pytest.raises(GridModelError):
            Branch(
                index=0,
                from_bus=0,
                to_bus=1,
                reactance=0.2,
                has_dfacts=True,
                dfacts_min_factor=1.2,
                dfacts_max_factor=1.5,
            )

    def test_with_reactance_preserves_other_fields(self):
        branch = Branch(index=3, from_bus=0, to_bus=1, reactance=0.2, rate_mw=40.0)
        updated = branch.with_reactance(0.25)
        assert updated.reactance == pytest.approx(0.25)
        assert updated.rate_mw == pytest.approx(40.0)
        assert updated.index == 3


class TestGenerator:
    def test_valid_generator(self):
        gen = Generator(index=0, bus=1, p_max_mw=100.0, cost_per_mwh=25.0)
        assert gen.cost_of(10.0) == pytest.approx(250.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(GridModelError):
            Generator(index=0, bus=0, p_max_mw=-5.0)

    def test_p_min_above_p_max_rejected(self):
        with pytest.raises(GridModelError):
            Generator(index=0, bus=0, p_max_mw=10.0, p_min_mw=20.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(GridModelError):
            Generator(index=0, bus=0, p_max_mw=10.0, cost_per_mwh=-1.0)
