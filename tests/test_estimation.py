"""Tests for the state-estimation stack (measurements, WLS, BDD, observability)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimation.bdd import BadDataDetector
from repro.estimation.measurement import DEFAULT_NOISE_SIGMA, MeasurementSystem
from repro.estimation.observability import is_observable, observability_report
from repro.estimation.state_estimator import WLSStateEstimator
from repro.exceptions import EstimationError
from repro.powerflow.dc import solve_dc_power_flow


class TestMeasurementSystem:
    def test_dimensions(self, net14, measurement14):
        assert measurement14.n_measurements == 54
        assert measurement14.n_states == 13
        assert measurement14.matrix().shape == (54, 13)

    def test_noiseless_measurements_match_model(self, net14, opf14, measurement14):
        z = measurement14.noiseless_measurements(opf14.angles_rad)
        L = net14.n_branches
        # First L entries are the forward branch flows in per unit.
        np.testing.assert_allclose(z[:L] * net14.base_mva, opf14.flows_mw, atol=1e-6)
        # Next L are the reverse flows.
        np.testing.assert_allclose(z[L : 2 * L], -z[:L], atol=1e-12)

    def test_noise_statistics(self, opf14, measurement14):
        rng = np.random.default_rng(0)
        samples = np.array(
            [measurement14.measure(opf14.angles_rad, rng=rng) for _ in range(200)]
        )
        clean = measurement14.noiseless_measurements(opf14.angles_rad)
        residuals = samples - clean
        assert abs(residuals.mean()) < 5e-4
        assert residuals.std() == pytest.approx(measurement14.noise_sigma, rel=0.1)

    def test_attack_is_added(self, opf14, measurement14):
        attack = np.zeros(54)
        attack[3] = 0.5
        clean = measurement14.measure(opf14.angles_rad, rng=1)
        attacked = measurement14.measure(opf14.angles_rad, rng=1, attack=attack)
        np.testing.assert_allclose(attacked - clean, attack, atol=1e-12)

    def test_wrong_attack_length_rejected(self, opf14, measurement14):
        with pytest.raises(EstimationError):
            measurement14.measure(opf14.angles_rad, attack=np.ones(3))

    def test_wrong_angle_length_rejected(self, measurement14):
        with pytest.raises(EstimationError):
            measurement14.noiseless_measurements(np.zeros(5))

    def test_invalid_noise_rejected(self, net14):
        with pytest.raises(EstimationError):
            MeasurementSystem.for_network(net14, noise_sigma=0.0)

    def test_with_reactances_changes_matrix(self, net14, measurement14):
        x = net14.reactances()
        x[0] *= 1.3
        perturbed = measurement14.with_reactances(x)
        assert not np.allclose(perturbed.matrix(), measurement14.matrix())
        assert perturbed.noise_sigma == measurement14.noise_sigma

    def test_default_noise_constant(self):
        assert DEFAULT_NOISE_SIGMA == pytest.approx(0.0015)


class TestWLSEstimator:
    def test_recovers_state_without_noise(self, net14, opf14, measurement14):
        estimator = WLSStateEstimator(measurement14)
        z = measurement14.noiseless_measurements(opf14.angles_rad)
        estimate = estimator.estimate(z)
        expected = measurement14.reduce_angles(opf14.angles_rad)
        np.testing.assert_allclose(estimate.angles_rad, expected, atol=1e-9)
        assert estimate.residual_norm == pytest.approx(0.0, abs=1e-8)

    def test_estimate_is_unbiased_under_noise(self, opf14, measurement14):
        estimator = WLSStateEstimator(measurement14)
        rng = np.random.default_rng(3)
        expected = measurement14.reduce_angles(opf14.angles_rad)
        estimates = []
        for _ in range(200):
            z = measurement14.measure(opf14.angles_rad, rng=rng)
            estimates.append(estimator.estimate(z).angles_rad)
        mean_estimate = np.mean(estimates, axis=0)
        np.testing.assert_allclose(mean_estimate, expected, atol=5e-4)

    def test_degrees_of_freedom(self, measurement14):
        estimator = WLSStateEstimator(measurement14)
        assert estimator.degrees_of_freedom == 54 - 13

    def test_wrong_measurement_length_rejected(self, measurement14):
        estimator = WLSStateEstimator(measurement14)
        with pytest.raises(EstimationError):
            estimator.estimate(np.zeros(10))

    def test_attack_residual_zero_for_stealthy_attack(self, measurement14, rng):
        """An attack a = Hc has zero residual on the matching system."""
        estimator = WLSStateEstimator(measurement14)
        attack = measurement14.matrix() @ rng.standard_normal(13)
        assert estimator.attack_residual_norm(attack) == pytest.approx(0.0, abs=1e-8)

    def test_attack_residual_positive_for_generic_vector(self, measurement14, rng):
        estimator = WLSStateEstimator(measurement14)
        attack = rng.standard_normal(54)
        assert estimator.attack_residual_norm(attack) > 0.0

    def test_attack_residual_wrong_length(self, measurement14):
        estimator = WLSStateEstimator(measurement14)
        with pytest.raises(EstimationError):
            estimator.attack_residual(np.ones(5))


class TestBadDataDetector:
    def test_false_positive_rate_close_to_target(self, net14, opf14):
        system = MeasurementSystem.for_network(net14, noise_sigma=0.002)
        detector = BadDataDetector(system, false_positive_rate=0.05)
        rate = detector.empirical_false_positive_rate(
            opf14.angles_rad, n_trials=2000, rng=7
        )
        assert rate == pytest.approx(0.05, abs=0.02)

    def test_gross_error_detected(self, net14, opf14, measurement14):
        detector = BadDataDetector(measurement14)
        z = measurement14.noiseless_measurements(opf14.angles_rad)
        z[0] += 1.0  # a gross 100 MW error on one flow measurement
        assert detector.raises_alarm(z)

    def test_clean_measurements_pass(self, opf14, measurement14):
        detector = BadDataDetector(measurement14)
        z = measurement14.measure(opf14.angles_rad, rng=5)
        assert not detector.raises_alarm(z)

    def test_stealthy_attack_not_detected_analytically(self, measurement14, rng):
        detector = BadDataDetector(measurement14)
        attack = measurement14.matrix() @ rng.standard_normal(13)
        assert detector.detection_probability(attack) == pytest.approx(
            detector.false_positive_rate
        )

    def test_detection_probability_increases_with_attack_size(self, net14, measurement14, rng):
        x = net14.reactances()
        for index in net14.dfacts_branches:
            x[index] *= 1.5
        perturbed = measurement14.with_reactances(x)
        detector = BadDataDetector(perturbed)
        attack = measurement14.matrix() @ rng.standard_normal(13)
        small = detector.detection_probability(0.05 * attack)
        large = detector.detection_probability(0.5 * attack)
        assert large >= small

    def test_analytic_matches_monte_carlo(self, net14, opf14, measurement14, rng):
        """The closed-form noncentral-χ² evaluation matches the paper's
        Monte-Carlo procedure within sampling error."""
        x = net14.reactances()
        for index in net14.dfacts_branches:
            x[index] *= 0.6
        perturbed = measurement14.with_reactances(x)
        detector = BadDataDetector(perturbed, false_positive_rate=0.01)
        attack = measurement14.matrix() @ rng.standard_normal(13)
        attack *= 0.02 / np.linalg.norm(attack) * 54
        analytic = detector.detection_probability(attack)
        empirical = detector.detection_probability_monte_carlo(
            attack, opf14.angles_rad, n_trials=400, rng=11
        )
        assert empirical == pytest.approx(analytic, abs=0.08)

    def test_invalid_fp_rate_rejected(self, measurement14):
        with pytest.raises(EstimationError):
            BadDataDetector(measurement14, false_positive_rate=1.5)

    def test_threshold_positive_and_monotone_in_alpha(self, measurement14):
        strict = BadDataDetector(measurement14, false_positive_rate=1e-4)
        loose = BadDataDetector(measurement14, false_positive_rate=1e-1)
        assert strict.threshold > loose.threshold > 0.0

    def test_invalid_trial_counts_rejected(self, opf14, measurement14):
        detector = BadDataDetector(measurement14)
        with pytest.raises(EstimationError):
            detector.detection_probability_monte_carlo(
                np.zeros(54), opf14.angles_rad, n_trials=0
            )
        with pytest.raises(EstimationError):
            detector.empirical_false_positive_rate(opf14.angles_rad, n_trials=0)


class TestObservability:
    def test_full_measurement_set_observable(self, net14):
        assert is_observable(net14)
        report = observability_report(net14)
        assert report.observable
        assert report.rank == 13
        assert report.undetermined_states == ()

    def test_injection_only_still_observable(self, net14):
        # Nodal injections alone span the state space for a connected grid.
        rows = np.arange(2 * net14.n_branches, net14.n_measurements)
        assert is_observable(net14, measurement_rows=rows)

    def test_single_flow_measurement_unobservable(self, net14):
        rows = np.array([0])
        report = observability_report(net14, measurement_rows=rows)
        assert not report.observable
        assert report.rank < report.n_states
        assert len(report.undetermined_states) > 0

    def test_boolean_mask_supported(self, net14):
        mask = np.ones(net14.n_measurements, dtype=bool)
        assert is_observable(net14, measurement_rows=mask)

    def test_bad_mask_length_rejected(self, net14):
        with pytest.raises(ValueError):
            observability_report(net14, measurement_rows=np.ones(3, dtype=bool))
