"""Tests for repro.utils.units."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.units import (
    DEFAULT_BASE_MVA,
    dollars_per_mwh_to_per_pu_hour,
    mw_to_pu,
    pu_to_mw,
)


class TestConversions:
    def test_round_trip(self):
        values = np.array([0.0, 50.0, 123.4])
        np.testing.assert_allclose(pu_to_mw(mw_to_pu(values)), values)

    def test_default_base(self):
        assert mw_to_pu(100.0) == pytest.approx(1.0)
        assert DEFAULT_BASE_MVA == pytest.approx(100.0)

    def test_custom_base(self):
        assert mw_to_pu(50.0, base_mva=200.0) == pytest.approx(0.25)
        assert pu_to_mw(0.25, base_mva=200.0) == pytest.approx(50.0)

    def test_invalid_base_rejected(self):
        with pytest.raises(ValueError):
            mw_to_pu(1.0, base_mva=0.0)
        with pytest.raises(ValueError):
            pu_to_mw(1.0, base_mva=-5.0)

    def test_cost_conversion(self):
        # 20 $/MWh on a 100 MVA base is 2000 $ per p.u.-hour.
        assert dollars_per_mwh_to_per_pu_hour(20.0) == pytest.approx(2000.0)

    def test_cost_conversion_invalid_base(self):
        with pytest.raises(ValueError):
            dollars_per_mwh_to_per_pu_hour(20.0, base_mva=0.0)
