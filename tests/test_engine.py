"""Tests of the scenario engine: specs, execution, caching, registry."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.montecarlo import summarize_values
from repro.analysis.reporting import format_summaries
from repro.engine import (
    AttackSpec,
    DetectorSpec,
    GridSpec,
    MTDSpec,
    ResultCache,
    ScenarioEngine,
    ScenarioResult,
    ScenarioSpec,
    TrialResult,
    available_scenarios,
    expand_grid,
    run_trial,
    scenario_suite,
    trial_seed_sequence,
)
from repro.engine.results import merge_metric
from repro.exceptions import ConfigurationError
from repro.grid.cases import available_cases, load_case
from repro.opf import solve_dc_opf


def small_spec(**overrides) -> ScenarioSpec:
    """A fast random-policy scenario used throughout the tests."""
    defaults = dict(
        name="test-small",
        grid=GridSpec(case="ieee14", baseline="dc-opf"),
        attack=AttackSpec(n_attacks=16, seed=1),
        mtd=MTDSpec(policy="random", max_relative_change=0.2),
        n_trials=4,
        base_seed=11,
        deltas=(0.5, 0.9),
        metric="eta(0.9)",
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestScenarioSpec:
    def test_dict_round_trip(self):
        spec = small_spec(
            grid=GridSpec(case="synthetic57", case_kwargs=(("dfacts_fraction", 0.4),)),
            tags=("a", "b"),
            description="round trip",
        )
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt == spec

    def test_json_round_trip(self):
        spec = small_spec(detector=DetectorSpec(method="monte-carlo", n_noise_trials=50))
        rebuilt = ScenarioSpec.from_json(spec.to_json(indent=2))
        assert rebuilt == spec
        # The serialised form is valid, plain JSON.
        payload = json.loads(spec.to_json())
        assert payload["mtd"]["policy"] == "random"

    def test_from_dict_rejects_unknown_fields(self):
        data = small_spec().to_dict()
        data["bogus"] = 1
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict(data)
        data = small_spec().to_dict()
        data["mtd"]["bogus"] = 1
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict(data)

    def test_content_hash_ignores_labels(self):
        spec = small_spec()
        relabelled = spec.with_updates(name="other", description="d", tags=("x",))
        assert relabelled.content_hash() == spec.content_hash()

    def test_content_hash_tracks_parameters(self):
        spec = small_spec()
        assert spec.with_updates({"attack.n_attacks": 17}).content_hash() != spec.content_hash()
        assert spec.with_updates({"mtd.policy": "none"}).content_hash() != spec.content_hash()
        assert spec.with_updates(base_seed=12).content_hash() != spec.content_hash()

    def test_content_hash_survives_round_trip(self):
        spec = small_spec()
        assert ScenarioSpec.from_json(spec.to_json()).content_hash() == spec.content_hash()

    def test_with_updates_dotted_paths(self):
        spec = small_spec()
        updated = spec.with_updates(
            {"mtd.max_relative_change": 0.3, "grid.case": "ieee30"}, n_trials=7
        )
        assert updated.mtd.max_relative_change == 0.3
        assert updated.grid.case == "ieee30"
        assert updated.n_trials == 7
        # The original is untouched (specs are frozen values).
        assert spec.mtd.max_relative_change == 0.2

    def test_with_updates_rejects_unknown_component(self):
        with pytest.raises(ConfigurationError):
            small_spec().with_updates({"nosuch.field": 1})

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GridSpec(baseline="ac-opf")
        with pytest.raises(ConfigurationError):
            AttackSpec(n_attacks=0)
        with pytest.raises(ConfigurationError):
            MTDSpec(policy="designed", gamma_threshold=None)
        with pytest.raises(ConfigurationError):
            MTDSpec(policy="designed", gamma_threshold=2.0)  # > pi/2: likely degrees
        with pytest.raises(ConfigurationError):
            MTDSpec(policy="designed", gamma_threshold=-0.1)
        with pytest.raises(ConfigurationError):
            DetectorSpec(method="oracle")
        with pytest.raises(ConfigurationError):
            small_spec(n_trials=0)

    def test_expand_grid(self):
        base = small_spec()
        specs = expand_grid(
            base, {"mtd.max_relative_change": (0.1, 0.2), "grid.case": ("ieee14", "ieee30")}
        )
        assert len(specs) == 4
        assert {s.grid.case for s in specs} == {"ieee14", "ieee30"}
        assert all(s.name.startswith("test-small[") for s in specs)
        # Row-major: the first axis varies slowest.
        assert [s.mtd.max_relative_change for s in specs] == [0.1, 0.1, 0.2, 0.2]


class TestTrialSeeding:
    def test_trial_seed_sequence_matches_spawn(self):
        root = np.random.SeedSequence(42)
        children = root.spawn(5)
        for index in (0, 2, 4):
            direct = trial_seed_sequence(42, index)
            assert direct.generate_state(4).tolist() == children[index].generate_state(4).tolist()

    def test_trial_depends_only_on_spec_and_index(self):
        spec = small_spec()
        a = run_trial(spec, 2)
        b = run_trial(spec, 2)
        assert a == b
        assert run_trial(spec, 1) != run_trial(spec, 2)

    def test_trial_index_bounds(self):
        with pytest.raises(ConfigurationError):
            run_trial(small_spec(), 4)


class TestEngineExecution:
    def test_parallel_identical_to_serial(self):
        spec = small_spec()
        serial = ScenarioEngine(n_workers=1).run(spec)
        parallel = ScenarioEngine(n_workers=2).run(spec)
        assert serial.trials == parallel.trials
        assert parallel.n_workers == 2
        assert not serial.from_cache and not parallel.from_cache

    def test_results_aggregate_to_montecarlo_summary(self):
        result = ScenarioEngine().run(small_spec())
        summary = result.summarize("spa")
        assert summary.n_trials == 4
        assert summary.median == pytest.approx(float(np.median(result.values("spa"))))
        assert 0.0 <= summary.percentile(95) <= np.pi / 2
        with pytest.raises(ConfigurationError):
            result.values("nonexistent")

    def test_result_round_trip(self):
        result = ScenarioEngine().run(small_spec())
        rebuilt = ScenarioResult.from_dict(result.to_dict())
        assert rebuilt.spec == result.spec
        assert rebuilt.trials == result.trials

    def test_none_policy_is_stealthy_control(self):
        spec = small_spec(
            name="control", mtd=MTDSpec(policy="none", gamma_threshold=None)
        )
        result = ScenarioEngine().run(spec)
        # Without MTD every stealthy attack stays at the false-positive floor.
        assert all(t.metrics["undetectable_fraction"] == 1.0 for t in result.trials)
        assert all(t.metrics["spa"] == 0.0 for t in result.trials)

    def test_run_sweep(self):
        engine = ScenarioEngine()
        results = engine.run_sweep(
            small_spec(n_trials=2), {"mtd.max_relative_change": (0.05, 0.3)}
        )
        assert len(results) == 2
        assert results[0].spec.mtd.max_relative_change == 0.05
        pooled = merge_metric(results, "spa")
        assert pooled.size == 4


class TestResultCache:
    def test_cache_miss_then_hit(self, tmp_path):
        engine = ScenarioEngine(cache=tmp_path / "cache", n_workers=1)
        spec = small_spec()
        first = engine.run(spec)
        assert not first.from_cache
        assert engine.executed_trials == spec.n_trials
        second = engine.run(spec)
        assert second.from_cache
        assert second.trials == first.trials
        # The cache hit executed nothing.
        assert engine.executed_trials == spec.n_trials
        assert engine.cache.stats()["hits"] == 1
        assert engine.cache.stats()["entries"] == 1

    def test_cache_distinguishes_specs(self, tmp_path):
        engine = ScenarioEngine(cache=tmp_path)
        engine.run(small_spec())
        other = engine.run(small_spec(base_seed=99))
        assert not other.from_cache
        assert len(engine.cache) == 2

    def test_cache_shared_across_engines(self, tmp_path):
        spec = small_spec()
        ScenarioEngine(cache=tmp_path).run(spec)
        replay = ScenarioEngine(cache=tmp_path).run(spec)
        assert replay.from_cache

    def test_use_cache_false_forces_execution(self, tmp_path):
        engine = ScenarioEngine(cache=tmp_path)
        spec = small_spec()
        engine.run(spec)
        fresh = engine.run(spec, use_cache=False)
        assert not fresh.from_cache
        assert engine.executed_trials == 2 * spec.n_trials

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec()
        engine = ScenarioEngine(cache=cache)
        engine.run(spec)
        cache.path_for(spec).write_text("{not json")
        assert cache.get(spec) is None
        rerun = engine.run(spec)
        assert not rerun.from_cache

    def test_relabelled_spec_hits_same_entry(self, tmp_path):
        engine = ScenarioEngine(cache=tmp_path)
        engine.run(small_spec())
        hit = engine.run(small_spec(name="renamed", description="same physics"))
        assert hit.from_cache


class TestPaperScenario:
    def test_designed_mtd_reproduces_effectiveness(self):
        """Engine-driven reproduction of the paper's core result: a designed
        perturbation at gamma_th = 0.2 rad detects the bulk of the attack
        ensemble while the no-MTD control detects none (Figs. 6/7 setup)."""
        designed = ScenarioEngine().run(
            ScenarioSpec(
                name="paper-designed",
                grid=GridSpec(case="ieee14", baseline="dc-opf"),
                attack=AttackSpec(n_attacks=200, seed=1),
                mtd=MTDSpec(policy="designed", gamma_threshold=0.2, include_cost=True),
                deltas=(0.5, 0.9),
            )
        )
        metrics = designed.trials[0].metrics
        assert metrics["spa"] >= 0.2 - 1e-9
        assert metrics["eta(0.5)"] > 0.8
        assert metrics["eta(0.9)"] > 0.5
        assert metrics["undetectable_fraction"] < 0.05
        assert metrics["baseline_cost"] > 0

        control = ScenarioEngine().run(
            ScenarioSpec(
                name="paper-control",
                grid=GridSpec(case="ieee14", baseline="dc-opf"),
                attack=AttackSpec(n_attacks=200, seed=1),
                mtd=MTDSpec(policy="none", gamma_threshold=None),
                deltas=(0.5, 0.9),
            )
        )
        assert control.trials[0].metrics["eta(0.5)"] == 0.0

    def test_infeasible_gamma_saturates_at_max_spa(self):
        result = ScenarioEngine().run(
            ScenarioSpec(
                name="saturated",
                grid=GridSpec(case="ieee14", baseline="dc-opf"),
                attack=AttackSpec(n_attacks=16, seed=1),
                mtd=MTDSpec(policy="designed", gamma_threshold=1.5),
                deltas=(0.5,),
            )
        )
        spa = result.trials[0].metrics["spa"]
        assert 0.0 < spa < 1.5


class TestMultiCaseSuite:
    """The acceptance scenario: >= 3 grid cases (incl. a >= 57-bus one)
    through the engine with n_workers > 1, identical to serial, then served
    from the cache."""

    def suite(self):
        return [
            small_spec(name=f"suite-{case}", grid=GridSpec(case=case, baseline="dc-opf"),
                       n_trials=3)
            for case in ("ieee14", "ieee30", "synthetic57")
        ]

    def test_parallel_suite_matches_serial_and_caches(self, tmp_path):
        suite = self.suite()
        serial = ScenarioEngine(n_workers=1).run_suite(suite)
        engine = ScenarioEngine(cache=tmp_path, n_workers=2)
        parallel = engine.run_suite(suite)
        assert all(s.trials == p.trials for s, p in zip(serial, parallel))
        assert engine.executed_trials == sum(s.n_trials for s in suite)

        replay = engine.run_suite(suite)
        assert all(r.from_cache for r in replay)
        assert all(r.trials == p.trials for r, p in zip(replay, parallel))
        # No additional trials ran on the replay.
        assert engine.executed_trials == sum(s.n_trials for s in suite)


class TestScenarioRegistry:
    def test_available_scenarios(self):
        names = available_scenarios()
        for expected in ("fig6a", "fig6b", "fig7", "fig8", "fig9", "fig10-fig11",
                         "tables", "scale"):
            assert expected in names

    def test_suites_reference_registered_cases(self):
        cases = available_cases()
        for name in available_scenarios():
            for spec in scenario_suite(name):
                assert spec.grid.case in cases
                # Every canonical spec is hashable and JSON-serialisable.
                assert len(spec.content_hash()) == 64
                assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_scale_suite_spans_large_grids(self):
        sizes = {spec.grid.case for spec in scenario_suite("scale")}
        assert "synthetic57" in sizes and "synthetic118" in sizes

    def test_unknown_suite(self):
        with pytest.raises(ConfigurationError):
            scenario_suite("fig99")


class TestSyntheticRegistryCases:
    def test_synthetic_cases_registered(self):
        names = available_cases()
        for name in ("synthetic57", "synthetic118"):
            assert name in names
        # Not aliased as caseNN — those names would imply the IEEE data.
        assert "case57" not in names and "case118" not in names

    def test_synthetic57_properties(self):
        network = load_case("synthetic57")
        assert network.n_buses == 57
        assert len(network.dfacts_branches) > 0
        # Pinned default seed: loading twice yields the same network.
        again = load_case("synthetic57")
        assert np.array_equal(network.reactances(), again.reactances())
        # The registered configuration is dispatchable.
        assert solve_dc_opf(network).success

    def test_synthetic118_dispatchable(self):
        network = load_case("synthetic118")
        assert network.n_buses == 118
        assert solve_dc_opf(network).success

    def test_case_kwargs_forwarded(self):
        network = load_case("synthetic57", seed=3)
        default = load_case("synthetic57")
        assert not np.array_equal(network.reactances(), default.reactances())


class TestSummaryStatistics:
    def test_median_and_percentile(self):
        summary = summarize_values([1.0, 2.0, 3.0, 4.0, 100.0])
        assert summary.median == 3.0
        assert summary.percentile(0) == 1.0
        assert summary.percentile(100) == 100.0
        assert summary.percentile(50) == summary.median
        with pytest.raises(ValueError):
            summary.percentile(101)

    def test_summarize_values_matches_repeat_experiment_layout(self):
        summary = summarize_values(np.array([2.0, 4.0]))
        assert summary.mean == 3.0
        assert summary.n_trials == 2
        assert summary.confidence_halfwidth > 0

    def test_format_summaries_surfaces_new_statistics(self):
        summary = summarize_values([1.0, 2.0, 3.0])
        text = format_summaries([("demo", summary)], title="t")
        assert "median" in text and "p5" in text and "p95" in text
        assert "demo" in text


class TestTrialResultRecords:
    def test_trial_result_round_trip(self):
        trial = TrialResult(trial_index=3, metrics={"eta(0.9)": 0.5})
        assert TrialResult.from_dict(trial.to_dict()) == trial

    def test_fraction_meeting(self):
        spec = small_spec(n_trials=2)
        trials = (
            TrialResult(0, {"eta(0.9)": 0.95, "spa": 0.1}),
            TrialResult(1, {"eta(0.9)": 0.10, "spa": 0.2}),
        )
        result = ScenarioResult(spec=spec, trials=trials)
        assert result.fraction_meeting("eta(0.9)", 0.9) == 0.5
        assert result.values().tolist() == [0.95, 0.10]
