"""Shared pytest fixtures.

Expensive objects (benchmark cases, baseline OPF solutions, attack
ensembles) are session-scoped: they are deterministic and read-only in the
tests, so sharing them keeps the suite fast without coupling tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import case4gs, case14, case30, solve_dc_opf, synthetic_case
from repro.estimation.measurement import MeasurementSystem
from repro.mtd.effectiveness import EffectivenessEvaluator


@pytest.fixture(scope="session")
def net4():
    """The 4-bus motivating-example network."""
    return case4gs()


@pytest.fixture(scope="session")
def net14():
    """The IEEE 14-bus network with the paper's settings."""
    return case14()


@pytest.fixture(scope="session")
def net30():
    """The IEEE 30-bus network."""
    return case30()


@pytest.fixture(scope="session")
def small_synthetic():
    """A small random network used where the IEEE cases would be overkill."""
    return synthetic_case(n_buses=8, seed=7)


@pytest.fixture(scope="session")
def opf4(net4):
    """Baseline (pre-perturbation) OPF of the 4-bus system."""
    return solve_dc_opf(net4)


@pytest.fixture(scope="session")
def opf14(net14):
    """Baseline OPF of the 14-bus system at nominal load."""
    return solve_dc_opf(net14)


@pytest.fixture(scope="session")
def measurement14(net14):
    """Measurement system of the unperturbed 14-bus grid."""
    return MeasurementSystem.for_network(net14)


@pytest.fixture(scope="session")
def evaluator14(net14, opf14):
    """Effectiveness evaluator with a small (fast) attack ensemble."""
    return EffectivenessEvaluator(
        net14, operating_angles_rad=opf14.angles_rad, n_attacks=120, seed=11
    )


@pytest.fixture()
def rng():
    """A fresh deterministic generator for per-test randomness."""
    return np.random.default_rng(1234)
