"""Tests for repro.grid.matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid.matrices import (
    SPARSE_BUS_THRESHOLD,
    branch_flow_matrix,
    branch_susceptance_matrix,
    branch_susceptance_matrix_sparse,
    generator_incidence_matrix,
    incidence_matrix,
    incidence_matrix_sparse,
    measurement_matrix,
    measurement_matrix_sparse,
    non_slack_indices,
    reduced_measurement_matrix,
    reduced_measurement_matrix_sparse,
    reduced_susceptance_matrix,
    reduced_susceptance_matrix_sparse,
    susceptance_matrix,
    susceptance_matrix_sparse,
    use_sparse_backend,
)
from repro.utils.linalg import is_full_column_rank


class TestIncidence:
    def test_shape(self, net14):
        A = incidence_matrix(net14)
        assert A.shape == (14, 20)

    def test_column_sums_are_zero(self, net14):
        A = incidence_matrix(net14)
        np.testing.assert_allclose(A.sum(axis=0), np.zeros(20))

    def test_entries_match_branch_orientation(self, net4):
        A = incidence_matrix(net4)
        branch = net4.branches[0]
        assert A[branch.from_bus, 0] == 1.0
        assert A[branch.to_bus, 0] == -1.0


class TestSusceptance:
    def test_diagonal_matrix_values(self, net4):
        D = branch_susceptance_matrix(net4)
        np.testing.assert_allclose(np.diag(D), 1.0 / net4.reactances())
        assert np.count_nonzero(D - np.diag(np.diag(D))) == 0

    def test_override_reactances(self, net4):
        override = net4.reactances() * 2.0
        D = branch_susceptance_matrix(net4, override)
        np.testing.assert_allclose(np.diag(D), 1.0 / override)

    def test_override_length_mismatch(self, net4):
        with pytest.raises(ValueError):
            branch_susceptance_matrix(net4, np.ones(3))

    def test_non_positive_override_rejected(self, net4):
        bad = net4.reactances()
        bad[0] = 0.0
        with pytest.raises(ValueError):
            branch_susceptance_matrix(net4, bad)

    def test_susceptance_matrix_is_symmetric_laplacian(self, net14):
        B = susceptance_matrix(net14)
        np.testing.assert_allclose(B, B.T, atol=1e-12)
        np.testing.assert_allclose(B.sum(axis=1), np.zeros(14), atol=1e-9)

    def test_reduced_susceptance_is_invertible(self, net14):
        B_red = reduced_susceptance_matrix(net14)
        assert B_red.shape == (13, 13)
        assert np.linalg.matrix_rank(B_red) == 13


class TestMeasurementMatrix:
    def test_full_shape(self, net14):
        H = measurement_matrix(net14)
        assert H.shape == (2 * 20 + 14, 14)

    def test_reduced_shape_and_rank(self, net14):
        H = reduced_measurement_matrix(net14)
        assert H.shape == (54, 13)
        assert is_full_column_rank(H)

    def test_structure_flow_blocks_are_negatives(self, net14):
        H = measurement_matrix(net14)
        L = net14.n_branches
        np.testing.assert_allclose(H[:L], -H[L : 2 * L])

    def test_injection_block_is_susceptance(self, net14):
        H = measurement_matrix(net14)
        L = net14.n_branches
        np.testing.assert_allclose(H[2 * L :], susceptance_matrix(net14), atol=1e-12)

    def test_reactance_override_changes_matrix(self, net14):
        H0 = reduced_measurement_matrix(net14)
        x = net14.reactances()
        x[0] *= 1.5
        H1 = reduced_measurement_matrix(net14, x)
        assert not np.allclose(H0, H1)

    def test_non_slack_indices_exclude_slack(self, net14):
        keep = non_slack_indices(net14)
        assert net14.slack_bus not in keep.tolist()
        assert len(keep) == 13


class TestOtherMatrices:
    def test_generator_incidence(self, net14):
        C = generator_incidence_matrix(net14)
        assert C.shape == (14, 5)
        np.testing.assert_allclose(C.sum(axis=0), np.ones(5))
        for gen in net14.generators:
            assert C[gen.bus, gen.index] == 1.0

    def test_branch_flow_matrix_consistency(self, net4, rng):
        theta = rng.standard_normal(4)
        F = branch_flow_matrix(net4)
        flows = F @ theta
        for branch in net4.branches:
            expected = (theta[branch.from_bus] - theta[branch.to_bus]) / branch.reactance
            assert flows[branch.index] == pytest.approx(expected)


class TestSparseBackend:
    """The scipy.sparse builders must agree with their dense siblings."""

    def test_threshold_selection(self, net14, small_synthetic):
        assert not use_sparse_backend(net14)
        assert not use_sparse_backend(small_synthetic)
        assert use_sparse_backend(net14, sparse=True)
        big = type("Net", (), {"n_buses": SPARSE_BUS_THRESHOLD})()
        assert use_sparse_backend(big)

    def test_incidence_agrees(self, net14):
        np.testing.assert_array_equal(
            incidence_matrix_sparse(net14).toarray(), incidence_matrix(net14)
        )

    def test_branch_susceptance_agrees(self, net14):
        np.testing.assert_array_equal(
            branch_susceptance_matrix_sparse(net14).toarray(),
            branch_susceptance_matrix(net14),
        )

    def test_susceptance_agrees(self, net14):
        np.testing.assert_allclose(
            susceptance_matrix_sparse(net14).toarray(),
            susceptance_matrix(net14),
            atol=1e-12,
        )

    def test_reduced_susceptance_agrees(self, net14):
        np.testing.assert_allclose(
            reduced_susceptance_matrix_sparse(net14).toarray(),
            reduced_susceptance_matrix(net14),
            atol=1e-12,
        )

    def test_measurement_matrix_agrees(self, net14):
        np.testing.assert_allclose(
            measurement_matrix_sparse(net14).toarray(),
            measurement_matrix(net14),
            atol=1e-12,
        )

    def test_reduced_measurement_matrix_agrees_with_override(self, net14, rng):
        x = net14.reactances() * rng.uniform(0.8, 1.2, net14.n_branches)
        np.testing.assert_allclose(
            reduced_measurement_matrix_sparse(net14, x).toarray(),
            reduced_measurement_matrix(net14, x),
            atol=1e-12,
        )

    def test_sparse_rejects_bad_reactances(self, net14):
        with pytest.raises(ValueError):
            measurement_matrix_sparse(net14, np.zeros(net14.n_branches))
        with pytest.raises(ValueError):
            reduced_susceptance_matrix_sparse(net14, np.ones(3))
