"""Tests for the analysis helpers (metrics, reporting, Monte-Carlo driver)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import (
    detection_statistics,
    monotonicity_fraction,
    rank_correlation,
    summarize_series,
)
from repro.analysis.montecarlo import repeat_experiment
from repro.analysis.reporting import format_series, format_table


class TestMetrics:
    def test_detection_statistics_keys(self):
        stats = detection_statistics(np.array([0.1, 0.5, 0.9]))
        assert stats["count"] == 3
        assert stats["min"] == pytest.approx(0.1)
        assert stats["max"] == pytest.approx(0.9)
        assert stats["mean"] == pytest.approx(0.5)

    def test_detection_statistics_empty(self):
        stats = detection_statistics(np.array([]))
        assert stats["count"] == 0

    def test_rank_correlation_perfect(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert rank_correlation(x, 2 * x) == pytest.approx(1.0)
        assert rank_correlation(x, -x) == pytest.approx(-1.0)

    def test_rank_correlation_length_mismatch(self):
        with pytest.raises(ValueError):
            rank_correlation(np.ones(3), np.ones(4))

    def test_rank_correlation_short_series_nan(self):
        assert np.isnan(rank_correlation(np.array([1.0]), np.array([2.0])))

    def test_summarize_series(self):
        summary = summarize_series(np.array([1.0, 3.0]))
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["count"] == 2

    def test_summarize_empty_series(self):
        assert summarize_series(np.array([]))["count"] == 0

    def test_monotonicity_fraction(self):
        assert monotonicity_fraction(np.array([1.0, 2.0, 3.0])) == pytest.approx(1.0)
        assert monotonicity_fraction(np.array([3.0, 2.0, 1.0])) == pytest.approx(0.0)
        assert monotonicity_fraction(np.array([1.0, 2.0, 1.5, 3.0])) == pytest.approx(2.0 / 3.0)
        assert monotonicity_fraction(np.array([1.0])) == pytest.approx(1.0)


class TestReporting:
    def test_table_contains_headers_and_rows(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3]], title="demo")
        assert "demo" in text
        assert "| a" in text
        assert "2.5" in text
        assert "x" in text

    def test_table_bool_rendering(self):
        text = format_table(["flag"], [[True], [False]])
        assert "yes" in text
        assert "no" in text

    def test_series_rendering(self):
        text = format_series("curve", "gamma", "eta", [0.1, 0.2], [0.5, 0.9])
        assert "curve" in text
        assert "gamma" in text
        assert "0.9" in text

    def test_table_alignment_width(self):
        text = format_table(["col"], [["a-very-long-cell-value"]])
        header_line = text.splitlines()[0]
        row_line = text.splitlines()[2]
        assert len(header_line) == len(row_line)


class TestMonteCarlo:
    def test_constant_experiment(self):
        summary = repeat_experiment(lambda rng: 2.0, n_trials=10, seed=0)
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(0.0)
        assert summary.n_trials == 10
        low, high = summary.confidence_interval()
        assert low == pytest.approx(2.0)
        assert high == pytest.approx(2.0)

    def test_random_experiment_reproducible(self):
        a = repeat_experiment(lambda rng: float(rng.normal()), n_trials=50, seed=3)
        b = repeat_experiment(lambda rng: float(rng.normal()), n_trials=50, seed=3)
        np.testing.assert_allclose(a.values, b.values)

    def test_mean_estimate_converges(self):
        summary = repeat_experiment(lambda rng: float(rng.normal(5.0, 1.0)), n_trials=400, seed=1)
        assert summary.mean == pytest.approx(5.0, abs=0.2)
        assert summary.confidence_halfwidth < 0.2

    def test_invalid_trial_count(self):
        with pytest.raises(ValueError):
            repeat_experiment(lambda rng: 0.0, n_trials=0)

    def test_single_trial_has_zero_spread(self):
        summary = repeat_experiment(lambda rng: 1.0, n_trials=1, seed=0)
        assert summary.std == pytest.approx(0.0)
        assert summary.confidence_halfwidth == pytest.approx(0.0)
