"""Tests of the ``python -m repro`` CLI, including a real kill-mid-campaign
crash followed by a ``resume`` that executes only the missing work."""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignDefinition, CampaignStore, plan_campaign
from repro.campaign.cli import main
from repro.engine import (
    AttackSpec,
    ContingencySpec,
    DetectorSpec,
    GridSpec,
    MTDSpec,
    ScenarioSpec,
)

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def cli_base(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="cli-base",
        grid=GridSpec(case="ieee14", baseline="dc-opf"),
        attack=AttackSpec(n_attacks=6, seed=1),
        mtd=MTDSpec(policy="random", max_relative_change=0.1),
        n_trials=1,
        base_seed=17,
        deltas=(0.5, 0.9),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def write_definition(path: Path, definition: CampaignDefinition) -> Path:
    path.write_text(definition.to_json())
    return path


class TestCliInProcess:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_suites_list(self, capsys):
        assert main(["suites", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig6a", "fig8", "tables", "scale"):
            assert name in out

    def test_cases_list(self, capsys):
        assert main(["cases", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("ieee14", "synthetic118", "case30.m"):
            assert name in out

    def test_cases_info_registry_case(self, capsys):
        assert main(["cases", "info", "ieee14"]) == 0
        out = capsys.readouterr().out
        assert "buses" in out and "14" in out
        assert "D-FACTS branches" in out
        assert "base MVA" in out

    def test_cases_info_matpower_case(self, capsys):
        assert main(["cases", "info", "case30.m"]) == 0
        out = capsys.readouterr().out
        assert "network name: 'case30'" in out
        assert "30" in out
        assert "line ratings: 41/41 limited" in out

    def test_cases_info_unknown_case_errors(self, capsys):
        assert main(["cases", "info", "no-such-case"]) == 2
        assert "unknown case" in capsys.readouterr().err

    def test_campaign_run_status_resume_query_csv(self, tmp_path, capsys):
        definition = CampaignDefinition(
            name="cli-campaign",
            base=cli_base(),
            grids=({"attack.ratio": (0.06, 0.07, 0.08, 0.09)},),
            shard_size=2,
        )
        def_path = write_definition(tmp_path / "campaign.json", definition)
        store = str(tmp_path / "cli.campaign")

        # Checkpointed run: one shard only.
        assert main(["campaign", "run", str(def_path), "--store", store,
                     "--shard-limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "executed 2" in out and "incomplete" in out

        # Status reflects the checkpoint (non-zero exit while incomplete).
        assert main(["campaign", "status", "--store", store]) == 1
        out = capsys.readouterr().out
        assert "2/4 scenarios complete" in out

        # Resume finishes only the missing shards.
        assert main(["campaign", "resume", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "executed 2" in out and "skipped 2" in out and "complete" in out
        assert main(["campaign", "status", "--store", store]) == 0
        capsys.readouterr()

        # Query with filter, grouping and CSV export.
        csv_path = tmp_path / "out.csv"
        assert main(["campaign", "query", "--store", store,
                     "--metric", "eta(0.9)", "--group-by", "attack.ratio",
                     "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "4 scenario(s)" in out
        assert csv_path.exists()
        assert len(csv_path.read_text().strip().splitlines()) == 5  # header + 4

        assert main(["campaign", "query", "--store", store,
                     "--where", "attack.ratio=0.07"]) == 0
        out = capsys.readouterr().out
        assert "1 scenario(s)" in out

        assert main(["campaign", "query", "--store", store,
                     "--where", "attack.ratio=0.5"]) == 1

    def test_budget_overrides_and_set(self, tmp_path, capsys):
        definition = CampaignDefinition(name="cli-budget", base=cli_base(n_trials=4))
        def_path = write_definition(tmp_path / "campaign.json", definition)
        store = str(tmp_path / "budget.campaign")
        assert main(["campaign", "run", str(def_path), "--store", store,
                     "--trials", "2", "--attacks", "4",
                     "--set", "mtd.max_relative_change=0.05"]) == 0
        capsys.readouterr()
        results = list(CampaignStore(store).results())
        (result,) = results
        assert result.spec.n_trials == 2
        assert result.spec.attack.n_attacks == 4
        assert result.spec.mtd.max_relative_change == 0.05

    def test_suites_run(self, tmp_path, capsys):
        store = str(tmp_path / "tables.campaign")
        assert main(["suites", "run", "tables", "--store", store,
                     "--trials", "2", "--attacks", "8", "--shard-size", "1"]) == 0
        out = capsys.readouterr().out
        assert "executed 2" in out and "complete" in out

    def test_mismatched_campaign_is_an_error(self, tmp_path, capsys):
        definition = CampaignDefinition(name="one", base=cli_base())
        other = CampaignDefinition(name="two", base=cli_base(base_seed=99))
        store = str(tmp_path / "clash.campaign")
        assert main(["campaign", "run",
                     str(write_definition(tmp_path / "a.json", definition)),
                     "--store", store]) == 0
        assert main(["campaign", "run",
                     str(write_definition(tmp_path / "b.json", other)),
                     "--store", store]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_set_syntax_is_an_error(self, tmp_path, capsys):
        definition = CampaignDefinition(name="bad", base=cli_base())
        def_path = write_definition(tmp_path / "campaign.json", definition)
        assert main(["campaign", "run", str(def_path),
                     "--store", str(tmp_path / "s"), "--set", "nonsense"]) == 2
        assert "path=value" in capsys.readouterr().err


def durable_records(store_dir: Path) -> int:
    """Complete (newline-terminated, parseable) records across all segments —
    exactly what the store will recover after a crash."""
    count = 0
    for segment in (store_dir / "segments").glob("*.ndjson"):
        for line in segment.read_bytes().splitlines(keepends=True):
            if not line.endswith(b"\n"):
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "spec_hash" in record:
                count += 1
    return count


class TestKillResume:
    """SIGKILL a running campaign, then resume it from the CLI: everything
    durable stays skipped, everything else re-executes, nothing twice."""

    N_POINTS = 24

    def definition(self) -> CampaignDefinition:
        base = cli_base(
            name="kill-campaign",
            attack=AttackSpec(n_attacks=60, seed=1),
            detector=DetectorSpec(method="monte-carlo", n_noise_trials=1200),
        )
        ratios = tuple(round(0.05 + 0.002 * k, 3) for k in range(self.N_POINTS))
        return CampaignDefinition(
            name="kill-campaign", base=base,
            grids=({"attack.ratio": ratios},), shard_size=2,
        )

    def test_kill_mid_campaign_then_resume(self, tmp_path):
        definition = self.definition()
        def_path = write_definition(tmp_path / "campaign.json", definition)
        store_dir = tmp_path / "kill.campaign"

        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = REPO_SRC + (os.pathsep + existing if existing else "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", "run", str(def_path),
             "--store", str(store_dir)],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env,
        )
        try:
            # Wait until at least two scenarios are durable, then kill -9.
            deadline = time.time() + 120
            while time.time() < deadline:
                if durable_records(store_dir) >= 2:
                    break
                if process.poll() is not None:
                    pytest.fail("campaign finished before it could be killed; "
                                "increase the per-point budget")
                time.sleep(0.01)
            else:
                pytest.fail("campaign produced no durable results to kill over")
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=60)

        completed_at_kill = durable_records(store_dir)
        assert 0 < completed_at_kill < self.N_POINTS

        # Resume from the CLI and parse its spec-hash accounting.
        resume = subprocess.run(
            [sys.executable, "-m", "repro", "campaign", "resume",
             "--store", str(store_dir)],
            capture_output=True, text=True, env=env, timeout=600,
        )
        assert resume.returncode == 0, resume.stderr
        match = re.search(
            r"executed (\d+), replayed (\d+) from cache, skipped (\d+)", resume.stdout
        )
        assert match, resume.stdout
        executed, replayed, skipped = map(int, match.groups())
        assert skipped == completed_at_kill
        assert executed == self.N_POINTS - completed_at_kill
        assert replayed == 0

        # The store now holds exactly the full plan, once each.
        store = CampaignStore(store_dir)
        plan = plan_campaign(definition)
        assert store.completed_hashes() == set(plan.items)
        assert len(store) == self.N_POINTS


class TestContingencyCampaign:
    """Campaigns sweeping contingency dimensions: per-outage spec hashes
    drive the resume accounting, and the derived scalar ``outage`` label
    is a first-class ``--group-by`` key."""

    #: Screenable (non-bridge, OPF-feasible) ieee14 branch outages.
    OUTAGES = (1, 4, 6, 7)

    def definition(self) -> CampaignDefinition:
        base = cli_base(name="n1-cli", contingency=ContingencySpec())
        return CampaignDefinition(
            name="n1-cli",
            base=base,
            grids=(
                {
                    "contingency.branch_outages": tuple((k,) for k in self.OUTAGES),
                    "attack.ratio": (0.06, 0.08),
                },
            ),
            shard_size=2,
        )

    def test_resume_executes_exactly_the_missing_outage_hashes(self, tmp_path, capsys):
        definition = self.definition()
        def_path = write_definition(tmp_path / "campaign.json", definition)
        store_path = str(tmp_path / "n1.campaign")

        # Checkpoint after two shards: four of eight outage points durable.
        assert main(["campaign", "run", str(def_path), "--store", store_path,
                     "--shard-limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "executed 4" in out and "incomplete" in out
        assert main(["campaign", "status", "--store", store_path]) == 1
        assert "4/8 scenarios complete" in capsys.readouterr().out

        plan = plan_campaign(definition)
        store = CampaignStore(store_path)
        completed = store.completed_hashes()
        missing = set(plan.items) - completed
        assert len(missing) == 4

        # Resume executes exactly the missing hashes — nothing twice.
        assert main(["campaign", "resume", "--store", store_path]) == 0
        out = capsys.readouterr().out
        match = re.search(r"executed (\d+), replayed (\d+) from cache, skipped (\d+)", out)
        assert match, out
        executed, replayed, skipped = map(int, match.groups())
        assert executed == len(missing)
        assert replayed == 0
        assert skipped == len(completed)
        store = CampaignStore(store_path)
        assert store.completed_hashes() == set(plan.items)
        assert len(store) == len(self.OUTAGES) * 2

        # Every result derives from a distinct (outage, ratio) pair and the
        # contingency trials carry the per-topology false-alarm metric.
        results = list(store.results())
        pairs = {(r.spec.contingency.outage, r.spec.attack.ratio) for r in results}
        assert len(pairs) == len(results)
        assert all("bdd_false_alarm_rate" in r.trials[0].metrics for r in results)

    def test_query_groups_by_outage_label(self, tmp_path, capsys):
        definition = self.definition()
        def_path = write_definition(tmp_path / "campaign.json", definition)
        store_path = str(tmp_path / "n1.campaign")
        assert main(["campaign", "run", str(def_path), "--store", store_path]) == 0
        capsys.readouterr()

        # Grouping by the derived scalar label pools the two attack ratios
        # of each outage into one row.
        csv_path = tmp_path / "grouped.csv"
        assert main(["campaign", "query", "--store", store_path,
                     "--metric", "eta(0.9)", "--group-by", "contingency.outage",
                     "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "8 scenario(s)" in out
        for k in self.OUTAGES:
            assert f"b{k}" in out
        # The CSV export stays per-scenario (8 rows), the group table pools.
        rows = csv_path.read_text().strip().splitlines()
        assert len(rows) == 1 + len(self.OUTAGES) * 2

        from repro.campaign.query import summarize_groups

        results = list(CampaignStore(store_path).results())
        groups = summarize_groups(
            results, metric="eta(0.9)", group_by=["contingency.outage"]
        )
        assert [group.key for group in groups] == [(f"b{k}",) for k in self.OUTAGES]
        assert all(group.n_scenarios == 2 for group in groups)

        # Filtering on the label selects one outage's scenarios.
        assert main(["campaign", "query", "--store", store_path,
                     "--where", "contingency.outage=b4"]) == 0
        assert "2 scenario(s)" in capsys.readouterr().out


class TestContingencyKillResume:
    """SIGKILL a campaign mid-N-1-screen, then resume: the missing outage
    hashes — and only those — re-execute."""

    OUTAGES = (1, 4, 6, 7, 8, 9, 10, 11, 12, 14, 15, 16)
    N_POINTS = len(OUTAGES)

    def definition(self) -> CampaignDefinition:
        base = cli_base(
            name="n1-kill",
            attack=AttackSpec(n_attacks=60, seed=1),
            detector=DetectorSpec(method="monte-carlo", n_noise_trials=1200),
            contingency=ContingencySpec(),
        )
        return CampaignDefinition(
            name="n1-kill",
            base=base,
            grids=({"contingency.branch_outages": tuple((k,) for k in self.OUTAGES)},),
            shard_size=1,
        )

    def test_kill_mid_screen_then_resume(self, tmp_path):
        definition = self.definition()
        def_path = write_definition(tmp_path / "campaign.json", definition)
        store_dir = tmp_path / "n1-kill.campaign"

        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = REPO_SRC + (os.pathsep + existing if existing else "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", "run", str(def_path),
             "--store", str(store_dir)],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env,
        )
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                if durable_records(store_dir) >= 2:
                    break
                if process.poll() is not None:
                    pytest.fail("campaign finished before it could be killed; "
                                "increase the per-point budget")
                time.sleep(0.01)
            else:
                pytest.fail("campaign produced no durable results to kill over")
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=60)

        completed_at_kill = durable_records(store_dir)
        assert 0 < completed_at_kill < self.N_POINTS

        resume = subprocess.run(
            [sys.executable, "-m", "repro", "campaign", "resume",
             "--store", str(store_dir)],
            capture_output=True, text=True, env=env, timeout=600,
        )
        assert resume.returncode == 0, resume.stderr
        match = re.search(
            r"executed (\d+), replayed (\d+) from cache, skipped (\d+)", resume.stdout
        )
        assert match, resume.stdout
        executed, replayed, skipped = map(int, match.groups())
        assert skipped == completed_at_kill
        assert executed == self.N_POINTS - completed_at_kill
        assert replayed == 0

        # The store holds exactly one result per screened outage.
        store = CampaignStore(store_dir)
        plan = plan_campaign(definition)
        assert store.completed_hashes() == set(plan.items)
        labels = {result.spec.contingency.outage for result in store.results()}
        assert labels == {f"b{k}" for k in self.OUTAGES}
