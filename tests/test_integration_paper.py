"""End-to-end integration tests tied to the paper's headline results.

These tests exercise the full pipeline (case → OPF → measurement model →
attacks → MTD design → effectiveness and cost) the way the benchmark harness
does, with smaller Monte-Carlo budgets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    EffectivenessEvaluator,
    design_mtd_perturbation,
    mtd_operational_cost,
    solve_dc_opf,
)
from repro.attacks.fdi import stealthy_attack
from repro.estimation.measurement import MeasurementSystem
from repro.estimation.state_estimator import WLSStateEstimator
from repro.mtd.perturbation import ReactancePerturbation


class TestMotivatingExample:
    """Section IV-B / Tables I-III on the 4-bus system."""

    def test_table_ii_exact_values(self, opf4):
        np.testing.assert_allclose(opf4.dispatch_mw, [350.0, 150.0], atol=1e-4)
        np.testing.assert_allclose(
            opf4.flows_mw, [126.56, 173.44, -43.44, -26.56], atol=0.01
        )
        assert opf4.cost == pytest.approx(11500.0, abs=1.0)

    def test_table_i_residual_pattern(self, net4):
        """Noise-free BDD residuals of the two attacks under the four
        single-line perturbations: each attack bypasses exactly two of them."""
        system = MeasurementSystem.for_network(net4)
        H = system.matrix()
        attacks = {
            "attack1": stealthy_attack(H, np.array([1.0, 1.0, 1.0])),
            "attack2": stealthy_attack(H, np.array([0.0, 0.0, 1.0])),
        }
        residuals = {}
        for name, attack in attacks.items():
            row = []
            for line in range(4):
                perturbation = ReactancePerturbation.single_line(net4, line, 0.2)
                estimator = WLSStateEstimator(
                    system.with_reactances(perturbation.perturbed_reactances)
                )
                # Unweighted residual, as in Table I (no measurement noise).
                row.append(np.linalg.norm(estimator.attack_residual(attack)))
            residuals[name] = row
        # Attack 1 is detected only under perturbations of lines 1 and 2.
        assert residuals["attack1"][0] > 1.0
        assert residuals["attack1"][1] > 1.0
        assert residuals["attack1"][2] == pytest.approx(0.0, abs=1e-8)
        assert residuals["attack1"][3] == pytest.approx(0.0, abs=1e-8)
        # Attack 2 is detected only under perturbations of lines 3 and 4.
        assert residuals["attack2"][0] == pytest.approx(0.0, abs=1e-8)
        assert residuals["attack2"][1] == pytest.approx(0.0, abs=1e-8)
        assert residuals["attack2"][2] > 1.0
        assert residuals["attack2"][3] > 1.0

    def test_table_i_residual_magnitudes(self, net4):
        """The non-zero residuals match the paper's Table I values (≈2.8)."""
        system = MeasurementSystem.for_network(net4)
        H = system.matrix()
        attack = stealthy_attack(H, np.array([1.0, 1.0, 1.0]))
        perturbation = ReactancePerturbation.single_line(net4, 0, 0.2)
        estimator = WLSStateEstimator(
            system.with_reactances(perturbation.perturbed_reactances)
        )
        residual = np.linalg.norm(estimator.attack_residual(attack))
        assert residual == pytest.approx(2.82, abs=0.05)

    def test_table_iii_every_perturbation_costs_money(self, net4, opf4):
        """Each single-line MTD perturbation increases the OPF cost, and the
        line-3 perturbation is the cheapest (Table III's qualitative
        finding)."""
        costs = []
        for line in range(4):
            perturbation = ReactancePerturbation.single_line(net4, line, 0.2)
            result = solve_dc_opf(net4, reactances=perturbation.perturbed_reactances)
            costs.append(result.cost)
        assert all(cost >= opf4.cost - 1e-6 for cost in costs)
        assert int(np.argmin(costs)) == 2
        assert max(costs) > opf4.cost + 1.0


class TestEndToEndMTD:
    """The designed MTD detects pre-perturbation attacks at a bounded cost."""

    def test_designed_mtd_detects_most_attacks(self, net14, opf14):
        evaluator = EffectivenessEvaluator(
            net14, operating_angles_rad=opf14.angles_rad, n_attacks=150, seed=2
        )
        design = design_mtd_perturbation(net14, gamma_threshold=0.25, method="two-stage", seed=0)
        effectiveness = evaluator.evaluate(design.perturbed_reactances)
        assert effectiveness.eta(0.5) > 0.6
        cost = mtd_operational_cost(net14, design.perturbed_reactances)
        assert cost.relative_increase < 0.10

    def test_cost_benefit_tradeoff_shape(self, net14):
        """Higher effectiveness targets cost more (Fig. 9's shape) at the
        evening-peak load."""
        loads = net14.loads_mw() * (220.0 / net14.total_load_mw())
        baseline = None
        from repro.opf.reactance_opf import solve_reactance_opf

        baseline = solve_reactance_opf(net14, loads_mw=loads, n_random_starts=1, seed=0)
        cheap = design_mtd_perturbation(
            net14,
            gamma_threshold=0.05,
            attacker_reactances=baseline.reactances,
            loads_mw=loads,
            method="two-stage",
            seed=0,
        )
        strict = design_mtd_perturbation(
            net14,
            gamma_threshold=0.35,
            attacker_reactances=baseline.reactances,
            loads_mw=loads,
            method="two-stage",
            seed=0,
        )
        cheap_cost = mtd_operational_cost(
            net14, cheap.perturbed_reactances, loads_mw=loads, baseline_result=baseline
        )
        strict_cost = mtd_operational_cost(
            net14, strict.perturbed_reactances, loads_mw=loads, baseline_result=baseline
        )
        assert strict_cost.relative_increase >= cheap_cost.relative_increase
        assert strict_cost.relative_increase > 0.0

    def test_thirty_bus_pipeline(self, net30):
        """The same pipeline runs on the IEEE 30-bus system (Fig. 6(b))."""
        baseline = solve_dc_opf(net30)
        evaluator = EffectivenessEvaluator(
            net30, operating_angles_rad=baseline.angles_rad, n_attacks=60, seed=4
        )
        weak = design_mtd_perturbation(net30, gamma_threshold=0.05, method="two-stage", seed=0)
        strong = design_mtd_perturbation(net30, gamma_threshold=0.25, method="two-stage", seed=0)
        eta_weak = evaluator.evaluate(weak.perturbed_reactances).eta(0.5)
        eta_strong = evaluator.evaluate(strong.perturbed_reactances).eta(0.5)
        assert eta_strong >= eta_weak
        assert eta_strong > 0.1
