"""Tests for repro.utils.linalg."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.linalg import (
    column_space_projector,
    is_full_column_rank,
    orthonormal_basis,
    relative_difference,
    residual_projector,
    vector_in_column_space,
    weighted_norm,
)


class TestOrthonormalBasis:
    def test_basis_is_orthonormal(self, rng):
        matrix = rng.standard_normal((10, 4))
        basis = orthonormal_basis(matrix)
        np.testing.assert_allclose(basis.T @ basis, np.eye(basis.shape[1]), atol=1e-10)

    def test_rank_deficient_matrix_gives_smaller_basis(self, rng):
        col = rng.standard_normal((8, 1))
        matrix = np.hstack([col, 2 * col, -col])
        basis = orthonormal_basis(matrix)
        assert basis.shape[1] == 1

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            orthonormal_basis(np.ones(5))


class TestRankCheck:
    def test_full_rank_true(self, rng):
        assert is_full_column_rank(rng.standard_normal((6, 3)))

    def test_dependent_columns_false(self, rng):
        col = rng.standard_normal((6, 1))
        assert not is_full_column_rank(np.hstack([col, col]))

    def test_rejects_vector_input(self):
        with pytest.raises(ValueError):
            is_full_column_rank(np.ones(4))


class TestProjectors:
    def test_projector_is_idempotent(self, rng):
        H = rng.standard_normal((12, 5))
        gamma = column_space_projector(H)
        np.testing.assert_allclose(gamma @ gamma, gamma, atol=1e-9)

    def test_projector_fixes_column_space(self, rng):
        H = rng.standard_normal((12, 5))
        gamma = column_space_projector(H)
        vec = H @ rng.standard_normal(5)
        np.testing.assert_allclose(gamma @ vec, vec, atol=1e-9)

    def test_residual_projector_annihilates_column_space(self, rng):
        H = rng.standard_normal((12, 5))
        vec = H @ rng.standard_normal(5)
        residual = residual_projector(H) @ vec
        np.testing.assert_allclose(residual, np.zeros(12), atol=1e-9)

    def test_weighted_projector_matches_wls_normal_equations(self, rng):
        H = rng.standard_normal((10, 3))
        weights = rng.uniform(0.5, 2.0, size=10)
        gamma = column_space_projector(H, weights)
        explicit = H @ np.linalg.inv(H.T @ np.diag(weights) @ H) @ H.T @ np.diag(weights)
        np.testing.assert_allclose(gamma, explicit, atol=1e-9)

    def test_weight_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            column_space_projector(rng.standard_normal((6, 2)), np.ones(5))

    def test_non_positive_weights_rejected(self, rng):
        with pytest.raises(ValueError):
            column_space_projector(rng.standard_normal((6, 2)), np.zeros(6))

    def test_rank_deficient_matrix_raises(self, rng):
        col = rng.standard_normal((6, 1))
        with pytest.raises(np.linalg.LinAlgError):
            column_space_projector(np.hstack([col, col]))


class TestVectorInColumnSpace:
    def test_member_detected(self, rng):
        H = rng.standard_normal((9, 4))
        vec = H @ rng.standard_normal(4)
        assert vector_in_column_space(H, vec)

    def test_non_member_detected(self, rng):
        H = rng.standard_normal((9, 4))
        # A random vector in R^9 is almost surely outside a 4-D subspace.
        vec = rng.standard_normal(9)
        assert not vector_in_column_space(H, vec)

    def test_zero_vector_is_member(self, rng):
        H = rng.standard_normal((9, 4))
        assert vector_in_column_space(H, np.zeros(9))

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            vector_in_column_space(rng.standard_normal((9, 4)), np.ones(5))


class TestNorms:
    def test_weighted_norm_reduces_to_euclidean(self):
        vec = np.array([3.0, 4.0])
        assert weighted_norm(vec) == pytest.approx(5.0)

    def test_weighted_norm_with_weights(self):
        vec = np.array([1.0, 2.0])
        assert weighted_norm(vec, np.array([4.0, 1.0])) == pytest.approx(np.sqrt(8.0))

    def test_weighted_norm_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_norm(np.ones(3), np.ones(2))

    def test_relative_difference_zero_for_equal(self, rng):
        vec = rng.standard_normal(7)
        assert relative_difference(vec, vec) == pytest.approx(0.0)

    def test_relative_difference_scales(self):
        assert relative_difference(np.array([2.0]), np.array([0.0])) == pytest.approx(2.0)
