"""Tests of the campaign store: durability, recovery, index rebuild, query."""

from __future__ import annotations

import csv
import json

import pytest

from repro.campaign import CampaignStore, query_results, spec_field, summarize_groups
from repro.campaign.query import export_csv
from repro.campaign.store import INDEX_NAME, SEGMENT_DIR
from repro.engine import AttackSpec, GridSpec, MTDSpec, ScenarioSpec, TrialResult
from repro.engine.results import ScenarioResult
from repro.exceptions import ConfigurationError


def make_result(index: int, case: str = "ieee14", gamma: float = 0.25) -> ScenarioResult:
    """A synthetic scenario result (no execution needed for store tests)."""
    spec = ScenarioSpec(
        name=f"store-spec-{index}",
        grid=GridSpec(case=case, baseline="dc-opf"),
        attack=AttackSpec(n_attacks=4, seed=1, ratio=0.05 + 0.01 * index),
        mtd=MTDSpec(policy="designed", gamma_threshold=gamma),
        n_trials=3,
        base_seed=index,
        tags=("store-test",),
    )
    trials = tuple(
        TrialResult(trial_index=t, metrics={"eta(0.9)": 0.1 * index + 0.01 * t, "spa": 0.3})
        for t in range(spec.n_trials)
    )
    return ScenarioResult(spec=spec, trials=trials)


def segment_paths(store: CampaignStore):
    return sorted((store.directory / SEGMENT_DIR).glob("*.ndjson"))


class TestAppendAndRead:
    def test_round_trip(self, tmp_path):
        store = CampaignStore(tmp_path / "s.campaign")
        result = make_result(1)
        spec_hash = store.append(result, shard=5)
        assert spec_hash == result.spec.content_hash()
        assert spec_hash in store
        assert len(store) == 1
        loaded = store.get(spec_hash)
        assert loaded.trials == result.trials
        assert loaded.spec == result.spec
        assert loaded.from_cache
        # Summaries survive the round trip bit-identically.
        assert loaded.summarize("eta(0.9)").mean == result.summarize("eta(0.9)").mean

    def test_get_missing_is_none(self, tmp_path):
        store = CampaignStore(tmp_path / "s.campaign")
        assert store.get("0" * 64) is None

    def test_create_false_requires_a_real_store(self, tmp_path):
        """Read-only opens fail fast on missing paths AND on existing
        directories that are not stores, leaving both untouched."""
        missing = tmp_path / "nope.campaign"
        with pytest.raises(ConfigurationError):
            CampaignStore(missing, create=False)
        assert not missing.exists()
        plain_dir = tmp_path / "not-a-store"
        plain_dir.mkdir()
        with pytest.raises(ConfigurationError):
            CampaignStore(plain_dir, create=False)
        assert list(plain_dir.iterdir()) == []
        # A real store (with segments) opens fine without create.
        CampaignStore(tmp_path / "s.campaign")
        reopened = CampaignStore(tmp_path / "s.campaign", create=False)
        assert len(reopened) == 0

    def test_reappend_same_hash_replaces(self, tmp_path):
        store = CampaignStore(tmp_path / "s.campaign")
        result = make_result(1)
        store.append(result, shard=0)
        store.append(result, shard=7)
        assert len(store) == 1

    def test_each_instance_writes_a_fresh_segment(self, tmp_path):
        root = tmp_path / "s.campaign"
        CampaignStore(root).append(make_result(1))
        CampaignStore(root).append(make_result(2))
        store = CampaignStore(root)
        assert len(segment_paths(store)) == 2
        assert len(store) == 2

    def test_results_in_insertion_order(self, tmp_path):
        store = CampaignStore(tmp_path / "s.campaign")
        for i in range(3):
            store.append(make_result(i))
        names = [r.spec.name for r in store.results()]
        assert names == [f"store-spec-{i}" for i in range(3)]


class TestCrashRecovery:
    def test_torn_tail_is_ignored_and_reexecutable(self, tmp_path):
        """A record cut mid-write never becomes visible; the scenario counts
        as missing again after reopening."""
        root = tmp_path / "s.campaign"
        store = CampaignStore(root)
        kept = store.append(make_result(1))
        torn = store.append(make_result(2))
        store.close()
        (segment,) = segment_paths(CampaignStore(root))
        data = segment.read_bytes()
        segment.write_bytes(data[:-17])  # cut into the final record
        reopened = CampaignStore(root)
        reopened.rebuild_index()
        assert kept in reopened
        assert torn not in reopened
        assert len(reopened) == 1

    def test_unindexed_segment_records_are_recovered_on_open(self, tmp_path):
        """Crash between the segment append and the index commit: the line
        is on disk but unindexed; reconcile picks it up."""
        root = tmp_path / "s.campaign"
        store = CampaignStore(root)
        store.append(make_result(1))
        # Simulate the lost index entry: drop the rows behind the store's back.
        store._connection.execute("DELETE FROM results")
        store._connection.execute("UPDATE segments SET indexed_bytes = 0")
        store._connection.commit()
        store.close()
        reopened = CampaignStore(root)
        assert len(reopened) == 1
        assert reopened.recovered_records == 1

    def test_corrupt_middle_line_is_skipped(self, tmp_path):
        root = tmp_path / "s.campaign"
        store = CampaignStore(root)
        first = store.append(make_result(1))
        store.close()
        (segment,) = segment_paths(CampaignStore(root))
        with segment.open("ab") as handle:
            handle.write(b"{not json}\n")
        second_store = CampaignStore(root)
        second = second_store.append(make_result(2))
        second_store.close()
        reopened = CampaignStore(root)
        reopened.rebuild_index()
        assert first in reopened and second in reopened
        assert len(reopened) == 2
        assert reopened.skipped_lines == 1

    def test_index_rebuild_from_segments(self, tmp_path):
        root = tmp_path / "s.campaign"
        store = CampaignStore(root)
        hashes = [store.append(make_result(i)) for i in range(4)]
        store.close()
        (root / INDEX_NAME).unlink()
        rebuilt = CampaignStore(root)
        assert rebuilt.completed_hashes() == set(hashes)
        assert all(rebuilt.get(h) is not None for h in hashes)

    def test_corrupt_index_is_discarded_and_rebuilt(self, tmp_path):
        root = tmp_path / "s.campaign"
        store = CampaignStore(root)
        spec_hash = store.append(make_result(1))
        store.close()
        (root / INDEX_NAME).write_bytes(b"this is not a sqlite database at all")
        reopened = CampaignStore(root)
        assert spec_hash in reopened

    def test_explicit_rebuild_counts_records(self, tmp_path):
        store = CampaignStore(tmp_path / "s.campaign")
        for i in range(3):
            store.append(make_result(i))
        assert store.rebuild_index() == 3
        assert len(store) == 3

    def test_deleted_segment_rows_are_pruned(self, tmp_path):
        """Deleting a segment file is a supported way to force its
        scenarios to re-execute: reconcile drops the orphaned index rows
        instead of over-reporting completion (and query never hits a
        missing file)."""
        root = tmp_path / "s.campaign"
        first_store = CampaignStore(root)
        first = first_store.append(make_result(1))
        first_store.close()
        second_store = CampaignStore(root)
        second = second_store.append(make_result(2))
        second_store.close()
        oldest, _newest = segment_paths(CampaignStore(root))
        oldest.unlink()
        reopened = CampaignStore(root)
        assert first not in reopened
        assert second in reopened
        assert [r.spec.name for r in reopened.results()] == ["store-spec-2"]

    def test_second_live_writer_is_rejected(self, tmp_path):
        """The store is single-writer: a second store instance appending
        while the first still holds the lock fails fast instead of racing
        on segment numbering and index offsets."""
        root = tmp_path / "s.campaign"
        writer = CampaignStore(root)
        writer.append(make_result(1))  # acquires the writer lock
        contender = CampaignStore(root)
        with pytest.raises(ConfigurationError):
            contender.append(make_result(2))
        writer.close()  # releases the lock
        assert contender.append(make_result(2)) == make_result(2).spec.content_hash()

    def test_externally_truncated_segment_reindexes(self, tmp_path):
        root = tmp_path / "s.campaign"
        store = CampaignStore(root)
        first = store.append(make_result(1))
        second = store.append(make_result(2))
        store.close()
        (segment,) = segment_paths(CampaignStore(root))
        lines = segment.read_bytes().splitlines(keepends=True)
        segment.write_bytes(lines[0])  # drop the second record entirely
        reopened = CampaignStore(root)
        assert first in reopened
        assert second not in reopened
        assert len(reopened) == 1


class TestManifest:
    def test_manifest_round_trip(self, tmp_path):
        store = CampaignStore(tmp_path / "s.campaign")
        assert store.read_manifest() is None
        store.write_manifest({"name": "c", "plan_hash": "abc"})
        assert store.read_manifest() == {"name": "c", "plan_hash": "abc"}

    def test_corrupt_manifest_reads_as_none(self, tmp_path):
        store = CampaignStore(tmp_path / "s.campaign")
        store.manifest_path.write_text("{broken")
        assert store.read_manifest() is None


class TestQuery:
    @pytest.fixture()
    def store(self, tmp_path):
        store = CampaignStore(tmp_path / "q.campaign")
        for i, (case, gamma) in enumerate(
            [("ieee14", 0.2), ("ieee14", 0.4), ("ieee30", 0.2), ("ieee30", 0.4)]
        ):
            store.append(make_result(i, case=case, gamma=gamma))
        return store

    def test_spec_field(self):
        spec = make_result(0).spec.to_dict()
        assert spec_field(spec, "grid.case") == "ieee14"
        assert spec_field(spec, "n_trials") == 3
        with pytest.raises(KeyError):
            spec_field(spec, "grid.nope")

    def test_where_filter(self, store):
        results = query_results(store, where={"grid.case": "ieee14"})
        assert len(results) == 2
        assert all(r.spec.grid.case == "ieee14" for r in results)
        both = query_results(
            store, where={"grid.case": "ieee30", "mtd.gamma_threshold": 0.4}
        )
        assert len(both) == 1
        assert query_results(store, where={"grid.case": "ieee118"}) == []

    def test_tag_filter(self, store):
        assert len(query_results(store, tags=["store-test"])) == 4
        assert query_results(store, tags=["absent"]) == []

    def test_group_by_pools_trials(self, store):
        groups = summarize_groups(
            query_results(store), metric="eta(0.9)", group_by=["mtd.gamma_threshold"]
        )
        assert [g.key for g in groups] == [(0.2,), (0.4,)]
        assert all(g.n_scenarios == 2 and g.summary.n_trials == 6 for g in groups)

    def test_group_by_unknown_field(self, store):
        with pytest.raises(ConfigurationError):
            summarize_groups(query_results(store), group_by=["grid.nope"])

    def test_group_by_non_scalar_field(self, store):
        with pytest.raises(ConfigurationError, match="not a scalar"):
            summarize_groups(query_results(store), group_by=["mtd"])

    def test_per_scenario_groups_by_default(self, store):
        groups = summarize_groups(query_results(store), metric="spa")
        assert len(groups) == 4
        assert all(g.n_scenarios == 1 for g in groups)

    def test_bool_where_clause_is_strict(self, store):
        """``bool`` subclasses ``int``: a true/false clause must not match
        numeric spec values (and numeric clauses must not match bools)."""
        # Every stored spec has mtd.perturb_all_dfacts == True.
        assert len(query_results(store, where={"mtd.perturb_all_dfacts": True})) == 4
        assert query_results(store, where={"mtd.perturb_all_dfacts": False}) == []
        # bool clause vs numeric spec value: no match either direction.
        assert query_results(store, where={"mtd.perturb_all_dfacts": 1}) == []
        assert query_results(store, where={"mtd.perturb_all_dfacts": 1.0}) == []
        assert query_results(store, where={"n_trials": True}) == []
        # Numeric comparisons still coerce int/float.
        assert len(query_results(store, where={"n_trials": 3.0})) == 4

    def test_export_csv(self, store, tmp_path):
        out = tmp_path / "out.csv"
        results = query_results(store)
        export_csv(out, results, metric="eta(0.9)", fields=["grid.case", "mtd.gamma_threshold"])
        with out.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4
        assert rows[0]["grid.case"] == "ieee14"
        # repr precision: values reconstruct exactly.
        expected = results[0].summarize("eta(0.9)").mean
        assert float(rows[0]["mean"]) == expected
