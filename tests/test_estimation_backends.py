"""Factorization-backend contracts: dense golden identity, sparse agreement.

Three families of guarantees from the backend-pluggable refactor:

* **Golden dense path** — ``backend="dense"`` must reproduce the
  pre-backend arithmetic *byte-for-byte*: same QR factors, same states,
  same residual norms, same gain Cholesky as an inline
  ``np.linalg.qr``-based reference.
* **Sparse agreement** — the Q-less sparse backend must agree with the
  dense backend within the documented tolerance (~1e-9 relative on
  states and residual norms) on **every registered case** plus a
  file-referenced MATPOWER case, and must raise identical observability
  errors on rank-deficient models.
* **Plumbing** — the ``backend=`` knob resolves correctly, is excluded
  from the spec content hash (an execution knob, like ``batch_size``),
  reaches every factorisation-cache key (so dense and sparse runs never
  exchange factorisations), and is observable via telemetry and the
  environment stamp.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg
import scipy.sparse

from repro import telemetry
from repro.engine import (
    AttackSpec,
    GridSpec,
    MTDSpec,
    ScenarioSpec,
    run_trial,
    run_trial_batch,
    scenario_suite,
)
from repro.estimation.backends import (
    BACKEND_CHOICES,
    DenseQRBackend,
    SparseQlessBackend,
    available_backends,
    build_backend,
    resolve_backend,
)
from repro.estimation.bdd import BadDataDetector
from repro.estimation.linear_model import LinearModel, LinearModelCache
from repro.estimation.measurement import MeasurementSystem
from repro.estimation.state_estimator import WLSStateEstimator
from repro.exceptions import ConfigurationError, EstimationError
from repro.grid.cases.registry import available_cases, load_case
from repro.grid.matrices import SPARSE_BUS_THRESHOLD
from repro.telemetry.env import environment_info

#: Documented dense/sparse agreement tolerance (relative); see
#: docs/architecture.md "Factorization backends".
AGREEMENT_RTOL = 1e-9

#: Every registered case plus one file-referenced MATPOWER case, per the
#: acceptance criterion "agreement on every registered case".
AGREEMENT_CASES = tuple(available_cases()) + ("case30.m",)


def _both_models(case: str) -> tuple[MeasurementSystem, LinearModel, LinearModel]:
    system = MeasurementSystem.for_network(load_case(case))
    dense = LinearModel.from_measurement_system(system, backend="dense")
    sparse = LinearModel.from_measurement_system(system, backend="sparse")
    return system, dense, sparse


# ----------------------------------------------------------------------
# dense-vs-sparse agreement
# ----------------------------------------------------------------------
class TestAgreement:
    @pytest.mark.parametrize("case", AGREEMENT_CASES)
    def test_states_and_residual_norms_agree(self, case):
        system, dense, sparse = _both_models(case)
        rng = np.random.default_rng(11)
        Z = rng.normal(0.0, system.noise_sigma, size=(8, system.n_measurements))

        de = dense.estimate_batch(Z)
        se = sparse.estimate_batch(Z)
        theta_scale = max(float(np.abs(de.angles_rad).max()), 1e-12)
        assert np.allclose(
            se.angles_rad,
            de.angles_rad,
            rtol=AGREEMENT_RTOL,
            atol=AGREEMENT_RTOL * theta_scale,
        )
        assert np.allclose(
            se.residual_norms, de.residual_norms, rtol=AGREEMENT_RTOL, atol=0.0
        )
        # The solve-only entry point sees the same states.
        assert np.allclose(
            sparse.solve_states(Z),
            dense.solve_states(Z),
            rtol=AGREEMENT_RTOL,
            atol=AGREEMENT_RTOL * theta_scale,
        )

    @pytest.mark.parametrize("case", ("ieee14", "synthetic118"))
    def test_attack_noncentralities_and_gain_agree(self, case):
        system, dense, sparse = _both_models(case)
        rng = np.random.default_rng(5)
        A = rng.normal(0.0, 0.01, size=(4, system.n_measurements))

        lam_d = dense.attack_noncentralities(A)
        lam_s = sparse.attack_noncentralities(A)
        assert np.allclose(lam_s, lam_d, rtol=1e-8, atol=1e-8 * max(lam_d.max(), 1.0))

        gd = dense.gain_cholesky()
        gs = sparse.gain_cholesky()
        assert np.allclose(gs, gd, rtol=1e-7, atol=1e-7 * float(np.abs(gd).max()))

    def test_alarm_decisions_agree(self, net14, opf14):
        system = MeasurementSystem.for_network(net14)
        det_dense = BadDataDetector(system, backend="dense")
        det_sparse = BadDataDetector(system, backend="sparse")
        assert det_dense.threshold == det_sparse.threshold
        Z = system.measure_batch(opf14.angles_rad, n_draws=32, rng=3)
        assert np.array_equal(
            det_dense.raises_alarms(Z), det_sparse.raises_alarms(Z)
        )
        a = np.zeros(system.n_measurements)
        a[0] = 0.05
        assert det_sparse.detection_probability(a) == pytest.approx(
            det_dense.detection_probability(a), rel=1e-9
        )

    def test_rank_deficient_raises_identically(self):
        H = np.zeros((8, 3))
        H[:, :2] = np.random.default_rng(0).normal(size=(8, 2))
        w = np.ones(8)
        with pytest.raises(EstimationError, match="unobservable"):
            LinearModel(H, w, backend="dense")
        with pytest.raises(EstimationError, match="unobservable"):
            LinearModel(H, w, backend="sparse")


# ----------------------------------------------------------------------
# golden dense path
# ----------------------------------------------------------------------
class TestDenseGolden:
    def test_dense_matches_reference_arithmetic(self, measurement14):
        model = LinearModel.from_measurement_system(measurement14, backend="dense")
        H = measurement14.matrix()
        sqrt_w = np.sqrt(measurement14.weights())
        q_ref, r_ref = np.linalg.qr(sqrt_w[:, None] * H)
        assert np.array_equal(model.q, q_ref)
        assert np.array_equal(model.r, r_ref)

        rng = np.random.default_rng(2)
        Z = rng.normal(0.0, 0.01, size=(6, measurement14.n_measurements))
        weighted = Z * sqrt_w
        coeffs = weighted @ q_ref
        theta_ref = scipy.linalg.solve_triangular(r_ref, coeffs.T).T
        norms_ref = np.linalg.norm(weighted - coeffs @ q_ref.T, axis=1)
        est = model.estimate_batch(Z)
        assert np.array_equal(est.angles_rad, theta_ref)
        assert np.array_equal(est.residual_norms, norms_ref)

        signs = np.where(np.diag(r_ref) < 0.0, -1.0, 1.0)
        assert np.array_equal(model.gain_cholesky(), signs[:, None] * r_ref)

    def test_dense_backend_accepts_sparse_input(self, measurement14):
        dense_from_sparse = LinearModel(
            measurement14.matrix_sparse(), measurement14.weights(), backend="dense"
        )
        dense_from_array = LinearModel(
            measurement14.matrix(), measurement14.weights(), backend="dense"
        )
        assert np.array_equal(dense_from_sparse.q, dense_from_array.q)
        assert np.array_equal(dense_from_sparse.r, dense_from_array.r)


# ----------------------------------------------------------------------
# resolution and the sparse backend's surface
# ----------------------------------------------------------------------
class TestResolution:
    def test_available_backends(self):
        assert available_backends() == ("dense", "sparse")
        assert set(available_backends()) < set(BACKEND_CHOICES)

    def test_auto_crossover(self):
        assert resolve_backend("auto", n_buses=SPARSE_BUS_THRESHOLD - 1) == "dense"
        assert resolve_backend("auto", n_buses=SPARSE_BUS_THRESHOLD) == "sparse"
        assert resolve_backend("dense", n_buses=10**6) == "dense"
        assert resolve_backend("sparse", n_buses=2) == "sparse"

    def test_unknown_backend_rejected(self, measurement14):
        with pytest.raises(ConfigurationError, match="unknown factorization backend"):
            resolve_backend("qr", n_buses=14)
        with pytest.raises(ConfigurationError):
            LinearModel.from_measurement_system(measurement14, backend="qr")
        with pytest.raises(ConfigurationError):
            build_backend(np.eye(3), np.ones(3), "auto")  # must be resolved first

    def test_model_resolves_auto_by_size(self, measurement14):
        small = LinearModel.from_measurement_system(measurement14)
        assert small.backend == "dense"
        big = MeasurementSystem.for_network(load_case("synthetic118"))
        assert LinearModel.from_measurement_system(big).backend == "sparse"

    def test_sparse_backend_is_qless(self, measurement14):
        model = LinearModel.from_measurement_system(measurement14, backend="sparse")
        assert model.backend == "sparse"
        with pytest.raises(EstimationError, match="Q-less"):
            model.q
        with pytest.raises(EstimationError, match="Q-less"):
            model.r
        # The diagnostic densification still round-trips the Jacobian.
        assert np.array_equal(model.matrix, measurement14.matrix())

    def test_backend_classes_exported(self):
        fact = build_backend(np.eye(4) + 1.0, np.ones(4), "dense")
        assert isinstance(fact, DenseQRBackend)
        fact = build_backend(scipy.sparse.eye(4, format="csr"), np.ones(4), "sparse")
        assert isinstance(fact, SparseQlessBackend)


# ----------------------------------------------------------------------
# cache keys and engine plumbing
# ----------------------------------------------------------------------
def _spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="backend-knob",
        grid=GridSpec(case="ieee14", baseline="dc-opf"),
        attack=AttackSpec(n_attacks=4, seed=1),
        mtd=MTDSpec(policy="none"),
        n_trials=2,
        base_seed=3,
        deltas=(0.9,),
        metric="eta(0.9)",
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestCacheKeys:
    def test_injected_model_backend_mismatch_raises(self, measurement14):
        dense = LinearModel.from_measurement_system(measurement14, backend="dense")
        with pytest.raises(EstimationError, match="cache key must include the backend"):
            WLSStateEstimator(measurement14, model=dense, backend="sparse")
        # Matching (or unresolved "auto") injections stay accepted.
        WLSStateEstimator(measurement14, model=dense, backend="dense")
        WLSStateEstimator(measurement14, model=dense)

    def test_model_cache_keys_distinct_per_backend(self):
        cache = LinearModelCache(maxsize=8)
        run_trial_batch(_spec(backend="dense"), model_cache=cache)
        misses_dense = cache.misses
        assert misses_dense > 0
        # Same grid, same perturbations — a sparse run must not reuse the
        # dense factorisations (regression: keys lacked the backend).
        run_trial_batch(_spec(backend="sparse"), model_cache=cache)
        assert cache.misses == 2 * misses_dense
        assert len(cache) == 2 * misses_dense

    def test_auto_is_dense_below_threshold_bit_identical(self):
        auto = [run_trial(_spec(), i) for i in range(2)]
        dense = [run_trial(_spec(backend="dense"), i) for i in range(2)]
        assert [t.metrics for t in auto] == [t.metrics for t in dense]

    def test_sparse_backend_runs_and_agrees_to_tolerance(self):
        dense = run_trial(_spec(backend="dense"), 0)
        sparse = run_trial(_spec(backend="sparse"), 0)
        assert set(dense.metrics) == set(sparse.metrics)
        for key, value in dense.metrics.items():
            assert sparse.metrics[key] == pytest.approx(value, rel=1e-6, abs=1e-9)


# ----------------------------------------------------------------------
# the spec knob
# ----------------------------------------------------------------------
class TestSpecKnob:
    def test_backend_field_round_trips(self):
        spec = _spec(backend="sparse")
        assert spec.backend == "sparse"
        assert ScenarioSpec.from_dict(spec.to_dict()).backend == "sparse"
        assert ScenarioSpec.from_json(spec.to_json()).backend == "sparse"
        assert _spec().backend == "auto"

    def test_backend_excluded_from_content_hash(self):
        spec = _spec()
        assert spec.content_hash() == spec.with_updates(backend="sparse").content_hash()
        assert spec.content_hash() == spec.with_updates(backend="dense").content_hash()

    def test_backend_validation(self):
        with pytest.raises(ConfigurationError, match="backend"):
            _spec(backend="qr")


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------
class TestObservability:
    def test_factorization_counters(self, measurement14):
        telemetry.reset()
        with telemetry.enabled_scope():
            LinearModel.from_measurement_system(measurement14, backend="dense")
            LinearModel.from_measurement_system(measurement14, backend="sparse")
        snap = telemetry.snapshot()
        telemetry.reset()
        assert snap.counters["estimation.factorizations"] == 2
        assert snap.counters["estimation.backend.dense"] == 1
        assert snap.counters["estimation.backend.sparse"] == 1
        assert snap.histograms["estimation.factorize_seconds"]["count"] == 2

    def test_counters_silent_when_disabled(self, measurement14):
        telemetry.reset()
        LinearModel.from_measurement_system(measurement14, backend="dense")
        assert telemetry.snapshot().counters == {}

    def test_environment_stamp(self):
        assert environment_info()["factorization_backends"] == "dense,sparse"


# ----------------------------------------------------------------------
# scale registry
# ----------------------------------------------------------------------
class TestScaleCases:
    def test_synthetic1354_registered(self):
        assert "synthetic1354" in available_cases()
        network = load_case("synthetic1354")
        assert network.n_buses == 1354
        # Parameters stay overridable through the registry.
        assert load_case("synthetic1354", seed=7).n_buses == 1354

    def test_scale_suite_includes_production_size(self):
        cases = {spec.grid.case for spec in scenario_suite("scale")}
        assert "synthetic1354" in cases
