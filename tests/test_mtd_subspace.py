"""Tests for repro.mtd.subspace (principal angles and the design metric)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid.matrices import reduced_measurement_matrix
from repro.mtd.subspace import (
    column_space_overlap_dimension,
    is_orthogonal_complement,
    largest_principal_angle,
    principal_angles,
    smallest_principal_angle,
    spa_degrees,
    spa_profile,
    subspace_angle,
)


class TestPrincipalAngles:
    def test_identical_subspaces_have_zero_angles(self, rng):
        A = rng.standard_normal((10, 3))
        angles = principal_angles(A, 2.0 * A)
        np.testing.assert_allclose(angles, np.zeros(3), atol=1e-9)

    def test_orthogonal_subspaces_have_right_angles(self):
        A = np.zeros((6, 2))
        A[0, 0] = 1.0
        A[1, 1] = 1.0
        B = np.zeros((6, 2))
        B[2, 0] = 1.0
        B[3, 1] = 1.0
        angles = principal_angles(A, B)
        np.testing.assert_allclose(angles, np.full(2, np.pi / 2), atol=1e-9)

    def test_known_planar_angle(self):
        """Two lines in the plane at 30 degrees."""
        a = np.array([[1.0], [0.0]])
        theta = np.pi / 6
        b = np.array([[np.cos(theta)], [np.sin(theta)]])
        assert smallest_principal_angle(a, b) == pytest.approx(theta)
        assert largest_principal_angle(a, b) == pytest.approx(theta)

    def test_angles_sorted_ascending(self, rng):
        A = rng.standard_normal((12, 4))
        B = rng.standard_normal((12, 4))
        angles = principal_angles(A, B)
        assert np.all(np.diff(angles) >= -1e-12)

    def test_symmetry(self, rng):
        A = rng.standard_normal((12, 4))
        B = rng.standard_normal((12, 4))
        np.testing.assert_allclose(
            principal_angles(A, B), principal_angles(B, A), atol=1e-9
        )

    def test_bounds(self, rng):
        A = rng.standard_normal((12, 4))
        B = rng.standard_normal((12, 4))
        angles = principal_angles(A, B)
        assert np.all(angles >= -1e-12)
        assert np.all(angles <= np.pi / 2 + 1e-12)

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            principal_angles(rng.standard_normal((10, 2)), rng.standard_normal((8, 2)))

    def test_non_matrix_rejected(self, rng):
        with pytest.raises(ValueError):
            principal_angles(rng.standard_normal(10), rng.standard_normal((10, 2)))


class TestDesignMetric:
    def test_subspace_angle_is_largest_principal_angle(self, rng):
        A = rng.standard_normal((15, 5))
        B = rng.standard_normal((15, 5))
        assert subspace_angle(A, B) == pytest.approx(largest_principal_angle(A, B))

    def test_zero_for_identical_measurement_matrices(self, net14):
        H = reduced_measurement_matrix(net14)
        assert subspace_angle(H, H) == pytest.approx(0.0, abs=1e-9)

    def test_zero_for_uniform_scaling(self, net14):
        """H' = (1+η)H leaves the column space unchanged (paper's Case 2)."""
        H = reduced_measurement_matrix(net14)
        assert subspace_angle(H, 1.2 * H) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_partial_perturbation(self, net14):
        H = reduced_measurement_matrix(net14)
        x = net14.reactances()
        for index in net14.dfacts_branches:
            x[index] *= 1.5
        H_perturbed = reduced_measurement_matrix(net14, x)
        assert subspace_angle(H, H_perturbed) > 0.01

    def test_smallest_angle_is_zero_for_partial_dfacts_coverage(self, net14):
        """With only 6 of 20 lines perturbable the column spaces always share
        directions — the reproduction note motivating the choice of metric."""
        H = reduced_measurement_matrix(net14)
        x = net14.reactances()
        for index in net14.dfacts_branches:
            x[index] *= 1.5
        H_perturbed = reduced_measurement_matrix(net14, x)
        assert smallest_principal_angle(H, H_perturbed) == pytest.approx(0.0, abs=1e-7)
        assert column_space_overlap_dimension(H, H_perturbed) >= 1

    def test_larger_perturbations_give_larger_angles(self, net14):
        H = reduced_measurement_matrix(net14)
        angles = []
        for factor in (1.1, 1.3, 1.5):
            x = net14.reactances()
            for index in net14.dfacts_branches:
                x[index] *= factor
            angles.append(subspace_angle(H, reduced_measurement_matrix(net14, x)))
        assert angles[0] < angles[1] < angles[2]

    def test_spa_degrees_conversion(self, rng):
        A = rng.standard_normal((10, 3))
        B = rng.standard_normal((10, 3))
        assert spa_degrees(A, B) == pytest.approx(np.degrees(subspace_angle(A, B)))


class TestOrthogonality:
    def test_orthogonal_complement_detected(self):
        A = np.eye(6)[:, :3]
        B = np.eye(6)[:, 3:]
        assert is_orthogonal_complement(A, B)

    def test_non_orthogonal_detected(self, rng):
        A = rng.standard_normal((8, 3))
        assert not is_orthogonal_complement(A, A)

    def test_overlap_dimension_full_for_identical(self, rng):
        A = rng.standard_normal((9, 4))
        assert column_space_overlap_dimension(A, A) == 4

    def test_overlap_dimension_zero_for_generic(self, rng):
        A = rng.standard_normal((20, 4))
        B = rng.standard_normal((20, 4))
        assert column_space_overlap_dimension(A, B) == 0

    def test_profile_keys(self, rng):
        A = rng.standard_normal((10, 3))
        B = rng.standard_normal((10, 3))
        profile = spa_profile(A, B)
        assert set(profile) == {"smallest", "median", "largest", "overlap_dimension"}
        assert profile["smallest"] <= profile["median"] <= profile["largest"]
