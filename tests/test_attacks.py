"""Tests for the FDI-attack subpackage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.fdi import is_undetectable_under, stealthy_attack, targeted_state_attack
from repro.attacks.generator import generate_attack_ensemble
from repro.attacks.impact import estimate_attack_cost_impact, falsified_loads_from_state_bias
from repro.attacks.scaling import (
    attack_measurement_ratio,
    scale_attack_to_measurement_ratio,
)
from repro.estimation.bdd import BadDataDetector
from repro.exceptions import AttackConstructionError


class TestStealthyAttack:
    def test_attack_is_hc(self, measurement14, rng):
        H = measurement14.matrix()
        c = rng.standard_normal(13)
        np.testing.assert_allclose(stealthy_attack(H, c), H @ c)

    def test_attack_bypasses_matching_bdd(self, measurement14, rng):
        """a = Hc keeps detection probability at the FP rate on the
        unperturbed system — the Liu-Ning-Reiter result."""
        detector = BadDataDetector(measurement14)
        attack = stealthy_attack(measurement14.matrix(), rng.standard_normal(13))
        assert detector.detection_probability(attack) == pytest.approx(
            detector.false_positive_rate
        )

    def test_wrong_bias_length_rejected(self, measurement14):
        with pytest.raises(AttackConstructionError):
            stealthy_attack(measurement14.matrix(), np.ones(4))

    def test_non_matrix_rejected(self):
        with pytest.raises(AttackConstructionError):
            stealthy_attack(np.ones(5), np.ones(5))

    def test_targeted_attack_hits_requested_states(self, measurement14):
        H = measurement14.matrix()
        attack = targeted_state_attack(H, {2: 0.1, 5: -0.05})
        expected_c = np.zeros(13)
        expected_c[2] = 0.1
        expected_c[5] = -0.05
        np.testing.assert_allclose(attack, H @ expected_c)

    def test_targeted_attack_invalid_index(self, measurement14):
        with pytest.raises(AttackConstructionError):
            targeted_state_attack(measurement14.matrix(), {99: 0.1})

    def test_targeted_attack_all_zero_rejected(self, measurement14):
        with pytest.raises(AttackConstructionError):
            targeted_state_attack(measurement14.matrix(), {2: 0.0})

    def test_undetectable_under_same_matrix(self, measurement14, rng):
        H = measurement14.matrix()
        attack = stealthy_attack(H, rng.standard_normal(13))
        assert is_undetectable_under(attack, H)

    def test_detectable_under_perturbed_matrix(self, net14, measurement14, rng):
        H = measurement14.matrix()
        attack = stealthy_attack(H, rng.standard_normal(13))
        x = net14.reactances()
        for index in net14.dfacts_branches:
            x[index] *= 1.5
        H_perturbed = measurement14.with_reactances(x).matrix()
        assert not is_undetectable_under(attack, H_perturbed)


class TestScaling:
    def test_scaling_achieves_target_ratio(self, opf14, measurement14, rng):
        z = measurement14.noiseless_measurements(opf14.angles_rad)
        attack = measurement14.matrix() @ rng.standard_normal(13)
        scaled = scale_attack_to_measurement_ratio(attack, z, target_ratio=0.08)
        assert attack_measurement_ratio(scaled, z) == pytest.approx(0.08)

    def test_scaling_preserves_direction(self, opf14, measurement14, rng):
        z = measurement14.noiseless_measurements(opf14.angles_rad)
        attack = measurement14.matrix() @ rng.standard_normal(13)
        scaled = scale_attack_to_measurement_ratio(attack, z, target_ratio=0.05)
        cosine = np.dot(scaled, attack) / (np.linalg.norm(scaled) * np.linalg.norm(attack))
        assert cosine == pytest.approx(1.0)

    def test_zero_attack_rejected(self, opf14, measurement14):
        z = measurement14.noiseless_measurements(opf14.angles_rad)
        with pytest.raises(AttackConstructionError):
            scale_attack_to_measurement_ratio(np.zeros(54), z)

    def test_invalid_ratio_rejected(self, opf14, measurement14, rng):
        z = measurement14.noiseless_measurements(opf14.angles_rad)
        attack = measurement14.matrix() @ rng.standard_normal(13)
        with pytest.raises(AttackConstructionError):
            scale_attack_to_measurement_ratio(attack, z, target_ratio=-0.1)

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(AttackConstructionError):
            scale_attack_to_measurement_ratio(rng.standard_normal(5), rng.standard_normal(6))


class TestEnsemble:
    def test_ensemble_size_and_shapes(self, opf14, measurement14):
        z = measurement14.noiseless_measurements(opf14.angles_rad)
        ensemble = generate_attack_ensemble(measurement14.matrix(), z, n_attacks=50, seed=0)
        assert len(ensemble) == 50
        assert ensemble.attacks.shape == (50, 54)
        assert ensemble.state_biases.shape == (50, 13)

    def test_every_attack_has_target_ratio(self, opf14, measurement14):
        z = measurement14.noiseless_measurements(opf14.angles_rad)
        ensemble = generate_attack_ensemble(
            measurement14.matrix(), z, n_attacks=30, target_ratio=0.08, seed=1
        )
        for attack in ensemble:
            assert attack_measurement_ratio(attack, z) == pytest.approx(0.08)

    def test_attacks_consistent_with_biases(self, opf14, measurement14):
        z = measurement14.noiseless_measurements(opf14.angles_rad)
        ensemble = generate_attack_ensemble(measurement14.matrix(), z, n_attacks=10, seed=2)
        np.testing.assert_allclose(
            ensemble.attacks, ensemble.state_biases @ measurement14.matrix().T, atol=1e-9
        )

    def test_deterministic_given_seed(self, opf14, measurement14):
        z = measurement14.noiseless_measurements(opf14.angles_rad)
        a = generate_attack_ensemble(measurement14.matrix(), z, n_attacks=5, seed=3)
        b = generate_attack_ensemble(measurement14.matrix(), z, n_attacks=5, seed=3)
        np.testing.assert_allclose(a.attacks, b.attacks)

    def test_subset(self, opf14, measurement14):
        z = measurement14.noiseless_measurements(opf14.angles_rad)
        ensemble = generate_attack_ensemble(measurement14.matrix(), z, n_attacks=10, seed=4)
        subset = ensemble.subset([0, 3, 7])
        assert len(subset) == 3
        np.testing.assert_allclose(subset.attacks[1], ensemble.attacks[3])

    def test_invalid_count_rejected(self, opf14, measurement14):
        z = measurement14.noiseless_measurements(opf14.angles_rad)
        with pytest.raises(AttackConstructionError):
            generate_attack_ensemble(measurement14.matrix(), z, n_attacks=0)


class TestImpact:
    def test_falsified_loads_preserve_total(self, net14, rng):
        bias = 0.05 * rng.standard_normal(13)
        falsified = falsified_loads_from_state_bias(net14, bias)
        assert falsified.sum() == pytest.approx(net14.total_load_mw(), rel=1e-6)
        assert np.all(falsified >= 0.0)

    def test_zero_bias_changes_nothing(self, net14):
        impact = estimate_attack_cost_impact(net14, np.zeros(13))
        assert impact.relative_increase == pytest.approx(0.0, abs=1e-9)
        assert impact.feasible

    def test_significant_bias_increases_cost(self, net14):
        """A load-redistribution attack on the congested 14-bus system makes
        the realised dispatch more expensive."""
        bias = np.zeros(13)
        bias[1] = 0.01   # bus 3 (largest load) region
        bias[2] = -0.01  # bus 4 region
        impact = estimate_attack_cost_impact(net14, bias)
        assert impact.feasible
        assert impact.attacked_cost >= impact.baseline_cost - 1e-6
        assert impact.relative_increase >= 0.0

    def test_wrong_bias_length_rejected(self, net14):
        with pytest.raises(AttackConstructionError):
            falsified_loads_from_state_bias(net14, np.zeros(4))
