"""Fixture-based good/bad tests for every `repro lint` contract rule."""

from __future__ import annotations

import importlib
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import REGISTRY, LintConfig, lint_paths
from repro.analysis.lint.core import (
    Finding,
    is_suppressed,
    iter_python_files,
    select_rules,
    suppressions_for,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

EXPECTED_RULES = {
    "global-rng",
    "wall-clock",
    "unsorted-iteration",
    "spec-hash-fields",
    "frozen-mutation",
    "durable-write",
}


def lint_source(tmp_path: Path, source: str, rules: list[str] | None = None, name: str = "snippet.py"):
    """Write ``source`` to a scratch file and lint it."""
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_paths([path], rule_ids=rules)


def rule_ids(result) -> list[str]:
    return [finding.rule for finding in result.findings]


class TestRegistry:
    def test_all_six_rules_registered(self):
        assert EXPECTED_RULES <= set(REGISTRY)

    def test_rules_carry_catalog_metadata(self):
        for rule_id in EXPECTED_RULES:
            rule = REGISTRY[rule_id]
            assert rule.summary and rule.rationale

    def test_select_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            select_rules(["no-such-rule"])


class TestGlobalRNG:
    def test_flags_global_numpy_distribution_call(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import numpy as np
            def draw():
                return np.random.normal(size=3)
            """,
            rules=["global-rng"],
        )
        assert rule_ids(result) == ["global-rng"]

    def test_flags_stdlib_random_and_unseeded_default_rng(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import random
            import numpy as np
            def bad():
                return random.randint(0, 3) + float(np.random.default_rng().random())
            """,
            rules=["global-rng"],
        )
        assert rule_ids(result) == ["global-rng", "global-rng"]

    def test_flags_default_rng_with_literal_none(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import numpy as np
            def bad():
                return np.random.default_rng(None)
            """,
            rules=["global-rng"],
        )
        assert len(result.findings) == 1

    def test_allows_generator_constructors_and_seeded_default_rng(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import numpy as np
            def good(seed):
                seq = np.random.SeedSequence(seed, spawn_key=(1,))
                rng = np.random.Generator(np.random.PCG64(seq))
                other = np.random.default_rng(seed)
                return rng.normal() + other.random()
            """,
            rules=["global-rng"],
        )
        assert result.findings == []

    def test_numpy_alias_resolution(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import numpy.random as npr
            def bad():
                return npr.uniform()
            """,
            rules=["global-rng"],
        )
        assert rule_ids(result) == ["global-rng"]

    def test_numpy_random_attribute_named_random_not_confused_with_stdlib(self, tmp_path):
        # `from numpy import random` binds numpy's module under the name
        # `random`; constructor use through it stays allowed.
        result = lint_source(
            tmp_path,
            """
            from numpy import random
            def good(seed):
                return random.Generator(random.PCG64(seed))
            """,
            rules=["global-rng"],
        )
        assert result.findings == []


class TestWallClock:
    def test_flags_time_time_outside_allowlist(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time
            def stamp():
                return time.time()
            """,
            rules=["wall-clock"],
        )
        assert rule_ids(result) == ["wall-clock"]

    def test_flags_datetime_now_including_from_import(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            from datetime import datetime
            def stamp():
                return datetime.now()
            """,
            rules=["wall-clock"],
        )
        assert rule_ids(result) == ["wall-clock"]

    def test_allows_monotonic_duration_clocks(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time
            def measure():
                start = time.perf_counter()
                return time.perf_counter() - start + time.monotonic()
            """,
            rules=["wall-clock"],
        )
        assert result.findings == []

    def test_allowlisted_module_is_exempt(self, tmp_path):
        package = tmp_path / "repro" / "telemetry"
        package.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (package / "__init__.py").write_text("")
        module = package / "stamps.py"
        module.write_text("import time\n\ndef stamp():\n    return time.time()\n")
        result = lint_paths([module], rule_ids=["wall-clock"])
        assert result.findings == []

    def test_real_allowlist_matches_repo_layout(self):
        config = LintConfig()
        assert config.module_allowed("repro.telemetry.spans", config.wall_clock_allowlist)
        assert config.module_allowed("repro.campaign.store", config.wall_clock_allowlist)
        assert not config.module_allowed("repro.engine.trial", config.wall_clock_allowlist)
        # Prefix matching is segment-aware: no accidental umbrella.
        assert not config.module_allowed(
            "repro.telemetry_extras", config.wall_clock_allowlist
        )


class TestUnsortedIteration:
    def test_flags_bare_glob_iteration(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def entries(directory):
                return [p.name for p in directory.glob("*.json")]
            """,
            rules=["unsorted-iteration"],
        )
        assert rule_ids(result) == ["unsorted-iteration"]

    def test_flags_os_listdir_and_iterdir(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import os
            def walk(d):
                for name in os.listdir(d):
                    yield name
                for p in d.iterdir():
                    yield p
            """,
            rules=["unsorted-iteration"],
        )
        assert rule_ids(result) == ["unsorted-iteration", "unsorted-iteration"]

    def test_sorted_wrapping_is_clean_direct_and_through_genexpr(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def entries(directory):
                direct = sorted(directory.glob("*.json"))
                names = tuple(sorted(p.name for p in directory.glob("*.m")))
                return direct, names
            """,
            rules=["unsorted-iteration"],
        )
        assert result.findings == []

    def test_flags_set_iteration_allows_sorted_set(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def over(values):
                for x in set(values):
                    yield x
                for y in sorted(set(values)):
                    yield y
                return [z for z in {1, 2, 3}]
            """,
            rules=["unsorted-iteration"],
        )
        assert len(result.findings) == 2

    def test_fixed_result_cache_stays_clean(self):
        # The motivating example: ResultCache.clear/__len__ iterated an
        # unsorted glob before this rule existed.
        result = lint_paths(
            [REPO_ROOT / "src" / "repro" / "engine" / "cache.py"],
            rule_ids=["unsorted-iteration"],
        )
        assert result.findings == []


class TestSpecHashFields:
    def test_flags_ad_hoc_pop_in_content_hash(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            from dataclasses import dataclass

            _LABEL_FIELDS = ("name",)

            @dataclass(frozen=True)
            class ThingSpec:
                name: str = ""
                note: str = ""

                def content_hash(self):
                    payload = {"name": self.name, "note": self.note}
                    payload.pop("note")
                    return str(payload)
            """,
            rules=["spec-hash-fields"],
        )
        assert rule_ids(result) == ["spec-hash-fields"]
        assert "'note'" in result.findings[0].message

    def test_flags_stale_declared_exclusion(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            from dataclasses import dataclass

            _LABEL_FIELDS = ("name", "ghost")

            @dataclass(frozen=True)
            class ThingSpec:
                name: str = ""

                def content_hash(self):
                    return self.name
            """,
            rules=["spec-hash-fields"],
        )
        assert rule_ids(result) == ["spec-hash-fields"]
        assert "ghost" in result.findings[0].message

    def test_declared_exclusions_matching_fields_are_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            from dataclasses import dataclass

            _LABEL_FIELDS = ("name",)
            _EXECUTION_FIELDS = ("batch_size",)

            @dataclass(frozen=True)
            class ThingSpec:
                name: str = ""
                batch_size: int = 1
                payload_value: float = 0.0

                def content_hash(self):
                    data = {"batch_size": self.batch_size, "name": self.name}
                    for excluded in _LABEL_FIELDS + _EXECUTION_FIELDS:
                        data.pop(excluded, None)
                    return str(data)
            """,
            rules=["spec-hash-fields"],
        )
        assert result.findings == []

    def test_runtime_crosscheck_catches_inherited_field(self, tmp_path, monkeypatch):
        # A field inherited from a base class is invisible in the subclass
        # AST: only the import-and-diff cross-check can see it.
        package = tmp_path / "lintfix_inherit_pkg"
        package.mkdir()
        (package / "__init__.py").write_text("")
        (package / "mod.py").write_text(
            textwrap.dedent(
                """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class Base:
                    hidden_extra: int = 0

                @dataclass(frozen=True)
                class DerivedSpec(Base):
                    name: str = ""

                    def content_hash(self):
                        return self.name
                """
            )
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        importlib.invalidate_caches()
        result = lint_paths([package / "mod.py"], rule_ids=["spec-hash-fields"])
        assert rule_ids(result) == ["spec-hash-fields"]
        assert "hidden_extra" in result.findings[0].message

    def test_real_spec_modules_pass_the_crosscheck(self):
        src = REPO_ROOT / "src" / "repro"
        result = lint_paths(
            [
                src / "engine" / "spec.py",
                src / "campaign" / "definition.py",
                src / "timeseries" / "spec.py",
            ],
            rule_ids=["spec-hash-fields"],
        )
        assert result.findings == []


class TestFrozenMutation:
    def test_flags_setattr_outside_sanctioned_scopes(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def sneaky(obj):
                object.__setattr__(obj, "x", 1)
            """,
            rules=["frozen-mutation"],
        )
        assert rule_ids(result) == ["frozen-mutation"]

    def test_post_init_and_with_derivations_are_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Value:
                x: int = 0

                def __post_init__(self):
                    object.__setattr__(self, "x", int(self.x))

                def with_x(self, x):
                    derived = object.__new__(Value)
                    object.__setattr__(derived, "x", x)
                    return derived
            """,
            rules=["frozen-mutation"],
        )
        assert result.findings == []

    def test_module_level_setattr_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            class C:
                pass
            object.__setattr__(C(), "x", 1)
            """,
            rules=["frozen-mutation"],
        )
        assert rule_ids(result) == ["frozen-mutation"]


class TestDurableWrite:
    def test_flags_append_mode_open(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def log(path, line):
                with open(path, "a") as handle:
                    handle.write(line)
            """,
            rules=["durable-write"],
        )
        assert rule_ids(result) == ["durable-write"]

    def test_flags_path_open_append_and_os_o_append(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import os
            def appenders(path):
                handle = path.open("ab")
                fd = os.open(path, os.O_WRONLY | os.O_APPEND)
                return handle, fd
            """,
            rules=["durable-write"],
        )
        assert rule_ids(result) == ["durable-write", "durable-write"]

    def test_write_modes_and_allowlisted_modules_are_clean(self, tmp_path):
        clean = lint_source(
            tmp_path,
            """
            def write(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
                with path.open("rb") as handle:
                    return handle.read()
            """,
            rules=["durable-write"],
        )
        assert clean.findings == []
        package = tmp_path / "repro" / "telemetry"
        package.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (package / "__init__.py").write_text("")
        module = package / "progress.py"
        module.write_text("def appender(path):\n    return path.open('ab')\n")
        allowlisted = lint_paths([module], rule_ids=["durable-write"])
        assert allowlisted.findings == []


class TestSuppression:
    def test_same_line_directive(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time
            def stamp():
                return time.time()  # repro-lint: disable=wall-clock
            """,
            rules=["wall-clock"],
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_comment_line_above_covers_next_line(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time
            def stamp():
                # repro-lint: disable=wall-clock
                return time.time()
            """,
            rules=["wall-clock"],
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time
            def stamp():
                return time.time()  # repro-lint: disable=global-rng
            """,
            rules=["wall-clock"],
        )
        assert rule_ids(result) == ["wall-clock"]

    def test_disable_all_wildcard(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time
            def stamp():
                return time.time()  # repro-lint: disable=all
            """,
            rules=["wall-clock"],
        )
        assert result.findings == []

    def test_suppressions_table_parsing(self):
        table = suppressions_for(
            "x = 1  # repro-lint: disable=a,b\n# repro-lint: disable=c\ny = 2\n"
        )
        assert table[1] == frozenset({"a", "b"})
        assert table[3] == frozenset({"c"})
        finding = Finding("c", "f.py", None, 3, 0, "<module>", "y = 2", "")
        assert is_suppressed(finding, table)


class TestRunnerMechanics:
    def test_fingerprint_survives_line_shifts(self, tmp_path):
        source = "import time\ndef stamp():\n    return time.time()\n"
        shifted = "import time\n\n\n# padding\ndef stamp():\n    return time.time()\n"
        first = lint_source(tmp_path, source, rules=["wall-clock"], name="a.py")
        second = lint_source(tmp_path, shifted, rules=["wall-clock"], name="a.py")
        assert first.findings[0].line != second.findings[0].line
        assert first.findings[0].fingerprint() == second.findings[0].fingerprint()

    def test_syntax_error_reported_not_raised(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        result = lint_paths([path])
        assert result.exit_code == 2
        assert any("syntax error" in error for error in result.errors)

    def test_walk_order_is_sorted_and_skips_pycache(self, tmp_path):
        (tmp_path / "b.py").write_text("")
        (tmp_path / "a.py").write_text("")
        cache_dir = tmp_path / "__pycache__"
        cache_dir.mkdir()
        (cache_dir / "c.py").write_text("")
        files = list(iter_python_files([tmp_path]))
        assert files == [tmp_path / "a.py", tmp_path / "b.py"]
