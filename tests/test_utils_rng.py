"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import (
    as_generator,
    permuted_indices,
    random_signs,
    random_unit_vector,
    spawn_generators,
)


class TestAsGenerator:
    def test_none_returns_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1_000_000, size=5)
        b = as_generator(42).integers(0, 1_000_000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 1_000_000, size=10)
        b = as_generator(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnGenerators:
    def test_count_matches(self):
        children = spawn_generators(0, 5)
        assert len(children) == 5

    def test_children_are_independent_streams(self):
        children = spawn_generators(0, 2)
        a = children[0].standard_normal(20)
        b = children[1].standard_normal(20)
        assert not np.allclose(a, b)

    def test_deterministic_given_seed(self):
        a = spawn_generators(3, 3)[1].standard_normal(5)
        b = spawn_generators(3, 3)[1].standard_normal(5)
        np.testing.assert_allclose(a, b)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_generator_seed_supported(self):
        children = spawn_generators(np.random.default_rng(5), 2)
        assert len(children) == 2


class TestRandomHelpers:
    def test_unit_vector_has_unit_norm(self, rng):
        vec = random_unit_vector(17, rng)
        assert vec.shape == (17,)
        assert np.isclose(np.linalg.norm(vec), 1.0)

    def test_unit_vector_rejects_bad_dimension(self, rng):
        with pytest.raises(ValueError):
            random_unit_vector(0, rng)

    def test_random_signs_are_plus_minus_one(self, rng):
        signs = random_signs(50, rng)
        assert set(np.unique(signs)).issubset({-1.0, 1.0})

    def test_random_signs_rejects_negative_count(self, rng):
        with pytest.raises(ValueError):
            random_signs(-2, rng)

    def test_permuted_indices_full(self, rng):
        perm = permuted_indices(10, rng)
        assert sorted(perm.tolist()) == list(range(10))

    def test_permuted_indices_truncated(self, rng):
        perm = permuted_indices(10, rng, take=4)
        assert len(perm) == 4
        assert len(set(perm.tolist())) == 4

    def test_permuted_indices_invalid_take(self, rng):
        with pytest.raises(ValueError):
            permuted_indices(5, rng, take=9)


class TestSpawnGeneratorsStateless:
    """Regression tests: spawning must never consume the caller's stream."""

    def test_generator_input_not_mutated(self):
        gen = np.random.default_rng(5)
        before = gen.bit_generator.state
        spawn_generators(gen, 4)
        assert gen.bit_generator.state == before

    def test_repeated_calls_with_same_generator_agree(self):
        gen = np.random.default_rng(7)
        first = spawn_generators(gen, 3)
        second = spawn_generators(gen, 3)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.standard_normal(8), b.standard_normal(8))

    def test_generator_and_equal_seed_agree(self):
        """A generator-seeded spawn matches the spawn of its own seed."""
        a = spawn_generators(np.random.default_rng(11), 2)
        b = spawn_generators(np.random.default_rng(11), 2)
        np.testing.assert_array_equal(a[1].standard_normal(4), b[1].standard_normal(4))

    def test_integer_path_unchanged(self):
        """Integer/SeedSequence seeds keep their historical children."""
        children = spawn_generators(3, 3)
        reference = [
            np.random.Generator(np.random.PCG64(child))
            for child in np.random.SeedSequence(3).spawn(3)
        ]
        for ours, ref in zip(children, reference):
            np.testing.assert_array_equal(ours.standard_normal(6), ref.standard_normal(6))

    def test_seed_sequence_not_advanced(self):
        seq = np.random.SeedSequence(9)
        spawn_generators(seq, 3)
        assert seq.n_children_spawned == 0

    def test_no_collision_with_previously_spawned_children(self):
        """Children never repeat streams the caller already spawned: the
        spawn counter is read (as the key offset) without being advanced."""
        seq = np.random.SeedSequence(13)
        own = [np.random.Generator(np.random.PCG64(c)) for c in seq.spawn(2)]
        ours = spawn_generators(seq, 2)
        own_draws = [g.standard_normal(6) for g in own]
        for child in ours:
            draws = child.standard_normal(6)
            assert all(not np.allclose(draws, prior) for prior in own_draws)
