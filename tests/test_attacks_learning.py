"""Tests for the attacker subspace-learning extension (repro.attacks.learning)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.learning import (
    SubspaceLearner,
    knowledge_decay_curve,
    learned_attack,
)
from repro.estimation.bdd import BadDataDetector
from repro.exceptions import AttackConstructionError


class TestSubspaceLearner:
    def test_noiseless_snapshots_recover_subspace_exactly(self, net14, opf14, measurement14, rng):
        """With enough noise-free snapshots the learned basis spans Col(H)."""
        learner = SubspaceLearner(measurement14.n_states)
        H = measurement14.matrix()
        snapshots = np.array(
            [H @ (measurement14.reduce_angles(opf14.angles_rad) + 0.05 * rng.standard_normal(13))
             for _ in range(60)]
        )
        learned = learner.learn(snapshots, true_matrix=H)
        assert learned.alignment_with == pytest.approx(0.0, abs=1e-6)

    def test_noisy_learning_improves_with_more_snapshots(self, net14, opf14, measurement14):
        learner = SubspaceLearner(measurement14.n_states)
        few = learner.collect_and_learn(
            measurement14, opf14.angles_rad, n_snapshots=20, rng=3,
            true_matrix=measurement14.matrix(),
        )
        many = learner.collect_and_learn(
            measurement14, opf14.angles_rad, n_snapshots=400, rng=3,
            true_matrix=measurement14.matrix(),
        )
        assert many.alignment_with <= few.alignment_with + 1e-9
        assert many.n_snapshots == 400

    def test_attacks_from_well_learned_subspace_are_stealthy(self, net14, opf14, measurement14, rng):
        """After enough eavesdropping the attacker bypasses the BDD again —
        the knowledge-decay premise behind the paper's hourly re-perturbation."""
        learner = SubspaceLearner(measurement14.n_states)
        learned = learner.collect_and_learn(
            measurement14, opf14.angles_rad, n_snapshots=800, rng=5
        )
        detector = BadDataDetector(measurement14)
        attack = learned_attack(learned, rng.standard_normal(13))
        attack *= 0.05 / np.linalg.norm(attack)
        assert detector.detection_probability(attack) < 0.1

    def test_too_few_snapshots_rejected(self, measurement14, rng):
        learner = SubspaceLearner(measurement14.n_states)
        with pytest.raises(AttackConstructionError):
            learner.learn(rng.standard_normal((5, measurement14.n_measurements)))

    def test_invalid_state_dimension_rejected(self):
        with pytest.raises(AttackConstructionError):
            SubspaceLearner(0)

    def test_non_matrix_snapshots_rejected(self, measurement14, rng):
        learner = SubspaceLearner(measurement14.n_states)
        with pytest.raises(AttackConstructionError):
            learner.learn(rng.standard_normal(10))

    def test_learned_attack_weight_mismatch(self, net14, opf14, measurement14):
        learner = SubspaceLearner(measurement14.n_states)
        learned = learner.collect_and_learn(
            measurement14, opf14.angles_rad, n_snapshots=30, rng=0
        )
        with pytest.raises(AttackConstructionError):
            learned_attack(learned, np.ones(4))


class TestKnowledgeDecay:
    def test_detection_probability_decreases_with_snapshots(self, net14, opf14, measurement14):
        """The more the attacker eavesdrops after a perturbation, the more
        stealthy their re-crafted attacks become."""
        curve = knowledge_decay_curve(
            measurement14,
            opf14.angles_rad,
            snapshot_counts=[15, 60, 600],
            n_attacks=20,
            seed=1,
        )
        assert len(curve) == 3
        detection = [point["mean_detection_probability"] for point in curve]
        errors = [point["subspace_error"] for point in curve]
        assert detection[0] > detection[-1] + 0.2
        assert errors[0] >= errors[-1]
        assert detection[-1] < 0.5
