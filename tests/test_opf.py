"""Tests for the OPF solvers (dispatch-only LP and joint reactance NLP)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import OPFConvergenceError, OPFInfeasibleError
from repro.grid.cases import case4gs, case14
from repro.opf.dc_opf import opf_cost, solve_dc_opf
from repro.opf.multistart import LocalSolve, MultiStartOptimizer
from repro.opf.reactance_opf import ReactanceOPFProblem, solve_reactance_opf
from repro.powerflow.dc import solve_dc_power_flow


class TestDCOPF:
    def test_paper_table_ii(self, net4, opf4):
        """Pre-perturbation dispatch, flows and cost of Table II."""
        np.testing.assert_allclose(opf4.dispatch_mw, [350.0, 150.0], atol=1e-4)
        np.testing.assert_allclose(
            opf4.flows_mw, [126.56, 173.44, -43.44, -26.56], atol=0.01
        )
        assert opf4.cost == pytest.approx(1.15e4, rel=1e-6)

    def test_dispatch_respects_generator_limits(self, net14, opf14):
        p_min, p_max = net14.generator_limits_mw()
        assert np.all(opf14.dispatch_mw >= p_min - 1e-6)
        assert np.all(opf14.dispatch_mw <= p_max + 1e-6)

    def test_dispatch_meets_load(self, net14, opf14):
        assert opf14.total_generation_mw() == pytest.approx(net14.total_load_mw(), abs=1e-4)

    def test_flows_respect_limits(self, net14, opf14):
        limits = net14.flow_limits_mw()
        assert np.all(np.abs(opf14.flows_mw) <= limits + 1e-4)

    def test_flows_consistent_with_power_flow(self, net14, opf14):
        pf = solve_dc_power_flow(net14, generation_mw=opf14.dispatch_mw)
        np.testing.assert_allclose(pf.flows_mw, opf14.flows_mw, atol=1e-4)

    def test_cheapest_generators_used_first(self, net14, opf14):
        """Without binding constraints on them, cheap units should not idle
        while expensive units run."""
        costs = net14.generator_costs()
        dispatch = opf14.dispatch_mw
        # Generator at bus 6 (50 $/MWh) is the most expensive; it should be
        # at its minimum because cheaper capacity is available.
        most_expensive = int(np.argmax(costs))
        assert dispatch[most_expensive] == pytest.approx(0.0, abs=1e-6)

    def test_load_override(self, net14):
        light = solve_dc_opf(net14, loads_mw=net14.loads_mw() * 0.5)
        assert light.cost < opf_cost(net14)

    def test_reactance_override_changes_cost_under_congestion(self, net14):
        # At nominal load the 14-bus system is congested (lines 2 and 3 bind),
        # so changing reactances changes the achievable cost.
        x = net14.reactances()
        x[1] *= 0.5
        assert opf_cost(net14, reactances=x) != pytest.approx(opf_cost(net14))

    def test_infeasible_when_load_exceeds_capacity(self, net14):
        with pytest.raises(OPFInfeasibleError):
            solve_dc_opf(net14, loads_mw=net14.loads_mw() * 3.0)

    def test_wrong_load_length_rejected(self, net14):
        with pytest.raises(OPFInfeasibleError):
            solve_dc_opf(net14, loads_mw=np.ones(3))

    def test_binding_limits_reported(self, net14, opf14):
        binding = opf14.binding_flow_limits(net14)
        limits = net14.flow_limits_mw()
        for index in binding:
            assert abs(abs(opf14.flows_mw[index]) - limits[index]) < 1e-3

    def test_dispatch_by_bus_totals(self, net14, opf14):
        per_bus = opf14.dispatch_by_bus(net14)
        assert per_bus.sum() == pytest.approx(opf14.total_generation_mw())

    def test_summary_mentions_cost(self, opf14):
        assert "cost" in opf14.summary().lower()


class TestReactanceOPF:
    def test_never_worse_than_dispatch_only(self, net14):
        """Optimising reactances can only reduce (or match) the cost."""
        lp = solve_dc_opf(net14)
        joint = solve_reactance_opf(net14, n_random_starts=1, seed=0)
        assert joint.cost <= lp.cost + 1e-3

    def test_solution_within_dfacts_bounds(self, net14):
        joint = solve_reactance_opf(net14, n_random_starts=1, seed=0)
        x_min, x_max = net14.reactance_bounds()
        assert np.all(joint.reactances >= x_min - 1e-8)
        assert np.all(joint.reactances <= x_max + 1e-8)

    def test_solution_satisfies_power_balance(self, net14):
        joint = solve_reactance_opf(net14, n_random_starts=1, seed=0)
        pf = solve_dc_power_flow(
            net14, generation_mw=joint.dispatch_mw, reactances=joint.reactances
        )
        np.testing.assert_allclose(pf.flows_mw, joint.flows_mw, atol=0.5)
        assert joint.total_generation_mw() == pytest.approx(net14.total_load_mw(), abs=0.5)

    def test_falls_back_to_lp_without_dfacts(self):
        net = case14(dfacts_branches=())
        result = solve_reactance_opf(net)
        lp = solve_dc_opf(net)
        assert result.cost == pytest.approx(lp.cost)

    def test_extra_constraint_is_respected(self, net4):
        """A constraint forcing line 1's reactance up must be honoured."""
        nominal_x0 = net4.reactances()[0]

        def push_line1_up(x):
            return x[0] - 1.2 * nominal_x0  # >= 0 iff x0 >= 1.2 * nominal

        result = solve_reactance_opf(
            net4, extra_reactance_constraints=[push_line1_up], n_random_starts=2, seed=0
        )
        assert result.reactances[0] >= 1.2 * nominal_x0 - 1e-6

    def test_problem_vector_layout(self, net14):
        problem = ReactanceOPFProblem(network=net14, loads_mw=net14.loads_mw())
        assert problem.n_variables == 5 + 13 + 6
        z = np.arange(problem.n_variables, dtype=float)
        g, theta, x_d = problem.split(z)
        assert g.shape == (5,)
        assert theta.shape == (13,)
        assert x_d.shape == (6,)
        full = problem.full_reactances(x_d)
        assert full.shape == (20,)
        np.testing.assert_allclose(full[list(net14.dfacts_branches)], x_d)

    def test_problem_rejects_bad_loads(self, net14):
        with pytest.raises(OPFInfeasibleError):
            ReactanceOPFProblem(network=net14, loads_mw=np.ones(2))


class TestMultiStart:
    def test_finds_global_minimum_of_multimodal_function(self):
        # f(x) = (x^2 - 1)^2 has minima at ±1; starts near both should find them.
        optimizer = MultiStartOptimizer(
            objective=lambda z: float((z[0] ** 2 - 1.0) ** 2),
            bounds=[(-2.0, 2.0)],
        )
        outcome = optimizer.solve([np.array([1.5]), np.array([-1.5])])
        best = outcome.require_best()
        assert abs(abs(best.x[0]) - 1.0) < 1e-4
        assert outcome.n_feasible == 2

    def test_constraint_violation_tracked(self):
        optimizer = MultiStartOptimizer(
            objective=lambda z: float(z[0]),
            bounds=[(0.0, 10.0)],
            inequality_constraints=lambda z: np.array([z[0] - 5.0]),
        )
        outcome = optimizer.solve([np.array([7.0])])
        best = outcome.require_best()
        assert best.x[0] >= 5.0 - 1e-6

    def test_no_feasible_point_raises(self):
        # Constraints x >= 5 and bounds x <= 1 are incompatible.
        optimizer = MultiStartOptimizer(
            objective=lambda z: float(z[0]),
            bounds=[(0.0, 1.0)],
            inequality_constraints=lambda z: np.array([z[0] - 5.0]),
        )
        outcome = optimizer.solve([np.array([0.5])])
        assert outcome.best is None
        with pytest.raises(OPFConvergenceError):
            outcome.require_best()

    def test_empty_starts_rejected(self):
        optimizer = MultiStartOptimizer(objective=lambda z: 0.0, bounds=[(0, 1)])
        with pytest.raises(ValueError):
            optimizer.solve([])

    def test_local_solver_error_is_contained(self):
        def exploding(z):
            raise ValueError("bad region")

        optimizer = MultiStartOptimizer(objective=exploding, bounds=[(0, 1)])
        outcome = optimizer.solve([np.array([0.5])])
        assert outcome.best is None
        assert not outcome.runs[0].success

    def test_feasibility_tolerance_constant(self):
        assert LocalSolve.FEASIBILITY_TOL == pytest.approx(1e-5)
