"""Tests for the benchmark cases and the case registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CaseNotFoundError
from repro.grid.cases import available_cases, case4gs, case14, case30, load_case, register_case, synthetic_case
from repro.grid.cases.case14 import DEFAULT_DFACTS_BRANCHES
from repro.grid.network import PowerNetwork
from repro.grid.validation import validate_for_operation


class TestCase4:
    def test_dimensions(self, net4):
        assert net4.n_buses == 4
        assert net4.n_branches == 4
        assert net4.n_generators == 2

    def test_loads_match_paper_figure(self, net4):
        np.testing.assert_allclose(net4.loads_mw(), [50.0, 170.0, 200.0, 80.0])

    def test_all_lines_have_dfacts_by_default(self, net4):
        assert net4.dfacts_branches == (0, 1, 2, 3)

    def test_no_dfacts_option(self):
        net = case4gs(dfacts_all_lines=False)
        assert net.dfacts_branches == ()

    def test_operationally_valid(self, net4):
        assert validate_for_operation(net4).ok


class TestCase14:
    def test_dimensions(self, net14):
        assert net14.n_buses == 14
        assert net14.n_branches == 20
        assert net14.n_generators == 5
        assert net14.n_measurements == 54

    def test_total_load_matches_standard_case(self, net14):
        assert net14.total_load_mw() == pytest.approx(259.0)

    def test_generator_parameters_match_table_iv(self, net14):
        buses = [gen.bus + 1 for gen in net14.generators]
        p_max = [gen.p_max_mw for gen in net14.generators]
        costs = [gen.cost_per_mwh for gen in net14.generators]
        assert buses == [1, 2, 3, 6, 8]
        assert p_max == [300.0, 50.0, 30.0, 50.0, 20.0]
        assert costs == [20.0, 30.0, 40.0, 50.0, 35.0]

    def test_dfacts_placement_matches_paper(self, net14):
        expected = tuple(sorted(b - 1 for b in DEFAULT_DFACTS_BRANCHES))
        assert net14.dfacts_branches == expected

    def test_flow_limits_match_paper(self, net14):
        limits = net14.flow_limits_mw()
        assert limits[0] == pytest.approx(160.0)
        np.testing.assert_allclose(limits[1:], np.full(19, 60.0))

    def test_dfacts_range_default_half(self, net14):
        x_min, x_max = net14.reactance_bounds()
        x = net14.reactances()
        for index in net14.dfacts_branches:
            assert x_min[index] == pytest.approx(0.5 * x[index])
            assert x_max[index] == pytest.approx(1.5 * x[index])

    def test_custom_dfacts_selection(self):
        net = case14(dfacts_branches=(2, 3))
        assert net.dfacts_branches == (1, 2)

    def test_invalid_dfacts_branch_number(self):
        with pytest.raises(ValueError):
            case14(dfacts_branches=(0,))

    def test_operationally_valid(self, net14):
        assert validate_for_operation(net14).ok


class TestCase30:
    def test_dimensions(self, net30):
        assert net30.n_buses == 30
        assert net30.n_branches == 41
        assert net30.n_generators == 6

    def test_total_load_reasonable(self, net30):
        assert 180.0 <= net30.total_load_mw() <= 200.0

    def test_has_dfacts(self, net30):
        assert len(net30.dfacts_branches) == 10

    def test_operationally_valid(self, net30):
        assert validate_for_operation(net30).ok


class TestRegistry:
    def test_available_cases_contains_builtins(self):
        names = available_cases()
        for expected in ("case4gs", "ieee14", "ieee30", "case14", "case30"):
            assert expected in names

    def test_load_case_by_name(self):
        net = load_case("ieee14")
        assert isinstance(net, PowerNetwork)
        assert net.n_buses == 14

    def test_load_case_forwards_kwargs(self):
        net = load_case("ieee14", dfacts_range=0.3)
        x_min, _ = net.reactance_bounds()
        index = net.dfacts_branches[0]
        assert x_min[index] == pytest.approx(0.7 * net.reactances()[index])

    def test_unknown_case_raises(self):
        with pytest.raises(CaseNotFoundError):
            load_case("ieee118")

    def test_register_and_load_custom_case(self):
        register_case("tiny-test-case", lambda: case4gs(), overwrite=True)
        assert load_case("tiny-test-case").n_buses == 4

    def test_duplicate_registration_rejected(self):
        register_case("duplicate-case", lambda: case4gs(), overwrite=True)
        with pytest.raises(ValueError):
            register_case("duplicate-case", lambda: case4gs())

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_case("  ", lambda: case4gs())


class TestSyntheticCase:
    def test_basic_properties(self):
        net = synthetic_case(n_buses=12, seed=3)
        assert net.n_buses == 12
        assert net.n_branches >= 11  # at least a spanning tree
        assert net.n_generators >= 2
        assert validate_for_operation(net).ok

    def test_deterministic_given_seed(self):
        a = synthetic_case(n_buses=10, seed=5)
        b = synthetic_case(n_buses=10, seed=5)
        np.testing.assert_allclose(a.reactances(), b.reactances())
        np.testing.assert_allclose(a.loads_mw(), b.loads_mw())

    def test_different_seeds_differ(self):
        a = synthetic_case(n_buses=10, seed=1)
        b = synthetic_case(n_buses=10, seed=2)
        assert not np.allclose(a.loads_mw(), b.loads_mw())

    def test_dfacts_fraction_respected(self):
        net = synthetic_case(n_buses=10, dfacts_fraction=0.0, seed=0)
        assert net.dfacts_branches == ()

    def test_too_small_rejected(self):
        with pytest.raises(Exception):
            synthetic_case(n_buses=2)

    def test_invalid_capacity_margin_rejected(self):
        with pytest.raises(Exception):
            synthetic_case(n_buses=6, capacity_margin=0.9)


class TestSynthetic300:
    def test_registered_with_dispatchable_defaults(self):
        assert "synthetic300" in available_cases()
        net = load_case("synthetic300")
        assert net.n_buses == 300
        assert net.n_generators == 75
        # The registry defaults must yield a feasible nominal dispatch —
        # this is the configuration the scale suite runs.
        from repro.opf.dc_opf import solve_dc_opf

        result = solve_dc_opf(net)
        assert result.success

    def test_deterministic(self):
        a = load_case("synthetic300")
        b = load_case("synthetic300")
        np.testing.assert_array_equal(a.reactances(), b.reactances())
        np.testing.assert_array_equal(a.loads_mw(), b.loads_mw())

    def test_rate_scale_widens_ratings(self):
        narrow = load_case("synthetic300", rate_scale=2.0)
        wide = load_case("synthetic300", rate_scale=4.0)
        np.testing.assert_allclose(
            wide.flow_limits_mw(), 2.0 * narrow.flow_limits_mw()
        )

    def test_invalid_rate_scale_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            load_case("synthetic300", rate_scale=0.0)


class TestLineRatingValidation:
    @staticmethod
    def _overloaded_network():
        """A 3-bus network whose bus-2 load exceeds its attached ratings."""
        from repro.grid.components import Branch, Bus, Generator

        buses = (
            Bus(index=0, load_mw=0.0, is_slack=True),
            Bus(index=1, load_mw=10.0),
            Bus(index=2, load_mw=100.0),
        )
        branches = (
            Branch(index=0, from_bus=0, to_bus=1, reactance=0.1, rate_mw=50.0),
            Branch(index=1, from_bus=1, to_bus=2, reactance=0.1, rate_mw=20.0),
        )
        generators = (Generator(index=0, bus=0, p_max_mw=200.0),)
        return PowerNetwork.from_components(
            buses=buses, branches=branches, generators=generators, name="overloaded"
        )

    def test_validate_line_ratings_flags_starved_bus(self):
        from repro.exceptions import ConfigurationError
        from repro.grid.validation import validate_line_ratings

        with pytest.raises(ConfigurationError, match="bus 2"):
            validate_line_ratings(self._overloaded_network())

    def test_local_generation_offsets_line_ratings(self):
        """A bus served by its own generator needs no line-import capacity."""
        from repro.grid.components import Branch, Bus, Generator
        from repro.grid.validation import validate_line_ratings

        buses = (
            Bus(index=0, load_mw=0.0, is_slack=True),
            Bus(index=1, load_mw=10.0),
            Bus(index=2, load_mw=100.0),
        )
        branches = (
            Branch(index=0, from_bus=0, to_bus=1, reactance=0.1, rate_mw=50.0),
            Branch(index=1, from_bus=1, to_bus=2, reactance=0.1, rate_mw=20.0),
        )
        generators = (
            Generator(index=0, bus=0, p_max_mw=100.0),
            Generator(index=1, bus=2, p_max_mw=150.0),  # serves bus 2 locally
        )
        net = PowerNetwork.from_components(
            buses=buses, branches=branches, generators=generators, name="self-served"
        )
        validate_line_ratings(net)  # must not raise

    def test_validate_line_ratings_accepts_sane_networks(self, net14, net30):
        from repro.grid.validation import validate_line_ratings

        validate_line_ratings(net14)
        validate_line_ratings(net30)
        validate_line_ratings(load_case("synthetic57"))
        validate_line_ratings(load_case("synthetic118"))

    def test_registry_validates_at_load_time(self):
        from repro.exceptions import ConfigurationError
        from repro.grid.cases import registry as registry_module

        try:
            register_case(
                "bad-ratings-case", lambda **kw: self._overloaded_network(),
                overwrite=True, validate_ratings=True,
            )
            with pytest.raises(ConfigurationError, match="bad-ratings-case"):
                load_case("bad-ratings-case")
            # Without the flag the same factory loads untouched.
            register_case(
                "bad-ratings-case", lambda **kw: self._overloaded_network(),
                overwrite=True, validate_ratings=False,
            )
            assert load_case("bad-ratings-case").n_buses == 3
        finally:
            # Keep the process-global registry pristine for other tests.
            registry_module._REGISTRY.pop("bad-ratings-case", None)
            registry_module._VALIDATE_RATINGS.discard("bad-ratings-case")
