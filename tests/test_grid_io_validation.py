"""Tests for repro.grid.io and repro.grid.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GridModelError
from repro.grid.cases import case4gs, case14
from repro.grid.io import (
    SCHEMA_VERSION,
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from repro.grid.validation import validate_for_operation


class TestNetworkDictRoundTrip:
    def test_round_trip_preserves_structure(self, net14):
        rebuilt = network_from_dict(network_to_dict(net14))
        assert rebuilt.n_buses == net14.n_buses
        assert rebuilt.n_branches == net14.n_branches
        assert rebuilt.n_generators == net14.n_generators
        np.testing.assert_allclose(rebuilt.reactances(), net14.reactances())
        np.testing.assert_allclose(rebuilt.loads_mw(), net14.loads_mw())
        assert rebuilt.dfacts_branches == net14.dfacts_branches

    def test_round_trip_preserves_flow_limits(self, net4):
        rebuilt = network_from_dict(network_to_dict(net4))
        np.testing.assert_allclose(rebuilt.flow_limits_mw(), net4.flow_limits_mw())

    def test_infinite_rate_serialised_as_null(self):
        net = case4gs().with_flow_limits([1e9, 1e9, 1e9, 1e9])
        data = network_to_dict(net)
        assert all(entry["rate_mw"] is not None for entry in data["branch"])

    def test_schema_version_recorded(self, net4):
        assert network_to_dict(net4)["schema_version"] == SCHEMA_VERSION

    def test_unsupported_schema_rejected(self, net4):
        data = network_to_dict(net4)
        data["schema_version"] = 999
        with pytest.raises(GridModelError):
            network_from_dict(data)

    def test_missing_field_rejected(self, net4):
        data = network_to_dict(net4)
        del data["gen"][0]["p_max_mw"]
        with pytest.raises(GridModelError):
            network_from_dict(data)


class TestDuplicateIndexRejection:
    """Duplicated indices fail fast with the offending index named, not
    with the contiguity error the structural validation would raise later."""

    def test_duplicate_bus_index_named(self, net14):
        data = network_to_dict(net14)
        data["bus"][3]["index"] = data["bus"][2]["index"]
        with pytest.raises(GridModelError, match="duplicate bus index 2"):
            network_from_dict(data)

    def test_duplicate_branch_index_named(self, net14):
        data = network_to_dict(net14)
        data["branch"][5]["index"] = 0
        with pytest.raises(GridModelError, match="duplicate branch index 0"):
            network_from_dict(data)

    def test_duplicate_generator_index_named(self, net14):
        data = network_to_dict(net14)
        data["gen"][1]["index"] = data["gen"][0]["index"]
        with pytest.raises(GridModelError, match="duplicate generator index 0"):
            network_from_dict(data)

    def test_unique_indices_still_accepted(self, net14):
        # the regression's other direction: valid dictionaries parse as before
        assert network_from_dict(network_to_dict(net14)) == net14

    def test_shuffled_records_load_in_index_order(self, net14):
        # record order in the dictionary is presentation, not semantics:
        # components are rebuilt ordered by their explicit "index" fields
        data = network_to_dict(net14)
        data["bus"] = list(reversed(data["bus"]))
        data["branch"] = data["branch"][5:] + data["branch"][:5]
        data["gen"] = list(reversed(data["gen"]))
        assert network_from_dict(data) == net14

    def test_malformed_index_reported_by_parse_not_dup_check(self, net14):
        data = network_to_dict(net14)
        del data["bus"][0]["index"]
        with pytest.raises(GridModelError, match="missing required field"):
            network_from_dict(data)


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path, net14):
        path = tmp_path / "ieee14.json"
        save_network(net14, path)
        loaded = load_network(path)
        np.testing.assert_allclose(loaded.reactances(), net14.reactances())
        assert loaded.name == net14.name

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(GridModelError):
            load_network(path)


class TestOperationalValidation:
    def test_ieee_cases_pass(self, net4, net14, net30):
        for net in (net4, net14, net30):
            report = validate_for_operation(net)
            assert report.ok, report.summary()

    def test_insufficient_capacity_flagged(self, net14):
        overloaded = net14.with_scaled_loads(10.0)
        report = validate_for_operation(overloaded)
        assert not report.ok
        assert any("capacity" in err for err in report.errors)

    def test_no_dfacts_warns(self):
        net = case14(dfacts_branches=())
        report = validate_for_operation(net)
        assert report.ok
        assert any("D-FACTS" in warning for warning in report.warnings)

    def test_summary_contains_status(self, net14):
        assert "passed" in validate_for_operation(net14).summary()

    def test_tight_capacity_margin_warns(self):
        # Scale loads so that capacity margin is below 5 % but still adequate.
        net = case14()
        capacity = net.total_generation_capacity_mw()
        net = net.with_scaled_loads(0.97 * capacity / net.total_load_mw())
        report = validate_for_operation(net)
        assert any("margin" in warning for warning in report.warnings)
