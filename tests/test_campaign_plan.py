"""Tests of campaign definitions and deterministic plan expansion/sharding."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignDefinition,
    assign_shards,
    campaign_from_suite,
    available_campaigns,
    expand_sweep,
    plan_campaign,
    plan_sweep,
)
from repro.engine import (
    AttackSpec,
    GridSpec,
    MTDSpec,
    ScenarioSpec,
    available_scenarios,
    expand_grid,
    scenario_suite,
)
from repro.exceptions import ConfigurationError


def small_base(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="campaign-base",
        grid=GridSpec(case="ieee14", baseline="dc-opf"),
        attack=AttackSpec(n_attacks=8, seed=1),
        mtd=MTDSpec(policy="random", max_relative_change=0.1),
        n_trials=2,
        base_seed=7,
        deltas=(0.5, 0.9),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def small_definition(**overrides) -> CampaignDefinition:
    defaults = dict(
        name="test-campaign",
        base=small_base(),
        grids=(
            {"attack.ratio": (0.06, 0.08), "mtd.max_relative_change": (0.02, 0.1)},
        ),
        shard_size=3,
    )
    defaults.update(overrides)
    return CampaignDefinition(**defaults)


class TestCampaignDefinition:
    def test_json_round_trip(self):
        definition = small_definition(
            overrides={"n_trials": 1},
            description="round trip",
            tags=("a", "b"),
        )
        rebuilt = CampaignDefinition.from_json(definition.to_json())
        assert rebuilt == definition
        # The serialised form is plain JSON with the nested spec inline.
        payload = json.loads(definition.to_json())
        assert payload["base"]["grid"]["case"] == "ieee14"

    def test_from_dict_rejects_unknown_fields(self):
        data = small_definition().to_dict()
        data["bogus"] = 1
        with pytest.raises(ConfigurationError):
            CampaignDefinition.from_dict(data)

    def test_content_hash_ignores_labels(self):
        definition = small_definition()
        relabelled = CampaignDefinition.from_dict(
            {**definition.to_dict(), "description": "x", "tags": ["y"]}
        )
        assert relabelled.content_hash() == definition.content_hash()

    def test_content_hash_tracks_grids_and_overrides(self):
        definition = small_definition()
        widened = small_definition(
            grids=({"attack.ratio": (0.06, 0.08, 0.1)},)
        )
        assert widened.content_hash() != definition.content_hash()
        assert (
            definition.with_overrides({"n_trials": 1}).content_hash()
            != definition.content_hash()
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CampaignDefinition(name="", base=small_base())
        with pytest.raises(ConfigurationError):
            CampaignDefinition(name="x")  # neither base nor points
        with pytest.raises(ConfigurationError):
            CampaignDefinition(name="x", grids=({"a": (1,)},))  # grids need a base
        with pytest.raises(ConfigurationError):
            small_definition(shard_size=0)
        with pytest.raises(ConfigurationError):
            small_definition(grids=({"attack.ratio": 0.06},))  # not a sequence


class TestPlanExpansion:
    def test_points_match_expand_grid(self):
        """The planner is the single owner of grid semantics: a one-grid
        campaign expands to exactly what expand_grid yields."""
        base = small_base()
        grid = {"attack.ratio": (0.06, 0.08), "mtd.max_relative_change": (0.02, 0.1)}
        plan = plan_campaign(small_definition(base=base, grids=(grid,)))
        assert list(plan.points) == expand_grid(base, grid)

    def test_expand_grid_delegates_to_planner(self):
        base = small_base()
        grid = {"attack.ratio": (0.06, 0.08)}
        assert expand_grid(base, grid) == expand_sweep(base, grid)

    def test_grid_blocks_concatenate_and_points_append(self):
        extra = small_base(name="extra-point", base_seed=99)
        definition = small_definition(
            grids=({"attack.ratio": (0.06, 0.08)}, {"n_trials": (1, 3)}),
            points=(extra,),
        )
        plan = plan_campaign(definition)
        assert plan.n_points == 5
        assert plan.points[-1] == extra
        assert plan.points[0].attack.ratio == 0.06
        assert plan.points[2].n_trials == 1

    def test_overrides_apply_to_every_point(self):
        definition = small_definition(overrides={"n_trials": 1, "attack.n_attacks": 4})
        plan = plan_campaign(definition)
        assert all(p.n_trials == 1 and p.attack.n_attacks == 4 for p in plan.points)

    def test_override_of_swept_path_wins_and_collapses_the_axis(self):
        """Pinning a swept path collapses that axis to the override value
        before expansion, so the points (and their generated names) carry
        the value that actually runs — the same precedence overrides have
        on explicit points."""
        definition = small_definition(
            grids=({"mtd.max_relative_change": (0.02, 0.05, 0.1)},),
            overrides={"mtd.max_relative_change": 0.3},
        )
        plan = plan_campaign(definition)
        assert plan.n_points == plan.n_items == 1
        (point,) = plan.points
        assert point.mtd.max_relative_change == 0.3
        assert "max_relative_change=0.3" in point.name

    def test_base_without_grids_is_one_point(self):
        definition = CampaignDefinition(name="solo", base=small_base())
        plan = plan_campaign(definition)
        assert plan.n_points == plan.n_items == 1

    def test_duplicate_hashes_dedupe_into_one_work_item(self):
        """Two grid blocks that overlap produce one unit of work."""
        grid = {"attack.ratio": (0.06, 0.08)}
        definition = small_definition(grids=(grid, grid))
        plan = plan_campaign(definition)
        assert plan.n_points == 4
        assert plan.n_items == 2
        assert len(set(plan.point_hashes)) == 2

    def test_name_format(self):
        definition = small_definition(
            grids=({"attack.ratio": (0.06, 0.08)},), name_format="r{ratio:g}"
        )
        plan = plan_campaign(definition)
        assert [p.name for p in plan.points] == ["r0.06", "r0.08"]


class TestSharding:
    def test_shards_partition_items_contiguously(self):
        plan = plan_campaign(small_definition())  # 4 items, shard_size=3
        assert [s.n_points for s in plan.shards] == [3, 1]
        flattened = [h for shard in plan.shards for h in shard.spec_hashes]
        assert flattened == list(plan.items)

    def test_same_plan_hash_same_shard_assignment(self):
        """Shard determinism: replanning an identical definition (even one
        rebuilt from JSON) yields the same plan hash and shard layout."""
        definition = small_definition()
        first = plan_campaign(definition)
        second = plan_campaign(CampaignDefinition.from_json(definition.to_json()))
        assert first.plan_hash == second.plan_hash
        assert first.shards == second.shards

    def test_plan_hash_tracks_shard_size(self):
        assert (
            plan_campaign(small_definition(shard_size=2)).plan_hash
            != plan_campaign(small_definition(shard_size=3)).plan_hash
        )

    def test_shard_of(self):
        plan = plan_campaign(small_definition())
        for shard in plan.shards:
            for spec_hash in shard.spec_hashes:
                assert plan.shard_of(spec_hash) == shard.index
        with pytest.raises(KeyError):
            plan.shard_of("no-such-hash")

    def test_assign_shards_empty(self):
        assert assign_shards((), 4) == ()


class TestPlanSweep:
    def test_plan_sweep_matches_expand_grid(self):
        base = small_base()
        grid = {"mtd.max_relative_change": (0.02, 0.05, 0.1)}
        plan = plan_sweep(base, grid, name_format="m{max_relative_change:g}")
        assert list(plan.points) == expand_grid(
            base, grid, name_format="m{max_relative_change:g}"
        )

    def test_empty_grid_is_single_point(self):
        plan = plan_sweep(small_base(), {})
        assert plan.n_points == 1
        assert plan.points[0].name == small_base().name

    def test_empty_axis_is_empty_sweep(self):
        """Historical expand_grid semantics: an empty value axis expands to
        zero points rather than raising (programmatically built grids)."""
        assert expand_grid(small_base(), {"attack.ratio": ()}) == []
        assert plan_sweep(small_base(), {"attack.ratio": ()}).n_points == 0

    def test_labels_do_not_change_plan_hash(self):
        """Relabelling the campaign or its base spec never orphans a store."""
        definition = small_definition()
        relabelled = small_definition(
            base=small_base(description="annotated", tags=("x",), batch_size=4),
            description="notes",
            tags=("y",),
        )
        assert (
            plan_campaign(relabelled).plan_hash == plan_campaign(definition).plan_hash
        )


class TestSuiteCampaigns:
    def test_every_suite_is_a_campaign(self):
        assert available_campaigns() == available_scenarios()
        for name in available_campaigns():
            definition = campaign_from_suite(name)
            assert definition.points == scenario_suite(name)
            plan = plan_campaign(definition)
            assert plan.n_points == len(definition.points)

    def test_suite_overrides_scale_budgets(self):
        definition = campaign_from_suite(
            "tables", overrides={"n_trials": 2, "attack.n_attacks": 8}, shard_size=1
        )
        plan = plan_campaign(definition)
        assert all(p.n_trials == 2 and p.attack.n_attacks == 8 for p in plan.points)
        assert len(plan.shards) == plan.n_items
        # Derived budgets hash differently from the paper budgets.
        assert (
            plan.plan_hash != plan_campaign(campaign_from_suite("tables")).plan_hash
        )
