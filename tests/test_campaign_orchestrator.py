"""Tests of sharded campaign execution: resume accounting, cache interop,
parallel determinism, and the ≥100-point acceptance sweep over fig7."""

from __future__ import annotations

import pytest

from repro.analysis.montecarlo import summarize_values
from repro.engine.results import merge_metric
from repro.campaign import (
    CampaignDefinition,
    CampaignOrchestrator,
    plan_campaign,
    query_results,
    run_campaign,
    summarize_groups,
)
from repro.engine import (
    AttackSpec,
    GridSpec,
    MTDSpec,
    ResultCache,
    ScenarioEngine,
    ScenarioSpec,
    scenario_suite,
)
from repro.exceptions import ConfigurationError


def quick_base(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="orch-base",
        grid=GridSpec(case="ieee14", baseline="dc-opf"),
        attack=AttackSpec(n_attacks=6, seed=1),
        mtd=MTDSpec(policy="random", max_relative_change=0.1),
        n_trials=2,
        base_seed=21,
        deltas=(0.5, 0.9),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


GRID = {"attack.ratio": (0.06, 0.08), "mtd.max_relative_change": (0.02, 0.05, 0.1)}


def quick_definition(**overrides) -> CampaignDefinition:
    defaults = dict(
        name="orch-campaign", base=quick_base(), grids=(GRID,), shard_size=2
    )
    defaults.update(overrides)
    return CampaignDefinition(**defaults)


class TestRunAndResume:
    def test_full_run_completes_and_matches_run_sweep(self, tmp_path):
        """Stored campaign results are bit-identical to the in-memory sweep."""
        report = run_campaign(quick_definition(), tmp_path / "c.campaign")
        assert report.complete
        assert len(report.executed) == 6
        orchestrator = CampaignOrchestrator(tmp_path / "c.campaign")
        sweep = ScenarioEngine().run_sweep(quick_base(), GRID)
        for result in sweep:
            stored = orchestrator.store.get(result.spec.content_hash())
            assert stored is not None
            assert stored.trials == result.trials
            assert stored.summarize().mean == result.summarize().mean

    def test_shard_limit_checkpoints_and_resume_runs_only_missing(self, tmp_path):
        orchestrator = CampaignOrchestrator(tmp_path / "c.campaign")
        definition = quick_definition()
        first = orchestrator.run(definition, shard_limit=1)
        assert len(first.executed) == 2
        assert not first.complete
        status = orchestrator.status(definition)
        assert status.n_completed == 2 and status.n_missing == 4
        assert [s.complete for s in status.shards] == [True, False, False]

        second = orchestrator.resume()
        assert second.complete
        # Spec-hash accounting is exact: the two invocations partition the plan.
        assert set(first.executed) & set(second.executed) == set()
        assert set(second.skipped) == set(first.executed)
        plan = plan_campaign(definition)
        assert set(first.executed) | set(second.executed) == set(plan.items)

    def test_rerun_of_complete_campaign_executes_nothing(self, tmp_path):
        definition = quick_definition()
        run_campaign(definition, tmp_path / "c.campaign")
        again = run_campaign(definition, tmp_path / "c.campaign")
        assert again.complete
        assert again.executed == ()
        assert len(again.skipped) == 6

    def test_partial_shard_executes_only_missing_points(self, tmp_path):
        """A shard with some stored points re-runs only the missing hashes."""
        definition = quick_definition()
        plan = plan_campaign(definition)
        orchestrator = CampaignOrchestrator(tmp_path / "c.campaign")
        # Pre-store the first point of the first shard by hand.
        first_hash = plan.shards[0].spec_hashes[0]
        result = ScenarioEngine().run(plan.spec_for(first_hash))
        orchestrator.store.write_manifest(
            {"plan_hash": plan.plan_hash, "definition": definition.to_dict()}
        )
        orchestrator.store.append(result, shard=0)
        report = orchestrator.run(definition)
        assert first_hash not in report.executed
        assert first_hash in report.skipped
        assert report.complete

    def test_writer_lock_released_when_run_finishes(self, tmp_path):
        """A finished run hands the store's writer lock back immediately,
        so a second orchestrator can continue the campaign while the first
        (e.g. kept alive for status()) still holds the store open."""
        definition = quick_definition()
        first = CampaignOrchestrator(tmp_path / "c.campaign")
        first.run(definition, shard_limit=1)
        second = run_campaign(definition, tmp_path / "c.campaign")
        assert second.complete
        assert first.status().complete

    def test_store_rejects_a_different_campaign(self, tmp_path):
        run_campaign(quick_definition(), tmp_path / "c.campaign", shard_limit=1)
        other = quick_definition(grids=({"attack.ratio": (0.05, 0.07)},))
        with pytest.raises(ConfigurationError):
            run_campaign(other, tmp_path / "c.campaign")

    def test_resume_requires_manifest(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CampaignOrchestrator(tmp_path / "fresh.campaign").resume()


class TestResultCacheInterop:
    def test_cached_scenarios_are_ingested_not_rerun(self, tmp_path):
        """Scenarios already in a ResultCache replay into the store."""
        definition = quick_definition()
        plan = plan_campaign(definition)
        cache = ResultCache(tmp_path / "cache")
        engine = ScenarioEngine(cache=cache)
        reference = {h: engine.run(s) for h, s in plan.items.items()}

        report = run_campaign(definition, tmp_path / "c.campaign", cache=cache)
        assert report.complete
        assert report.executed == ()
        assert set(report.from_cache) == set(plan.items)
        store = CampaignOrchestrator(tmp_path / "c.campaign").store
        for spec_hash, result in reference.items():
            assert store.get(spec_hash).trials == result.trials

    def test_executed_scenarios_feed_the_cache_back(self, tmp_path):
        definition = quick_definition()
        cache = ResultCache(tmp_path / "cache")
        report = run_campaign(definition, tmp_path / "c.campaign", cache=cache)
        assert len(report.executed) == 6
        plan = plan_campaign(definition)
        for spec in plan.items.values():
            assert cache.get(spec) is not None


class TestParallelExecution:
    def test_parallel_shards_match_serial(self, tmp_path):
        definition = quick_definition()
        run_campaign(definition, tmp_path / "serial.campaign", n_workers=1)
        run_campaign(definition, tmp_path / "parallel.campaign", n_workers=3)
        serial = CampaignOrchestrator(tmp_path / "serial.campaign").store
        parallel = CampaignOrchestrator(tmp_path / "parallel.campaign").store
        assert serial.completed_hashes() == parallel.completed_hashes()
        for spec_hash in serial.completed_hashes():
            assert serial.get(spec_hash).trials == parallel.get(spec_hash).trials

    def test_parallel_query_order_is_plan_order(self, tmp_path):
        """Shard completion order must not leak into query aggregation:
        grouped roll-ups over a parallel store reduce in plan order, bit-
        identical to pooling the in-memory sweep."""
        definition = quick_definition()
        run_campaign(definition, tmp_path / "p.campaign", n_workers=3)
        results = query_results(CampaignOrchestrator(tmp_path / "p.campaign").store)
        plan = plan_campaign(definition)
        assert [r.spec.content_hash() for r in results] == list(plan.items)
        groups = summarize_groups(results, metric="eta(0.9)", group_by=["attack.ratio"])
        sweep = ScenarioEngine().run_sweep(quick_base(), GRID)
        for group in groups:
            members = [r for r in sweep if r.spec.attack.ratio == group.key[0]]
            pooled = summarize_values(merge_metric(members, "eta(0.9)"))
            assert group.summary.mean == pooled.mean
            assert group.summary.std == pooled.std

    def test_parallel_resume_after_checkpoint(self, tmp_path):
        definition = quick_definition()
        orchestrator = CampaignOrchestrator(tmp_path / "c.campaign", n_workers=2)
        first = orchestrator.run(definition, shard_limit=2)
        second = orchestrator.resume()
        assert set(first.executed) & set(second.executed) == set()
        assert orchestrator.status().complete


class TestFig7Acceptance:
    """The ISSUE acceptance sweep: ≥100 scenario points over the fig7 base,
    sharded, interrupted, resumed with only missing shards re-executed, and
    queried bit-identically to the in-memory sweep."""

    #: 10 × 10 grid over the fig7 base spec (reduced trial budgets).
    GRID = {
        "mtd.max_relative_change": tuple(round(0.01 * k, 2) for k in range(1, 11)),
        "attack.ratio": tuple(round(0.02 + 0.01 * k, 2) for k in range(10)),
    }

    @pytest.fixture(scope="class")
    def fig7_base(self):
        (fig7,) = scenario_suite("fig7")
        return fig7.with_updates(
            {"attack.n_attacks": 8, "detector.method": "analytic"}, n_trials=1
        )

    def test_hundred_point_campaign_interrupt_resume_query(self, tmp_path, fig7_base):
        definition = CampaignDefinition(
            name="fig7-acceptance", base=fig7_base, grids=(self.GRID,), shard_size=8
        )
        plan = plan_campaign(definition)
        assert plan.n_points == 100
        assert len(plan.shards) == 13

        store_dir = tmp_path / "fig7.campaign"
        orchestrator = CampaignOrchestrator(store_dir, batch_size=4)
        interrupted = orchestrator.run(definition, shard_limit=5)
        assert len(interrupted.executed) == 40
        status = orchestrator.status()
        assert status.n_completed == 40 and status.n_missing == 60

        resumed = orchestrator.resume()
        # Only the missing shards ran, verified by spec-hash accounting.
        assert set(resumed.skipped) == set(interrupted.executed)
        assert set(resumed.executed) == set(plan.items) - set(interrupted.executed)
        assert orchestrator.status().complete

        # The store reproduces the in-memory sweep bit-identically.
        sweep = ScenarioEngine().run_sweep(fig7_base, self.GRID)
        assert len(sweep) == 100
        for result in sweep:
            stored = orchestrator.store.get(result.spec.content_hash())
            assert stored.trials == result.trials
            assert (
                stored.summarize("eta(0.9)").mean == result.summarize("eta(0.9)").mean
            )
            assert stored.summarize("spa").std == result.summarize("spa").std

        # Grouped roll-ups pool exactly the expected trials.
        groups = summarize_groups(
            query_results(orchestrator.store),
            metric="spa",
            group_by=["mtd.max_relative_change"],
        )
        assert len(groups) == 10
        assert all(g.n_scenarios == 10 and g.summary.n_trials == 10 for g in groups)


class TestQueryPlanOrderMemo:
    def test_repeated_queries_plan_once_per_store(self, tmp_path, monkeypatch):
        """``query_results`` memoises the spec-hash → plan-position map per
        store (keyed on the manifest's plan hash), so repeated queries do
        not re-expand and re-hash the whole campaign plan."""
        run_campaign(quick_definition(), tmp_path / "m.campaign")
        store = CampaignOrchestrator(tmp_path / "m.campaign").store

        from repro.campaign import plan as plan_module

        real_plan = plan_module.plan_campaign
        calls = {"n": 0}

        def counting_plan(definition):
            calls["n"] += 1
            return real_plan(definition)

        monkeypatch.setattr(plan_module, "plan_campaign", counting_plan)
        first = query_results(store)
        for _ in range(3):
            again = query_results(store)
            assert [r.spec.content_hash() for r in again] == [
                r.spec.content_hash() for r in first
            ]
        assert calls["n"] == 1, "repeated queries re-expanded the plan"

        # A different store instance over the same directory pays the
        # expansion once more (the memo is per instance), then caches.
        other = CampaignOrchestrator(tmp_path / "m.campaign").store
        query_results(other)
        query_results(other)
        assert calls["n"] == 2


class TestTelemetryIntegration:
    """Campaign runs persist a mergeable telemetry report without touching
    the stored scientific records."""

    @pytest.fixture(autouse=True)
    def _clean_telemetry(self):
        from repro import telemetry

        telemetry.disable()
        telemetry.reset()
        yield
        telemetry.disable()
        telemetry.reset()

    def test_parallel_run_merges_worker_snapshots(self, tmp_path):
        from repro import telemetry

        telemetry.enable()
        report = run_campaign(
            quick_definition(), tmp_path / "t.campaign", n_workers=2
        )
        payload = telemetry.read_report(tmp_path / "t.campaign")
        assert payload is not None and payload == report.telemetry
        counters = payload["metrics"]["counters"]
        n_points = plan_campaign(quick_definition()).n_points
        assert counters["engine.scenarios"] == n_points
        assert counters["engine.trials"] == 2 * n_points
        # Worker-side cache traffic crossed the pool boundary.
        assert sum(
            v for k, v in counters.items() if k.startswith("cache.")
        ) > 0
        assert len(payload["shards"]["wall_seconds"]) == len(report.shards_run)

    def test_records_identical_to_untelemetered_run(self, tmp_path):
        from repro import telemetry

        telemetry.enable()
        run_campaign(quick_definition(), tmp_path / "on.campaign", n_workers=2)
        telemetry.disable()
        run_campaign(quick_definition(), tmp_path / "off.campaign")

        def normalized(directory):
            out = {}
            for record in CampaignOrchestrator(directory).store.records():
                record.pop("created_unix", None)
                record.pop("elapsed_seconds", None)
                out[record["spec_hash"]] = record
            return out

        assert normalized(tmp_path / "on.campaign") == normalized(
            tmp_path / "off.campaign"
        )
