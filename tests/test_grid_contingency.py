"""Property/golden tests for the N-1 contingency layer.

The fast topology-derivation path (``with_branch_status`` /
``with_branch_outages``) and the rank-1 LODF update must agree — bit-close,
and where the arithmetic is shared, bit-identically — with the slow
reference: a network *fully re-constructed* through the validated
:class:`~repro.grid.network.PowerNetwork` constructor with per-component
``in_service`` flags.  Every registered case is swept with seeded-random
single-branch outages; islanding, radial and unknown-index edge cases are
pinned explicitly; the detection pipeline (evaluator, BDD) is asserted
golden between the two construction routes.
"""

from __future__ import annotations

import zlib
from functools import lru_cache

import numpy as np
import pytest

from repro import (
    Branch,
    Bus,
    ContingencySpec,
    EffectivenessEvaluator,
    Generator,
    IslandingError,
    PowerNetwork,
    bridge_branches,
    load_case,
    lodf_matrix,
    measurement_matrix,
    post_outage_ptdf,
    ptdf_matrix,
    ptdf_with_branch_outage,
    screen_branch_outages,
    solve_dc_opf,
    solve_dc_power_flow,
)
from repro.engine import (
    AttackSpec,
    DetectorSpec,
    GridSpec,
    MTDSpec,
    ScenarioSpec,
    expand_grid,
    scenario_suite,
)
from repro.engine.scenarios import _screenable_branches
from repro.engine.trial import apply_contingency, run_trial
from repro.exceptions import ConfigurationError, GridModelError, PowerFlowError
from repro.grid.io import network_from_dict, network_to_dict
from repro.grid.matrices import (
    branch_susceptance_matrix,
    reduced_susceptance_matrix,
    susceptance_matrix,
)
from repro.powerflow.contingency import ISLANDING_TOL
from repro.timeseries import OperationSpec

#: Every registered case family the derivation path must hold on.
CASES = ("case4gs", "ieee14", "ieee30", "synthetic57", "synthetic118", "synthetic300")


@lru_cache(maxsize=None)
def base_network(case: str) -> PowerNetwork:
    return load_case(case)


def reference_network(network: PowerNetwork, status: np.ndarray) -> PowerNetwork:
    """The slow golden reference: full re-construction with in_service flags."""
    branches = tuple(
        branch.with_status(bool(status[branch.index])) for branch in network.branches
    )
    return PowerNetwork(
        buses=network.buses,
        branches=branches,
        generators=network.generators,
        base_mva=network.base_mva,
        name=network.name,
    )


def brute_force_bridges(network: PowerNetwork) -> tuple[int, ...]:
    """O(L·(N+L)) reference bridge finder: drop each branch, BFS the rest."""
    arrays = network.arrays
    status = arrays.in_service_mask()
    bridges = []
    for k in np.flatnonzero(status):
        adjacency: list[list[int]] = [[] for _ in range(arrays.n_buses)]
        for j in np.flatnonzero(status):
            if j == k:
                continue
            u, v = int(arrays.branch_from[j]), int(arrays.branch_to[j])
            adjacency[u].append(v)
            adjacency[v].append(u)
        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        if len(seen) < arrays.n_buses:
            bridges.append(int(k))
    return tuple(bridges)


@lru_cache(maxsize=None)
def sampled_outages(case: str, n: int = 4) -> tuple[int, ...]:
    """Seeded-random non-bridge single-branch outages for ``case``.

    The seed must be stable across interpreter launches — ``hash(str)``
    is randomized per process and occasionally sampled a pair of
    branches whose *joint* outage islands the network, failing the
    multi-outage assertions."""
    network = base_network(case)
    candidates = sorted(set(range(network.n_branches)) - set(bridge_branches(network)))
    rng = np.random.default_rng(zlib.crc32(case.encode("utf-8")))
    picks = rng.choice(len(candidates), size=min(n, len(candidates)), replace=False)
    return tuple(int(candidates[i]) for i in sorted(picks))


def opf_injections(network: PowerNetwork) -> np.ndarray:
    """Balanced nodal injections of the network's DC-OPF operating point."""
    baseline = solve_dc_opf(network)
    injections = -network.loads_mw()
    for gen, output in zip(network.generators, baseline.dispatch_mw):
        injections[gen.bus] += output
    return injections


def radial_network() -> PowerNetwork:
    """A 3-bus chain: every branch is a bridge."""
    return PowerNetwork(
        buses=(
            Bus(index=0, load_mw=0.0, is_slack=True),
            Bus(index=1, load_mw=40.0),
            Bus(index=2, load_mw=60.0),
        ),
        branches=(
            Branch(index=0, from_bus=0, to_bus=1, reactance=0.2),
            Branch(index=1, from_bus=1, to_bus=2, reactance=0.3),
        ),
        generators=(Generator(index=0, bus=0, p_max_mw=200.0, cost_per_mwh=10.0),),
        name="radial3",
    )


class TestBranchStatusDerivation:
    """Fast status derivation is bit-identical to full re-construction."""

    @pytest.mark.parametrize("case", CASES)
    def test_matrices_match_full_construction(self, case):
        network = base_network(case)
        for k in sampled_outages(case):
            status = np.ones(network.n_branches, dtype=bool)
            status[k] = False
            derived = network.with_branch_status(status)
            reference = reference_network(network, status)
            # Same masked susceptances feed the same builders: bit-identical.
            for build in (
                branch_susceptance_matrix,
                susceptance_matrix,
                reduced_susceptance_matrix,
                measurement_matrix,
                ptdf_matrix,
            ):
                np.testing.assert_array_equal(
                    build(derived), build(reference), err_msg=f"{case} b{k} {build.__name__}"
                )

    @pytest.mark.parametrize("case", CASES)
    def test_outage_composition_and_mask(self, case):
        network = base_network(case)
        k = sampled_outages(case)[0]
        derived = network.with_branch_outages([k])
        assert not derived.branches[k].in_service
        assert derived.arrays.n_active_branches == network.n_branches - 1
        mask = derived.arrays.in_service_mask()
        assert not mask[k] and mask.sum() == network.n_branches - 1
        np.testing.assert_array_equal(derived.branch_status(), mask)
        # Outages compose with outages already present on the base (picking
        # a second branch that does not bridge the already-derived graph).
        derived_bridges = set(bridge_branches(derived))
        others = [
            b for b in sampled_outages(case) if b != k and b not in derived_bridges
        ]
        if others:
            twice = derived.with_branch_outages([others[0]])
            assert twice.arrays.n_active_branches == network.n_branches - 2

    @pytest.mark.parametrize("case", CASES)
    def test_topology_cache_shared(self, case):
        network = base_network(case)
        k = sampled_outages(case)[0]
        derived = network.with_branch_outages([k])
        assert derived.arrays.topology is network.arrays.topology

    def test_all_in_service_status_is_normalized(self):
        network = base_network("ieee14")
        # A no-op status keeps the canonical None mask, so status-free and
        # all-true derivations hash/behave identically.
        derived = network.with_branch_status(np.ones(network.n_branches, dtype=bool))
        assert derived.arrays.branch_status is None
        assert network.arrays.with_branch_status(
            np.ones(network.n_branches, dtype=bool)
        ) is network.arrays

    def test_bad_status_length_rejected(self):
        network = base_network("ieee14")
        with pytest.raises(GridModelError, match="status flags"):
            network.with_branch_status(np.ones(3, dtype=bool))

    def test_unknown_branch_index_rejected(self):
        network = base_network("ieee14")
        with pytest.raises(GridModelError, match="unknown branch index 999"):
            network.with_branch_outages([999])

    def test_islanding_outage_rejected_with_named_branch(self):
        network = base_network("ieee14")
        (bridge,) = [b for b in bridge_branches(network)]
        with pytest.raises(IslandingError, match=rf"\[{bridge}\]") as excinfo:
            network.with_branch_outages([bridge])
        assert excinfo.value.branches == (bridge,)

    def test_radial_network_every_outage_islands(self):
        network = radial_network()
        assert bridge_branches(network) == (0, 1)
        for k in range(network.n_branches):
            with pytest.raises(IslandingError):
                network.with_branch_outages([k])

    @pytest.mark.parametrize("case", CASES)
    def test_bridge_finder_matches_brute_force(self, case):
        network = base_network(case)
        assert bridge_branches(network) == brute_force_bridges(network)

    def test_bridge_finder_is_status_aware(self):
        # Outaging one of the parallel-ish ieee14 lines turns survivors
        # into bridges; the finder must see the *post-outage* graph.
        network = base_network("ieee14")
        k = sampled_outages("ieee14")[0]
        derived = network.with_branch_outages([k])
        assert k not in bridge_branches(derived)
        assert bridge_branches(derived) == brute_force_bridges(derived)

    def test_parallel_branches_are_not_bridges(self):
        network = radial_network()
        doubled = PowerNetwork(
            buses=network.buses,
            branches=network.branches
            + (Branch(index=2, from_bus=1, to_bus=2, reactance=0.3),),
            generators=network.generators,
            name="radial3-doubled",
        )
        # Branch 0 still bridges; the parallel 1/2 pair does not.
        assert bridge_branches(doubled) == (0,)
        derived = doubled.with_branch_outages([1])
        assert bridge_branches(derived) == (0, 2)

    def test_dfacts_masking_follows_status(self):
        network = base_network("ieee14")
        dfacts = network.dfacts_branches
        k = sampled_outages("ieee14")[0]
        target = k if k in dfacts else dfacts[0]
        derived = network.with_branch_outages([target])
        assert target not in derived.dfacts_branches
        lo, hi = derived.arrays.reactance_bounds()
        x = derived.arrays.reactances()
        # An outaged D-FACTS branch is pinned: no perturbation range.
        assert lo[target] == x[target] == hi[target]

    def test_generator_status_pins_dispatch_range(self):
        network = base_network("ieee14")
        derived = network.with_generator_status({1: False})
        assert not derived.generators[1].in_service
        p_min, p_max = derived.arrays.generator_limits_mw()
        assert p_min[1] == 0.0 and p_max[1] == 0.0
        with pytest.raises(GridModelError):
            network.with_generator_status({99: False})

    def test_io_round_trip_preserves_status(self):
        network = base_network("ieee14").with_branch_outages([4])
        derived = network.with_generator_status({1: False})
        restored = network_from_dict(network_to_dict(derived))
        assert not restored.branches[4].in_service
        assert not restored.generators[1].in_service
        np.testing.assert_array_equal(restored.branch_status(), derived.branch_status())


class TestLODF:
    """Rank-1 LODF updates agree with the full-rebuild reference."""

    #: Cases kept small enough that per-outage full rebuilds stay cheap.
    LODF_CASES = ("case4gs", "ieee14", "ieee30", "synthetic57", "synthetic118")

    @pytest.mark.parametrize("case", LODF_CASES)
    def test_rank1_ptdf_matches_rebuild(self, case):
        network = base_network(case)
        phi = ptdf_matrix(network)
        for k in sampled_outages(case):
            fast = ptdf_with_branch_outage(network, k, base_ptdf=phi)
            reference = ptdf_matrix(network.with_branch_outages([k]))
            np.testing.assert_allclose(
                fast, reference, rtol=0, atol=1e-9, err_msg=f"{case} b{k}"
            )
            assert np.all(fast[k, :] == 0.0)

    def test_rank1_rejects_bridge(self):
        network = base_network("ieee14")
        (bridge,) = bridge_branches(network)
        with pytest.raises(IslandingError) as excinfo:
            ptdf_with_branch_outage(network, bridge)
        assert excinfo.value.branches == (bridge,)
        with pytest.raises(PowerFlowError, match="unknown branch"):
            ptdf_with_branch_outage(network, 999)

    @pytest.mark.parametrize("case", ("case4gs", "ieee14", "ieee30"))
    def test_lodf_matrix_structure(self, case):
        network = base_network(case)
        lodf = lodf_matrix(network)
        assert lodf.shape == (network.n_branches, network.n_branches)
        np.testing.assert_array_equal(np.diag(lodf), -1.0)
        bridges = bridge_branches(network)
        for k in bridges:
            column = np.delete(lodf[:, k], k)
            assert np.all(np.isnan(column)), f"bridge {k} column must be NaN"
        for k in sampled_outages(case):
            assert not np.any(np.isnan(lodf[:, k]))

    def test_lodf_flow_transfer_matches_rebuilt_flows(self):
        network = base_network("ieee14")
        injections = opf_injections(network)
        lodf = lodf_matrix(network)
        base_flows = ptdf_matrix(network) @ injections
        for k in sampled_outages("ieee14"):
            predicted = base_flows + lodf[:, k] * base_flows[k]
            predicted[k] = 0.0
            rebuilt = ptdf_matrix(network.with_branch_outages([k])) @ injections
            np.testing.assert_allclose(predicted, rebuilt, atol=1e-8)

    def test_post_outage_ptdf_routes(self):
        network = base_network("ieee14")
        phi = ptdf_matrix(network)
        # Empty outage set: the base PTDF (a private copy when given one).
        empty = post_outage_ptdf(network, [], base_ptdf=phi)
        np.testing.assert_array_equal(empty, phi)
        assert empty is not phi
        # Single outage: identical to the rank-1 route.
        k = sampled_outages("ieee14")[0]
        np.testing.assert_array_equal(
            post_outage_ptdf(network, [k], base_ptdf=phi),
            ptdf_with_branch_outage(network, k, base_ptdf=phi),
        )
        # Multi-branch outage: full rebuild, compared against the reference.
        pair = sampled_outages("ieee14")[:2]
        reference = ptdf_matrix(network.with_branch_outages(pair))
        np.testing.assert_array_equal(post_outage_ptdf(network, pair), reference)
        # Duplicate indices collapse to the single-outage route.
        np.testing.assert_array_equal(
            post_outage_ptdf(network, [k, k], base_ptdf=phi),
            ptdf_with_branch_outage(network, k, base_ptdf=phi),
        )
        # Islanding sets raise on either route.
        (bridge,) = bridge_branches(network)
        with pytest.raises(IslandingError):
            post_outage_ptdf(network, [bridge])
        with pytest.raises(IslandingError):
            post_outage_ptdf(network, [bridge, k])

    @pytest.mark.parametrize("case", ("ieee14", "ieee30", "synthetic57"))
    def test_screen_incremental_matches_rebuild(self, case):
        network = base_network(case)
        injections = opf_injections(network)
        outages = sampled_outages(case)
        fast = screen_branch_outages(network, outages, injections)
        slow = screen_branch_outages(network, outages, injections, method="rebuild")
        assert fast.method == "incremental" and slow.method == "rebuild"
        assert fast.branch_indices == slow.branch_indices == outages
        assert fast.flows_mw.shape == (len(outages), network.n_branches)
        np.testing.assert_allclose(fast.flows_mw, slow.flows_mw, atol=1e-8)
        for row, k in enumerate(outages):
            assert fast.flows_mw[row, k] == 0.0

    def test_screen_rejects_bad_inputs(self):
        network = base_network("ieee14")
        injections = np.zeros(network.n_buses)
        with pytest.raises(PowerFlowError, match="injections"):
            screen_branch_outages(network, [1], np.zeros(3))
        with pytest.raises(PowerFlowError, match="unknown screening method"):
            screen_branch_outages(network, [1], injections, method="magic")
        (bridge,) = bridge_branches(network)
        with pytest.raises(IslandingError, match=rf"\[{bridge}\]") as excinfo:
            screen_branch_outages(network, [1, bridge], injections)
        assert excinfo.value.branches == (bridge,)

    def test_screen_empty_and_overloads(self):
        network = base_network("ieee14")
        injections = opf_injections(network)
        empty = screen_branch_outages(network, [], injections)
        assert empty.flows_mw.shape == (0, network.n_branches)
        assert empty.overloads(network.flow_limits_mw()) == []
        result = screen_branch_outages(network, sampled_outages("ieee14"), injections)
        # With limits squeezed to near zero every surviving flow overloads.
        tight = result.overloads(np.full(network.n_branches, 1e-9))
        assert len(tight) > 0
        assert all(result.branch_indices.index(o) is not None for o, _ in tight)

    def test_islanding_tolerance_is_consistent(self):
        # The LODF denominator of a true bridge is numerically ~0, far
        # below the trust threshold; non-bridges sit far above it.
        network = base_network("ieee14")
        phi = ptdf_matrix(network)
        arrays = network.arrays
        denominators = 1.0 - (
            phi[np.arange(network.n_branches), arrays.branch_from]
            - phi[np.arange(network.n_branches), arrays.branch_to]
        )
        bridges = set(bridge_branches(network))
        for k in range(network.n_branches):
            if k in bridges:
                assert abs(denominators[k]) < ISLANDING_TOL
            else:
                assert abs(denominators[k]) > 1e3 * ISLANDING_TOL


class TestDetectionGolden:
    """The detection pipeline is golden across construction routes."""

    def _evaluator(self, network: PowerNetwork) -> EffectivenessEvaluator:
        baseline = solve_dc_opf(network)
        return EffectivenessEvaluator(
            network,
            operating_angles_rad=baseline.angles_rad,
            n_attacks=40,
            attack_ratio=0.08,
            seed=7,
        )

    @pytest.mark.parametrize("case", ("ieee14", "ieee30"))
    def test_detection_metrics_identical_across_routes(self, case):
        network = base_network(case)
        # A screenable outage: non-bridge and post-outage OPF-feasible.
        k = _screenable_branches(case)[0]
        status = np.ones(network.n_branches, dtype=bool)
        status[k] = False
        fast = network.with_branch_status(status)
        slow = reference_network(network, status)

        base_fast = solve_dc_opf(fast)
        base_slow = solve_dc_opf(slow)
        np.testing.assert_array_equal(base_fast.angles_rad, base_slow.angles_rad)
        np.testing.assert_array_equal(base_fast.dispatch_mw, base_slow.dispatch_mw)
        assert repr(base_fast.cost) == repr(base_slow.cost)

        perturbed = fast.reactances()
        perturbed[list(fast.dfacts_branches)] *= 1.04
        result_fast = self._evaluator(fast).evaluate(perturbed)
        result_slow = self._evaluator(slow).evaluate(perturbed)
        np.testing.assert_array_equal(
            result_fast.detection_probabilities, result_slow.detection_probabilities
        )
        assert repr(result_fast.eta(0.9)) == repr(result_slow.eta(0.9))

    def test_power_flow_identical_across_routes(self):
        network = base_network("ieee14")
        k = sampled_outages("ieee14")[0]
        status = np.ones(network.n_branches, dtype=bool)
        status[k] = False
        fast = network.with_branch_status(status)
        slow = reference_network(network, status)
        injections = np.zeros(network.n_buses)
        injections[2] = 50.0
        injections[5] = -50.0
        pf_fast = solve_dc_power_flow(fast, injections)
        pf_slow = solve_dc_power_flow(slow, injections)
        np.testing.assert_array_equal(pf_fast.angles_rad, pf_slow.angles_rad)
        np.testing.assert_array_equal(pf_fast.flows_mw, pf_slow.flows_mw)
        assert pf_fast.flows_mw[k] == 0.0


class TestContingencySpec:
    """Spec-level semantics: normalization, hashing, derivation, sweeps."""

    def base(self, **overrides) -> ScenarioSpec:
        defaults = dict(
            name="spec-base",
            grid=GridSpec(case="ieee14", baseline="dc-opf"),
            attack=AttackSpec(n_attacks=8, seed=3),
            mtd=MTDSpec(policy="random", max_relative_change=0.1),
            n_trials=1,
            base_seed=29,
            deltas=(0.9,),
        )
        defaults.update(overrides)
        return ScenarioSpec(**defaults)

    def test_normalization_and_label(self):
        spec = ContingencySpec(branch_outages=(5, 3, 5), generator_outages=(1,))
        assert spec.branch_outages == (3, 5)
        assert spec.generator_outages == (1,)
        assert spec.outage == "b3+b5+g1"
        assert ContingencySpec().outage == "none"
        assert ContingencySpec().is_noop
        assert not spec.is_noop

    def test_negative_indices_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            ContingencySpec(branch_outages=(-1,))
        with pytest.raises(ConfigurationError, match="non-negative"):
            ContingencySpec(generator_outages=(-2,))

    def test_round_trip_and_hash_stability(self):
        spec = self.base(contingency=ContingencySpec(branch_outages=(4,)))
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.content_hash() == spec.content_hash()
        assert restored.contingency.outage == "b4"

    def test_contingency_free_dict_shape_is_unchanged(self):
        # Pre-contingency specs and their hashes must not shift: the key is
        # simply absent, exactly like the optional operation component.
        spec = self.base()
        assert "contingency" not in spec.to_dict()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_noop_contingency_is_distinct_from_none(self):
        none_spec = self.base()
        noop_spec = self.base(contingency=ContingencySpec())
        assert none_spec.content_hash() != noop_spec.content_hash()

    def test_distinct_outages_hash_distinct(self):
        hashes = {
            self.base(contingency=ContingencySpec(branch_outages=(k,))).content_hash()
            for k in (1, 4, 6, 7)
        }
        assert len(hashes) == 4

    def test_with_updates_materializes_contingency(self):
        spec = self.base().with_updates({"contingency.branch_outages": (4,)})
        assert spec.contingency is not None
        assert spec.contingency.outage == "b4"
        # And dotted updates on an existing contingency still work.
        again = spec.with_updates({"contingency.generator_outages": (1,)})
        assert again.contingency.outage == "b4+g1"

    def test_expand_grid_over_outages(self):
        specs = expand_grid(
            self.base(), {"contingency.branch_outages": ((1,), (4,), (6,))}
        )
        assert [s.contingency.outage for s in specs] == ["b1", "b4", "b6"]
        assert len({s.content_hash() for s in specs}) == 3

    def test_operation_and_contingency_conflict(self):
        with pytest.raises(ConfigurationError, match="contingency"):
            self.base(
                mtd=MTDSpec(policy="designed", gamma_threshold=0.25),
                operation=OperationSpec(),
                contingency=ContingencySpec(branch_outages=(4,)),
            )

    def test_apply_contingency(self):
        network = base_network("ieee14")
        assert apply_contingency(network, None) is network
        assert apply_contingency(network, ContingencySpec()) is network
        derived = apply_contingency(
            network, ContingencySpec(branch_outages=(4,), generator_outages=(1,))
        )
        assert not derived.branches[4].in_service
        assert not derived.generators[1].in_service
        with pytest.raises(IslandingError):
            apply_contingency(network, ContingencySpec(branch_outages=(13,)))


class TestTrialIntegration:
    """Contingency trials: metrics, seed-stream bit-identity, suites."""

    def spec(self, **overrides) -> ScenarioSpec:
        defaults = dict(
            name="trial-base",
            grid=GridSpec(case="ieee14", baseline="dc-opf"),
            attack=AttackSpec(n_attacks=12, seed=5),
            mtd=MTDSpec(policy="random", max_relative_change=0.1),
            detector=DetectorSpec(n_noise_trials=200),
            n_trials=2,
            base_seed=23,
            deltas=(0.9,),
        )
        defaults.update(overrides)
        return ScenarioSpec(**defaults)

    def test_contingency_trial_reports_false_alarm_rate(self):
        result = run_trial(self.spec(contingency=ContingencySpec(branch_outages=(4,))), 0)
        rate = result.metrics["bdd_false_alarm_rate"]
        assert 0.0 <= rate <= 1.0
        assert "eta(0.9)" in result.metrics

    def test_noop_contingency_preserves_shared_metrics_bitwise(self):
        plain = run_trial(self.spec(), 0)
        noop = run_trial(self.spec(contingency=ContingencySpec()), 0)
        assert "bdd_false_alarm_rate" not in plain.metrics
        assert "bdd_false_alarm_rate" in noop.metrics
        for key, value in plain.metrics.items():
            assert repr(noop.metrics[key]) == repr(value), key

    def test_contingency_changes_outcome(self):
        plain = run_trial(self.spec(), 0)
        outaged = run_trial(self.spec(contingency=ContingencySpec(branch_outages=(4,))), 0)
        assert plain.metrics["spa"] != outaged.metrics["spa"]

    def test_islanding_contingency_raises_at_trial_level(self):
        with pytest.raises(IslandingError):
            run_trial(self.spec(contingency=ContingencySpec(branch_outages=(13,))), 0)

    @pytest.mark.parametrize(
        "suite,case,n_points", [("n1-screening", "ieee14", 16), ("n1-screening-30", "ieee30", 39)]
    )
    def test_n1_suites_enumerate_screenable_outages(self, suite, case, n_points):
        specs = scenario_suite(suite)
        assert len(specs) == n_points
        base, *outaged = specs
        assert base.contingency is not None and base.contingency.is_noop
        assert base.name == f"n1-{case}-base"
        bridges = set(bridge_branches(base_network(case)))
        for spec in outaged:
            (k,) = spec.contingency.branch_outages
            assert spec.name == f"n1-{case}-b{k}"
            assert k not in bridges
            assert {"n1", "contingency", case} <= set(spec.tags)
        assert len({s.content_hash() for s in specs}) == n_points

    def test_n1_suite_points_are_runnable(self):
        specs = scenario_suite("n1-screening")
        tiny = specs[1].with_updates(
            {"attack.n_attacks": 8, "n_trials": 1, "detector.n_noise_trials": 100}
        )
        result = run_trial(tiny, 0)
        assert "bdd_false_alarm_rate" in result.metrics
