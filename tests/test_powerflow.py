"""Tests for repro.powerflow (DC power flow and PTDF)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PowerFlowError
from repro.powerflow.dc import flows_from_angles, solve_dc_power_flow
from repro.powerflow.ptdf import (
    flows_from_injections,
    generation_shift_factors,
    ptdf_matrix,
)


class TestDCPowerFlow:
    def test_paper_table_ii_flows(self, net4):
        """The 4-bus case with dispatch (350, 150) reproduces Table II flows."""
        generation = np.array([350.0, 150.0])
        result = solve_dc_power_flow(net4, generation_mw=generation)
        np.testing.assert_allclose(
            result.flows_mw, [126.56, 173.44, -43.44, -26.56], atol=0.01
        )

    def test_slack_angle_is_zero(self, net14):
        result = solve_dc_power_flow(net14, generation_mw=np.zeros(5))
        assert result.angles_rad[net14.slack_bus] == pytest.approx(0.0)

    def test_nodal_balance_holds(self, net14, rng):
        generation = rng.uniform(0, 50, size=net14.n_generators)
        result = solve_dc_power_flow(net14, generation_mw=generation)
        # At every non-slack bus, injection equals net outgoing flow.
        for bus in range(net14.n_buses):
            if bus == net14.slack_bus:
                continue
            outgoing = sum(
                result.flows_mw[br.index] for br in net14.branches if br.from_bus == bus
            )
            incoming = sum(
                result.flows_mw[br.index] for br in net14.branches if br.to_bus == bus
            )
            assert outgoing - incoming == pytest.approx(result.injections_mw[bus], abs=1e-6)

    def test_imbalance_absorbed_at_slack(self, net14):
        # Zero generation: the slack bus must supply the full load.
        result = solve_dc_power_flow(net14, generation_mw=np.zeros(5))
        assert result.slack_injection_mw == pytest.approx(net14.total_load_mw())

    def test_imbalance_rejected_when_disabled(self, net14):
        with pytest.raises(PowerFlowError):
            solve_dc_power_flow(
                net14, generation_mw=np.zeros(5), balance_at_slack=False
            )

    def test_balanced_injections_accepted_when_strict(self, net4):
        injections = np.array([100.0, -40.0, -60.0, 0.0])
        result = solve_dc_power_flow(net4, injections_mw=injections, balance_at_slack=False)
        assert np.isfinite(result.flows_mw).all()

    def test_both_inputs_rejected(self, net4):
        with pytest.raises(PowerFlowError):
            solve_dc_power_flow(
                net4, injections_mw=np.zeros(4), generation_mw=np.zeros(2)
            )

    def test_wrong_injection_length_rejected(self, net4):
        with pytest.raises(PowerFlowError):
            solve_dc_power_flow(net4, injections_mw=np.zeros(3))

    def test_wrong_generation_length_rejected(self, net4):
        with pytest.raises(PowerFlowError):
            solve_dc_power_flow(net4, generation_mw=np.zeros(5))

    def test_reactance_override_changes_flows(self, net4):
        generation = np.array([350.0, 150.0])
        nominal = solve_dc_power_flow(net4, generation_mw=generation)
        perturbed_x = net4.reactances()
        perturbed_x[0] *= 1.2
        perturbed = solve_dc_power_flow(net4, generation_mw=generation, reactances=perturbed_x)
        assert not np.allclose(nominal.flows_mw, perturbed.flows_mw)

    def test_flows_from_angles_roundtrip(self, net14, rng):
        generation = rng.uniform(0, 40, size=5)
        result = solve_dc_power_flow(net14, generation_mw=generation)
        np.testing.assert_allclose(
            flows_from_angles(net14, result.angles_rad), result.flows_mw, atol=1e-9
        )

    def test_flows_from_angles_wrong_length(self, net14):
        with pytest.raises(PowerFlowError):
            flows_from_angles(net14, np.zeros(5))

    def test_max_loading_and_overloads(self, net4):
        generation = np.array([350.0, 150.0])
        result = solve_dc_power_flow(net4, generation_mw=generation)
        limits = net4.flow_limits_mw()
        assert result.max_loading(limits) <= 1.0 + 1e-9
        assert result.overloaded_branches(limits) == []
        tight_limits = np.full(4, 10.0)
        assert len(result.overloaded_branches(tight_limits)) == 4


class TestPTDF:
    def test_shape_and_slack_column(self, net14):
        ptdf = ptdf_matrix(net14)
        assert ptdf.shape == (20, 14)
        np.testing.assert_allclose(ptdf[:, net14.slack_bus], np.zeros(20))

    def test_consistency_with_power_flow(self, net14, rng):
        """PTDF route and direct solve must agree on branch flows."""
        generation = rng.uniform(0, 40, size=5)
        direct = solve_dc_power_flow(net14, generation_mw=generation)
        via_ptdf = flows_from_injections(net14, direct.injections_mw)
        np.testing.assert_allclose(via_ptdf, direct.flows_mw, atol=1e-8)

    def test_shift_factors_sum_consistency(self, net14):
        factors = generation_shift_factors(net14, from_bus=1, to_bus=5)
        ptdf = ptdf_matrix(net14)
        np.testing.assert_allclose(factors, ptdf[:, 1] - ptdf[:, 5], atol=1e-12)

    def test_shift_factor_unknown_bus_rejected(self, net14):
        with pytest.raises(PowerFlowError):
            generation_shift_factors(net14, from_bus=99, to_bus=0)

    def test_injection_length_check(self, net14):
        with pytest.raises(PowerFlowError):
            flows_from_injections(net14, np.zeros(3))


class TestSparseSolvers:
    """Dense and sparse solver backends must agree."""

    def test_ptdf_backends_agree(self, net14):
        dense = ptdf_matrix(net14, sparse=False)
        sparse = ptdf_matrix(net14, sparse=True)
        np.testing.assert_allclose(dense, sparse, atol=1e-10)

    def test_ptdf_backends_agree_with_override(self, net14, rng):
        x = net14.reactances() * rng.uniform(0.8, 1.2, net14.n_branches)
        np.testing.assert_allclose(
            ptdf_matrix(net14, x, sparse=False),
            ptdf_matrix(net14, x, sparse=True),
            atol=1e-10,
        )

    def test_large_synthetic_uses_sparse_automatically(self):
        from repro.grid.cases import load_case
        from repro.grid.matrices import use_sparse_backend

        net = load_case("synthetic118")
        assert use_sparse_backend(net)
        # Cross-check the automatically-sparse DC solve against the PTDF route.
        result = solve_dc_power_flow(net, injections_mw=net.loads_mw() * 0 + 0.0)
        np.testing.assert_allclose(result.flows_mw, np.zeros(net.n_branches), atol=1e-9)
        injections = -net.loads_mw()
        injections[net.slack_bus] = net.total_load_mw()
        pf = solve_dc_power_flow(net, injections_mw=injections, balance_at_slack=False)
        via_ptdf = ptdf_matrix(net) @ pf.injections_mw
        np.testing.assert_allclose(pf.flows_mw, via_ptdf, atol=1e-6)

    def test_dc_solver_backends_agree_on_large_case(self):
        from repro.grid.cases import load_case

        net = load_case("synthetic118")
        injections = -net.loads_mw()
        injections[net.slack_bus] = net.total_load_mw()
        dense = solve_dc_power_flow(net, injections_mw=injections, sparse=False)
        sparse = solve_dc_power_flow(net, injections_mw=injections, sparse=True)
        np.testing.assert_allclose(dense.angles_rad, sparse.angles_rad, atol=1e-10)
        np.testing.assert_allclose(dense.flows_mw, sparse.flows_mw, atol=1e-7)
