"""Tests of the batched estimation kernel: LinearModel and its cache.

The contract under test is the one the engine's batch mode relies on:
batched entry points perform the *same arithmetic* as the scalar ones (a
batch of one is bit-identical), noise batches consume the RNG stream
exactly like sequential draws, and cached factorizations are
interchangeable with freshly built ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimation.bdd import BadDataDetector
from repro.estimation.linear_model import BatchStateEstimate, LinearModel, LinearModelCache
from repro.estimation.measurement import MeasurementSystem
from repro.estimation.state_estimator import WLSStateEstimator
from repro.exceptions import ConfigurationError, EstimationError


@pytest.fixture(scope="module")
def model14(measurement14):
    return LinearModel(measurement14.matrix(), measurement14.weights())


@pytest.fixture()
def measurements14(measurement14, opf14, rng):
    """A small batch of noisy measurement vectors, shape (6, M)."""
    return np.stack(
        [measurement14.measure(opf14.angles_rad, rng=rng) for _ in range(6)]
    )


class TestLinearModel:
    def test_shapes(self, model14, measurement14):
        assert model14.n_measurements == measurement14.n_measurements
        assert model14.n_states == measurement14.n_states
        assert model14.degrees_of_freedom == (
            measurement14.n_measurements - measurement14.n_states
        )
        assert model14.q.shape == (model14.n_measurements, model14.n_states)
        assert model14.r.shape == (model14.n_states, model14.n_states)

    def test_batch_of_one_matches_scalar_estimator(self, model14, measurement14, measurements14):
        estimator = WLSStateEstimator(measurement14)
        for z in measurements14:
            single = estimator.estimate(z)
            batch = model14.estimate_batch(z[None, :])
            assert isinstance(batch, BatchStateEstimate)
            np.testing.assert_array_equal(batch.angles_rad[0], single.angles_rad)
            assert batch.residual_norms[0] == single.residual_norm

    def test_batch_rows_match_scalar_rows(self, model14, measurement14, measurements14):
        """Every row of a big batch equals the corresponding batch-of-one."""
        batch = model14.estimate_batch(measurements14)
        for i, z in enumerate(measurements14):
            one = model14.estimate_batch(z[None, :])
            np.testing.assert_allclose(batch.angles_rad[i], one.angles_rad[0], rtol=1e-12, atol=1e-14)
            assert batch.residual_norms[i] == pytest.approx(one.residual_norms[0], rel=1e-12)

    def test_residual_norms_agree_with_estimate_batch(self, model14, measurements14):
        batch = model14.estimate_batch(measurements14)
        np.testing.assert_array_equal(
            model14.residual_norms(measurements14), batch.residual_norms
        )

    def test_gain_cholesky(self, model14):
        U = model14.gain_cholesky()
        H, sqrt_w = model14.matrix, model14.sqrt_weights
        gain = (sqrt_w[:, None] * H).T @ (sqrt_w[:, None] * H)
        # gain entries span ~1e9, and exact zeros accumulate ~1e-8 of
        # rounding through the factorization; compare at machine precision
        # relative to the matrix scale.
        np.testing.assert_allclose(
            U.T @ U, gain, rtol=1e-9, atol=1e-12 * float(np.abs(gain).max())
        )
        assert np.all(np.diag(U) > 0)
        # upper triangular
        assert np.allclose(U, np.triu(U))

    def test_attack_residuals_match_estimator(self, model14, measurement14, evaluator14):
        estimator = WLSStateEstimator(measurement14)
        attacks = evaluator14.ensemble.attacks[:8]
        batched = model14.attack_residual_norms(attacks)
        for i, attack in enumerate(attacks):
            assert batched[i] == pytest.approx(estimator.attack_residual_norm(attack), rel=1e-9)

    def test_shape_validation(self, model14):
        with pytest.raises(EstimationError):
            model14.residual_norms(np.zeros((3, 5)))
        with pytest.raises(EstimationError):
            model14.estimate_batch(np.zeros(7))

    def test_rank_deficient_rejected(self):
        H = np.ones((6, 2))  # two identical columns
        H[:, 1] = H[:, 0]
        with pytest.raises(EstimationError):
            LinearModel(H, np.ones(6))

    def test_bad_weights_rejected(self):
        H = np.random.default_rng(0).normal(size=(6, 2))
        with pytest.raises(EstimationError):
            LinearModel(H, np.zeros(6))
        with pytest.raises(EstimationError):
            LinearModel(H, np.ones(5))


class TestBatchedDetector:
    def test_detection_probabilities_match_scalar(self, measurement14, evaluator14):
        detector = BadDataDetector(measurement14.with_reactances(
            measurement14.reactance_vector() * 1.1
        ))
        attacks = evaluator14.ensemble.attacks[:10]
        batched = detector.detection_probabilities(attacks)
        scalar = np.array([detector.detection_probability(a) for a in attacks])
        # A batch of one and a row of a batch of ten go through gemms of
        # different shapes; BLAS may round their accumulations differently
        # by an ulp, so the comparison is to floating-point accuracy.
        np.testing.assert_allclose(batched, scalar, rtol=1e-12, atol=1e-15)

    def test_stealthy_attack_reports_fp_floor(self, measurement14, evaluator14):
        detector = BadDataDetector(measurement14)
        # The ensemble was crafted from this very H, so attacks are stealthy
        # and the batched evaluator must report the alpha floor for all.
        probs = detector.detection_probabilities(evaluator14.ensemble.attacks[:5])
        np.testing.assert_allclose(probs, detector.false_positive_rate)

    def test_raises_alarms_matches_scalar(self, measurement14, opf14, rng, measurements14):
        detector = BadDataDetector(measurement14)
        alarms = detector.raises_alarms(measurements14)
        assert alarms.dtype == bool
        for i, z in enumerate(measurements14):
            assert alarms[i] == detector.raises_alarm(z)

    def test_measure_batch_stream_identical_to_sequential(self, measurement14, opf14):
        r1, r2 = np.random.default_rng(42), np.random.default_rng(42)
        sequential = np.stack(
            [measurement14.measure(opf14.angles_rad, rng=r1) for _ in range(7)]
        )
        batched = measurement14.measure_batch(opf14.angles_rad, 7, rng=r2)
        np.testing.assert_array_equal(sequential, batched)

    def test_measure_batch_with_attack(self, measurement14, opf14, evaluator14):
        attack = evaluator14.ensemble.attacks[0]
        r1, r2 = np.random.default_rng(3), np.random.default_rng(3)
        sequential = np.stack(
            [measurement14.measure(opf14.angles_rad, rng=r1, attack=attack) for _ in range(4)]
        )
        batched = measurement14.measure_batch(opf14.angles_rad, 4, rng=r2, attack=attack)
        np.testing.assert_array_equal(sequential, batched)

    def test_monte_carlo_batched_matches_sequential_stream(self, measurement14, opf14, evaluator14):
        detector = BadDataDetector(
            measurement14.with_reactances(measurement14.reactance_vector() * 1.2)
        )
        attacks = evaluator14.ensemble.attacks[:3]
        batched = detector.detection_probabilities_monte_carlo(
            attacks, opf14.angles_rad, n_trials=40, rng=np.random.default_rng(9)
        )
        rng = np.random.default_rng(9)
        sequential = np.array(
            [
                detector.detection_probability_monte_carlo(
                    a, opf14.angles_rad, n_trials=40, rng=rng
                )
                for a in attacks
            ]
        )
        np.testing.assert_array_equal(batched, sequential)

    def test_evaluator_kernels_agree(self, evaluator14, net14):
        x = net14.reactances() * 1.15
        reference = evaluator14.evaluate(x, kernel="reference")
        batched = evaluator14.evaluate(x, kernel="batched")
        np.testing.assert_allclose(
            reference.detection_probabilities,
            batched.detection_probabilities,
            atol=1e-12,
        )

    def test_unknown_kernel_rejected(self, evaluator14, net14):
        with pytest.raises(ConfigurationError):
            evaluator14.evaluate(net14.reactances(), kernel="turbo")


class TestLinearModelCache:
    def _builder(self, measurement14):
        return lambda: LinearModel(measurement14.matrix(), measurement14.weights())

    def test_hit_miss_accounting(self, measurement14):
        cache = LinearModelCache(maxsize=4)
        build = self._builder(measurement14)
        first = cache.get_or_build("a", build)
        assert cache.stats() == {
            "hits": 0, "misses": 1, "evictions": 0, "entries": 1, "maxsize": 4,
        }
        again = cache.get_or_build("a", build)
        assert again is first  # the very same factorization object
        assert cache.hits == 1 and cache.misses == 1
        cache.get_or_build("b", build)
        assert cache.misses == 2
        assert len(cache) == 2 and "a" in cache and "b" in cache

    def test_lru_eviction(self, measurement14):
        cache = LinearModelCache(maxsize=2)
        build = self._builder(measurement14)
        a = cache.get_or_build("a", build)
        cache.get_or_build("b", build)
        cache.get_or_build("a", build)      # refresh "a" → "b" becomes LRU
        cache.get_or_build("c", build)      # evicts "b"
        assert cache.evictions == 1
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.get_or_build("a", build) is a

    def test_clear_preserves_counters(self, measurement14):
        cache = LinearModelCache(maxsize=2)
        cache.get_or_build("a", self._builder(measurement14))
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1

    def test_invalid_maxsize(self):
        with pytest.raises(ConfigurationError):
            LinearModelCache(maxsize=0)

    def test_falsy_values_are_cached(self):
        """None/empty build products must hit the cache, not rebuild forever."""
        cache = LinearModelCache(maxsize=2)
        calls = []
        for _ in range(3):
            cache.get_or_build("k", lambda: calls.append(1))
        assert len(calls) == 1
        assert cache.misses == 1 and cache.hits == 2

    def test_mismatched_injected_model_rejected(self, measurement14, net30):
        """A mis-keyed cache entry must not silently corrupt detection stats."""
        model14 = LinearModel(measurement14.matrix(), measurement14.weights())
        other_sigma = MeasurementSystem.for_network(
            measurement14.network, noise_sigma=2 * measurement14.noise_sigma
        )
        with pytest.raises(EstimationError, match="noise level"):
            WLSStateEstimator(other_sigma, model=model14)
        system30 = MeasurementSystem.for_network(net30)
        with pytest.raises(EstimationError, match="shape"):
            WLSStateEstimator(system30, model=model14)

    def test_cached_model_bit_identical_results(self, evaluator14, net14):
        """Serving the factorization from the cache must not change results.

        Uses the Monte-Carlo method so the factorization cache is consulted
        on every call (the analytic path is memoised one level up).
        """
        x = net14.reactances() * 0.95
        cache = LinearModelCache()
        mc = dict(method="monte-carlo", n_noise_trials=20, seed=3)
        fresh = evaluator14.evaluate(x, **mc)
        cached_run = evaluator14.evaluate(x, model_cache=cache, **mc)
        cached_again = evaluator14.evaluate(x, model_cache=cache, **mc)
        np.testing.assert_array_equal(
            fresh.detection_probabilities, cached_run.detection_probabilities
        )
        np.testing.assert_array_equal(
            cached_run.detection_probabilities, cached_again.detection_probabilities
        )
        assert cache.hits == 1 and cache.misses == 1

    def test_analytic_memo_short_circuits_and_matches(self, evaluator14, net14, rng):
        """Repeated analytic evaluations of one perturbation hit the memo."""
        x = net14.reactances() * rng.uniform(0.9, 1.1, net14.n_branches)
        first = evaluator14.evaluate(x)
        memo_hits_before = evaluator14._analytic_memo.hits
        second = evaluator14.evaluate(x)
        assert evaluator14._analytic_memo.hits == memo_hits_before + 1
        np.testing.assert_array_equal(
            first.detection_probabilities, second.detection_probabilities
        )
        # Handed-out arrays are copies: mutating one must not poison the memo.
        second.detection_probabilities[:] = -1.0
        third = evaluator14.evaluate(x)
        np.testing.assert_array_equal(
            first.detection_probabilities, third.detection_probabilities
        )
