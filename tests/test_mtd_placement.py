"""Tests for the D-FACTS placement extension (repro.mtd.placement)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MTDDesignError
from repro.grid.cases import case14, synthetic_case
from repro.mtd.placement import (
    greedy_placement,
    placement_report,
    stealthy_dimension,
)


class TestStealthyDimension:
    def test_no_devices_leaves_everything_stealthy(self, net14):
        assert stealthy_dimension(net14, ()) == net14.n_buses - 1

    def test_paper_placement_matches_contraction_bound(self, net14):
        """Six D-FACTS edges that contract 14 buses into 8 components leave
        7 stealthy directions — the value the ablation benchmark measures."""
        assert stealthy_dimension(net14) == 7

    def test_full_coverage_hits_counting_bound(self, net14):
        all_branches = tuple(range(net14.n_branches))
        expected = 2 * (net14.n_buses - 1) - net14.n_branches
        assert stealthy_dimension(net14, all_branches) == expected

    def test_monotone_in_coverage(self, net14):
        placements = [(0,), (0, 4), (0, 4, 8), tuple(range(10)), tuple(range(20))]
        dimensions = [stealthy_dimension(net14, p) for p in placements]
        assert all(a >= b for a, b in zip(dimensions, dimensions[1:]))

    def test_unknown_branch_rejected(self, net14):
        with pytest.raises(MTDDesignError):
            stealthy_dimension(net14, (99,))

    def test_matches_measured_overlap(self, net14):
        """The structural prediction agrees with the measured dimension of
        Col(H) ∩ Col(H') for an extreme perturbation of the placed lines."""
        from repro.grid.matrices import reduced_measurement_matrix
        from repro.mtd.conditions import undetectable_attack_subspace

        branches = net14.dfacts_branches
        x = net14.reactances()
        for position, index in enumerate(branches):
            x[index] *= 1.5 if position % 2 == 0 else 0.5
        overlap = undetectable_attack_subspace(
            reduced_measurement_matrix(net14), reduced_measurement_matrix(net14, x)
        ).shape[1]
        assert overlap == stealthy_dimension(net14, branches)


class TestPlacementReport:
    def test_report_fields(self, net14):
        report = placement_report(net14)
        assert report.branches == net14.dfacts_branches
        assert report.stealthy_dimension == 7
        assert report.stealthy_fraction == pytest.approx(7 / 13)
        assert report.achievable_angle > 0.0
        assert not report.covers_spanning_tree

    def test_spanning_tree_coverage_detected(self, net14):
        report = placement_report(net14, tuple(range(net14.n_branches)))
        assert report.covers_spanning_tree

    def test_empty_placement(self, net14):
        report = placement_report(net14, ())
        assert report.achievable_angle == pytest.approx(0.0)
        assert report.stealthy_dimension == 13


class TestGreedyPlacement:
    def test_selects_requested_number(self, net14):
        selection = greedy_placement(net14, 5)
        assert len(selection) == 5
        assert len(set(selection)) == 5

    def test_greedy_beats_paper_placement_on_stealthy_dimension(self, net14):
        """Placing the same number of devices greedily never leaves more
        stealthy directions than the paper's fixed placement."""
        greedy = greedy_placement(net14, 6)
        assert stealthy_dimension(net14, greedy) <= stealthy_dimension(net14)

    def test_thirteen_devices_can_cover_the_grid(self, net14):
        """A spanning placement (N−1 devices) drives the contraction bound to
        zero, leaving only the counting bound."""
        greedy = greedy_placement(net14, 13)
        assert stealthy_dimension(net14, greedy) == max(0, 2 * 13 - 20)

    def test_candidate_restriction_respected(self, net14):
        candidates = (0, 1, 2, 3)
        selection = greedy_placement(net14, 3, candidate_branches=candidates)
        assert set(selection).issubset(set(candidates))

    def test_invalid_requests_rejected(self, net14):
        with pytest.raises(MTDDesignError):
            greedy_placement(net14, 0)
        with pytest.raises(MTDDesignError):
            greedy_placement(net14, 99)
        with pytest.raises(MTDDesignError):
            greedy_placement(net14, 3, candidate_branches=(0, 1))
        with pytest.raises(MTDDesignError):
            greedy_placement(net14, 1, candidate_branches=(123,))

    def test_works_on_synthetic_networks(self):
        net = synthetic_case(n_buses=10, seed=3)
        selection = greedy_placement(net, 4)
        assert len(selection) == 4
        assert stealthy_dimension(net, selection) <= net.n_buses - 1
