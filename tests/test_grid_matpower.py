"""MATPOWER ``.m`` import: parser, parity with hand-coded cases, registry
and scenario-spec integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro import case14, case30
from repro.engine.runner import ScenarioEngine
from repro.engine.scenarios import scenario_suite
from repro.engine.spec import GridSpec, ScenarioSpec
from repro.exceptions import CaseNotFoundError, GridModelError
from repro.grid.cases.registry import load_case
from repro.grid.io import network_from_dict, network_to_dict
from repro.grid.matpower import (
    BUNDLED_CASE_DIR,
    bundled_matpower_cases,
    load_matpower_case,
    network_from_matpower,
    parse_matpower,
    resolve_case_file,
)

#: A deliberately awkward case: non-contiguous bus IDs, an out-of-service
#: branch and generator, an unlimited line (RATE_A = 0), quadratic cost
#: coefficients, and MATLAB comments.
SMALL_CASE = """
function mpc = tiny3
% three-bus toy case
mpc.version = '2';
mpc.baseMVA = 50;
mpc.bus = [
    10  3  0.0   0 0 0 1 1 0 0 1 1.06 0.94;  % slack
    20  1  40.0  0 0 0 1 1 0 0 1 1.06 0.94;
    35  2  10.0  0 0 0 1 1 0 0 1 1.06 0.94;
];
mpc.gen = [
    10  0 0 0 0 1 100 1  90  0;
    35  0 0 0 0 1 100 1  30  5;
    20  0 0 0 0 1 100 0 999  0;  % out of service
];
mpc.branch = [
    10 20 0.01 0.10 0  25 0 0 0 0 1 -360 360;
    20 35 0.01 0.20 0   0 0 0 0 0 1 -360 360;
    10 35 0.01 0.30 0  10 0 0 0 0 0 -360 360;  % out of service
];
mpc.gencost = [
    2 0 0 3 0.02 12.5 0;
    2 0 0 2 30 0 0;
    2 0 0 2 99 0 0;
];
mpc.dfacts = [2];
mpc.dfacts_range = 0.4;
"""


class TestParser:
    def test_blocks_and_scalars(self):
        case = parse_matpower(SMALL_CASE)
        assert case.name == "tiny3"
        assert case.base_mva == 50.0
        assert case.bus.shape == (3, 13)
        assert case.branch.shape == (3, 13)
        assert case.gen.shape == (3, 10)
        assert case.dfacts == (2,)
        assert case.dfacts_range == 0.4

    def test_missing_bus_block_rejected(self):
        with pytest.raises(GridModelError, match="mpc.bus"):
            parse_matpower("function mpc = x\nmpc.branch = [1 2 0 0.1 0];")

    def test_ragged_matrix_rejected(self):
        with pytest.raises(GridModelError, match="columns"):
            parse_matpower("mpc.bus = [1 3 0; 2 1];\nmpc.branch = [1 2 0 0.1 0];")

    def test_unparseable_row_rejected(self):
        with pytest.raises(GridModelError, match="cannot parse"):
            parse_matpower("mpc.bus = [1 3 zero];\nmpc.branch = [1 2 0 0.1 0];")


class TestNetworkConstruction:
    def test_small_case_semantics(self):
        network = network_from_matpower(SMALL_CASE)
        assert network.name == "tiny3"
        assert network.base_mva == 50.0
        assert network.n_buses == 3
        # non-contiguous IDs map to file positions; bus names keep the IDs
        assert [b.name for b in network.buses] == ["Bus 10", "Bus 20", "Bus 35"]
        assert network.slack_bus == 0
        assert network.loads_mw().tolist() == [0.0, 40.0, 10.0]
        # out-of-service branch dropped, RATE_A = 0 means unlimited
        assert network.n_branches == 2
        assert network.branches[0].rate_mw == 25.0
        assert network.branches[1].rate_mw == float("inf")
        # out-of-service generator dropped; linear cost term extracted from
        # the quadratic row; PMIN honoured
        assert network.n_generators == 2
        assert network.generators[0].cost_per_mwh == 12.5
        assert network.generators[1].cost_per_mwh == 30.0
        assert network.generators[1].p_min_mw == 5.0
        # mpc.dfacts / mpc.dfacts_range honoured (1-indexed, in-service order)
        assert network.dfacts_branches == (1,)
        assert network.branches[1].dfacts_min_factor == pytest.approx(0.6)

    def test_kwargs_override_file_dfacts(self):
        network = network_from_matpower(
            SMALL_CASE, dfacts_branches=(1,), dfacts_range=0.2, name="renamed"
        )
        assert network.name == "renamed"
        assert network.dfacts_branches == (0,)
        assert network.branches[0].dfacts_max_factor == pytest.approx(1.2)

    def test_duplicate_bus_id_rejected(self):
        text = SMALL_CASE.replace("20  1  40.0", "10  1  40.0")
        with pytest.raises(GridModelError, match="duplicate bus ID 10"):
            network_from_matpower(text)

    def test_reference_bus_required(self):
        text = SMALL_CASE.replace("10  3  0.0", "10  1  0.0")
        with pytest.raises(GridModelError, match="exactly one reference bus"):
            network_from_matpower(text)

    def test_unknown_branch_endpoint_rejected(self):
        text = SMALL_CASE.replace("10 20 0.01 0.10", "10 99 0.01 0.10")
        with pytest.raises(GridModelError, match="unknown bus"):
            network_from_matpower(text)

    def test_piecewise_cost_model_rejected(self):
        text = SMALL_CASE.replace("2 0 0 3 0.02 12.5 0", "1 0 0 3 0.02 12.5 0")
        with pytest.raises(GridModelError, match="MODEL = 2"):
            network_from_matpower(text)

    def test_out_of_range_dfacts_rejected(self):
        with pytest.raises(GridModelError, match="outside 1..2"):
            network_from_matpower(SMALL_CASE, dfacts_branches=(7,))


class TestBundledCaseParity:
    """The satellite acceptance: bundled .m files == hand-coded factories."""

    @pytest.mark.parametrize(
        "file_name, factory, pretty",
        [("case14.m", case14, "ieee14"), ("case30.m", case30, "ieee30")],
    )
    def test_round_trip_equality(self, file_name, factory, pretty):
        imported = load_matpower_case(BUNDLED_CASE_DIR / file_name, name=pretty)
        hand_coded = factory()
        assert network_to_dict(imported) == network_to_dict(hand_coded)
        assert imported == hand_coded
        # and the dict round-trips losslessly
        assert network_from_dict(network_to_dict(imported)) == hand_coded

    def test_bundled_listing(self):
        assert "case14.m" in bundled_matpower_cases()
        assert "case30.m" in bundled_matpower_cases()

    def test_matrices_match_hand_coded(self):
        from repro.grid.matrices import reduced_measurement_matrix

        imported = load_case("case14.m")
        assert np.array_equal(
            reduced_measurement_matrix(imported),
            reduced_measurement_matrix(case14()),
        )


class TestRegistryIntegration:
    def test_load_case_resolves_bundled_file(self):
        network = load_case("case30.m")
        assert network.n_buses == 30
        assert len(network.dfacts_branches) == 10

    def test_load_case_resolves_filesystem_path(self, tmp_path):
        path = tmp_path / "custom.m"
        path.write_text(SMALL_CASE)
        network = load_case(str(path))
        assert network.name == "tiny3"
        assert network.n_buses == 3

    def test_missing_file_is_case_not_found(self):
        with pytest.raises(CaseNotFoundError, match="bundled cases"):
            load_case("no_such_case.m")

    def test_resolve_prefers_existing_path(self, tmp_path):
        path = tmp_path / "case14.m"
        path.write_text(SMALL_CASE)
        assert resolve_case_file(str(path)) == path

    def test_missing_explicit_path_never_falls_back_to_bundled(self, tmp_path):
        # a path with a directory component that doesn't exist must error,
        # not silently load the bundled file of the same basename
        missing = tmp_path / "mods" / "case30.m"
        with pytest.raises(CaseNotFoundError, match="does not exist"):
            resolve_case_file(str(missing))
        with pytest.raises(CaseNotFoundError):
            load_case(str(missing))

    def test_load_case_kwargs_forwarded(self):
        network = load_case("case14.m", dfacts_branches=(1, 2), dfacts_range=0.1)
        assert network.dfacts_branches == (0, 1)


class TestScenarioSpecIntegration:
    def test_grid_spec_accepts_file_reference(self):
        spec = ScenarioSpec(name="mp", grid=GridSpec(case="case14.m"), n_trials=1)
        assert spec.content_hash()  # hashable and serialisable
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt.grid.case == "case14.m"

    def test_fig7_suite_runs_on_matpower_case30(self):
        """Acceptance: the fig7 suite, unmodified except for the case name,
        runs against the MATPOWER-loaded case30."""
        spec = scenario_suite("fig7")[0].with_updates(
            {"grid.case": "case30.m", "attack.n_attacks": 8}, n_trials=2
        )
        result = ScenarioEngine().run(spec)
        assert len(result.trials) == 2
        for trial in result.trials:
            assert trial.metrics["spa"] > 0.0
            assert 0.0 <= trial.metrics["mean_detection_probability"] <= 1.0
