"""Golden bit-identity suite for the structure-of-arrays network core.

The library's matrix builders, power-flow solvers and estimation stack all
run on :class:`~repro.grid.arrays.NetworkArrays` (via ``network.arrays``).
These tests pin that representation against *reference implementations* of
the legacy object path — the exact per-component loops the builders used
before the refactor — for every registered case, asserting equality
bit-for-bit (``np.array_equal``, no tolerances), plus a full fig7 scenario
pinned to metric values captured from the pre-refactor code.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.runner import ScenarioEngine
from repro.engine.scenarios import scenario_suite
from repro.estimation.linear_model import LinearModel
from repro.estimation.measurement import MeasurementSystem
from repro.exceptions import GridModelError
from repro.grid.arrays import NetworkArrays
from repro.grid.cases.registry import load_case
from repro.grid.matrices import (
    branch_flow_matrix,
    generator_incidence_matrix,
    incidence_matrix,
    measurement_matrix,
    measurement_matrix_sparse,
    non_slack_indices,
    reduced_measurement_matrix,
    reduced_susceptance_matrix,
    susceptance_matrix,
)
from repro.grid.network import PowerNetwork
from repro.powerflow.dc import solve_dc_power_flow
from repro.powerflow.ptdf import ptdf_matrix

#: Every distinct registered case (aliases like "case14" are skipped).
ALL_CASES = ("case4gs", "ieee14", "ieee30", "synthetic57", "synthetic118", "synthetic300")


# ----------------------------------------------------------------------
# Reference implementations: the pre-refactor per-object loops, verbatim.
# ----------------------------------------------------------------------
def _reference_incidence(network: PowerNetwork) -> np.ndarray:
    A = np.zeros((network.n_buses, network.n_branches))
    from_bus = np.fromiter(
        (b.from_bus for b in network.branches), dtype=int, count=network.n_branches
    )
    to_bus = np.fromiter(
        (b.to_bus for b in network.branches), dtype=int, count=network.n_branches
    )
    cols = np.arange(network.n_branches)
    A[from_bus, cols] = 1.0
    A[to_bus, cols] = -1.0
    return A


def _reference_reactances(network: PowerNetwork) -> np.ndarray:
    x = np.zeros(network.n_branches)
    for branch in network.branches:
        x[branch.index] = branch.reactance
    return x


def _reference_non_slack(network: PowerNetwork) -> np.ndarray:
    slack = network.slack_bus
    return np.array([i for i in range(network.n_buses) if i != slack], dtype=int)


def _reference_measurement_matrix(
    network: PowerNetwork, reactances: np.ndarray | None = None
) -> np.ndarray:
    A = _reference_incidence(network)
    x = _reference_reactances(network) if reactances is None else reactances
    b = 1.0 / x
    flows = b[:, None] * A.T
    injections = (A * b) @ A.T
    return np.vstack([flows, -flows, injections])


def _reference_reduced_measurement_matrix(
    network: PowerNetwork, reactances: np.ndarray | None = None
) -> np.ndarray:
    H = _reference_measurement_matrix(network, reactances)
    return H[:, _reference_non_slack(network)]


def _reference_generator_incidence(network: PowerNetwork) -> np.ndarray:
    C = np.zeros((network.n_buses, network.n_generators))
    for gen in network.generators:
        C[gen.bus, gen.index] = 1.0
    return C


def _perturbed(network: PowerNetwork, seed: int = 0) -> np.ndarray:
    base = network.reactances()
    rng = np.random.default_rng(seed)
    return base * (1.0 + rng.uniform(-0.2, 0.2, base.shape[0]))


@pytest.fixture(scope="module", params=ALL_CASES)
def case_network(request):
    return load_case(request.param)


class TestNetworkArraysView:
    def test_field_extraction_matches_components(self, case_network):
        arrays = case_network.arrays
        assert isinstance(arrays, NetworkArrays)
        for branch in case_network.branches:
            i = branch.index
            assert arrays.branch_from[i] == branch.from_bus
            assert arrays.branch_to[i] == branch.to_bus
            assert arrays.branch_reactance[i] == branch.reactance
            assert arrays.branch_rate_mw[i] == branch.rate_mw
            assert bool(arrays.branch_has_dfacts[i]) == branch.has_dfacts
        for bus in case_network.buses:
            assert arrays.bus_load_mw[bus.index] == bus.load_mw
        for gen in case_network.generators:
            assert arrays.gen_bus[gen.index] == gen.bus
            assert arrays.gen_p_max_mw[gen.index] == gen.p_max_mw
            assert arrays.gen_cost_per_mwh[gen.index] == gen.cost_per_mwh
        assert arrays.slack_bus == case_network.slack_bus
        assert arrays.base_mva == case_network.base_mva
        assert arrays.n_measurements == case_network.n_measurements
        assert arrays.dfacts_branches == case_network.dfacts_branches

    def test_arrays_cached_on_network(self, case_network):
        assert case_network.arrays is case_network.arrays

    def test_vector_views_match_reference_loops(self, case_network):
        arrays = case_network.arrays
        assert np.array_equal(arrays.reactances(), _reference_reactances(case_network))
        x_min, x_max = case_network.reactance_bounds()
        for branch in case_network.branches:
            assert x_min[branch.index] == branch.reactance_min
            assert x_max[branch.index] == branch.reactance_max
        # the legacy implementation summed the load vector with np.sum
        loads = np.zeros(case_network.n_buses)
        for bus in case_network.buses:
            loads[bus.index] = bus.load_mw
        assert arrays.total_load_mw() == float(np.sum(loads))

    def test_views_are_fresh_mutable_copies(self, case_network):
        loads = case_network.loads_mw()
        loads[0] = -123.0  # must not corrupt the shared arrays
        assert case_network.loads_mw()[0] != -123.0

    def test_backing_arrays_are_frozen(self, case_network):
        arrays = case_network.arrays
        with pytest.raises(ValueError):
            arrays.branch_reactance[0] = 1.0
        with pytest.raises(ValueError):
            arrays.topology.incidence()[0, 0] = 5.0

    def test_with_reactances_shares_topology(self, case_network):
        x = _perturbed(case_network)
        derived = case_network.arrays.with_reactances(x)
        assert derived.topology is case_network.arrays.topology
        assert np.array_equal(derived.branch_reactance, x)
        # every non-reactance field is shared, not copied
        assert derived.bus_load_mw is case_network.arrays.bus_load_mw
        assert derived.gen_cost_per_mwh is case_network.arrays.gen_cost_per_mwh

    def test_with_reactances_validation(self, case_network):
        arrays = case_network.arrays
        with pytest.raises(GridModelError):
            arrays.with_reactances(np.ones(arrays.n_branches + 1))
        bad = arrays.reactances()
        bad[0] = 0.0
        with pytest.raises(GridModelError):
            arrays.with_reactances(bad)


class TestComponentOrderEnforced:
    """The arrays view extracts fields in tuple order, so construction
    rejects component tuples that are not ordered by index (previously the
    index *set* alone was checked)."""

    def test_out_of_order_branches_rejected(self):
        net = load_case("case4gs")
        shuffled = tuple(reversed(net.branches))
        with pytest.raises(GridModelError, match="tuple order"):
            PowerNetwork(
                buses=net.buses,
                branches=shuffled,
                generators=net.generators,
                base_mva=net.base_mva,
            )

    def test_out_of_order_buses_rejected(self):
        net = load_case("case4gs")
        with pytest.raises(GridModelError, match="tuple order"):
            PowerNetwork(
                buses=tuple(reversed(net.buses)),
                branches=net.branches,
                generators=net.generators,
                base_mva=net.base_mva,
            )


class TestFastNetworkDerivation:
    def test_with_reactances_equals_full_construction(self, case_network):
        x = _perturbed(case_network)
        fast = case_network.with_reactances(x)
        validated = PowerNetwork(
            buses=case_network.buses,
            branches=tuple(
                b.with_reactance(x[b.index]) for b in case_network.branches
            ),
            generators=case_network.generators,
            base_mva=case_network.base_mva,
            name=case_network.name,
        )
        assert fast == validated

    def test_fast_path_shares_topology_cache(self, case_network):
        derived = case_network.with_reactances(_perturbed(case_network))
        assert derived.arrays.topology is case_network.arrays.topology

    def test_perturbation_apply_arrays_matches_apply(self, case_network):
        from repro.mtd.perturbation import ReactancePerturbation

        perturbation = ReactancePerturbation.from_perturbed(
            case_network, _perturbed(case_network)
        )
        via_arrays = perturbation.apply_arrays()
        via_network = perturbation.apply()
        assert via_arrays.topology is case_network.arrays.topology
        assert np.array_equal(
            via_arrays.branch_reactance, via_network.arrays.branch_reactance
        )
        assert np.array_equal(
            reduced_measurement_matrix(via_arrays),
            reduced_measurement_matrix(via_network),
        )

    def test_fast_path_keeps_error_contract(self, case_network):
        with pytest.raises(GridModelError):
            case_network.with_reactances(np.ones(case_network.n_branches + 1))
        bad = case_network.reactances()
        bad[-1] = -1.0
        with pytest.raises(GridModelError):
            case_network.with_reactances(bad)


class TestGoldenBitIdentity:
    """Arrays path vs the pre-refactor object path, bit for bit."""

    def test_incidence(self, case_network):
        assert np.array_equal(
            incidence_matrix(case_network), _reference_incidence(case_network)
        )

    def test_non_slack_indices(self, case_network):
        assert np.array_equal(
            non_slack_indices(case_network), _reference_non_slack(case_network)
        )

    def test_generator_incidence(self, case_network):
        assert np.array_equal(
            generator_incidence_matrix(case_network),
            _reference_generator_incidence(case_network),
        )

    def test_measurement_matrix_nominal_and_perturbed(self, case_network):
        assert np.array_equal(
            measurement_matrix(case_network),
            _reference_measurement_matrix(case_network),
        )
        x = _perturbed(case_network)
        assert np.array_equal(
            measurement_matrix(case_network, x),
            _reference_measurement_matrix(case_network, x),
        )
        assert np.array_equal(
            reduced_measurement_matrix(case_network, x),
            _reference_reduced_measurement_matrix(case_network, x),
        )

    def test_susceptance_equals_injection_block(self, case_network):
        B = susceptance_matrix(case_network)
        H = _reference_measurement_matrix(case_network)
        assert np.array_equal(B, H[2 * case_network.n_branches :, :])

    def test_branch_flow_matrix(self, case_network):
        x = _perturbed(case_network)
        A = _reference_incidence(case_network)
        assert np.array_equal(
            branch_flow_matrix(case_network, x), (1.0 / x)[:, None] * A.T
        )

    def test_sparse_measurement_agrees_with_dense(self, case_network):
        x = _perturbed(case_network)
        dense = measurement_matrix(case_network, x)
        sparse = measurement_matrix_sparse(case_network, x).toarray()
        assert np.allclose(dense, sparse, rtol=0, atol=1e-14)

    def test_arrays_derivative_equals_fresh_network(self, case_network):
        """A cache-sharing derivative and an independently built network
        (own topology cache) produce identical matrices and PTDF."""
        x = _perturbed(case_network)
        derivative = case_network.arrays.with_reactances(x)
        fresh = PowerNetwork(
            buses=case_network.buses,
            branches=tuple(
                b.with_reactance(x[b.index]) for b in case_network.branches
            ),
            generators=case_network.generators,
            base_mva=case_network.base_mva,
            name=case_network.name,
        )
        assert np.array_equal(
            reduced_measurement_matrix(derivative),
            reduced_measurement_matrix(fresh),
        )
        assert np.array_equal(ptdf_matrix(derivative), ptdf_matrix(fresh))
        assert np.array_equal(
            reduced_susceptance_matrix(derivative), reduced_susceptance_matrix(fresh)
        )

    def test_linear_model_factorization_identical(self, case_network):
        x = _perturbed(case_network)
        H_arrays = reduced_measurement_matrix(
            case_network.arrays.with_reactances(x)
        )
        H_reference = _reference_reduced_measurement_matrix(case_network, x)
        assert np.array_equal(H_arrays, H_reference)
        weights = np.full(H_arrays.shape[0], 1.0 / 0.0015**2)
        # Pin the dense backend: this golden test is about the QR factors,
        # which the Q-less sparse backend (auto-selected at 100+ buses)
        # deliberately does not materialize.
        model_a = LinearModel(H_arrays, weights, backend="dense")
        model_r = LinearModel(H_reference, weights, backend="dense")
        assert np.array_equal(model_a.q, model_r.q)
        assert np.array_equal(model_a.r, model_r.r)
        assert np.array_equal(model_a.gain_cholesky(), model_r.gain_cholesky())

    def test_dc_power_flow_accepts_arrays(self, case_network):
        via_network = solve_dc_power_flow(case_network)
        via_arrays = solve_dc_power_flow(case_network.arrays)
        assert np.array_equal(via_network.angles_rad, via_arrays.angles_rad)
        assert np.array_equal(via_network.flows_mw, via_arrays.flows_mw)

    def test_measurement_system_accepts_arrays(self, case_network):
        x = _perturbed(case_network)
        via_network = MeasurementSystem.for_network(case_network, reactances=x)
        via_arrays = MeasurementSystem.for_network(case_network.arrays, reactances=x)
        assert np.array_equal(via_network.matrix(), via_arrays.matrix())


class TestFig7GoldenScenario:
    """One full fig7 scenario pinned to pre-refactor metric values.

    The constants below are ``repr`` outputs captured from the legacy
    object path (commit b442993) at a reduced attack budget; the arrays
    core must reproduce them exactly.
    """

    GOLDEN = {
        0: ("0.00051157147600565", "0.004521452689759643", "0.015625"),
        1: ("0.0005203523603755759", "0.00448614251339122", "0.0"),
        2: ("0.0005317281850339608", "0.006461054846164671", "0.0"),
        3: ("0.0005291489382271085", "0.005603480055208585", "0.0"),
        4: ("0.0005138418650021347", "0.005006401842881717", "0.015625"),
    }

    def test_fig7_bit_identical_to_legacy_path(self):
        spec = scenario_suite("fig7")[0].with_updates({"attack.n_attacks": 64})
        result = ScenarioEngine().run(spec)
        assert len(result.trials) == len(self.GOLDEN)
        for trial in result.trials:
            mdp, spa, undetectable = self.GOLDEN[trial.trial_index]
            assert repr(trial.metrics["mean_detection_probability"]) == mdp
            assert repr(trial.metrics["spa"]) == spa
            assert repr(trial.metrics["undetectable_fraction"]) == undetectable
