"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists only
so that editable installs keep working in offline environments where the
``wheel`` package (required by the PEP 517 editable-install path) is not
available:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
