"""Hourly MTD operation over a daily load profile (Figs. 10 and 11).

Section VII-C of the paper drives the IEEE 14-bus system with an hourly load
trace for one day.  At each hour ``t'``:

* the no-MTD OPF is solved for the current load (this is the cost baseline
  and also defines the measurement matrix ``H_{t'}`` of the unperturbed
  system);
* the attacker is assumed to know the measurement matrix of an earlier
  hour, ``H_t`` (their knowledge is one hour stale by default);
* the SPA threshold ``γ_th`` is tuned to the smallest value whose designed
  perturbation achieves the effectiveness target (the paper uses
  ``η'(0.9) ≥ 0.9``), and the corresponding operational-cost increase is
  recorded.

The per-hour records carry all three subspace angles plotted in Fig. 11:
``γ(H_t, H_{t'})``, ``γ(H_t, H'_{t'})`` and ``γ(H_{t'}, H'_{t'})``.

:class:`DailyMTDScheduler` is the historical entry point, kept as a thin
compatibility wrapper over the time-series operation engine
(:mod:`repro.timeseries`): it builds the equivalent
:class:`~repro.engine.spec.ScenarioSpec` (explicit load trace, legacy
per-hour seed derivation) and converts the engine's records back into
:class:`DailyOperationRecord` objects.  At ``warmup="fresh"`` — the
historical hour-0 behaviour — it is record-for-record identical to the
pre-refactor serial loop at the same seeds (golden-pinned in the tests);
the *default* is the bug-fixed ``warmup="wrap-around"``, which gives the
hour-0 attacker the previous day's last-hour matrix instead of perfectly
fresh knowledge, so hour 0's record intentionally differs from the
historical output.  New code should use
:class:`~repro.timeseries.OperationEngine` with
:func:`~repro.timeseries.daily_operation_spec` directly — same results,
plus content hashing, caching, hour-level parallelism and campaign
integration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import MTDDesignError
from repro.grid.network import PowerNetwork
from repro.mtd.design import DesignMethod


@dataclass(frozen=True)
class DailyOperationRecord:
    """Per-hour outcome of the daily MTD operation.

    Attributes
    ----------
    hour:
        Hour index (0 = 1 AM in the paper's plots).
    total_load_mw:
        Total system load of the hour.
    baseline_cost:
        No-MTD OPF cost ($/h).
    mtd_cost:
        OPF cost with the designed perturbation installed ($/h).
    cost_increase_percent:
        ``100 · (C' − C)/C`` — the Fig. 10 series.
    gamma_threshold:
        SPA threshold selected by the tuning loop (radians).
    achieved_eta:
        ``η'(δ)`` actually achieved by the selected design.
    spa_attacker_vs_baseline:
        ``γ(H_t, H_{t'})`` — separation caused purely by the load change.
    spa_attacker_vs_mtd:
        ``γ(H_t, H'_{t'})`` — the design criterion.
    spa_baseline_vs_mtd:
        ``γ(H_{t'}, H'_{t'})`` — what the cost actually depends on.
    """

    hour: int
    total_load_mw: float
    baseline_cost: float
    mtd_cost: float
    cost_increase_percent: float
    gamma_threshold: float
    achieved_eta: float
    spa_attacker_vs_baseline: float
    spa_attacker_vs_mtd: float
    spa_baseline_vs_mtd: float


@dataclass
class DailyOperationResult:
    """All hourly records of one simulated day."""

    records: list[DailyOperationRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def loads(self) -> np.ndarray:
        return np.array([r.total_load_mw for r in self.records])

    def cost_increases_percent(self) -> np.ndarray:
        return np.array([r.cost_increase_percent for r in self.records])

    def spa_series(self) -> dict[str, np.ndarray]:
        """The three Fig. 11 series keyed by their paper notation."""
        return {
            "gamma(Ht, Ht')": np.array([r.spa_attacker_vs_baseline for r in self.records]),
            "gamma(Ht, H't')": np.array([r.spa_attacker_vs_mtd for r in self.records]),
            "gamma(Ht', H't')": np.array([r.spa_baseline_vs_mtd for r in self.records]),
        }

    def peak_cost_hour(self) -> int:
        """Hour with the largest relative cost increase."""
        costs = self.cost_increases_percent()
        return int(np.argmax(costs)) if costs.size else -1


class DailyMTDScheduler:
    """Simulate hourly MTD operation over a load profile.

    Compatibility wrapper over :class:`repro.timeseries.OperationEngine`;
    see the module docstring.

    Parameters
    ----------
    network:
        Grid to operate (nominal loads are rescaled by the profile).
    hourly_total_loads_mw:
        Total system load for each hour of the day; the per-bus loads keep
        their nominal proportions.
    delta, eta_target:
        Effectiveness target: the tuning loop selects the smallest SPA
        threshold whose design achieves ``η'(delta) ≥ eta_target``.
    gamma_grid:
        Candidate SPA thresholds, ascending (radians).
    n_attacks:
        Attack-ensemble size per hour.
    attack_ratio, noise_sigma, false_positive_rate:
        Forwarded to the effectiveness evaluator.
    design_method:
        MTD design strategy (``"two-stage"`` by default for speed).
    cost_baseline:
        How the no-MTD cost ``C_OPF,t'`` (and the no-MTD reactances ``x_t'``)
        are computed each hour:

        * ``"reactance-opf"`` (default) — the paper's eq. (1): the operator
          may also use the D-FACTS devices economically, so the MTD premium
          is measured against the best achievable cost and is guaranteed
          non-negative.
        * ``"dispatch-only"`` — the operator keeps the nominal reactances;
          faster, but an MTD perturbation that happens to relieve congestion
          can then appear free.
    seed:
        Base seed; each hour derives its own stream (the historical
        ``seed + hour`` scheme, kept for record-for-record compatibility).
    warmup:
        Attacker knowledge of the first simulated hour: ``"wrap-around"``
        (default) uses the previous day's last hour — the horizon is
        treated as one day of a stationary pattern, so ``γ(H_t, H_{t'})``
        is meaningful from hour 0 of Fig. 11 — while ``"fresh"`` reproduces
        the historical behaviour of handing hour 0 the *current* matrix
        (perfectly fresh knowledge, which pins the first plotted angle to
        zero).
    tuning_method:
        ``"scan"`` (default) probes the grid linearly exactly like the
        historical loop; ``"bisect"`` selects the same threshold in
        ``O(log K)`` probes whenever effectiveness is monotone along the
        grid.
    """

    def __init__(
        self,
        network: PowerNetwork,
        hourly_total_loads_mw: Sequence[float],
        delta: float = 0.9,
        eta_target: float = 0.9,
        gamma_grid: Sequence[float] | None = None,
        n_attacks: int = 300,
        attack_ratio: float = 0.08,
        noise_sigma: float = 0.0015,
        false_positive_rate: float = 5e-4,
        design_method: DesignMethod = "two-stage",
        cost_baseline: str = "reactance-opf",
        seed: int = 0,
        warmup: str = "wrap-around",
        tuning_method: str = "scan",
    ) -> None:
        from repro.exceptions import ConfigurationError
        from repro.timeseries.spec import ProfileSpec, TuningSpec
        from repro.timeseries.engine import daily_operation_spec

        if len(hourly_total_loads_mw) == 0:
            raise MTDDesignError("the load profile must contain at least one hour")
        if cost_baseline not in ("reactance-opf", "dispatch-only"):
            raise MTDDesignError(
                f"unknown cost_baseline {cost_baseline!r}; "
                "use 'reactance-opf' or 'dispatch-only'"
            )
        if gamma_grid is None:
            gamma_grid = np.arange(0.05, 0.50, 0.05)
        self._network = network
        try:
            self._spec = daily_operation_spec(
                name="daily-mtd-scheduler",
                # The wrapper operates whatever network object it was handed,
                # which the case registry cannot name; the placeholder fails
                # fast (CaseNotFoundError) if the spec is ever executed
                # without this wrapper's network (see the ``spec`` property).
                case="daily-scheduler-network",
                cost_baseline=cost_baseline,
                profile=ProfileSpec(
                    explicit_totals_mw=tuple(float(v) for v in hourly_total_loads_mw),
                    peak_load_mw=None,
                    min_load_mw=None,
                ),
                tuning=TuningSpec(
                    method=tuning_method,
                    gamma_grid=tuple(float(g) for g in gamma_grid),
                    delta=float(delta),
                    eta_target=float(eta_target),
                ),
                warmup=warmup,
                rng="legacy",
                n_attacks=int(n_attacks),
                attack_ratio=float(attack_ratio),
                noise_sigma=float(noise_sigma),
                false_positive_rate=float(false_positive_rate),
                design_method=design_method,
                seed=int(seed),
            )
        except ConfigurationError as error:
            # The historical scheduler surfaced configuration problems as
            # design errors; keep that contract for existing callers.
            raise MTDDesignError(str(error)) from error

    @property
    def spec(self):
        """The equivalent :class:`~repro.engine.spec.ScenarioSpec`.

        Its ``grid.case`` is a non-registry placeholder — the wrapper runs
        against the network *object* it was constructed with, which the
        case registry cannot name — so executing this spec anywhere but
        through this wrapper fails fast instead of silently simulating a
        registry case.  To run the same experiment through the engine or a
        campaign, build the spec with
        :func:`repro.timeseries.daily_operation_spec` and a registered
        ``case`` (equivalence asserted in ``tests/test_timeseries.py``).
        """
        return self._spec

    # ------------------------------------------------------------------
    def run(self) -> DailyOperationResult:
        """Simulate the whole day and return the per-hour records."""
        from repro.timeseries.engine import OperationEngine

        operation = OperationEngine().run(self._spec, network=self._network)
        result = DailyOperationResult()
        for record in operation.records:
            result.records.append(
                DailyOperationRecord(
                    hour=record.hour,
                    total_load_mw=record.total_load_mw,
                    baseline_cost=record.baseline_cost,
                    mtd_cost=record.mtd_cost,
                    cost_increase_percent=record.cost_increase_percent,
                    gamma_threshold=record.gamma_threshold,
                    achieved_eta=record.achieved_eta,
                    spa_attacker_vs_baseline=record.spa_attacker_vs_baseline,
                    spa_attacker_vs_mtd=record.spa_attacker_vs_mtd,
                    spa_baseline_vs_mtd=record.spa_baseline_vs_mtd,
                )
            )
        return result


__all__ = ["DailyMTDScheduler", "DailyOperationRecord", "DailyOperationResult"]
