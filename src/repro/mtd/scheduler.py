"""Hourly MTD operation over a daily load profile (Figs. 10 and 11).

Section VII-C of the paper drives the IEEE 14-bus system with an hourly load
trace for one day.  At each hour ``t'``:

* the no-MTD OPF is solved for the current load (this is the cost baseline
  and also defines the measurement matrix ``H_{t'}`` of the unperturbed
  system);
* the attacker is assumed to know the measurement matrix of the *previous*
  hour, ``H_t`` (their knowledge is one hour stale);
* the SPA threshold ``γ_th`` is tuned to the smallest value whose designed
  perturbation achieves the effectiveness target (the paper uses
  ``η'(0.9) ≥ 0.9``), and the corresponding operational-cost increase is
  recorded.

The per-hour records carry all three subspace angles plotted in Fig. 11:
``γ(H_t, H_{t'})``, ``γ(H_t, H'_{t'})`` and ``γ(H_{t'}, H'_{t'})``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import MTDDesignError, OPFInfeasibleError
from repro.grid.matrices import reduced_measurement_matrix
from repro.grid.network import PowerNetwork
from repro.mtd.cost import mtd_operational_cost
from repro.mtd.design import DesignMethod, design_mtd_perturbation
from repro.mtd.effectiveness import EffectivenessEvaluator
from repro.mtd.subspace import subspace_angle
from repro.opf.dc_opf import solve_dc_opf
from repro.opf.reactance_opf import solve_reactance_opf
from repro.opf.result import OPFResult


@dataclass(frozen=True)
class DailyOperationRecord:
    """Per-hour outcome of the daily MTD operation.

    Attributes
    ----------
    hour:
        Hour index (0 = 1 AM in the paper's plots).
    total_load_mw:
        Total system load of the hour.
    baseline_cost:
        No-MTD OPF cost ($/h).
    mtd_cost:
        OPF cost with the designed perturbation installed ($/h).
    cost_increase_percent:
        ``100 · (C' − C)/C`` — the Fig. 10 series.
    gamma_threshold:
        SPA threshold selected by the tuning loop (radians).
    achieved_eta:
        ``η'(δ)`` actually achieved by the selected design.
    spa_attacker_vs_baseline:
        ``γ(H_t, H_{t'})`` — separation caused purely by the load change.
    spa_attacker_vs_mtd:
        ``γ(H_t, H'_{t'})`` — the design criterion.
    spa_baseline_vs_mtd:
        ``γ(H_{t'}, H'_{t'})`` — what the cost actually depends on.
    """

    hour: int
    total_load_mw: float
    baseline_cost: float
    mtd_cost: float
    cost_increase_percent: float
    gamma_threshold: float
    achieved_eta: float
    spa_attacker_vs_baseline: float
    spa_attacker_vs_mtd: float
    spa_baseline_vs_mtd: float


@dataclass
class DailyOperationResult:
    """All hourly records of one simulated day."""

    records: list[DailyOperationRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def loads(self) -> np.ndarray:
        return np.array([r.total_load_mw for r in self.records])

    def cost_increases_percent(self) -> np.ndarray:
        return np.array([r.cost_increase_percent for r in self.records])

    def spa_series(self) -> dict[str, np.ndarray]:
        """The three Fig. 11 series keyed by their paper notation."""
        return {
            "gamma(Ht, Ht')": np.array([r.spa_attacker_vs_baseline for r in self.records]),
            "gamma(Ht, H't')": np.array([r.spa_attacker_vs_mtd for r in self.records]),
            "gamma(Ht', H't')": np.array([r.spa_baseline_vs_mtd for r in self.records]),
        }

    def peak_cost_hour(self) -> int:
        """Hour with the largest relative cost increase."""
        costs = self.cost_increases_percent()
        return int(np.argmax(costs)) if costs.size else -1


class DailyMTDScheduler:
    """Simulate hourly MTD operation over a load profile.

    Parameters
    ----------
    network:
        Grid to operate (nominal loads are rescaled by the profile).
    hourly_total_loads_mw:
        Total system load for each hour of the day; the per-bus loads keep
        their nominal proportions.
    delta, eta_target:
        Effectiveness target: the tuning loop selects the smallest SPA
        threshold whose design achieves ``η'(delta) ≥ eta_target``.
    gamma_grid:
        Candidate SPA thresholds, ascending (radians).
    n_attacks:
        Attack-ensemble size per hour.
    attack_ratio, noise_sigma, false_positive_rate:
        Forwarded to the effectiveness evaluator.
    design_method:
        MTD design strategy (``"two-stage"`` by default for speed).
    cost_baseline:
        How the no-MTD cost ``C_OPF,t'`` (and the no-MTD reactances ``x_t'``)
        are computed each hour:

        * ``"reactance-opf"`` (default) — the paper's eq. (1): the operator
          may also use the D-FACTS devices economically, so the MTD premium
          is measured against the best achievable cost and is guaranteed
          non-negative.
        * ``"dispatch-only"`` — the operator keeps the nominal reactances;
          faster, but an MTD perturbation that happens to relieve congestion
          can then appear free.
    seed:
        Base seed; each hour derives its own stream.
    """

    def __init__(
        self,
        network: PowerNetwork,
        hourly_total_loads_mw: Sequence[float],
        delta: float = 0.9,
        eta_target: float = 0.9,
        gamma_grid: Sequence[float] | None = None,
        n_attacks: int = 300,
        attack_ratio: float = 0.08,
        noise_sigma: float = 0.0015,
        false_positive_rate: float = 5e-4,
        design_method: DesignMethod = "two-stage",
        cost_baseline: str = "reactance-opf",
        seed: int = 0,
    ) -> None:
        if len(hourly_total_loads_mw) == 0:
            raise MTDDesignError("the load profile must contain at least one hour")
        self._network = network
        self._profile = [float(v) for v in hourly_total_loads_mw]
        self._delta = float(delta)
        self._eta_target = float(eta_target)
        if gamma_grid is None:
            gamma_grid = np.arange(0.05, 0.50, 0.05)
        self._gamma_grid = [float(g) for g in gamma_grid]
        self._n_attacks = int(n_attacks)
        self._attack_ratio = float(attack_ratio)
        self._noise_sigma = float(noise_sigma)
        self._alpha = float(false_positive_rate)
        if cost_baseline not in ("reactance-opf", "dispatch-only"):
            raise MTDDesignError(
                f"unknown cost_baseline {cost_baseline!r}; "
                "use 'reactance-opf' or 'dispatch-only'"
            )
        self._design_method = design_method
        self._cost_baseline = cost_baseline
        self._seed = int(seed)

    # ------------------------------------------------------------------
    def run(self) -> DailyOperationResult:
        """Simulate the whole day and return the per-hour records."""
        result = DailyOperationResult()
        nominal_total = self._network.total_load_mw()
        previous_baseline: OPFResult | None = None
        previous_loads: np.ndarray | None = None

        for hour, total_load in enumerate(self._profile):
            scale = total_load / nominal_total
            loads = self._network.loads_mw() * scale
            baseline = self._solve_baseline(loads, previous_baseline)

            # Attacker knowledge: the measurement matrix of the previous hour
            # (or the current one for the first hour of the simulation).
            knowledge_reactances = (
                previous_baseline.reactances if previous_baseline is not None else baseline.reactances
            )
            knowledge_angles = self._operating_angles(
                knowledge_reactances,
                previous_loads if previous_loads is not None else loads,
            )
            record = self._operate_hour(
                hour, loads, baseline, knowledge_reactances, knowledge_angles
            )
            result.records.append(record)
            previous_baseline = baseline
            previous_loads = loads
        return result

    # ------------------------------------------------------------------
    def _solve_baseline(
        self, loads: np.ndarray, previous_baseline: OPFResult | None
    ) -> OPFResult:
        """No-MTD OPF of one hour (paper eq. (1)).

        When the reactance-OPF baseline is selected, the previous hour's
        D-FACTS settings are kept whenever re-optimising them would not
        lower the cost (within a small tolerance).  Real operators do not
        move the devices without economic benefit, and this stability is
        what makes consecutive no-MTD measurement matrices nearly identical
        — the ``γ(H_t, H_{t'}) ≈ 0`` observation of Fig. 11.
        """
        if self._cost_baseline != "reactance-opf" or not self._network.dfacts_branches:
            return solve_dc_opf(self._network, loads_mw=loads)
        optimised = solve_reactance_opf(
            self._network, loads_mw=loads, n_random_starts=1, seed=self._seed
        )
        if previous_baseline is None:
            return optimised
        try:
            carried_over = solve_dc_opf(
                self._network, reactances=previous_baseline.reactances, loads_mw=loads
            )
        except OPFInfeasibleError:
            return optimised
        if carried_over.cost <= optimised.cost * (1.0 + self._carryover_tolerance):
            return carried_over
        return optimised

    #: Keep the previous hour's D-FACTS settings unless re-optimising them
    #: saves more than this relative amount (0.5 %).  Mirrors operator
    #: practice and keeps consecutive no-MTD measurement matrices nearly
    #: identical, as observed in the paper's Fig. 11.
    _carryover_tolerance: float = 5e-3

    def _operating_angles(self, reactances: np.ndarray, loads: np.ndarray) -> np.ndarray:
        opf = solve_dc_opf(self._network, reactances=reactances, loads_mw=loads)
        return opf.angles_rad

    def _operate_hour(
        self,
        hour: int,
        loads: np.ndarray,
        baseline: OPFResult,
        knowledge_reactances: np.ndarray,
        knowledge_angles: np.ndarray,
    ) -> DailyOperationRecord:
        evaluator = EffectivenessEvaluator(
            self._network,
            operating_angles_rad=knowledge_angles,
            base_reactances=knowledge_reactances,
            noise_sigma=self._noise_sigma,
            false_positive_rate=self._alpha,
            n_attacks=self._n_attacks,
            attack_ratio=self._attack_ratio,
            seed=self._seed + hour,
        )
        design, achieved_eta, gamma_used = self._tune_gamma(
            evaluator, loads, preferred_reactances=baseline.reactances
        )

        cost = mtd_operational_cost(
            self._network,
            design.perturbed_reactances,
            loads_mw=loads,
            baseline_result=baseline,
        )
        attacker_matrix = evaluator.attacker_matrix
        baseline_matrix = reduced_measurement_matrix(self._network, baseline.reactances)
        mtd_matrix = reduced_measurement_matrix(self._network, design.perturbed_reactances)
        return DailyOperationRecord(
            hour=hour,
            total_load_mw=float(np.sum(loads)),
            baseline_cost=cost.baseline_cost,
            mtd_cost=cost.mtd_cost,
            cost_increase_percent=cost.percent_increase,
            gamma_threshold=gamma_used,
            achieved_eta=achieved_eta,
            spa_attacker_vs_baseline=subspace_angle(attacker_matrix, baseline_matrix),
            spa_attacker_vs_mtd=subspace_angle(attacker_matrix, mtd_matrix),
            spa_baseline_vs_mtd=subspace_angle(baseline_matrix, mtd_matrix),
        )

    def _tune_gamma(
        self,
        evaluator: EffectivenessEvaluator,
        loads: np.ndarray,
        preferred_reactances: np.ndarray | None = None,
    ):
        """Smallest γ_th on the grid whose design meets the effectiveness target."""
        last_design = None
        last_eta = 0.0
        last_gamma = self._gamma_grid[0]
        for gamma in self._gamma_grid:
            try:
                design = design_mtd_perturbation(
                    self._network,
                    gamma_threshold=gamma,
                    attacker_reactances=evaluator.base_reactances,
                    loads_mw=loads,
                    method=self._design_method,
                    preferred_reactances=preferred_reactances,
                    seed=self._seed,
                )
            except MTDDesignError:
                break
            effectiveness = evaluator.evaluate(design.perturbed_reactances)
            eta = effectiveness.eta(self._delta)
            last_design, last_eta, last_gamma = design, eta, gamma
            if eta >= self._eta_target:
                return design, eta, gamma
        if last_design is None:
            raise MTDDesignError(
                "no SPA threshold on the tuning grid produced a feasible MTD design"
            )
        # The target could not be met within the D-FACTS limits; return the
        # most effective design found (the paper's target is achievable for
        # the IEEE cases, but synthetic networks may be more constrained).
        return last_design, last_eta, last_gamma


__all__ = ["DailyMTDScheduler", "DailyOperationRecord", "DailyOperationResult"]
