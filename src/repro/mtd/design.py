"""MTD perturbation design (paper eq. (4)).

The defender selects the post-perturbation reactances ``x'`` by minimising
the operating cost subject to a lower bound on the smallest principal angle
between the attacker's measurement matrix ``H_t`` and the post-perturbation
matrix ``H'(x')``:

.. math::

    \\min_{g', x'} \\sum_i C_i(G'_i)
    \\quad \\text{s.t.} \\quad γ(H_t, H'(x')) ≥ γ_{th},
    \\; g' − l = B(x')θ', \\; |f'| ≤ f^{max}, \\; g^{min} ≤ g' ≤ g^{max},
    \\; x^{min} ≤ x' ≤ x^{max}.

Two solution strategies are provided:

* ``"joint"`` (default) — the faithful reproduction: a single non-linear
  program solved by SLSQP under MultiStart, exactly mirroring the paper's
  ``fmincon``/MultiStart approach.
* ``"two-stage"`` — a fast heuristic: find the maximum-SPA perturbation
  within the D-FACTS limits, walk back along the segment towards the nominal
  reactances until the SPA constraint is just met, and re-dispatch with the
  dispatch-only OPF.  The joint method uses this point as a feasible warm
  start, and falls back to it if no MultiStart run converges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np
from scipy.optimize import minimize

from repro.exceptions import MTDDesignError, OPFConvergenceError, OPFInfeasibleError
from repro.grid.matrices import reduced_measurement_matrix
from repro.grid.network import PowerNetwork
from repro.mtd.perturbation import ReactancePerturbation
from repro.mtd.subspace import subspace_angle
from repro.opf.dc_opf import solve_dc_opf
from repro.opf.reactance_opf import solve_reactance_opf
from repro.opf.result import OPFResult
from repro.utils.rng import as_generator

DesignMethod = Literal["joint", "two-stage", "max-spa"]

#: Bound on a :class:`DesignContext`'s memo entries; a full daily-operation
#: tuning run stays far below it, so hitting the cap simply restarts the
#: memo rather than degrading results.
_CONTEXT_MAX_ENTRIES: int = 20_000


class DesignContext:
    """Per-hour memoisation shared by repeated MTD design calls.

    The daily-operation tuning loop prices several SPA thresholds against
    the *same* attacker view and load vector.  Most of each two-stage design
    call is threshold-independent: the continuous max-SPA search, the
    subspace angles of the D-FACTS box corners, and the OPF pricing of
    candidate points that recur across thresholds (anchors and the fixed
    step grid along each direction).  A context carries those results from
    one call to the next, so tuning ``K`` thresholds stops costing ``K``
    full designs.

    Every memo caches a pure deterministic function of its key, so serving
    a hit is bit-identical to recomputing.  The max-SPA memo is additionally
    gated on :meth:`reuse_max_spa_safe`: it is only consulted when the
    design path provably never draws from its RNG (full corner enumeration
    with enough corners to seed the polish starts), because skipping a
    computation that *would* have consumed random draws would shift every
    draw after it.
    """

    __slots__ = ("spa", "opf", "max_spa")

    def __init__(self) -> None:
        self.spa: dict[bytes, float] = {}
        #: x-bytes → OPFResult, or ``None`` for an infeasible dispatch.
        self.opf: dict[bytes, OPFResult | None] = {}
        #: (base-x bytes, n_starts) → (best reactances, achieved SPA).
        self.max_spa: dict[tuple[bytes, int], tuple[np.ndarray, float]] = {}

    def trim(self) -> None:
        """Restart the memos once they exceed the (generous) size cap."""
        for memo in (self.spa, self.opf, self.max_spa):
            if len(memo) > _CONTEXT_MAX_ENTRIES:
                memo.clear()

    @staticmethod
    def reuse_max_spa_safe(network: PowerNetwork, n_starts: int = 6) -> bool:
        """Whether the max-SPA search is RNG-free for this network.

        True when the D-FACTS box is small enough for full corner
        enumeration (``<= _MAX_ENUMERATED_DFACTS`` devices) *and* large
        enough that the enumerated corners already cover the requested
        polish starts (``2^k >= n_starts``), so no random corners or
        starts are ever drawn — serving the memo then leaves a caller's
        generator in exactly the state recomputation would.
        """
        k = len(network.dfacts_branches)
        return k <= _MAX_ENUMERATED_DFACTS and 2**k >= max(2, int(n_starts))


@dataclass(frozen=True)
class MTDDesignResult:
    """Outcome of an MTD design run.

    Attributes
    ----------
    perturbation:
        The selected reactance perturbation.
    opf:
        The OPF solution of the perturbed system (dispatch, flows, cost).
    achieved_spa:
        ``γ(H_t, H'(x'))`` at the selected perturbation, in radians.
    gamma_threshold:
        The requested SPA lower bound ``γ_th`` (``None`` for the pure
        max-SPA design).
    method:
        The strategy that produced this result.
    """

    perturbation: ReactancePerturbation
    opf: OPFResult
    achieved_spa: float
    gamma_threshold: float | None
    method: str

    @property
    def perturbed_reactances(self) -> np.ndarray:
        """Post-perturbation reactance vector ``x'``."""
        return self.perturbation.perturbed_reactances

    @property
    def cost(self) -> float:
        """OPF cost of the perturbed system ($/h)."""
        return self.opf.cost


def spa_of_reactances(
    network: PowerNetwork,
    attacker_matrix: np.ndarray,
    reactances: np.ndarray,
) -> float:
    """``γ(H_t, H(x))`` for a candidate reactance vector ``x``.

    Uses the operational subspace-angle metric (see
    :func:`repro.mtd.subspace.subspace_angle` for why this is the largest
    principal angle).
    """
    candidate = reduced_measurement_matrix(network, np.asarray(reactances, dtype=float))
    return subspace_angle(attacker_matrix, candidate)


def design_mtd_perturbation(
    network: PowerNetwork,
    gamma_threshold: float,
    attacker_reactances: np.ndarray | None = None,
    loads_mw: np.ndarray | None = None,
    method: DesignMethod = "joint",
    preferred_reactances: np.ndarray | None = None,
    n_random_starts: int = 2,
    max_iterations: int = 200,
    seed: int | np.random.Generator | None = 0,
    context: DesignContext | None = None,
) -> MTDDesignResult:
    """Select an MTD perturbation meeting an SPA target at minimum cost.

    Parameters
    ----------
    network:
        Grid with D-FACTS devices (their limits bound the search).
    gamma_threshold:
        Required smallest principal angle ``γ_th`` in radians, within
        ``[0, π/2]``.
    attacker_reactances:
        The pre-perturbation reactances the attacker learned (defines
        ``H_t``).  Defaults to the network's nominal reactances.
    loads_mw:
        Load vector of the operating hour ``t'`` (defaults to the network's
        nominal loads).
    method:
        ``"joint"`` (paper eq. (4) via SLSQP + MultiStart), ``"two-stage"``
        (fast heuristic), or ``"max-spa"`` (ignore cost, maximise the SPA).
    preferred_reactances:
        Optional cost-preferred reactance vector — typically the no-MTD OPF
        optimum of the current hour (which may differ from the attacker's
        stale knowledge).  The two-stage search additionally explores
        perturbations anchored at this point, so that loose SPA targets can
        be met at (near) zero cost, mirroring the behaviour of eq. (4).
    n_random_starts:
        Random MultiStart points for the joint method.
    max_iterations:
        Iteration cap per local solve of the joint method.
    seed:
        Seed for the random starting points.
    context:
        Optional :class:`DesignContext` shared by repeated calls against the
        same attacker view and load vector (the daily-operation tuning loop
        passes one per hour).  Serving memo hits is bit-identical to
        recomputing; a context must not be reused across different attacker
        reactances or loads.

    Returns
    -------
    MTDDesignResult

    Raises
    ------
    MTDDesignError
        If the D-FACTS range cannot achieve the requested ``γ_th`` or no
        feasible dispatch exists for any qualifying perturbation.
    """
    if not (0.0 <= gamma_threshold <= np.pi / 2):
        raise MTDDesignError(
            f"gamma_threshold must lie in [0, π/2], got {gamma_threshold}"
        )
    if not network.dfacts_branches:
        raise MTDDesignError("the network has no D-FACTS devices; MTD is impossible")

    base_x = network.reactances() if attacker_reactances is None else np.asarray(attacker_reactances, dtype=float)
    attacker_matrix = reduced_measurement_matrix(network, base_x)
    loads = network.loads_mw() if loads_mw is None else np.asarray(loads_mw, dtype=float)
    preferred = None if preferred_reactances is None else np.asarray(preferred_reactances, dtype=float)

    if method == "max-spa":
        return max_spa_perturbation(
            network,
            attacker_reactances=base_x,
            loads_mw=loads,
            seed=seed,
            context=context,
        )

    two_stage = _two_stage_design(
        network, attacker_matrix, base_x, loads, gamma_threshold,
        preferred=preferred, seed=seed, context=context,
    )
    if method == "two-stage":
        return two_stage

    return _joint_design(
        network,
        attacker_matrix,
        base_x,
        loads,
        gamma_threshold,
        warm_start=two_stage,
        n_random_starts=n_random_starts,
        max_iterations=max_iterations,
        seed=seed,
    )


def max_spa_perturbation(
    network: PowerNetwork,
    attacker_reactances: np.ndarray | None = None,
    loads_mw: np.ndarray | None = None,
    n_starts: int = 6,
    require_feasible_dispatch: bool = True,
    seed: int | np.random.Generator | None = 0,
    context: DesignContext | None = None,
) -> MTDDesignResult:
    """Find the perturbation maximising ``γ(H_t, H'(x'))`` within D-FACTS limits.

    Cost is ignored during the search; the returned result still carries the
    dispatch-only OPF of the selected reactances so that its operational
    cost can be read off directly.

    Parameters
    ----------
    require_feasible_dispatch:
        When true (default), :class:`MTDDesignError` is raised if no feasible
        dispatch exists at the maximum-SPA reactances.  When false — used by
        detection-only studies such as the D-FACTS-placement ablation — an
        :class:`OPFResult` with ``success=False`` and infinite cost is
        attached instead, so the geometric result is still usable.
    """
    if not network.dfacts_branches:
        raise MTDDesignError("the network has no D-FACTS devices; MTD is impossible")
    base_x = network.reactances() if attacker_reactances is None else np.asarray(attacker_reactances, dtype=float)
    attacker_matrix = reduced_measurement_matrix(network, base_x)
    loads = network.loads_mw() if loads_mw is None else np.asarray(loads_mw, dtype=float)

    best_x, best_spa = _maximize_spa_memoized(
        network, attacker_matrix, base_x, n_starts=n_starts, seed=seed, context=context
    )
    try:
        opf = _dispatch_for(network, best_x, loads)
    except MTDDesignError:
        if require_feasible_dispatch:
            raise
        opf = _infeasible_placeholder(network, best_x)
    perturbation = ReactancePerturbation.from_perturbed(
        network, best_x, base_reactances=base_x
    )
    return MTDDesignResult(
        perturbation=perturbation,
        opf=opf,
        achieved_spa=best_spa,
        gamma_threshold=None,
        method="max-spa",
    )


def _infeasible_placeholder(network: PowerNetwork, reactances: np.ndarray) -> OPFResult:
    """An explicitly unsuccessful OPF result for detection-only studies."""
    return OPFResult(
        cost=float("inf"),
        dispatch_mw=np.zeros(network.n_generators),
        angles_rad=np.zeros(network.n_buses),
        flows_mw=np.zeros(network.n_branches),
        reactances=np.asarray(reactances, dtype=float),
        success=False,
        status="no feasible dispatch at the maximum-SPA reactances",
    )


# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------
def _dfacts_box(network: PowerNetwork) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return (indices, lower, upper) of the D-FACTS reactance box."""
    arrays = network.arrays
    indices = np.flatnonzero(arrays.branch_has_dfacts)
    x_min, x_max = arrays.reactance_bounds()
    return indices, x_min[indices], x_max[indices]


def _expand(network: PowerNetwork, base_x: np.ndarray, x_d: np.ndarray) -> np.ndarray:
    """Insert D-FACTS reactances into a copy of the base reactance vector."""
    indices = np.flatnonzero(network.arrays.branch_has_dfacts)
    full = base_x.copy()
    full[indices] = x_d
    return full


#: Enumerate every corner of the D-FACTS box when there are at most this
#: many devices (2^8 = 256 candidate evaluations); beyond that only sampled
#: corners and local polish are used.
_MAX_ENUMERATED_DFACTS: int = 8


def _maximize_spa(
    network: PowerNetwork,
    attacker_matrix: np.ndarray,
    base_x: np.ndarray,
    n_starts: int,
    seed: int | np.random.Generator | None,
) -> tuple[np.ndarray, float]:
    """Search the D-FACTS box for the reactance vector maximising the SPA.

    The subspace angle tends to be maximised at (or near) corners of the box
    (the further every perturbable reactance moves, the further the column
    space rotates), so the search enumerates corners when that is cheap and
    polishes the best candidates with a bounded quasi-Newton method.
    """
    indices, lower, upper = _dfacts_box(network)
    rng = as_generator(seed)

    def spa_of(x_d: np.ndarray) -> float:
        full = _expand(network, base_x, np.clip(x_d, lower, upper))
        return spa_of_reactances(network, attacker_matrix, full)

    def negative_spa(x_d: np.ndarray) -> float:
        return -spa_of(x_d)

    # Candidate corners: full enumeration when small, random corners plus the
    # all-low / all-high / alternating corners otherwise.
    corners: list[np.ndarray] = []
    if indices.size <= _MAX_ENUMERATED_DFACTS:
        for bits in range(2**indices.size):
            mask = np.array([(bits >> k) & 1 for k in range(indices.size)], dtype=bool)
            corners.append(np.where(mask, upper, lower))
    else:
        corners.extend(
            [lower.copy(), upper.copy(),
             np.where(np.arange(indices.size) % 2 == 0, upper, lower)]
        )
        for _ in range(32):
            mask = rng.integers(0, 2, size=indices.size).astype(bool)
            corners.append(np.where(mask, upper, lower))

    ranked = sorted(corners, key=spa_of, reverse=True)
    starts = ranked[: max(2, n_starts)]
    for _ in range(max(0, n_starts - len(starts))):
        starts.append(rng.uniform(lower, upper))

    best_x_d = max(starts, key=spa_of)
    best_value = -spa_of(best_x_d)
    for start in starts:
        result = minimize(
            negative_spa,
            start,
            method="L-BFGS-B",
            bounds=list(zip(lower, upper)),
        )
        if result.fun < best_value:
            best_value = float(result.fun)
            best_x_d = np.clip(np.asarray(result.x, dtype=float), lower, upper)
    best_full = _expand(network, base_x, best_x_d)
    return best_full, spa_of_reactances(network, attacker_matrix, best_full)


def _maximize_spa_memoized(
    network: PowerNetwork,
    attacker_matrix: np.ndarray,
    base_x: np.ndarray,
    n_starts: int,
    seed: int | np.random.Generator | None,
    context: DesignContext | None,
) -> tuple[np.ndarray, float]:
    """:func:`_maximize_spa` with context reuse when it is provably RNG-free."""
    if context is None or not DesignContext.reuse_max_spa_safe(network, n_starts):
        return _maximize_spa(network, attacker_matrix, base_x, n_starts=n_starts, seed=seed)
    key = (base_x.tobytes(), int(n_starts))
    hit = context.max_spa.get(key)
    if hit is None:
        hit = _maximize_spa(network, attacker_matrix, base_x, n_starts=n_starts, seed=seed)
        context.max_spa[key] = hit
        context.trim()
    return hit[0].copy(), hit[1]


#: Number of candidate perturbation directions priced by the two-stage
#: design.  Each direction costs one short line search plus one LP solve.
_TWO_STAGE_DIRECTIONS: int = 12


def _two_stage_design(
    network: PowerNetwork,
    attacker_matrix: np.ndarray,
    base_x: np.ndarray,
    loads: np.ndarray,
    gamma_threshold: float,
    preferred: np.ndarray | None,
    seed: int | np.random.Generator | None,
    context: DesignContext | None = None,
) -> MTDDesignResult:
    """Cost-aware heuristic for the SPA-constrained design.

    Candidate perturbation *directions* (corners of the D-FACTS box that
    achieve a large SPA, plus the best point found by the continuous SPA
    maximisation) are explored from one or two anchor points — the
    attacker's reactances and, when provided, the cost-preferred reactances
    of the current hour.  Along each anchor→corner segment the earliest step
    meeting the SPA constraint and a few larger steps are priced with the
    dispatch-only OPF, and the cheapest qualifying point overall is returned.
    This keeps the design cheap when a small SPA is requested (some
    direction usually avoids creating congestion) while remaining feasible
    up to the maximum achievable SPA.
    """
    indices, lower, upper = _dfacts_box(network)
    rng = as_generator(seed)

    max_x, max_spa = _maximize_spa_memoized(
        network, attacker_matrix, base_x, n_starts=6, seed=rng, context=context
    )
    if max_spa + 1e-9 < gamma_threshold:
        raise MTDDesignError(
            f"the D-FACTS range cannot achieve γ_th={gamma_threshold:.3f} rad "
            f"(maximum achievable SPA is {max_spa:.3f} rad)"
        )

    if context is None:

        def spa_of_full(x_full: np.ndarray) -> float:
            return spa_of_reactances(network, attacker_matrix, x_full)

    else:

        def spa_of_full(x_full: np.ndarray) -> float:
            key = x_full.tobytes()
            value = context.spa.get(key)
            if value is None:
                value = spa_of_reactances(network, attacker_matrix, x_full)
                context.spa[key] = value
            return value

    # Candidate far points: the continuous maximiser plus box corners ranked
    # by their SPA (only corners that can meet the threshold are useful).
    corner_candidates: list[np.ndarray] = []
    if indices.size <= _MAX_ENUMERATED_DFACTS:
        for bits in range(2**indices.size):
            mask = np.array([(bits >> k) & 1 for k in range(indices.size)], dtype=bool)
            corner_candidates.append(_expand(network, base_x, np.where(mask, upper, lower)))
    else:
        for _ in range(4 * _TWO_STAGE_DIRECTIONS):
            mask = rng.integers(0, 2, size=indices.size).astype(bool)
            corner_candidates.append(_expand(network, base_x, np.where(mask, upper, lower)))
    qualifying_corners = [x for x in corner_candidates if spa_of_full(x) >= gamma_threshold]
    qualifying_corners.sort(key=spa_of_full, reverse=True)
    far_points = [max_x] + qualifying_corners[: _TWO_STAGE_DIRECTIONS - 1]

    anchors = [base_x]
    if preferred is not None and not np.allclose(preferred, base_x):
        anchors.append(np.clip(preferred, *network.reactance_bounds()))

    best: tuple[float, np.ndarray, float, OPFResult] | None = None

    def priced_opf(candidate_x: np.ndarray) -> OPFResult | None:
        """Dispatch-only OPF at ``candidate_x``; ``None`` when infeasible."""
        if context is not None:
            key = candidate_x.tobytes()
            if key in context.opf:
                return context.opf[key]
        try:
            opf = solve_dc_opf(network, reactances=candidate_x, loads_mw=loads)
        except OPFInfeasibleError:
            opf = None
        if context is not None:
            context.opf[candidate_x.tobytes()] = opf
        return opf

    def consider(candidate_x: np.ndarray) -> None:
        nonlocal best
        candidate_spa = spa_of_full(candidate_x)
        if candidate_spa + 1e-9 < gamma_threshold:
            return
        opf = priced_opf(candidate_x)
        if opf is None:
            return
        if best is None or opf.cost < best[0]:
            best = (opf.cost, candidate_x, candidate_spa, opf)

    for anchor in anchors:
        consider(anchor)
        for far in far_points:
            _, achieved, t_min = _backtrack_to_threshold(
                anchor, far, gamma_threshold, spa_of_full
            )
            if achieved + 1e-9 < gamma_threshold:
                continue
            # Price the minimal qualifying step plus larger steps along the
            # same direction: the LP cost is not monotone in the step size (a
            # larger move can relieve congestion), so the cheapest qualifying
            # point is not always the smallest one.
            steps = {t_min, 1.0}
            steps.update(t for t in np.arange(0.1, 1.0, 0.1) if t > t_min)
            for t in steps:
                consider(anchor + t * (far - anchor))

    if context is not None:
        context.trim()
    if best is None:
        # Every qualifying perturbation left the dispatch infeasible.
        raise MTDDesignError(
            "no feasible dispatch exists for any perturbation meeting "
            f"γ_th={gamma_threshold:.3f} rad; consider relaxing the SPA "
            "threshold or the flow limits"
        )
    _, chosen_x, achieved, opf = best
    perturbation = ReactancePerturbation.from_perturbed(network, chosen_x, base_reactances=base_x)
    return MTDDesignResult(
        perturbation=perturbation,
        opf=opf,
        achieved_spa=achieved,
        gamma_threshold=gamma_threshold,
        method="two-stage",
    )


def _backtrack_to_threshold(
    base_x: np.ndarray,
    far_x: np.ndarray,
    gamma_threshold: float,
    spa_of_full,
) -> tuple[np.ndarray, float, float]:
    """Smallest step along ``base → far`` whose SPA meets the threshold.

    The SPA is not guaranteed monotone along the segment, so a coarse scan
    locates the earliest qualifying interval before bisecting into it.  The
    returned point always satisfies the threshold when the far end does.
    Returns ``(x, achieved_spa, t)``.
    """

    def spa_at(t: float) -> float:
        return spa_of_full(base_x + t * (far_x - base_x))

    t_grid = np.linspace(0.0, 1.0, 21)
    qualifying = [float(t) for t in t_grid if spa_at(float(t)) >= gamma_threshold]
    if not qualifying:
        chosen = far_x.copy()
        return chosen, spa_at(1.0), 1.0
    t_high = min(qualifying)
    t_low = max(0.0, t_high - float(t_grid[1]))
    for _ in range(25):
        t_mid = 0.5 * (t_low + t_high)
        if spa_at(t_mid) >= gamma_threshold:
            t_high = t_mid
        else:
            t_low = t_mid
    chosen = base_x + t_high * (far_x - base_x)
    return chosen, spa_at(t_high), t_high


def _joint_design(
    network: PowerNetwork,
    attacker_matrix: np.ndarray,
    base_x: np.ndarray,
    loads: np.ndarray,
    gamma_threshold: float,
    warm_start: MTDDesignResult,
    n_random_starts: int,
    max_iterations: int,
    seed: int | np.random.Generator | None,
) -> MTDDesignResult:
    """The SPA-constrained OPF of eq. (4) via SLSQP + MultiStart."""

    def spa_constraint(x_full: np.ndarray) -> float:
        return spa_of_reactances(network, attacker_matrix, x_full) - gamma_threshold

    try:
        opf = solve_reactance_opf(
            network,
            loads_mw=loads,
            extra_reactance_constraints=[spa_constraint],
            n_random_starts=n_random_starts,
            max_iterations=max_iterations,
            seed=seed,
        )
    except (OPFConvergenceError, OPFInfeasibleError):
        # Fall back to the (feasible but possibly sub-optimal) two-stage design.
        return warm_start

    achieved = spa_of_reactances(network, attacker_matrix, opf.reactances)
    if achieved + 1e-6 < gamma_threshold or opf.cost > warm_start.cost + 1e-6:
        # The local solver either drifted below the SPA target or ended in a
        # worse local optimum than the heuristic; keep the better design.
        if warm_start.achieved_spa + 1e-9 >= gamma_threshold:
            return warm_start
    perturbation = ReactancePerturbation.from_perturbed(network, opf.reactances, base_reactances=base_x)
    return MTDDesignResult(
        perturbation=perturbation,
        opf=opf,
        achieved_spa=achieved,
        gamma_threshold=gamma_threshold,
        method="joint",
    )


def _dispatch_for(network: PowerNetwork, reactances: np.ndarray, loads: np.ndarray) -> OPFResult:
    try:
        return solve_dc_opf(network, reactances=reactances, loads_mw=loads)
    except OPFInfeasibleError as exc:
        raise MTDDesignError(
            "no feasible dispatch exists for the selected perturbation; "
            "consider relaxing the SPA threshold or the flow limits"
        ) from exc


__all__ = [
    "DesignContext",
    "MTDDesignResult",
    "design_mtd_perturbation",
    "max_spa_perturbation",
    "spa_of_reactances",
    "DesignMethod",
]
