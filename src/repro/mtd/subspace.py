"""Principal angles between measurement-matrix column spaces.

The paper's central heuristic (Section V-C) is that an MTD perturbation is
more effective the larger the *smallest principal angle* (SPA)

.. math::  γ(H, H') = \\arccos \\max_{u ∈ Col(H), v ∈ Col(H'), ‖u‖=‖v‖=1} |uᵀv|

between the column spaces of the pre- and post-perturbation measurement
matrices.  ``γ = 0`` means the spaces share a direction (some attacks stay
perfectly stealthy); ``γ = π/2`` means the spaces are orthogonal (Theorem 1:
no stealthy attacks survive).

Reproduction note
-----------------
When the D-FACTS devices cover only a subset of the branches — the paper's
IEEE 14-bus setting has 6 devices on 20 lines — the two column spaces always
share non-trivial directions: any state bias that is constant across the two
endpoints of every perturbed line produces identical measurements before and
after the perturbation.  The *literal* smallest principal angle is therefore
identically zero for every realisable perturbation, which cannot be the
quantity the paper sweeps between 0 and 0.45 rad.  The paper's simulations
are built on MATLAB, whose ``subspace(A, B)`` function returns the *largest*
principal angle; that quantity reproduces the reported ranges and trends
exactly.  This library therefore uses the largest principal angle as the
operational design metric :func:`subspace_angle` (and in everything named
"SPA" downstream), while also exposing the literal
:func:`smallest_principal_angle` and the full spectrum
:func:`principal_angles` for analysis.  The theoretical results
(Proposition 1, Theorem 1) are unaffected: they are statements about column
space membership and orthogonality, not about a specific angle.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.utils.linalg import orthonormal_basis

#: Numerical tolerance used when comparing angles against 0 or π/2.
ANGLE_TOL: float = 1e-9


def principal_angles(matrix_a: np.ndarray, matrix_b: np.ndarray) -> np.ndarray:
    """All principal angles between ``Col(A)`` and ``Col(B)``, ascending.

    Uses the Björck–Golub SVD algorithm (via
    :func:`scipy.linalg.subspace_angles`).  The returned array has
    ``min(rank(A), rank(B))`` entries in ``[0, π/2]`` sorted from the
    smallest to the largest angle.
    """
    A = np.asarray(matrix_a, dtype=float)
    B = np.asarray(matrix_b, dtype=float)
    if A.ndim != 2 or B.ndim != 2:
        raise ValueError("principal_angles expects two 2-D matrices")
    if A.shape[0] != B.shape[0]:
        raise ValueError(
            f"matrices must live in the same ambient space, got {A.shape[0]} and {B.shape[0]} rows"
        )
    angles = scipy.linalg.subspace_angles(A, B)
    # scipy returns the angles in descending order; we standardise on
    # ascending so that index 0 is always the smallest principal angle.
    return np.sort(angles)


def smallest_principal_angle(matrix_a: np.ndarray, matrix_b: np.ndarray) -> float:
    """The SPA ``γ(A, B)`` in radians (Definition V.1 of the paper)."""
    angles = principal_angles(matrix_a, matrix_b)
    if angles.size == 0:
        return 0.0
    return float(angles[0])


def largest_principal_angle(matrix_a: np.ndarray, matrix_b: np.ndarray) -> float:
    """The largest principal angle, a complementary separation measure."""
    angles = principal_angles(matrix_a, matrix_b)
    if angles.size == 0:
        return 0.0
    return float(angles[-1])


def subspace_angle(matrix_a: np.ndarray, matrix_b: np.ndarray) -> float:
    """The operational subspace-separation metric ``γ(A, B)`` in radians.

    This is the quantity used as the MTD design criterion throughout the
    library.  It equals the *largest* principal angle between the two column
    spaces — the value MATLAB's ``subspace`` function returns and the one
    the paper's numerical results are based on (see the module docstring's
    reproduction note).  It is zero exactly when ``Col(B) ⊆ Col(A)`` (or
    vice versa), i.e. when the perturbation leaves every attack stealthy,
    and grows towards ``π/2`` as the perturbation pushes the measurement
    matrix away from the attacker's knowledge.
    """
    return largest_principal_angle(matrix_a, matrix_b)


def column_space_overlap_dimension(
    matrix_a: np.ndarray, matrix_b: np.ndarray, tol: float = 1e-8
) -> int:
    """Dimension of ``Col(A) ∩ Col(B)``.

    Equal to the number of principal angles that are (numerically) zero.
    Attacks lying in this intersection remain stealthy after the MTD
    (Proposition 1), so an effective MTD drives this dimension to zero.
    """
    angles = principal_angles(matrix_a, matrix_b)
    return int(np.sum(angles < tol))


def is_orthogonal_complement(
    matrix_a: np.ndarray, matrix_b: np.ndarray, tol: float = 1e-8
) -> bool:
    """Check the Theorem 1 condition: is ``Col(B)`` orthogonal to ``Col(A)``?

    Note that true orthogonal *complements* additionally require the two
    subspace dimensions to add up to the ambient dimension; for the MTD
    analysis only mutual orthogonality matters (every attack ``a ∈ Col(A)``
    then has ``H'ᵀa = 0``), so that is what this predicate tests.
    """
    basis_a = orthonormal_basis(matrix_a)
    basis_b = orthonormal_basis(matrix_b)
    if basis_a.size == 0 or basis_b.size == 0:
        return True
    cross = basis_a.T @ basis_b
    return bool(np.max(np.abs(cross)) <= tol)


def spa_degrees(matrix_a: np.ndarray, matrix_b: np.ndarray) -> float:
    """Convenience: the design metric :func:`subspace_angle` in degrees."""
    return float(np.degrees(subspace_angle(matrix_a, matrix_b)))


def spa_profile(matrix_a: np.ndarray, matrix_b: np.ndarray) -> dict[str, float]:
    """Summary of the separation between two column spaces.

    Returns the smallest, median and largest principal angles and the
    overlap dimension; used by reporting utilities and ablation benchmarks.
    """
    angles = principal_angles(matrix_a, matrix_b)
    if angles.size == 0:
        return {"smallest": 0.0, "median": 0.0, "largest": 0.0, "overlap_dimension": 0.0}
    return {
        "smallest": float(angles[0]),
        "median": float(np.median(angles)),
        "largest": float(angles[-1]),
        "overlap_dimension": float(np.sum(angles < ANGLE_TOL)),
    }


__all__ = [
    "principal_angles",
    "smallest_principal_angle",
    "largest_principal_angle",
    "subspace_angle",
    "column_space_overlap_dimension",
    "is_orthogonal_complement",
    "spa_degrees",
    "spa_profile",
    "ANGLE_TOL",
]
