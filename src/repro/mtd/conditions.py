"""Detectability conditions for MTD perturbations.

Implements the formal results of Section V of the paper:

* **Proposition 1** — an attack ``a = Hc`` is undetectable under MTD ``H'``
  if (and, for the noiseless residual, only if) ``a ∈ Col(H')``, i.e.
  ``rank(H') == rank([H' a])``.
* **Theorem 1** — if ``Col(H')`` is orthogonal to ``Col(H)``, no non-zero
  attack of the form ``a = Hc`` is undetectable, and every such attack's
  detection probability is maximised.

Because real D-FACTS ranges rarely allow the orthogonality condition, the
module also exposes the subspace of attacks that *do* survive a given
perturbation (the intersection of the two column spaces), which quantifies
exactly what the MTD leaves uncovered.
"""

from __future__ import annotations

import numpy as np

from repro.mtd.subspace import is_orthogonal_complement, principal_angles
from repro.utils.linalg import orthonormal_basis, vector_in_column_space


def attack_remains_stealthy(
    attack: np.ndarray,
    post_mtd_matrix: np.ndarray,
    tol: float = 1e-8,
) -> bool:
    """Proposition 1 predicate.

    Parameters
    ----------
    attack:
        The attack vector ``a = Hc`` crafted from the attacker's (outdated)
        measurement matrix.
    post_mtd_matrix:
        The post-perturbation measurement matrix ``H'``.
    tol:
        Relative tolerance of the column-space membership test.

    Returns
    -------
    bool
        True when the attack lies in ``Col(H')`` and therefore keeps its
        detection probability at the false-positive rate.
    """
    return vector_in_column_space(post_mtd_matrix, attack, tol=tol)


def admits_no_undetectable_attacks(
    pre_matrix: np.ndarray,
    post_matrix: np.ndarray,
    tol: float = 1e-8,
    require_orthogonality: bool = False,
) -> bool:
    """Check whether an MTD admits no undetectable attacks of the form ``Hc``.

    Two notions are offered:

    * With ``require_orthogonality=True`` this is exactly Theorem 1's
      sufficient condition — ``Col(H')`` orthogonal to ``Col(H)`` — which also
      guarantees maximal detection probability.
    * With the default ``require_orthogonality=False`` the (weaker) necessary
      and sufficient condition for the *absence of perfectly stealthy attacks*
      is used: the two column spaces intersect only at the origin, i.e. every
      principal angle is strictly positive.
    """
    if require_orthogonality:
        return is_orthogonal_complement(pre_matrix, post_matrix, tol=tol)
    angles = principal_angles(pre_matrix, post_matrix)
    if angles.size == 0:
        return True
    return bool(angles[0] > tol)


def undetectable_attack_subspace(
    pre_matrix: np.ndarray,
    post_matrix: np.ndarray,
    tol: float = 1e-8,
) -> np.ndarray:
    """Orthonormal basis of the attacks that stay stealthy under the MTD.

    The surviving attacks are exactly ``Col(H) ∩ Col(H')`` (Proposition 1).
    The intersection is computed from the principal-vector pairs with
    (numerically) zero principal angle.

    Returns
    -------
    numpy.ndarray
        An ``M x k`` matrix whose columns form an orthonormal basis of the
        intersection; ``k = 0`` (an ``M x 0`` matrix) when the MTD admits no
        perfectly stealthy attacks.
    """
    basis_pre = orthonormal_basis(pre_matrix)
    basis_post = orthonormal_basis(post_matrix)
    if basis_pre.size == 0 or basis_post.size == 0:
        return np.zeros((np.asarray(pre_matrix).shape[0], 0))
    # Principal vectors via the SVD of the cross-Gram matrix.
    cross = basis_pre.T @ basis_post
    u, singular_values, _ = np.linalg.svd(cross)
    # Intersection directions correspond to singular values equal to one
    # (cosine of a zero principal angle).
    mask = singular_values >= 1.0 - tol
    if not np.any(mask):
        return np.zeros((basis_pre.shape[0], 0))
    directions = basis_pre @ u[:, mask]
    return orthonormal_basis(directions)


def surviving_attack_fraction(
    pre_matrix: np.ndarray,
    post_matrix: np.ndarray,
    tol: float = 1e-8,
) -> float:
    """Dimension fraction of the attack space that survives the MTD.

    Returns ``dim(Col(H) ∩ Col(H')) / dim(Col(H))`` — a structural (noise
    free) counterpart of ``1 − η'(α)``: the share of independent attack
    directions that keep a detection probability equal to the false-positive
    rate.
    """
    pre_dim = orthonormal_basis(pre_matrix).shape[1]
    if pre_dim == 0:
        return 0.0
    surviving = undetectable_attack_subspace(pre_matrix, post_matrix, tol=tol).shape[1]
    return surviving / pre_dim


__all__ = [
    "attack_remains_stealthy",
    "admits_no_undetectable_attacks",
    "undetectable_attack_subspace",
    "surviving_attack_fraction",
]
