"""Representation of MTD reactance perturbations.

A perturbation is the pair of the pre-perturbation reactance vector ``x``
and the post-perturbation vector ``x'``; the paper denotes their difference
``Δx = x − x'``.  Perturbations can only touch branches equipped with
D-FACTS devices and must stay within the device limits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import MTDDesignError
from repro.grid.arrays import NetworkArrays
from repro.grid.matrices import reduced_measurement_matrix
from repro.grid.network import PowerNetwork
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class ReactancePerturbation:
    """An MTD reactance perturbation applied to a network.

    Attributes
    ----------
    network:
        The network the perturbation applies to (provides D-FACTS limits).
    base_reactances:
        Pre-perturbation branch reactances ``x`` (p.u.).
    perturbed_reactances:
        Post-perturbation branch reactances ``x'`` (p.u.).
    """

    network: PowerNetwork
    base_reactances: np.ndarray
    perturbed_reactances: np.ndarray

    def __post_init__(self) -> None:
        base = np.asarray(self.base_reactances, dtype=float).ravel()
        perturbed = np.asarray(self.perturbed_reactances, dtype=float).ravel()
        n = self.network.n_branches
        if base.shape[0] != n or perturbed.shape[0] != n:
            raise MTDDesignError(
                f"reactance vectors must have {n} entries, got "
                f"{base.shape[0]} and {perturbed.shape[0]}"
            )
        if np.any(base <= 0) or np.any(perturbed <= 0):
            raise MTDDesignError("all reactances must be strictly positive")
        object.__setattr__(self, "base_reactances", base)
        object.__setattr__(self, "perturbed_reactances", perturbed)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, network: PowerNetwork) -> "ReactancePerturbation":
        """The do-nothing perturbation (``x' = x``)."""
        x = network.reactances()
        return cls(network=network, base_reactances=x, perturbed_reactances=x.copy())

    @classmethod
    def from_perturbed(
        cls,
        network: PowerNetwork,
        perturbed_reactances: np.ndarray,
        base_reactances: np.ndarray | None = None,
    ) -> "ReactancePerturbation":
        """Build a perturbation from an explicit post-perturbation vector."""
        base = network.reactances() if base_reactances is None else np.asarray(base_reactances, dtype=float)
        return cls(
            network=network,
            base_reactances=base,
            perturbed_reactances=np.asarray(perturbed_reactances, dtype=float),
        )

    @classmethod
    def single_line(
        cls,
        network: PowerNetwork,
        branch_index: int,
        relative_change: float,
        base_reactances: np.ndarray | None = None,
    ) -> "ReactancePerturbation":
        """Perturb one branch by a relative amount ``η``.

        This reproduces the motivating example's perturbations
        ``Δx^(k) = η [0, .., x_k, .., 0]``.
        """
        if branch_index < 0 or branch_index >= network.n_branches:
            raise MTDDesignError(
                f"branch index {branch_index} is outside 0..{network.n_branches - 1}"
            )
        base = network.reactances() if base_reactances is None else np.asarray(base_reactances, dtype=float).copy()
        perturbed = base.copy()
        perturbed[branch_index] = base[branch_index] * (1.0 + relative_change)
        if perturbed[branch_index] <= 0:
            raise MTDDesignError(
                f"relative change {relative_change} makes the reactance non-positive"
            )
        return cls(network=network, base_reactances=base, perturbed_reactances=perturbed)

    @classmethod
    def random(
        cls,
        network: PowerNetwork,
        max_relative_change: float,
        branch_indices: np.ndarray | list[int] | None = None,
        base_reactances: np.ndarray | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> "ReactancePerturbation":
        """Uniformly random perturbation of the D-FACTS branches.

        Each selected branch is perturbed by an amount drawn uniformly from
        ``[-max_relative_change, +max_relative_change]`` relative to its base
        value — the strategy of the prior work the paper compares against.
        """
        if max_relative_change < 0:
            raise MTDDesignError(
                f"max_relative_change must be non-negative, got {max_relative_change}"
            )
        rng = as_generator(seed)
        base = network.reactances() if base_reactances is None else np.asarray(base_reactances, dtype=float).copy()
        if branch_indices is None:
            branch_indices = np.array(network.dfacts_branches, dtype=int)
        else:
            branch_indices = np.asarray(branch_indices, dtype=int)
        if branch_indices.size == 0:
            raise MTDDesignError("no branches available to perturb")
        perturbed = base.copy()
        changes = rng.uniform(-max_relative_change, max_relative_change, size=branch_indices.size)
        perturbed[branch_indices] = base[branch_indices] * (1.0 + changes)
        return cls(network=network, base_reactances=base, perturbed_reactances=perturbed)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def delta(self) -> np.ndarray:
        """The perturbation vector ``Δx = x − x'`` (paper's sign convention)."""
        return self.base_reactances - self.perturbed_reactances

    @property
    def perturbed_branches(self) -> tuple[int, ...]:
        """Indices of branches whose reactance actually changed."""
        changed = np.where(np.abs(self.delta) > 1e-12)[0]
        return tuple(int(i) for i in changed)

    def relative_changes(self) -> np.ndarray:
        """Per-branch relative change ``(x' − x)/x``."""
        return (self.perturbed_reactances - self.base_reactances) / self.base_reactances

    def magnitude(self) -> float:
        """Root-mean-square relative change over the perturbed branches."""
        changes = self.relative_changes()
        perturbed = self.perturbed_branches
        if not perturbed:
            return 0.0
        return float(np.sqrt(np.mean(changes[list(perturbed)] ** 2)))

    # ------------------------------------------------------------------
    # Validity and application
    # ------------------------------------------------------------------
    def respects_dfacts_limits(self, tol: float = 1e-9) -> bool:
        """Check that the perturbation stays within the D-FACTS device limits.

        Branches without D-FACTS must be untouched; equipped branches must
        stay within ``[x_min, x_max]``.
        """
        arrays = self.network.arrays
        x_min, x_max = arrays.reactance_bounds()
        equipped = arrays.branch_has_dfacts
        value = self.perturbed_reactances
        untouched = np.abs(value - self.base_reactances) <= tol
        within = (value >= x_min - tol) & (value <= x_max + tol)
        return bool(np.all(np.where(equipped, within, untouched)))

    def require_valid(self) -> None:
        """Raise :class:`MTDDesignError` if the perturbation violates limits."""
        if not self.respects_dfacts_limits():
            raise MTDDesignError(
                "perturbation violates the D-FACTS limits or touches a branch "
                "without a D-FACTS device"
            )

    def apply(self) -> PowerNetwork:
        """Return the network with the perturbed reactances installed.

        Uses the reactance-only fast derivation of
        :meth:`~repro.grid.network.PowerNetwork.with_reactances` (structural
        re-validation skipped, topology cache shared).
        """
        return self.network.with_reactances(self.perturbed_reactances)

    def apply_arrays(self) -> "NetworkArrays":
        """The perturbed network as a structure-of-arrays compute view.

        The cheapest way to hand a perturbed variant to the matrix
        builders and solver layers: no per-component objects are built at
        all, and the topology cache is shared with the base network.
        """
        return self.network.arrays.with_reactances(self.perturbed_reactances)

    def pre_measurement_matrix(self) -> np.ndarray:
        """Reduced measurement matrix ``H`` of the pre-perturbation system."""
        return reduced_measurement_matrix(self.network, self.base_reactances)

    def post_measurement_matrix(self) -> np.ndarray:
        """Reduced measurement matrix ``H'`` of the post-perturbation system."""
        return reduced_measurement_matrix(self.network, self.perturbed_reactances)


__all__ = ["ReactancePerturbation"]
