"""MTD effectiveness metric ``η'(δ)``.

Section V-A of the paper quantifies the effectiveness of an MTD ``H'``
against the set of attacks ``a = Hc`` crafted from the pre-perturbation
matrix ``H`` as the fraction whose detection probability under ``H'``
exceeds a level ``δ``:

.. math::  η'(δ) = λ(A'(δ)) / λ(A)

estimated by Monte Carlo over random state biases ``c`` (1000 attacks in the
paper).  For each attack the detection probability can be computed either in
closed form (noncentral-χ², see :class:`repro.estimation.bdd.BadDataDetector`)
or by the paper's Monte-Carlo procedure (1000 noisy measurement draws); the
two agree to Monte-Carlo accuracy and are cross-validated in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Literal

import numpy as np

from repro.attacks.generator import AttackEnsemble, generate_attack_ensemble
from repro.estimation.bdd import DEFAULT_FALSE_POSITIVE_RATE, BadDataDetector
from repro.estimation.backends import BACKEND_AUTO, resolve_backend
from repro.estimation.linear_model import LinearModel, LinearModelCache
from repro.estimation.measurement import DEFAULT_NOISE_SIGMA, MeasurementSystem
from repro.exceptions import ConfigurationError
from repro.grid.network import PowerNetwork
from repro.utils.rng import as_generator

DetectionMethod = Literal["analytic", "monte-carlo"]
DetectionKernel = Literal["batched", "reference"]

#: Bound on the evaluator's per-perturbation memo of analytic results.
_ANALYTIC_MEMO_MAXSIZE = 64


@dataclass(frozen=True)
class EffectivenessResult:
    """Detection statistics of one MTD perturbation against one ensemble.

    Attributes
    ----------
    detection_probabilities:
        Per-attack detection probability ``P'_D(a)`` (array of length
        ``n_attacks``).
    false_positive_rate:
        The BDD false-positive rate ``α`` used.
    method:
        ``"analytic"`` or ``"monte-carlo"``.
    """

    detection_probabilities: np.ndarray
    false_positive_rate: float
    method: str

    def eta(self, delta: float) -> float:
        """The effectiveness ``η'(δ)``: fraction of attacks with ``P'_D ≥ δ``."""
        if not (0.0 <= delta <= 1.0):
            raise ConfigurationError(f"delta must be in [0, 1], got {delta}")
        if self.detection_probabilities.size == 0:
            return 0.0
        return float(np.mean(self.detection_probabilities >= delta))

    def eta_curve(self, deltas: np.ndarray | list[float]) -> np.ndarray:
        """Vectorised ``η'(δ)`` over several thresholds."""
        return np.array([self.eta(float(d)) for d in deltas])

    def undetectable_fraction(self, margin: float = 1e-6) -> float:
        """Fraction of attacks whose detection probability stays at ``α``.

        These are the attacks that remain (statistically) invisible after
        the MTD — the set ``A \\ A'(α)`` of the paper.
        """
        threshold = self.false_positive_rate + margin
        if self.detection_probabilities.size == 0:
            return 0.0
        return float(np.mean(self.detection_probabilities <= threshold))

    def summary(self) -> dict[str, float]:
        """Convenience summary used by reports and benchmarks."""
        probs = self.detection_probabilities
        return {
            "n_attacks": float(probs.size),
            "mean_detection_probability": float(np.mean(probs)) if probs.size else 0.0,
            "median_detection_probability": float(np.median(probs)) if probs.size else 0.0,
            "eta(0.5)": self.eta(0.5),
            "eta(0.8)": self.eta(0.8),
            "eta(0.9)": self.eta(0.9),
            "eta(0.95)": self.eta(0.95),
            "undetectable_fraction": self.undetectable_fraction(),
        }


class EffectivenessEvaluator:
    """Evaluates ``η'(δ)`` for MTD perturbations of a given network.

    The evaluator is bound to the *attacker's view*: the pre-perturbation
    reactances (hence measurement matrix ``H``) and the operating point used
    to scale attack magnitudes.  Each call to :meth:`evaluate` then prices a
    candidate post-perturbation reactance vector.

    Parameters
    ----------
    network:
        The grid under study.
    base_reactances:
        Pre-perturbation reactances defining the attacker's ``H`` (defaults
        to the network's nominal reactances).
    operating_angles_rad:
        The true bus angles of the operating point; used to build the
        reference measurement vector ``z`` for attack scaling and as the
        true state in Monte-Carlo detection runs.
    noise_sigma:
        Measurement noise standard deviation (p.u.).
    false_positive_rate:
        BDD false-positive rate ``α``.
    n_attacks:
        Ensemble size (paper: 1000).
    attack_ratio:
        Attack magnitude ``‖a‖₁/‖z‖₁`` (paper: ≈0.08).
    seed:
        Seed for the attack ensemble.
    backend:
        Factorisation backend for the per-perturbation detector models:
        ``"auto"`` (default — dense below
        :data:`~repro.grid.matrices.SPARSE_BUS_THRESHOLD` buses, sparse at
        or above), ``"dense"`` or ``"sparse"``.  Resolved once per
        evaluator; the resolved name participates in both the shared
        ``model_cache`` keys and the analytic memo keys, so evaluators on
        different backends never exchange factorizations.
    """

    def __init__(
        self,
        network: PowerNetwork,
        operating_angles_rad: np.ndarray,
        base_reactances: np.ndarray | None = None,
        noise_sigma: float = DEFAULT_NOISE_SIGMA,
        false_positive_rate: float = DEFAULT_FALSE_POSITIVE_RATE,
        n_attacks: int = 1000,
        attack_ratio: float = 0.08,
        seed: int | np.random.Generator | None = 0,
        backend: str = BACKEND_AUTO,
    ) -> None:
        self._network = network
        self._backend = resolve_backend(backend, n_buses=network.n_buses)
        self._angles = np.asarray(operating_angles_rad, dtype=float).ravel()
        if self._angles.shape[0] != network.n_buses:
            raise ConfigurationError(
                f"expected {network.n_buses} operating angles, got {self._angles.shape[0]}"
            )
        self._base_reactances = (
            network.reactances() if base_reactances is None else np.asarray(base_reactances, dtype=float)
        )
        self._noise_sigma = float(noise_sigma)
        self._alpha = float(false_positive_rate)
        self._pre_system = MeasurementSystem.for_network(
            network, reactances=self._base_reactances, noise_sigma=noise_sigma
        )
        # Analytic detection probabilities depend only on the perturbed
        # reactances (given this evaluator's fixed ensemble and α), so they
        # are memoised per perturbation.  The memo lives on the evaluator —
        # exactly the lifetime of the ensemble it is valid for — and reuses
        # the library's bounded-LRU cache for its eviction/accounting.
        self._analytic_memo = LinearModelCache(
            maxsize=_ANALYTIC_MEMO_MAXSIZE, telemetry_name="analytic_memo"
        )
        reference_z = self._pre_system.noiseless_measurements(self._angles)
        self._ensemble = generate_attack_ensemble(
            measurement_matrix=self._pre_system.matrix(),
            reference_measurements=reference_z,
            n_attacks=n_attacks,
            target_ratio=attack_ratio,
            seed=seed,
        )

    # ------------------------------------------------------------------
    @property
    def ensemble(self) -> AttackEnsemble:
        """The attack ensemble all perturbations are evaluated against."""
        return self._ensemble

    @property
    def attacker_matrix(self) -> np.ndarray:
        """The attacker's (pre-perturbation) measurement matrix ``H``."""
        return self._pre_system.matrix()

    @property
    def base_reactances(self) -> np.ndarray:
        """Pre-perturbation reactance vector."""
        return self._base_reactances.copy()

    @property
    def backend(self) -> str:
        """The resolved factorization backend, ``"dense"`` or ``"sparse"``."""
        return self._backend

    # ------------------------------------------------------------------
    def evaluate(
        self,
        perturbed_reactances: np.ndarray,
        method: DetectionMethod = "analytic",
        n_noise_trials: int = 1000,
        operating_angles_rad: np.ndarray | None = None,
        seed: int | np.random.Generator | None = 0,
        kernel: DetectionKernel = "batched",
        model_cache: LinearModelCache | None = None,
    ) -> EffectivenessResult:
        """Evaluate the detection statistics of one candidate perturbation.

        Parameters
        ----------
        perturbed_reactances:
            Post-perturbation branch reactances ``x'``, shape ``(L,)``.
        method:
            ``"analytic"`` (noncentral-χ², fast, default) or
            ``"monte-carlo"`` (the paper's procedure: ``n_noise_trials``
            noisy measurement draws per attack).
        n_noise_trials:
            Number of noise draws per attack for the Monte-Carlo method.
        operating_angles_rad:
            True post-perturbation state for the Monte-Carlo method;
            defaults to the evaluator's operating point.  (The analytic
            method does not depend on the true state.)
        seed:
            Seed for the Monte-Carlo noise streams.
        kernel:
            ``"batched"`` (default) evaluates the whole ensemble with
            single BLAS calls and memoises analytic results per
            perturbation; ``"reference"`` runs the original per-attack
            Python loop — kept as the validation/benchmark baseline, it
            agrees with the batched kernel to floating-point accuracy.
        model_cache:
            Optional :class:`~repro.estimation.linear_model.
            LinearModelCache` from which the perturbation's factorized
            measurement model is served (and into which a freshly built one
            is stored).  The batched engine passes one cache per trial
            batch so trials sharing a (case, perturbation) pair factorize
            once.  Reuse is bit-identical to rebuilding.
        """
        x = np.asarray(perturbed_reactances, dtype=float).ravel()
        if kernel not in ("batched", "reference"):
            raise ConfigurationError(
                f"unknown kernel {kernel!r}; use 'batched' or 'reference'"
            )
        if method == "analytic":
            if kernel == "batched":
                # Memo-first: a hit skips building the measurement system
                # and its factorization entirely, which is the dominant
                # cost when trials share a perturbation.  A copy is handed
                # out so callers can never corrupt the memo.
                probabilities = self._analytic_memo.get_or_build(
                    (x.tobytes(), self._backend),
                    lambda: self._build_detector(x, model_cache).detection_probabilities(
                        self._ensemble.attacks
                    ),
                ).copy()
            else:
                detector = self._build_detector(x, None)
                probabilities = np.array(
                    [detector.detection_probability(attack) for attack in self._ensemble.attacks]
                )
        elif method == "monte-carlo":
            detector = self._build_detector(x, model_cache if kernel == "batched" else None)
            rng = as_generator(seed)
            angles = self._angles if operating_angles_rad is None else np.asarray(operating_angles_rad, dtype=float)
            if kernel == "batched":
                probabilities = detector.detection_probabilities_monte_carlo(
                    self._ensemble.attacks, angles, n_trials=n_noise_trials, rng=rng
                )
            else:
                probabilities = np.array(
                    [
                        detector.detection_probability_monte_carlo(
                            attack, angles, n_trials=n_noise_trials, rng=rng
                        )
                        for attack in self._ensemble.attacks
                    ]
                )
        else:
            raise ConfigurationError(
                f"unknown detection method {method!r}; use 'analytic' or 'monte-carlo'"
            )
        return EffectivenessResult(
            detection_probabilities=probabilities,
            false_positive_rate=self._alpha,
            method=method,
        )

    def false_alarm_rate(
        self,
        perturbed_reactances: np.ndarray,
        n_trials: int = 1000,
        seed: int | np.random.Generator | None = 0,
        model_cache: LinearModelCache | None = None,
    ) -> float:
        """Empirical BDD false-alarm rate of one perturbation, attack-free.

        Draws ``n_trials`` noisy (unattacked) measurement vectors at the
        evaluator's operating point and reports the fraction the
        post-perturbation detector flags — the operational sanity check
        that a perturbation (or a post-contingency topology) keeps the
        BDD's alarm rate at its design level ``α``.
        """
        x = np.asarray(perturbed_reactances, dtype=float).ravel()
        detector = self._build_detector(x, model_cache)
        return float(
            detector.empirical_false_positive_rate(
                self._angles, n_trials=n_trials, rng=as_generator(seed)
            )
        )

    def _build_detector(
        self, reactances: np.ndarray, model_cache: LinearModelCache | None
    ) -> BadDataDetector:
        """Detector for one perturbation, factorized via ``model_cache`` if given."""
        post_system = MeasurementSystem.for_network(
            self._network, reactances=reactances, noise_sigma=self._noise_sigma
        )
        model: LinearModel | None = None
        if model_cache is not None:
            # The key carries the resolved backend: a shared cache serving
            # evaluators on different backends must never hand a sparse
            # factorization to a dense consumer (or vice versa).
            model = model_cache.get_or_build(
                (reactances.tobytes(), self._noise_sigma, self._backend),
                lambda: LinearModel.from_measurement_system(
                    post_system, backend=self._backend
                ),
            )
        return BadDataDetector(
            post_system,
            false_positive_rate=self._alpha,
            model=model,
            backend=self._backend,
        )

    def evaluate_perturbation(self, perturbation, **kwargs) -> EffectivenessResult:
        """Evaluate a :class:`~repro.mtd.perturbation.ReactancePerturbation`."""
        return self.evaluate(perturbation.perturbed_reactances, **kwargs)

    def cache_stats(self) -> dict[str, dict[str, Any]]:
        """Accounting for the evaluator's per-perturbation analytic memo.

        Surfaces the previously internal :meth:`LinearModelCache.stats`
        counters (hits/misses/evictions/occupancy) so run reports and the
        engine's per-scenario telemetry can attribute reuse to this
        evaluator.  Keyed by cache name for forward compatibility with
        evaluators that hold more than one cache.
        """
        return {"analytic_memo": self._analytic_memo.stats()}


__all__ = [
    "EffectivenessEvaluator",
    "EffectivenessResult",
    "DetectionMethod",
    "DetectionKernel",
]
