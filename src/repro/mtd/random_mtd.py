"""Random-perturbation MTD baseline (prior work).

The prior MTD proposals the paper compares against ([11]-[13]) perturb a
random subset of the D-FACTS-equipped lines by small random amounts and rely
on the "keyspace" of such perturbations for security.  Section VII-B of the
paper evaluates 500 random perturbations constrained to be within 2 % of the
optimal reactance values and shows that fewer than 10 % of them achieve
``η'(0.9) ≥ 0.9``.

This module reproduces that baseline: it draws random perturbations,
evaluates their effectiveness with the same ensemble-based metric used for
the designed MTD, and summarises the keyspace statistics of Fig. 7 / Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import MTDDesignError
from repro.grid.network import PowerNetwork
from repro.mtd.effectiveness import EffectivenessEvaluator, EffectivenessResult
from repro.mtd.perturbation import ReactancePerturbation
from repro.mtd.subspace import subspace_angle
from repro.utils.rng import as_generator, spawn_generators


@dataclass(frozen=True)
class RandomMTDSample:
    """One random perturbation together with its evaluation."""

    perturbation: ReactancePerturbation
    effectiveness: EffectivenessResult
    spa: float


@dataclass
class RandomMTDKeyspace:
    """Statistics over a keyspace of random MTD perturbations."""

    samples: list[RandomMTDSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def eta_values(self, delta: float) -> np.ndarray:
        """``η'(δ)`` of every sampled perturbation."""
        return np.array([sample.effectiveness.eta(delta) for sample in self.samples])

    def fraction_meeting(self, delta: float, eta_target: float = 0.9) -> float:
        """Fraction of the keyspace with ``η'(δ) ≥ eta_target`` (Fig. 8)."""
        if not self.samples:
            return 0.0
        return float(np.mean(self.eta_values(delta) >= eta_target))

    def spa_values(self) -> np.ndarray:
        """Achieved SPA of every sampled perturbation."""
        return np.array([sample.spa for sample in self.samples])


class RandomMTDBaseline:
    """Generator and evaluator of random MTD perturbations.

    Parameters
    ----------
    network:
        The grid under study.
    evaluator:
        The effectiveness evaluator (fixes the attacker's knowledge and the
        attack ensemble, so that random and designed MTD are judged against
        the same attacks).
    max_relative_change:
        Maximum relative reactance change of each perturbed line (the paper
        constrains the random perturbations to within 2 % of the optimal
        values, i.e. 0.02).
    perturb_all_dfacts:
        When true every D-FACTS line is perturbed; otherwise a random
        non-empty subset is chosen per sample, as in the keyspace
        formulations of prior work.
    """

    def __init__(
        self,
        network: PowerNetwork,
        evaluator: EffectivenessEvaluator,
        max_relative_change: float = 0.02,
        perturb_all_dfacts: bool = True,
    ) -> None:
        if max_relative_change <= 0:
            raise MTDDesignError(
                f"max_relative_change must be positive, got {max_relative_change}"
            )
        if not network.dfacts_branches:
            raise MTDDesignError("the network has no D-FACTS devices; MTD is impossible")
        self._network = network
        self._evaluator = evaluator
        self._max_change = float(max_relative_change)
        self._perturb_all = bool(perturb_all_dfacts)

    # ------------------------------------------------------------------
    def draw_perturbation(
        self, seed: int | np.random.Generator | None = None
    ) -> ReactancePerturbation:
        """Draw one random perturbation from the keyspace."""
        rng = as_generator(seed)
        dfacts = np.array(self._network.dfacts_branches, dtype=int)
        if self._perturb_all:
            selected = dfacts
        else:
            count = int(rng.integers(1, dfacts.size + 1))
            selected = rng.permutation(dfacts)[:count]
        return ReactancePerturbation.random(
            self._network,
            max_relative_change=self._max_change,
            branch_indices=selected,
            base_reactances=self._evaluator.base_reactances,
            seed=rng,
        )

    def evaluate_sample(
        self, perturbation: ReactancePerturbation
    ) -> RandomMTDSample:
        """Evaluate one perturbation against the shared attack ensemble."""
        effectiveness = self._evaluator.evaluate(perturbation.perturbed_reactances)
        spa = subspace_angle(
            self._evaluator.attacker_matrix, perturbation.post_measurement_matrix()
        )
        return RandomMTDSample(
            perturbation=perturbation, effectiveness=effectiveness, spa=spa
        )

    def sample_keyspace(
        self,
        n_samples: int,
        seed: int | np.random.Generator | None = 0,
    ) -> RandomMTDKeyspace:
        """Draw and evaluate ``n_samples`` random perturbations.

        The paper's Fig. 8 uses 500 samples; benchmark defaults are smaller
        for runtime and can be raised through an environment knob.
        """
        if n_samples <= 0:
            raise MTDDesignError(f"n_samples must be positive, got {n_samples}")
        keyspace = RandomMTDKeyspace()
        for child in spawn_generators(seed, n_samples):
            perturbation = self.draw_perturbation(seed=child)
            keyspace.samples.append(self.evaluate_sample(perturbation))
        return keyspace


__all__ = ["RandomMTDBaseline", "RandomMTDKeyspace", "RandomMTDSample"]
