"""MTD operational-cost metric.

Section VI of the paper quantifies the cost of an MTD perturbation as the
relative increase of the OPF cost over the no-MTD optimum:

.. math::  C_{MTD,t'} = \\frac{C'_{OPF,t'} − C_{OPF,t'}}{C_{OPF,t'}} ≥ 0.

``C_OPF`` is the cost the operator would pay at time ``t'`` without MTD
(solving the standard OPF for the current load), while ``C'_OPF`` is the
cost with the MTD reactances installed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.grid.network import PowerNetwork
from repro.opf.dc_opf import solve_dc_opf
from repro.opf.reactance_opf import solve_reactance_opf
from repro.opf.result import OPFResult


@dataclass(frozen=True)
class MTDCostBreakdown:
    """Cost comparison between the no-MTD and the MTD-perturbed system.

    Attributes
    ----------
    baseline_cost:
        ``C_OPF`` — optimal cost without MTD ($/h).
    mtd_cost:
        ``C'_OPF`` — optimal cost with the MTD reactances installed ($/h).
    relative_increase:
        ``C_MTD = (C'_OPF − C_OPF)/C_OPF``.
    baseline:
        Full OPF result of the no-MTD system.
    with_mtd:
        Full OPF result of the MTD-perturbed system.
    """

    baseline_cost: float
    mtd_cost: float
    relative_increase: float
    baseline: OPFResult
    with_mtd: OPFResult

    @property
    def percent_increase(self) -> float:
        """The cost increase expressed in percent (as plotted in Figs. 9-10)."""
        return 100.0 * self.relative_increase

    @property
    def absolute_increase(self) -> float:
        """Absolute hourly premium paid for the MTD ($/h)."""
        return self.mtd_cost - self.baseline_cost


def mtd_operational_cost(
    network: PowerNetwork,
    mtd_reactances: np.ndarray,
    loads_mw: np.ndarray | None = None,
    baseline: str = "dispatch-only",
    baseline_result: OPFResult | None = None,
) -> MTDCostBreakdown:
    """Compute the MTD operational cost ``C_MTD``.

    Parameters
    ----------
    network:
        The grid (nominal reactances define the no-MTD system).
    mtd_reactances:
        Post-perturbation branch reactances ``x'``.
    loads_mw:
        Optional load override (per bus, MW) for the operating hour ``t'``.
    baseline:
        How ``C_OPF`` is computed:

        * ``"dispatch-only"`` (default) — the standard OPF at the nominal
          reactances, i.e. the problem the operator solves every few minutes
          between MTD updates.
        * ``"reactance-opf"`` — the joint dispatch + D-FACTS OPF of paper
          eq. (1), which may use the D-FACTS devices for economic dispatch
          (never for defense); this is the paper's literal baseline and is
          more expensive to evaluate.
    baseline_result:
        Pre-computed baseline OPF result; when provided, ``baseline`` is
        ignored and the solve is skipped (used by the daily scheduler, which
        reuses the same baseline for several candidate perturbations).

    Returns
    -------
    MTDCostBreakdown

    Notes
    -----
    The cost with MTD is always evaluated with the dispatch-only OPF at the
    fixed perturbed reactances: once the defender has committed to ``x'``
    for secrecy reasons, the D-FACTS settings are no longer free variables.
    """
    if baseline_result is None:
        if baseline == "dispatch-only":
            baseline_result = solve_dc_opf(network, loads_mw=loads_mw)
        elif baseline == "reactance-opf":
            baseline_result = solve_reactance_opf(network, loads_mw=loads_mw)
        else:
            raise ConfigurationError(
                f"unknown baseline {baseline!r}; use 'dispatch-only' or 'reactance-opf'"
            )

    with_mtd = solve_dc_opf(network, reactances=np.asarray(mtd_reactances, dtype=float), loads_mw=loads_mw)

    baseline_cost = baseline_result.cost
    mtd_cost = with_mtd.cost
    if baseline_cost <= 0:
        raise ConfigurationError(
            f"baseline OPF cost must be positive to define a relative increase, got {baseline_cost}"
        )
    # Numerical noise can make the difference marginally negative when the
    # perturbation does not bind any constraint; clamp at zero as the metric
    # is non-negative by construction.
    relative = max(0.0, (mtd_cost - baseline_cost) / baseline_cost)
    return MTDCostBreakdown(
        baseline_cost=baseline_cost,
        mtd_cost=mtd_cost,
        relative_increase=relative,
        baseline=baseline_result,
        with_mtd=with_mtd,
    )


__all__ = ["mtd_operational_cost", "MTDCostBreakdown"]
