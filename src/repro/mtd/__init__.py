"""Moving-target defense (MTD) for power-grid state estimation.

This subpackage implements the paper's contribution:

* :mod:`repro.mtd.subspace` — principal angles between measurement-matrix
  column spaces, in particular the smallest principal angle (SPA)
  ``γ(H, H')`` used as the design criterion.
* :mod:`repro.mtd.perturbation` — representation and application of D-FACTS
  reactance perturbations.
* :mod:`repro.mtd.conditions` — the detectability conditions of
  Proposition 1 and Theorem 1.
* :mod:`repro.mtd.effectiveness` — the attack-detection effectiveness metric
  ``η'(δ)`` evaluated over attack ensembles.
* :mod:`repro.mtd.cost` — the MTD operational-cost metric
  ``C_MTD = (C'_OPF − C_OPF)/C_OPF``.
* :mod:`repro.mtd.design` — the SPA-constrained OPF (paper eq. (4)) that
  selects minimum-cost perturbations meeting an effectiveness target, plus a
  maximum-SPA design used for ablations.
* :mod:`repro.mtd.random_mtd` — the random-perturbation baseline of prior
  work, used for the Fig. 7 / Fig. 8 comparison.
* :mod:`repro.mtd.tradeoff` — cost-vs-effectiveness sweeps (Fig. 9).
* :mod:`repro.mtd.scheduler` — hourly MTD operation over a daily load trace
  (Figs. 10 and 11).
"""

from repro.mtd.subspace import (
    principal_angles,
    smallest_principal_angle,
    largest_principal_angle,
    subspace_angle,
    is_orthogonal_complement,
    column_space_overlap_dimension,
)
from repro.mtd.perturbation import ReactancePerturbation
from repro.mtd.conditions import (
    attack_remains_stealthy,
    admits_no_undetectable_attacks,
    undetectable_attack_subspace,
)
from repro.mtd.effectiveness import (
    EffectivenessEvaluator,
    EffectivenessResult,
)
from repro.mtd.cost import mtd_operational_cost, MTDCostBreakdown
from repro.mtd.design import MTDDesignResult, design_mtd_perturbation, max_spa_perturbation
from repro.mtd.random_mtd import RandomMTDBaseline
from repro.mtd.tradeoff import TradeoffCurve, TradeoffPoint, compute_tradeoff_curve
from repro.mtd.scheduler import DailyMTDScheduler, DailyOperationRecord
from repro.mtd.placement import (
    PlacementReport,
    greedy_placement,
    placement_report,
    stealthy_dimension,
)

__all__ = [
    "principal_angles",
    "smallest_principal_angle",
    "largest_principal_angle",
    "subspace_angle",
    "is_orthogonal_complement",
    "column_space_overlap_dimension",
    "ReactancePerturbation",
    "attack_remains_stealthy",
    "admits_no_undetectable_attacks",
    "undetectable_attack_subspace",
    "EffectivenessEvaluator",
    "EffectivenessResult",
    "mtd_operational_cost",
    "MTDCostBreakdown",
    "MTDDesignResult",
    "design_mtd_perturbation",
    "max_spa_perturbation",
    "RandomMTDBaseline",
    "TradeoffCurve",
    "TradeoffPoint",
    "compute_tradeoff_curve",
    "DailyMTDScheduler",
    "DailyOperationRecord",
    "PlacementReport",
    "greedy_placement",
    "placement_report",
    "stealthy_dimension",
]
