"""D-FACTS placement for moving-target defense.

The paper takes the set of D-FACTS-equipped branches ``L_D`` as given and
asks how to perturb them.  A natural planning question sits one level up:
*where should the devices be installed* so that effective MTD perturbations
exist at all?  This module provides the structural analysis and a greedy
placement heuristic:

* :func:`stealthy_dimension` — the number of independent attack directions
  that remain stealthy under *every* realisable perturbation of a given
  placement.  A state bias that is constant across the endpoints of every
  perturbable line produces identical measurements before and after any
  perturbation, so the stealthy dimension equals the number of connected
  components of the graph obtained by contracting the D-FACTS edges, minus
  one; additionally at most ``2(N−1) − L`` directions always survive for
  *any* placement (the measurement space simply is not big enough).
* :func:`greedy_placement` — picks branches one at a time, each time adding
  the branch that most reduces the stealthy dimension (ties broken by the
  achievable subspace angle), reproducing the common "cover a spanning tree"
  guidance from the MTD literature that followed the paper.
* :func:`placement_report` — summary of a placement's protection limits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import MTDDesignError
from repro.grid.matrices import reduced_measurement_matrix
from repro.grid.network import PowerNetwork
from repro.mtd.subspace import subspace_angle


def stealthy_dimension(network: PowerNetwork, dfacts_branches: Sequence[int] | None = None) -> int:
    """Number of attack directions that survive every realisable MTD.

    Parameters
    ----------
    network:
        The grid under study.
    dfacts_branches:
        Branch indices carrying D-FACTS devices; defaults to the network's
        installed set.

    Returns
    -------
    int
        The dimension of the subspace of state biases ``c`` whose attacks
        ``Hc`` stay stealthy under *any* admissible perturbation.
    """
    if dfacts_branches is None:
        dfacts_branches = network.dfacts_branches
    branch_set = set(int(b) for b in dfacts_branches)
    unknown = branch_set - set(range(network.n_branches))
    if unknown:
        raise MTDDesignError(f"unknown branch indices: {sorted(unknown)}")

    # Contract every D-FACTS edge: state biases constant across each
    # perturbed line are invisible to the perturbation, so the surviving
    # directions correspond to the contracted graph's components (minus the
    # slack reference).
    parent = list(range(network.n_buses))

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(a: int, b: int) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    for index in branch_set:
        branch = network.branches[index]
        union(branch.from_bus, branch.to_bus)
    components = len({find(node) for node in range(network.n_buses)})
    contraction_bound = components - 1

    # Dimension-counting bound: Col(H) and Col(H') are (N−1)-dimensional
    # subspaces of a space whose "perturbable" directions number L, so at
    # least 2(N−1) − L directions always coincide.
    counting_bound = max(0, 2 * (network.n_buses - 1) - network.n_branches)
    return max(contraction_bound, counting_bound)


@dataclass(frozen=True)
class PlacementReport:
    """Summary of a D-FACTS placement's protection limits.

    Attributes
    ----------
    branches:
        The placed branch indices.
    stealthy_dimension:
        Directions that survive every realisable perturbation.
    stealthy_fraction:
        The same, relative to the state dimension ``N − 1``.
    achievable_angle:
        Subspace angle of the representative extreme perturbation used for
        ranking (all placed branches moved to alternating limits).
    covers_spanning_tree:
        True when the placed branches connect every bus (the contraction
        bound is zero) — the necessary condition for driving the surviving
        dimension down to the counting bound.
    """

    branches: tuple[int, ...]
    stealthy_dimension: int
    stealthy_fraction: float
    achievable_angle: float
    covers_spanning_tree: bool


def placement_report(
    network: PowerNetwork, dfacts_branches: Sequence[int] | None = None
) -> PlacementReport:
    """Build a :class:`PlacementReport` for a placement."""
    if dfacts_branches is None:
        dfacts_branches = network.dfacts_branches
    branches = tuple(sorted(int(b) for b in dfacts_branches))
    dimension = stealthy_dimension(network, branches)
    n_states = network.n_buses - 1
    angle = _representative_angle(network, branches)
    contraction_only = _contraction_dimension(network, branches)
    return PlacementReport(
        branches=branches,
        stealthy_dimension=dimension,
        stealthy_fraction=dimension / n_states if n_states else 0.0,
        achievable_angle=angle,
        covers_spanning_tree=contraction_only == 0,
    )


def greedy_placement(
    network: PowerNetwork,
    n_devices: int,
    candidate_branches: Iterable[int] | None = None,
    dfacts_range: float = 0.5,
) -> tuple[int, ...]:
    """Greedily choose ``n_devices`` branches to equip with D-FACTS.

    Each step adds the branch that most reduces the stealthy dimension of the
    placement; ties are broken by the representative achievable subspace
    angle.  The procedure first builds connectivity (a spanning structure
    over the buses) and then adds the branches that most increase the
    achievable separation — matching the qualitative guidance of the MTD
    placement literature.

    Parameters
    ----------
    network:
        The grid to plan for.
    n_devices:
        Number of devices to place (at least 1, at most ``L``).
    candidate_branches:
        Optional restriction of the candidate set.
    dfacts_range:
        Adjustment range assumed when evaluating achievable angles.

    Returns
    -------
    tuple of int
        The selected branch indices, in selection order.
    """
    if n_devices < 1 or n_devices > network.n_branches:
        raise MTDDesignError(
            f"n_devices must be within 1..{network.n_branches}, got {n_devices}"
        )
    candidates = (
        list(range(network.n_branches))
        if candidate_branches is None
        else sorted(set(int(b) for b in candidate_branches))
    )
    unknown = set(candidates) - set(range(network.n_branches))
    if unknown:
        raise MTDDesignError(f"unknown branch indices: {sorted(unknown)}")
    if n_devices > len(candidates):
        raise MTDDesignError(
            f"cannot place {n_devices} devices among {len(candidates)} candidates"
        )

    selected: list[int] = []
    remaining = list(candidates)
    for _ in range(n_devices):
        best_branch = None
        best_key: tuple[float, float] | None = None
        for branch in remaining:
            trial = selected + [branch]
            dimension = stealthy_dimension(network, trial)
            angle = _representative_angle(network, trial, dfacts_range)
            key = (-float(dimension), angle)
            if best_key is None or key > best_key:
                best_key = key
                best_branch = branch
        assert best_branch is not None  # n_devices <= len(candidates)
        selected.append(best_branch)
        remaining.remove(best_branch)
    return tuple(selected)


# ----------------------------------------------------------------------
def _contraction_dimension(network: PowerNetwork, branches: Sequence[int]) -> int:
    """The contraction (connectivity) part of the stealthy-dimension bound."""
    parent = list(range(network.n_buses))

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for index in branches:
        branch = network.branches[int(index)]
        root_a, root_b = find(branch.from_bus), find(branch.to_bus)
        if root_a != root_b:
            parent[root_b] = root_a
    components = len({find(node) for node in range(network.n_buses)})
    return components - 1


def _representative_angle(
    network: PowerNetwork, branches: Sequence[int], dfacts_range: float = 0.5
) -> float:
    """Subspace angle of an alternating extreme perturbation of ``branches``."""
    if not branches:
        return 0.0
    base = network.reactances()
    perturbed = base.copy()
    for position, index in enumerate(sorted(int(b) for b in branches)):
        factor = 1.0 + dfacts_range if position % 2 == 0 else 1.0 - dfacts_range
        perturbed[index] = base[index] * factor
    H_before = reduced_measurement_matrix(network, base)
    H_after = reduced_measurement_matrix(network, perturbed)
    return subspace_angle(H_before, H_after)


__all__ = [
    "stealthy_dimension",
    "greedy_placement",
    "placement_report",
    "PlacementReport",
]
