"""Cost-vs-effectiveness trade-off sweeps (Fig. 6 and Fig. 9).

For a sweep of SPA thresholds ``γ_th`` the designed MTD perturbation, its
operational cost increase, and its effectiveness ``η'(δ)`` at several
confidence levels are recorded.  Plotted with cost on one axis and
effectiveness on the other this reproduces Fig. 9; plotted with the SPA on
the x-axis it reproduces Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import MTDDesignError
from repro.grid.network import PowerNetwork
from repro.mtd.cost import mtd_operational_cost
from repro.mtd.design import DesignMethod, design_mtd_perturbation
from repro.mtd.effectiveness import EffectivenessEvaluator
from repro.opf.result import OPFResult

#: The detection-confidence levels δ reported throughout the paper's figures.
DEFAULT_DELTAS: tuple[float, ...] = (0.5, 0.8, 0.9, 0.95)


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of the cost-benefit trade-off curve.

    Attributes
    ----------
    gamma_threshold:
        The requested SPA lower bound (radians).
    achieved_spa:
        The SPA actually achieved by the designed perturbation.
    cost_increase:
        Relative OPF-cost increase ``C_MTD`` (fraction, not percent).
    eta:
        Mapping ``δ → η'(δ)`` for the requested confidence levels.
    perturbed_reactances:
        The designed reactance vector ``x'``.
    design_method:
        Which design strategy produced the perturbation.
    """

    gamma_threshold: float
    achieved_spa: float
    cost_increase: float
    eta: dict[float, float]
    perturbed_reactances: np.ndarray
    design_method: str

    @property
    def cost_increase_percent(self) -> float:
        return 100.0 * self.cost_increase


@dataclass
class TradeoffCurve:
    """A full sweep of :class:`TradeoffPoint` entries."""

    points: list[TradeoffPoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def gammas(self) -> np.ndarray:
        return np.array([p.gamma_threshold for p in self.points])

    def achieved_spas(self) -> np.ndarray:
        return np.array([p.achieved_spa for p in self.points])

    def costs_percent(self) -> np.ndarray:
        return np.array([p.cost_increase_percent for p in self.points])

    def eta_series(self, delta: float) -> np.ndarray:
        """``η'(δ)`` along the sweep (one value per γ_th)."""
        return np.array([p.eta[delta] for p in self.points])

    def cheapest_point_meeting(self, delta: float, eta_target: float) -> TradeoffPoint | None:
        """The lowest-cost point with ``η'(δ) ≥ eta_target`` (or ``None``)."""
        qualifying = [p for p in self.points if p.eta.get(delta, 0.0) >= eta_target]
        if not qualifying:
            return None
        return min(qualifying, key=lambda p: p.cost_increase)


def compute_tradeoff_curve(
    network: PowerNetwork,
    evaluator: EffectivenessEvaluator,
    gamma_thresholds: Sequence[float],
    loads_mw: np.ndarray | None = None,
    deltas: Sequence[float] = DEFAULT_DELTAS,
    design_method: DesignMethod = "two-stage",
    baseline_opf: OPFResult | None = None,
    skip_infeasible: bool = True,
    seed: int = 0,
) -> TradeoffCurve:
    """Sweep ``γ_th`` and record cost and effectiveness of each design.

    Parameters
    ----------
    network:
        The grid under study (D-FACTS limits bound the designs).
    evaluator:
        Effectiveness evaluator pinned to the attacker's knowledge; reused
        across the sweep so every design is judged on the same attacks.
    gamma_thresholds:
        The SPA thresholds to sweep (radians).
    loads_mw:
        Load vector of the operating hour (defaults to nominal loads).
    deltas:
        Detection-confidence levels to report.
    design_method:
        Design strategy; the fast ``"two-stage"`` heuristic is the default
        for sweeps, ``"joint"`` reproduces the paper's solver exactly.
    baseline_opf:
        Optional pre-computed no-MTD OPF (reused across the sweep).
    skip_infeasible:
        Skip thresholds exceeding the achievable SPA instead of raising.
    seed:
        Seed forwarded to the designs.

    Returns
    -------
    TradeoffCurve
    """
    curve = TradeoffCurve()
    preferred = None if baseline_opf is None else baseline_opf.reactances
    for gamma in gamma_thresholds:
        try:
            design = design_mtd_perturbation(
                network,
                gamma_threshold=float(gamma),
                attacker_reactances=evaluator.base_reactances,
                loads_mw=loads_mw,
                method=design_method,
                preferred_reactances=preferred,
                seed=seed,
            )
        except MTDDesignError:
            if skip_infeasible:
                continue
            raise
        cost = mtd_operational_cost(
            network,
            design.perturbed_reactances,
            loads_mw=loads_mw,
            baseline_result=baseline_opf,
        )
        effectiveness = evaluator.evaluate(design.perturbed_reactances)
        curve.points.append(
            TradeoffPoint(
                gamma_threshold=float(gamma),
                achieved_spa=design.achieved_spa,
                cost_increase=cost.relative_increase,
                eta={float(d): effectiveness.eta(float(d)) for d in deltas},
                perturbed_reactances=design.perturbed_reactances,
                design_method=design.method,
            )
        )
    return curve


__all__ = ["TradeoffCurve", "TradeoffPoint", "compute_tradeoff_curve", "DEFAULT_DELTAS"]
