"""Time-series operation engine: spec'd, parallel multi-day MTD scheduling.

The paper's Section VII-C (Figs. 10-11) simulates *hourly MTD operation*
over a daily load profile.  This package lifts that simulation out of the
standalone serial scheduler loop into the repository's spec/engine/campaign
stack:

* :mod:`repro.timeseries.spec` — :class:`ProfileSpec` (multi-day, seasonal,
  per-case-normalised load horizons), :class:`TuningSpec` (scan or
  bisection threshold selection) and :class:`OperationSpec`, the frozen
  operation policy embedded into a
  :class:`~repro.engine.spec.ScenarioSpec`;
* :mod:`repro.timeseries.engine` — :class:`OperationEngine` /
  :func:`run_operation_trial`, executing hours through the scenario
  engine's pool/cache/batching with seed-spawned per-hour streams
  (parallel bit-identical to serial) and per-hour design memoisation;
* :mod:`repro.timeseries.results` — :class:`OperationRecord` /
  :class:`OperationResult`, the typed view over the per-hour trials.

The historical :class:`~repro.mtd.scheduler.DailyMTDScheduler` remains as
a thin compatibility wrapper over this engine.

Attributes are resolved lazily (PEP 562): the scenario-spec layer imports
:mod:`repro.timeseries.spec` at module load, and the lazy package keeps
that edge acyclic (the execution side of this package builds on the
engine).

Quickstart
----------
>>> from repro.timeseries import OperationEngine, daily_operation_spec
>>> spec = daily_operation_spec(case="ieee14", seed=0)
>>> result = OperationEngine(n_workers=4).run(spec)   # doctest: +SKIP
>>> result.cost_increases_percent().mean()            # doctest: +SKIP
1.7
"""

from __future__ import annotations

from typing import Any

#: Public name → defining submodule; resolved lazily on first access.
_EXPORTS = {
    "DEFAULT_GAMMA_GRID": "spec",
    "OperationSpec": "spec",
    "ProfileSpec": "spec",
    "TuningSpec": "spec",
    "HOUR_METRICS": "results",
    "OperationRecord": "results",
    "OperationResult": "results",
    "HourContext": "engine",
    "OperationEngine": "engine",
    "build_operation_context": "engine",
    "clear_operation_caches": "engine",
    "daily_operation_spec": "engine",
    "run_operation_trial": "engine",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(f"{__name__}.{module_name}")
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
