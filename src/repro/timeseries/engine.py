"""Execution of time-series operation specs (the Figs. 10-11 pipeline).

The engine turns a :class:`~repro.engine.spec.ScenarioSpec` whose
``operation`` component is set into per-hour work items the scenario
engine's existing machinery can schedule: **trial ``t`` is hour ``t``** of
the horizon.  :func:`run_operation_trial` is the unit of work
(:func:`repro.engine.trial.run_trial` dispatches here), so operated hours
inherit the process-pool parallelism, trial batching, result caching,
campaign sharding and resume of ordinary scenarios without new plumbing.

The deterministic per-horizon context — the hourly loads, the chained
no-MTD baseline OPFs (with D-FACTS carryover) and each hour's stale
attacker knowledge — is memoised per process, so a worker pays the serial
baseline chain once and then evaluates its assigned hours independently.
Each hour derives its random streams from the spec's seed (scheme chosen by
``operation.rng``), which is what makes parallel horizons bit-identical to
serial ones.

Two per-hour optimisations make the tuning loop fast without changing a
single bit of its output:

* threshold selection runs as a galloping bracket + bisection over the
  tuning grid (``O(log K)`` probes) instead of the historical linear scan,
  selecting the same grid value whenever the achieved effectiveness is
  monotone along the grid;
* every probe shares one :class:`~repro.mtd.design.DesignContext`, so the
  threshold-independent parts of the MTD design (max-SPA search, corner
  angles, OPF pricing of recurring candidates) are computed once per hour.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.engine.cache import ResultCache
from repro.engine.results import ScenarioResult, TrialResult
from repro.engine.runner import ScenarioEngine
from repro.engine.spec import (
    AttackSpec,
    DetectorSpec,
    GridSpec,
    MTDSpec,
    ScenarioSpec,
)
from repro.engine.trial import network_for_grid
from repro.estimation.linear_model import LinearModelCache
from repro.exceptions import ConfigurationError, MTDDesignError, OPFInfeasibleError
from repro.grid.matrices import reduced_measurement_matrix
from repro.grid.network import PowerNetwork
from repro.mtd.cost import mtd_operational_cost
from repro.mtd.design import DesignContext, MTDDesignResult, design_mtd_perturbation
from repro.mtd.effectiveness import EffectivenessEvaluator
from repro.mtd.subspace import subspace_angle
from repro.opf.dc_opf import solve_dc_opf
from repro.opf.reactance_opf import solve_reactance_opf
from repro.opf.result import OPFResult
from repro.telemetry import metrics as _metrics
from repro.telemetry import progress as _progress
from repro.telemetry.config import _STATE as _TELEMETRY
from repro.telemetry.spans import span as _span
from repro.timeseries.results import OperationResult
from repro.timeseries.spec import OperationSpec, ProfileSpec, TuningSpec


@dataclass(frozen=True)
class HourContext:
    """Everything one operated hour needs besides its random streams."""

    hour: int
    loads: np.ndarray
    baseline: OPFResult
    knowledge_reactances: np.ndarray
    knowledge_angles: np.ndarray


def _require_operation(spec: ScenarioSpec) -> OperationSpec:
    if spec.operation is None:
        raise ConfigurationError(
            f"scenario {spec.name!r} has no operation component; "
            "set ScenarioSpec.operation (see repro.timeseries.daily_operation_spec)"
        )
    return spec.operation


def _hour_seeds(operation: OperationSpec, base_seed: int, hour: int) -> tuple[int, int]:
    """The (evaluator, design) integer seeds of one hour.

    Both schemes yield order-independent integers, so hours can run on any
    worker in any order with bit-identical results:

    * ``"spawn"`` — two words of ``SeedSequence(base_seed,
      spawn_key=(hour,))``, the engine's seed-tree convention;
    * ``"legacy"`` — the historical scheduler derivation
      ``(base_seed + hour, base_seed)``.
    """
    if operation.rng == "legacy":
        return int(base_seed) + int(hour), int(base_seed)
    words = np.random.SeedSequence(int(base_seed), spawn_key=(int(hour),)).generate_state(
        2, np.uint64
    )
    return int(words[0]), int(words[1])


# ----------------------------------------------------------------------
# horizon context (memoised per process)
# ----------------------------------------------------------------------
def _solve_hour_baseline(
    network: PowerNetwork,
    baseline_mode: str,
    operation: OperationSpec,
    base_seed: int,
    loads: np.ndarray,
    previous: OPFResult | None,
) -> OPFResult:
    """No-MTD OPF of one hour (paper eq. (1)).

    With the reactance-OPF baseline, the previous hour's D-FACTS settings
    are kept whenever re-optimising them would not lower the cost beyond
    ``operation.carryover_tolerance`` — operator practice, and what keeps
    consecutive no-MTD measurement matrices nearly identical (the
    ``γ(H_t, H_{t'}) ≈ 0`` observation of Fig. 11).
    """
    if baseline_mode != "reactance-opf" or not network.dfacts_branches:
        return solve_dc_opf(network, loads_mw=loads)
    optimised = solve_reactance_opf(
        network, loads_mw=loads, n_random_starts=1, seed=base_seed
    )
    if previous is None:
        return optimised
    try:
        carried_over = solve_dc_opf(
            network, reactances=previous.reactances, loads_mw=loads
        )
    except OPFInfeasibleError:
        return optimised
    if carried_over.cost <= optimised.cost * (1.0 + operation.carryover_tolerance):
        return carried_over
    return optimised


def _build_hours(
    network: PowerNetwork,
    baseline_mode: str,
    operation: OperationSpec,
    base_seed: int,
) -> tuple[HourContext, ...]:
    """Hourly loads, chained baselines and stale attacker knowledge."""
    nominal_total = network.total_load_mw()
    totals = operation.profile.totals_mw(nominal_total_mw=nominal_total)
    if nominal_total <= 0:
        raise ConfigurationError(
            "the network has zero total load; cannot scale a profile onto it"
        )
    nominal_loads = network.loads_mw()

    loads_list: list[np.ndarray] = []
    baselines: list[OPFResult] = []
    previous: OPFResult | None = None
    for total in totals:
        loads = nominal_loads * (float(total) / nominal_total)
        baseline = _solve_hour_baseline(
            network, baseline_mode, operation, base_seed, loads, previous
        )
        loads_list.append(loads)
        baselines.append(baseline)
        previous = baseline

    n_hours = len(loads_list)
    hours: list[HourContext] = []
    for t in range(n_hours):
        k = t - operation.staleness_hours
        if k < 0:
            # Warm-up: "fresh" hands the first hours their own (current)
            # matrix — the historical behaviour; "wrap-around" uses the
            # matching hour of the previous (assumed identical) day, i.e.
            # the end of the horizon.
            k = t if operation.warmup == "fresh" else k % n_hours
        knowledge_reactances = baselines[k].reactances
        # Deliberately re-solved rather than read off baselines[k]: a
        # reactance-OPF baseline's angles come from the joint NLP, not
        # from a dispatch-only solve at its final reactances, and the
        # historical scheduler (whose records the wrapper must reproduce
        # bit-for-bit) always performed this LP.
        knowledge_angles = solve_dc_opf(
            network, reactances=knowledge_reactances, loads_mw=loads_list[k]
        ).angles_rad
        hours.append(
            HourContext(
                hour=t,
                loads=loads_list[t],
                baseline=baselines[t],
                knowledge_reactances=knowledge_reactances,
                knowledge_angles=knowledge_angles,
            )
        )
    return tuple(hours)


@lru_cache(maxsize=8)
def _cached_network(grid: GridSpec) -> PowerNetwork:
    return network_for_grid(grid)


@lru_cache(maxsize=8)
def _cached_hours(
    grid: GridSpec, operation: OperationSpec, base_seed: int
) -> tuple[HourContext, ...]:
    return _build_hours(_cached_network(grid), grid.baseline, operation, base_seed)


def _evaluator_for(
    network: PowerNetwork,
    hour_context: HourContext,
    operation: OperationSpec,
    attack: AttackSpec,
    detector: DetectorSpec,
    base_seed: int,
    backend: str = "auto",
) -> EffectivenessEvaluator:
    """The attacker's evaluator for one hour (stale knowledge, fresh seed)."""
    evaluator_seed, _ = _hour_seeds(operation, base_seed, hour_context.hour)
    return EffectivenessEvaluator(
        network,
        operating_angles_rad=hour_context.knowledge_angles,
        base_reactances=hour_context.knowledge_reactances,
        noise_sigma=detector.noise_sigma,
        false_positive_rate=detector.false_positive_rate,
        n_attacks=attack.n_attacks,
        attack_ratio=attack.ratio,
        seed=evaluator_seed,
        backend=backend,
    )


@lru_cache(maxsize=64)
def _cached_evaluator(
    grid: GridSpec,
    operation: OperationSpec,
    attack: AttackSpec,
    detector: DetectorSpec,
    base_seed: int,
    hour: int,
    backend: str = "auto",
) -> EffectivenessEvaluator:
    network = _cached_network(grid)
    hours = _cached_hours(grid, operation, base_seed)
    return _evaluator_for(
        network, hours[hour], operation, attack, detector, base_seed, backend
    )


def clear_operation_caches() -> None:
    """Drop the per-process horizon/evaluator memoisation (mostly for tests)."""
    _cached_network.cache_clear()
    _cached_hours.cache_clear()
    _cached_evaluator.cache_clear()


# ----------------------------------------------------------------------
# threshold tuning
# ----------------------------------------------------------------------
def _tune_gamma(
    network: PowerNetwork,
    evaluator: EffectivenessEvaluator,
    loads: np.ndarray,
    tuning: TuningSpec,
    design_method: str,
    preferred_reactances: np.ndarray,
    design_seed: int,
    model_cache: LinearModelCache | None,
) -> tuple[MTDDesignResult, float, float, int]:
    """Select the smallest grid threshold whose design meets the target.

    Returns ``(design, achieved_eta, gamma, n_probes)``.  Both methods pick
    the first grid value with ``η'(delta) ≥ eta_target``; when no feasible
    value reaches the target, the most effective (largest feasible) design
    is returned — the paper's target is achievable for the IEEE cases, but
    synthetic networks may be more constrained.
    """
    grid = tuning.gamma_grid
    n_grid = len(grid)
    design_context = DesignContext() if tuning.reuse_design_context else None
    probes: dict[int, tuple[MTDDesignResult, float] | None] = {}

    def probe(index: int) -> tuple[MTDDesignResult, float] | None:
        """Design + evaluate grid point ``index``; ``None`` when infeasible."""
        if index in probes:
            return probes[index]
        if _TELEMETRY.enabled:
            _metrics.counter("timeseries.tuning_probes")
            with _span("timeseries.tuning_probe", grid_index=index):
                return _probe_uncached(index)
        return _probe_uncached(index)

    def _probe_uncached(index: int) -> tuple[MTDDesignResult, float] | None:
        try:
            design = design_mtd_perturbation(
                network,
                gamma_threshold=grid[index],
                attacker_reactances=evaluator.base_reactances,
                loads_mw=loads,
                method=design_method,
                preferred_reactances=preferred_reactances,
                seed=design_seed,
                context=design_context,
            )
        except MTDDesignError:
            probes[index] = None
            return None
        effectiveness = evaluator.evaluate(
            design.perturbed_reactances, model_cache=model_cache
        )
        probes[index] = (design, effectiveness.eta(tuning.delta))
        return probes[index]

    if tuning.method == "scan":
        selected = _scan_select(probe, n_grid, tuning.eta_target)
    else:
        selected = _bisect_select(probe, n_grid, tuning.eta_target)
    if selected is None:
        raise MTDDesignError(
            "no SPA threshold on the tuning grid produced a feasible MTD design"
        )
    design, eta = probes[selected]
    return design, eta, grid[selected], len(probes)


def _scan_select(probe, n_grid: int, eta_target: float) -> int | None:
    """Linear sweep: first index meeting the target, else last feasible."""
    last: int | None = None
    for index in range(n_grid):
        outcome = probe(index)
        if outcome is None:
            break
        last = index
        if outcome[1] >= eta_target:
            break
    return last


def _bisect_select(probe, n_grid: int, eta_target: float) -> int | None:
    """Galloping bracket + bisection selecting the same index as the scan.

    The predicate ``P(i) = infeasible(i) or eta(i) >= target`` is monotone
    (false → true) along the grid whenever the achieved effectiveness is
    monotone over the feasible prefix, which holds for the paper's
    settings: effectiveness grows with the separation angle until the
    D-FACTS range is exhausted.  The smallest true index is then either the
    scan's answer (feasible and meeting the target) or the feasibility
    boundary, in which case the index below it is the scan's fallback.
    """

    def predicate(index: int) -> bool:
        outcome = probe(index)
        return outcome is None or outcome[1] >= eta_target

    # Gallop from the low end: the common case (the first grid value
    # already meets the target) costs a single probe, exactly like the scan.
    sequence = []
    index = 0
    while index < n_grid - 1:
        sequence.append(index)
        index = 1 if index == 0 else 2 * index
    sequence.append(n_grid - 1)

    below = -1  # highest index known false
    first_true: int | None = None
    for index in sequence:
        if predicate(index):
            first_true = index
            break
        below = index
    if first_true is None:
        # Whole grid feasible, none meet the target: the scan's fallback is
        # the last grid value (already probed by the gallop).
        return n_grid - 1

    lo, hi = below + 1, first_true - 1
    smallest_true = first_true
    while lo <= hi:
        mid = (lo + hi) // 2
        if predicate(mid):
            smallest_true = mid
            hi = mid - 1
        else:
            lo = mid + 1

    if probe(smallest_true) is not None:
        return smallest_true
    # ``smallest_true`` is the feasibility boundary: the target is
    # unreachable, fall back to the largest feasible index below it.
    fallback = smallest_true - 1
    while fallback >= 0 and probe(fallback) is None:
        fallback -= 1  # non-monotone feasibility; walk down like the scan
    return fallback if fallback >= 0 else None


# ----------------------------------------------------------------------
# per-hour execution (the engine's unit of work)
# ----------------------------------------------------------------------
def _operate_hour(
    spec: ScenarioSpec,
    network: PowerNetwork,
    hour_context: HourContext,
    evaluator: EffectivenessEvaluator,
    model_cache: LinearModelCache | None,
) -> TrialResult:
    """Tune, price and record one operated hour."""
    operation = _require_operation(spec)
    _, design_seed = _hour_seeds(operation, spec.base_seed, hour_context.hour)
    design, achieved_eta, gamma, n_probes = _tune_gamma(
        network,
        evaluator,
        hour_context.loads,
        operation.tuning,
        spec.mtd.design_method,
        preferred_reactances=hour_context.baseline.reactances,
        design_seed=design_seed,
        model_cache=model_cache,
    )
    cost = mtd_operational_cost(
        network,
        design.perturbed_reactances,
        loads_mw=hour_context.loads,
        baseline_result=hour_context.baseline,
    )
    attacker_matrix = evaluator.attacker_matrix
    baseline_matrix = reduced_measurement_matrix(
        network, hour_context.baseline.reactances
    )
    mtd_matrix = reduced_measurement_matrix(network, design.perturbed_reactances)
    metrics = {
        "total_load_mw": float(np.sum(hour_context.loads)),
        "baseline_cost": float(cost.baseline_cost),
        "mtd_cost": float(cost.mtd_cost),
        "cost_increase_percent": float(cost.percent_increase),
        "gamma_threshold": float(gamma),
        "achieved_eta": float(achieved_eta),
        "spa_attacker_vs_baseline": float(subspace_angle(attacker_matrix, baseline_matrix)),
        "spa_attacker_vs_mtd": float(subspace_angle(attacker_matrix, mtd_matrix)),
        "spa_baseline_vs_mtd": float(subspace_angle(baseline_matrix, mtd_matrix)),
        "n_tuning_probes": float(n_probes),
    }
    return TrialResult(trial_index=hour_context.hour, metrics=metrics)


def run_operation_trial(
    spec: ScenarioSpec,
    hour: int,
    model_cache: LinearModelCache | None = None,
) -> TrialResult:
    """Run hour ``hour`` of an operation scenario (the engine's trial hook).

    Self-contained and picklable-by-argument like
    :func:`repro.engine.trial.run_trial`: the horizon context is memoised
    per process, the hour's streams derive from ``(base_seed, hour)``, so
    the result depends only on the spec and the hour index — never on
    execution order, worker count or process boundaries.
    """
    operation = _require_operation(spec)
    network = _cached_network(spec.grid)
    hours = _cached_hours(spec.grid, operation, spec.base_seed)
    if not (0 <= hour < len(hours)):
        raise ConfigurationError(
            f"hour must be in [0, {len(hours)}), got {hour}"
        )
    evaluator = _cached_evaluator(
        spec.grid, operation, spec.attack, spec.detector, spec.base_seed, hour,
        spec.backend,
    )
    if _TELEMETRY.enabled:
        with _span("timeseries.hour", hour=hour):
            _metrics.counter("timeseries.hours")
            result = _operate_hour(spec, network, hours[hour], evaluator, model_cache)
        # Hour-granular liveness for long horizons (no-op without a sink).
        _progress.tick(hour=hour, n_hours=len(hours))
        return result
    return _operate_hour(spec, network, hours[hour], evaluator, model_cache)


# ----------------------------------------------------------------------
# engine façade + spec helper
# ----------------------------------------------------------------------
class OperationEngine:
    """Executes operation scenarios and returns typed hourly records.

    A thin façade over :class:`~repro.engine.runner.ScenarioEngine`: runs
    inherit its result cache, process-pool parallelism over hours and trial
    batching, and are wrapped into an :class:`OperationResult`.

    Parameters
    ----------
    cache:
        ``None``, an existing :class:`ResultCache`, or a directory path.
    n_workers:
        Default worker count; hours of the horizon are the parallel unit.
    batch_size:
        Hours per batched-kernel block (shared
        :class:`~repro.estimation.linear_model.LinearModelCache`).
    """

    def __init__(
        self,
        cache: ResultCache | str | Path | None = None,
        n_workers: int = 1,
        batch_size: int | None = None,
    ) -> None:
        self._engine = ScenarioEngine(cache=cache, n_workers=n_workers, batch_size=batch_size)

    @property
    def engine(self) -> ScenarioEngine:
        """The underlying scenario engine."""
        return self._engine

    def run(
        self,
        spec: ScenarioSpec,
        n_workers: int | None = None,
        use_cache: bool = True,
        batch_size: int | None = None,
        network: PowerNetwork | None = None,
    ) -> OperationResult:
        """Operate the whole horizon and return the per-hour records.

        Parameters
        ----------
        spec:
            A scenario spec with its ``operation`` component set.
        n_workers, use_cache, batch_size:
            Forwarded to :meth:`ScenarioEngine.run`.
        network:
            Optional explicit network overriding the spec's grid case —
            the :class:`~repro.mtd.scheduler.DailyMTDScheduler`
            compatibility path for networks not in the case registry.
            Runs serially in-process and bypasses the result cache (the
            spec's grid fields do not describe the actual network).
        """
        _require_operation(spec)
        if network is None:
            scenario = self._engine.run(
                spec, n_workers=n_workers, use_cache=use_cache, batch_size=batch_size
            )
            return OperationResult.from_scenario(scenario)

        start = time.perf_counter()
        hours = _build_hours(network, spec.grid.baseline, spec.operation, spec.base_seed)
        trials = []
        for hour_context in hours:
            evaluator = _evaluator_for(
                network, hour_context, spec.operation, spec.attack, spec.detector,
                spec.base_seed,
            )
            trials.append(_operate_hour(spec, network, hour_context, evaluator, None))
        scenario = ScenarioResult(
            spec=spec,
            trials=tuple(trials),
            elapsed_seconds=time.perf_counter() - start,
            n_workers=1,
        )
        return OperationResult.from_scenario(scenario)


def daily_operation_spec(
    name: str = "daily-operation",
    case: str = "ieee14",
    case_kwargs: Sequence[tuple[str, Any]] = (),
    cost_baseline: str = "reactance-opf",
    profile: ProfileSpec | None = None,
    tuning: TuningSpec | None = None,
    staleness_hours: int = 1,
    warmup: str = "wrap-around",
    rng: str = "spawn",
    carryover_tolerance: float = 5e-3,
    n_attacks: int = 300,
    attack_ratio: float = 0.08,
    noise_sigma: float = 0.0015,
    false_positive_rate: float = 5e-4,
    design_method: str = "two-stage",
    seed: int = 0,
    description: str = "",
    tags: Sequence[str] = (),
) -> ScenarioSpec:
    """Build a complete daily-operation scenario spec.

    Convenience constructor wiring an :class:`OperationSpec` into a
    :class:`~repro.engine.spec.ScenarioSpec` with the paper's Section VII-C
    defaults.  ``cost_baseline`` follows the scheduler vocabulary
    (``"reactance-opf"`` — paper eq. (1) — or ``"dispatch-only"``).

    Notes
    -----
    In operation scenarios the attack ensemble is re-drawn per hour from
    the hour's stale knowledge (``attack.seed`` is unused), and
    ``mtd.gamma_threshold`` is superseded by the tuning grid; it is pinned
    to the grid's upper end for transparency.
    """
    baseline_by_mode = {"reactance-opf": "reactance-opf", "dispatch-only": "dc-opf"}
    if cost_baseline not in baseline_by_mode:
        raise ConfigurationError(
            f"unknown cost_baseline {cost_baseline!r}; "
            "use 'reactance-opf' or 'dispatch-only'"
        )
    operation = OperationSpec(
        profile=profile if profile is not None else ProfileSpec(),
        tuning=tuning if tuning is not None else TuningSpec(),
        staleness_hours=staleness_hours,
        warmup=warmup,
        rng=rng,
        carryover_tolerance=carryover_tolerance,
    )
    return ScenarioSpec(
        name=name,
        grid=GridSpec(
            case=case,
            case_kwargs=tuple(case_kwargs),
            baseline=baseline_by_mode[cost_baseline],
        ),
        attack=AttackSpec(n_attacks=n_attacks, ratio=attack_ratio, seed=None),
        detector=DetectorSpec(
            noise_sigma=noise_sigma, false_positive_rate=false_positive_rate
        ),
        mtd=MTDSpec(
            policy="designed",
            gamma_threshold=operation.tuning.gamma_grid[-1],
            design_method=design_method,
        ),
        operation=operation,
        base_seed=seed,
        metric="cost_increase_percent",
        description=description,
        tags=tuple(tags),
    )


__all__ = [
    "HourContext",
    "OperationEngine",
    "daily_operation_spec",
    "run_operation_trial",
    "build_operation_context",
    "clear_operation_caches",
]


def build_operation_context(
    spec: ScenarioSpec, network: PowerNetwork
) -> tuple[HourContext, ...]:
    """The per-hour contexts of a spec against an explicit network."""
    operation = _require_operation(spec)
    return _build_hours(network, spec.grid.baseline, operation, spec.base_seed)
