"""Typed records of the time-series operation engine.

Internally every operated hour is one
:class:`~repro.engine.results.TrialResult` (flat float metrics), which is
what flows through the engine's cache, the campaign store and the query
layer.  This module provides the typed view on top: an
:class:`OperationRecord` per hour and an :class:`OperationResult` for the
horizon, with the same accessors the historical
:class:`~repro.mtd.scheduler.DailyOperationResult` exposed (load series,
cost series, the three Fig. 11 subspace-angle series).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.engine.results import ScenarioResult, TrialResult
from repro.exceptions import ConfigurationError

#: Metric names every operated hour records (order is the CSV/record order).
HOUR_METRICS = (
    "total_load_mw",
    "baseline_cost",
    "mtd_cost",
    "cost_increase_percent",
    "gamma_threshold",
    "achieved_eta",
    "spa_attacker_vs_baseline",
    "spa_attacker_vs_mtd",
    "spa_baseline_vs_mtd",
    "n_tuning_probes",
)


@dataclass(frozen=True)
class OperationRecord:
    """Per-hour outcome of simulated MTD operation.

    Attributes
    ----------
    hour:
        Absolute hour index within the horizon (0 = first operated hour).
    day, hour_of_day:
        ``hour`` split over 24-hour days, for multi-day horizons.
    total_load_mw:
        Total system load of the hour.
    baseline_cost, mtd_cost, cost_increase_percent:
        No-MTD OPF cost, post-MTD cost and the Fig. 10 premium
        ``100 · (C' − C)/C``.
    gamma_threshold, achieved_eta:
        SPA threshold selected by the tuning loop and the effectiveness
        ``η'(δ)`` its design achieved.
    spa_attacker_vs_baseline, spa_attacker_vs_mtd, spa_baseline_vs_mtd:
        The three Fig. 11 angles ``γ(H_t, H_{t'})``, ``γ(H_t, H'_{t'})``
        and ``γ(H_{t'}, H'_{t'})``.
    n_tuning_probes:
        Design+evaluation probes the threshold tuning spent on this hour
        (the scan-vs-bisection efficiency accounting).
    """

    hour: int
    total_load_mw: float
    baseline_cost: float
    mtd_cost: float
    cost_increase_percent: float
    gamma_threshold: float
    achieved_eta: float
    spa_attacker_vs_baseline: float
    spa_attacker_vs_mtd: float
    spa_baseline_vs_mtd: float
    n_tuning_probes: int = 0

    @property
    def day(self) -> int:
        """Zero-based day index of the hour."""
        return self.hour // 24

    @property
    def hour_of_day(self) -> int:
        """Hour within its day (0 = 1 AM in the paper's plots)."""
        return self.hour % 24

    @classmethod
    def from_trial(cls, trial: TrialResult) -> "OperationRecord":
        """Rebuild the typed record from an engine trial's metrics."""
        metrics = trial.metrics
        missing = [name for name in HOUR_METRICS if name not in metrics]
        if missing:
            raise ConfigurationError(
                f"trial {trial.trial_index} is not an operation record; "
                f"missing metrics: {', '.join(missing)}"
            )
        values = {name: metrics[name] for name in HOUR_METRICS}
        values["n_tuning_probes"] = int(values["n_tuning_probes"])
        return cls(hour=trial.trial_index, **values)


@dataclass(frozen=True)
class OperationResult:
    """All hourly records of one operated horizon.

    A typed façade over the underlying :class:`ScenarioResult` (kept in
    ``scenario`` so cache/store metadata stays reachable).
    """

    scenario: ScenarioResult
    records: tuple[OperationRecord, ...]

    @classmethod
    def from_scenario(cls, scenario: ScenarioResult) -> "OperationResult":
        """Wrap a scenario result whose trials are operated hours."""
        records = tuple(OperationRecord.from_trial(t) for t in scenario.trials)
        return cls(scenario=scenario, records=records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[OperationRecord]:
        return iter(self.records)

    # ------------------------------------------------------------------
    def loads(self) -> np.ndarray:
        return np.array([r.total_load_mw for r in self.records])

    def cost_increases_percent(self) -> np.ndarray:
        return np.array([r.cost_increase_percent for r in self.records])

    def spa_series(self) -> dict[str, np.ndarray]:
        """The three Fig. 11 series keyed by their paper notation."""
        return {
            "gamma(Ht, Ht')": np.array([r.spa_attacker_vs_baseline for r in self.records]),
            "gamma(Ht, H't')": np.array([r.spa_attacker_vs_mtd for r in self.records]),
            "gamma(Ht', H't')": np.array([r.spa_baseline_vs_mtd for r in self.records]),
        }

    def peak_cost_hour(self) -> int:
        """Hour with the largest relative cost increase."""
        costs = self.cost_increases_percent()
        return int(np.argmax(costs)) if costs.size else -1

    def total_tuning_probes(self) -> int:
        """Design+evaluation probes spent across the whole horizon."""
        return int(sum(r.n_tuning_probes for r in self.records))


__all__ = ["HOUR_METRICS", "OperationRecord", "OperationResult"]
