"""Declarative specifications for multi-day MTD operation (Figs. 10-11).

The paper's Section VII-C experiments simulate *hourly operation*: at each
hour the operator re-solves the no-MTD OPF for the current load, assumes
the attacker's knowledge of the measurement matrix is a few hours stale,
tunes the SPA threshold to the smallest value meeting the effectiveness
target, and pays the resulting cost premium.  An :class:`OperationSpec`
names that whole policy — load profile, horizon, attacker staleness,
warm-up behaviour for the first hours, threshold-tuning strategy and RNG
scheme — as a frozen value object that embeds into a
:class:`~repro.engine.spec.ScenarioSpec` (field ``operation``), so
daily-operation runs get the engine/campaign stack for free: JSON
round-trip, content hashing, result caching, process-pool parallelism over
hours, sharded stores and resumable campaigns.

The component specs are deliberately free of engine imports: this module is
a leaf the scenario spec layer builds on.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Mapping

from repro.exceptions import ConfigurationError
from repro.loads.profiles import available_shapes, multi_day_profile

#: Default SPA-threshold tuning grid (radians): the daily scheduler's
#: historical ``np.arange(0.05, 0.50, 0.05)``.
DEFAULT_GAMMA_GRID = tuple(round(0.05 * k, 2) for k in range(1, 10))


@dataclass(frozen=True)
class ProfileSpec:
    """A multi-day hourly load profile, declaratively.

    Attributes
    ----------
    shape:
        Registered day shape (see
        :func:`repro.loads.profiles.available_shapes`) repeated for every
        day when ``days`` is empty.
    n_days:
        Horizon length in days (ignored when ``days`` is given).
    days:
        Optional per-day shape names, e.g.
        ``("winter-weekday",) * 5 + ("winter-weekend",) * 2`` for one week.
    peak_load_mw, min_load_mw:
        Absolute total-load band of the horizon.  Set both to ``None`` for
        per-case normalisation via the fractions below.  Defaults match the
        paper's scaled IEEE 14-bus band (≈143-220 MW).
    peak_fraction, min_fraction:
        Band as fractions of the operated network's nominal total load;
        used only when the absolute band is ``None``.
    hours:
        Optional truncation: operate only the first ``hours`` hours of the
        horizon (quick budgets, tests, CI smoke runs).
    explicit_totals_mw:
        Escape hatch: explicit hourly totals (MW) overriding everything
        above — how the :class:`~repro.mtd.scheduler.DailyMTDScheduler`
        compatibility wrapper feeds arbitrary traces through the engine.
    """

    shape: str = "winter-weekday"
    n_days: int = 1
    days: tuple[str, ...] = ()
    peak_load_mw: float | None = 220.0
    min_load_mw: float | None = 143.0
    peak_fraction: float = 1.0
    min_fraction: float = 0.65
    hours: int | None = None
    explicit_totals_mw: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "days", tuple(str(d) for d in self.days))
        object.__setattr__(
            self, "explicit_totals_mw", tuple(float(v) for v in self.explicit_totals_mw)
        )
        if not self.explicit_totals_mw:
            for name in self.day_names():
                if name not in available_shapes():
                    raise ConfigurationError(
                        f"unknown profile shape {name!r}; "
                        f"available: {', '.join(available_shapes())}"
                    )
        if self.n_days < 1:
            raise ConfigurationError(f"n_days must be at least 1, got {self.n_days}")
        if (self.peak_load_mw is None) != (self.min_load_mw is None):
            raise ConfigurationError(
                "peak_load_mw and min_load_mw must both be set (absolute band) "
                "or both be None (per-case normalisation via the fractions)"
            )
        if self.peak_load_mw is not None:
            if self.peak_load_mw <= 0 or self.min_load_mw <= 0:
                raise ConfigurationError("load levels must be positive")
            if self.min_load_mw >= self.peak_load_mw:
                raise ConfigurationError(
                    f"min_load_mw ({self.min_load_mw}) must be below "
                    f"peak_load_mw ({self.peak_load_mw})"
                )
        else:
            if self.peak_fraction <= 0 or self.min_fraction <= 0:
                raise ConfigurationError("profile fractions must be positive")
            if self.min_fraction >= self.peak_fraction:
                raise ConfigurationError(
                    f"min_fraction ({self.min_fraction}) must be below "
                    f"peak_fraction ({self.peak_fraction})"
                )
        if self.hours is not None and self.hours < 1:
            raise ConfigurationError(f"hours must be at least 1, got {self.hours}")
        if self.n_hours() < 1:
            raise ConfigurationError("the profile must contain at least one hour")

    # ------------------------------------------------------------------
    def day_names(self) -> tuple[str, ...]:
        """The shape name of every day of the horizon, in order."""
        if self.days:
            return self.days
        return (str(self.shape).strip().lower(),) * self.n_days

    def n_hours(self) -> int:
        """Number of operated hours (after any ``hours`` truncation)."""
        if self.explicit_totals_mw:
            total = len(self.explicit_totals_mw)
        else:
            total = 24 * len(self.day_names())
        return total if self.hours is None else min(self.hours, total)

    def totals_mw(self, nominal_total_mw: float | None = None):
        """Hourly total loads (MW) over the horizon.

        ``nominal_total_mw`` is required only for per-case normalisation
        (absolute band unset).
        """
        import numpy as np

        if self.explicit_totals_mw:
            return np.array(self.explicit_totals_mw)[: self.n_hours()]
        if self.peak_load_mw is not None:
            low, high = float(self.min_load_mw), float(self.peak_load_mw)
        else:
            if nominal_total_mw is None or nominal_total_mw <= 0:
                raise ConfigurationError(
                    "per-case profile normalisation needs the network's "
                    "positive nominal total load"
                )
            low = nominal_total_mw * self.min_fraction
            high = nominal_total_mw * self.peak_fraction
        # One owner of the multi-day horizon semantics: loads.profiles.
        return multi_day_profile(
            self.day_names(), peak_load_mw=high, min_load_mw=low
        )[: self.n_hours()]


@dataclass(frozen=True)
class TuningSpec:
    """How the per-hour SPA threshold ``γ_th`` is selected.

    Both methods pick the smallest grid value whose design meets the
    effectiveness target ``η'(delta) ≥ eta_target``, falling back to the
    largest feasible grid value when the target is unreachable:

    * ``"scan"`` — the historical linear sweep: probe every grid value in
      ascending order until the target is met (one full MTD design plus one
      ensemble evaluation per probe).
    * ``"bisect"`` (default) — galloping bracket + bisection over the same
      grid: ``O(log K)`` probes instead of ``O(K)``.  Selects the same grid
      value as the scan whenever the achieved effectiveness is monotone in
      the threshold along the grid (it is for the paper's settings; the
      tests assert scan/bisect agreement on the Fig. 10 configuration).

    Attributes
    ----------
    method:
        ``"bisect"`` or ``"scan"``.
    gamma_grid:
        Ascending candidate thresholds (radians).
    delta:
        Detection-probability level the effectiveness is read at.
    eta_target:
        Required ``η'(delta)``.
    reuse_design_context:
        Share one :class:`~repro.mtd.design.DesignContext` across the
        hour's probes (default), computing the threshold-independent parts
        of the MTD design once per hour.  Reuse is bit-identical to
        recomputing; disabling it exists for benchmarks that time the
        historical per-probe cost.
    """

    method: str = "bisect"
    gamma_grid: tuple[float, ...] = DEFAULT_GAMMA_GRID
    delta: float = 0.9
    eta_target: float = 0.9
    reuse_design_context: bool = True

    def __post_init__(self) -> None:
        if self.method not in ("bisect", "scan"):
            raise ConfigurationError(
                f"tuning method must be 'bisect' or 'scan', got {self.method!r}"
            )
        grid = tuple(float(g) for g in self.gamma_grid)
        object.__setattr__(self, "gamma_grid", grid)
        if not grid:
            raise ConfigurationError("gamma_grid must contain at least one threshold")
        if any(not (0.0 <= g <= math.pi / 2) for g in grid):
            raise ConfigurationError("gamma_grid values must lie in [0, pi/2] radians")
        if any(b <= a for a, b in zip(grid, grid[1:])):
            raise ConfigurationError("gamma_grid must be strictly ascending")
        if not (0.0 < self.delta <= 1.0):
            raise ConfigurationError(f"delta must be in (0, 1], got {self.delta}")
        if not (0.0 < self.eta_target <= 1.0):
            raise ConfigurationError(
                f"eta_target must be in (0, 1], got {self.eta_target}"
            )


@dataclass(frozen=True)
class OperationSpec:
    """The time-series operation policy of a scenario.

    Embedded in a :class:`~repro.engine.spec.ScenarioSpec` (field
    ``operation``), it turns the scenario into a multi-day hourly-operation
    experiment: trial ``t`` of the scenario is hour ``t`` of the horizon.
    The grid case, attack ensemble, detector and MTD design method come
    from the containing scenario spec; this component adds what is specific
    to operating over time.

    Attributes
    ----------
    profile:
        The load horizon (see :class:`ProfileSpec`).
    tuning:
        Per-hour SPA-threshold selection (see :class:`TuningSpec`).
    staleness_hours:
        How old the attacker's knowledge of the measurement matrix is; the
        paper uses one hour.
    warmup:
        Where the first ``staleness_hours`` hours get their attacker
        knowledge from:

        * ``"wrap-around"`` (default) — the matching hour of the previous
          (assumed identical) day, i.e. the end of the horizon; for
          one-hour staleness this is the previous day's last hour.
        * ``"fresh"`` — the historical behaviour: the *current* hour's own
          matrix, which gives the hour-0 attacker perfectly fresh knowledge
          and pins ``γ(H_t, H_{t'})`` to zero at the first plotted hour of
          Fig. 11.
    rng:
        Per-hour random-stream derivation:

        * ``"spawn"`` (default) — seed-spawned:
          ``SeedSequence(base_seed, spawn_key=(hour,))``, the engine
          convention making parallel hours bit-identical to serial ones.
        * ``"legacy"`` — the historical scheduler scheme (evaluator seed
          ``base_seed + hour``, design seed ``base_seed``); also
          order-independent, kept for record-for-record compatibility.
    carryover_tolerance:
        Reactance-OPF baselines keep the previous hour's D-FACTS settings
        unless re-optimising saves more than this relative amount (operator
        practice; what keeps consecutive no-MTD matrices nearly identical,
        as observed in Fig. 11).
    """

    profile: ProfileSpec = field(default_factory=ProfileSpec)
    tuning: TuningSpec = field(default_factory=TuningSpec)
    staleness_hours: int = 1
    warmup: str = "wrap-around"
    rng: str = "spawn"
    carryover_tolerance: float = 5e-3

    def __post_init__(self) -> None:
        if self.staleness_hours < 1:
            raise ConfigurationError(
                f"staleness_hours must be at least 1, got {self.staleness_hours}"
            )
        if self.warmup not in ("wrap-around", "fresh"):
            raise ConfigurationError(
                f"warmup must be 'wrap-around' or 'fresh', got {self.warmup!r}"
            )
        if self.rng not in ("spawn", "legacy"):
            raise ConfigurationError(
                f"rng must be 'spawn' or 'legacy', got {self.rng!r}"
            )
        if self.carryover_tolerance < 0:
            raise ConfigurationError(
                f"carryover_tolerance must be non-negative, got {self.carryover_tolerance}"
            )

    # ------------------------------------------------------------------
    def n_hours(self) -> int:
        """Horizon length in hours; the containing scenario's trial count."""
        return self.profile.n_hours()

    def to_dict(self) -> dict[str, Any]:
        """Plain-data representation (tuples become lists, JSON-safe)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OperationSpec":
        """Rebuild an operation spec from :meth:`to_dict` output."""
        if isinstance(data, OperationSpec):
            return data
        payload = dict(data)
        for name, component in (("profile", ProfileSpec), ("tuning", TuningSpec)):
            value = payload.get(name)
            if value is not None and not isinstance(value, component):
                known = {f.name for f in fields(component)}
                unknown = set(value) - known
                if unknown:
                    raise ConfigurationError(
                        f"unknown {component.__name__} fields: {sorted(unknown)}"
                    )
                payload[name] = component(**value)
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(f"unknown OperationSpec fields: {sorted(unknown)}")
        return cls(**payload)

    def content_hash(self) -> str:
        """SHA-256 over the operation policy (standalone identity).

        The containing scenario spec's content hash already covers this
        component; the standalone hash exists for callers that cache or
        compare operation policies directly.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


__all__ = [
    "DEFAULT_GAMMA_GRID",
    "ProfileSpec",
    "TuningSpec",
    "OperationSpec",
]
