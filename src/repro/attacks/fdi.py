"""Construction of stealthy FDI attack vectors.

Following Liu, Ning and Reiter (and the paper's Section III), an attack
``a = Hc`` for any state bias ``c`` produces measurements that remain
perfectly consistent with the measurement model of the matrix ``H`` used to
craft it, so the BDD of a system still described by ``H`` cannot detect it
beyond its false-positive rate.  The MTD's entire purpose is to make the
operating system's matrix ``H'`` differ from the attacker's ``H``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AttackConstructionError
from repro.utils.linalg import vector_in_column_space


def stealthy_attack(measurement_matrix: np.ndarray, state_bias: np.ndarray) -> np.ndarray:
    """Build the stealthy attack ``a = Hc``.

    Parameters
    ----------
    measurement_matrix:
        The (reduced) measurement matrix ``H`` known to the attacker.
    state_bias:
        The state perturbation ``c`` the attacker wants to inject, one entry
        per non-slack bus.

    Returns
    -------
    numpy.ndarray
        The attack vector ``a`` to be added to the measurements.
    """
    H = np.asarray(measurement_matrix, dtype=float)
    c = np.asarray(state_bias, dtype=float).ravel()
    if H.ndim != 2:
        raise AttackConstructionError(f"expected a 2-D measurement matrix, got shape {H.shape}")
    if c.shape[0] != H.shape[1]:
        raise AttackConstructionError(
            f"state bias length {c.shape[0]} does not match state dimension {H.shape[1]}"
        )
    return H @ c


def targeted_state_attack(
    measurement_matrix: np.ndarray,
    target_states: dict[int, float],
    n_states: int | None = None,
) -> np.ndarray:
    """Build an attack that biases specific state variables.

    Parameters
    ----------
    measurement_matrix:
        The attacker's measurement matrix ``H``.
    target_states:
        Mapping from state index (position in the non-slack bus ordering) to
        the desired bias, in radians.
    n_states:
        Optional explicit state dimension (defaults to ``H.shape[1]``).

    Returns
    -------
    numpy.ndarray
        The attack vector ``a = Hc`` with ``c`` zero except at the targets.
    """
    H = np.asarray(measurement_matrix, dtype=float)
    dimension = H.shape[1] if n_states is None else int(n_states)
    if dimension != H.shape[1]:
        raise AttackConstructionError(
            f"n_states={dimension} does not match measurement matrix width {H.shape[1]}"
        )
    c = np.zeros(dimension)
    for index, bias in target_states.items():
        if index < 0 or index >= dimension:
            raise AttackConstructionError(
                f"state index {index} is outside 0..{dimension - 1}"
            )
        c[index] = float(bias)
    if not np.any(c):
        raise AttackConstructionError("at least one non-zero state bias is required")
    return stealthy_attack(H, c)


def is_undetectable_under(
    attack: np.ndarray,
    post_mtd_matrix: np.ndarray,
    tol: float = 1e-8,
) -> bool:
    """Proposition 1 test: is ``attack`` stealthy under the MTD matrix ``H'``?

    An attack remains undetectable (its detection probability equals the
    false-positive rate) exactly when it lies in the column space of the
    post-perturbation measurement matrix, i.e. when
    ``rank(H') == rank([H' a])``.
    """
    return vector_in_column_space(post_mtd_matrix, attack, tol=tol)


__all__ = ["stealthy_attack", "targeted_state_attack", "is_undetectable_under"]
