"""Attacker-side learning of the measurement subspace.

The paper's threat model (Section IV-A) assumes the attacker has learned the
measurement matrix from eavesdropped measurements — citing the subspace
methods of Kim, Tong and Thomas — and argues that the MTD stays ahead of the
attacker because re-learning after each perturbation takes hundreds of
measurement snapshots.  This module implements that learning step so the
claim can be studied quantitatively:

* :class:`SubspaceLearner` estimates ``Col(H)`` from noisy measurement
  snapshots by principal component analysis (the attacker does not need the
  matrix itself: any basis of its column space suffices to craft stealthy
  attacks ``a = B̂ w``).
* :func:`learned_attack` builds an attack from the learned basis.
* :func:`knowledge_decay_curve` measures, as a function of the number of
  snapshots collected after an MTD perturbation, how stealthy the attacker's
  re-learned attacks become — quantifying how frequently the defender must
  re-perturb.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.estimation.bdd import BadDataDetector
from repro.estimation.measurement import MeasurementSystem
from repro.exceptions import AttackConstructionError
from repro.mtd.subspace import subspace_angle
from repro.utils.linalg import orthonormal_basis
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class LearnedSubspace:
    """Outcome of the attacker's subspace-estimation step.

    Attributes
    ----------
    basis:
        ``M x k`` orthonormal basis of the estimated measurement subspace.
    n_snapshots:
        Number of measurement snapshots used.
    singular_values:
        Singular values of the (centred) snapshot matrix, useful for
        diagnosing how well separated signal and noise are.
    alignment_with:
        Subspace angle (radians) between the learned basis and the true
        column space it was compared against, when provided at construction.
    """

    basis: np.ndarray
    n_snapshots: int
    singular_values: np.ndarray
    alignment_with: float | None = None


class SubspaceLearner:
    """Estimate the measurement-matrix column space from snapshots.

    Parameters
    ----------
    n_states:
        Dimension of the state (``N − 1``); the learner keeps this many
        principal directions, as the attacker knows the grid's size.
    """

    def __init__(self, n_states: int) -> None:
        if n_states <= 0:
            raise AttackConstructionError(f"n_states must be positive, got {n_states}")
        self._n_states = int(n_states)

    def learn(
        self,
        snapshots: np.ndarray,
        true_matrix: np.ndarray | None = None,
    ) -> LearnedSubspace:
        """Estimate the subspace from a ``n_snapshots x M`` snapshot array."""
        Z = np.asarray(snapshots, dtype=float)
        if Z.ndim != 2:
            raise AttackConstructionError(
                f"snapshots must be a 2-D array, got shape {Z.shape}"
            )
        if Z.shape[0] < self._n_states:
            raise AttackConstructionError(
                f"at least {self._n_states} snapshots are needed, got {Z.shape[0]}"
            )
        # Principal component analysis of the raw snapshots: the measurement
        # vectors live (up to noise) in Col(H), which the leading right
        # singular vectors of the snapshot matrix estimate.
        _, singular_values, vt = np.linalg.svd(Z, full_matrices=False)
        basis = orthonormal_basis(vt[: self._n_states].T)
        alignment = None
        if true_matrix is not None:
            alignment = subspace_angle(np.asarray(true_matrix, dtype=float), basis)
        return LearnedSubspace(
            basis=basis,
            n_snapshots=int(Z.shape[0]),
            singular_values=singular_values,
            alignment_with=alignment,
        )

    def collect_and_learn(
        self,
        system: MeasurementSystem,
        operating_angles_rad: np.ndarray,
        n_snapshots: int,
        angle_jitter: float = 0.02,
        rng: int | np.random.Generator | None = None,
        true_matrix: np.ndarray | None = None,
    ) -> LearnedSubspace:
        """Eavesdrop ``n_snapshots`` noisy measurements and learn from them.

        ``angle_jitter`` adds small random variations around the operating
        point, modelling the load fluctuations that give the attacker the
        state diversity needed for the subspace to be identifiable.
        """
        rng = as_generator(rng)
        angles = np.asarray(operating_angles_rad, dtype=float)
        snapshots = np.empty((n_snapshots, system.n_measurements))
        for k in range(n_snapshots):
            jitter = angle_jitter * rng.standard_normal(angles.shape[0])
            jitter[system.network.slack_bus] = 0.0
            snapshots[k] = system.measure(angles + jitter, rng=rng)
        return self.learn(snapshots, true_matrix=true_matrix)


def learned_attack(
    learned: LearnedSubspace,
    weights: np.ndarray,
) -> np.ndarray:
    """Build a (hopefully stealthy) attack from a learned subspace basis."""
    w = np.asarray(weights, dtype=float).ravel()
    if w.shape[0] != learned.basis.shape[1]:
        raise AttackConstructionError(
            f"expected {learned.basis.shape[1]} weights, got {w.shape[0]}"
        )
    return learned.basis @ w


def knowledge_decay_curve(
    system: MeasurementSystem,
    operating_angles_rad: np.ndarray,
    snapshot_counts: list[int] | np.ndarray,
    false_positive_rate: float = 5e-4,
    attack_scale: float = 0.3,
    n_attacks: int = 50,
    angle_jitter: float = 0.01,
    seed: int | np.random.Generator | None = 0,
) -> list[dict[str, float]]:
    """How quickly does the attacker re-learn a perturbed system?

    For each snapshot budget the attacker re-estimates the measurement
    subspace of the (post-MTD) ``system`` and crafts random attacks from it;
    the mean BDD detection probability of those attacks is reported.  A high
    detection probability means the attacker's knowledge is still inadequate
    — the quantity that determines how often the defender must re-perturb.

    ``attack_scale`` is the Euclidean norm of the crafted attacks (0.3 p.u. by
    default, comparable to the ensemble attacks used elsewhere); larger
    attacks are less forgiving of subspace-estimation errors, so the curve
    decays more slowly for ambitious attackers.

    Returns a list of dictionaries with keys ``n_snapshots``,
    ``subspace_error`` (radians) and ``mean_detection_probability``.
    """
    rng = as_generator(seed)
    learner = SubspaceLearner(system.n_states)
    detector = BadDataDetector(system, false_positive_rate=false_positive_rate)
    true_matrix = system.matrix()
    curve = []
    for count in snapshot_counts:
        learned = learner.collect_and_learn(
            system,
            operating_angles_rad,
            n_snapshots=int(count),
            angle_jitter=angle_jitter,
            rng=rng,
            true_matrix=true_matrix,
        )
        probabilities = []
        for _ in range(n_attacks):
            weights = rng.standard_normal(learned.basis.shape[1])
            attack = learned_attack(learned, weights)
            norm = np.linalg.norm(attack)
            if norm > 0:
                attack = attack * (attack_scale / norm)
            probabilities.append(detector.detection_probability(attack))
        curve.append(
            {
                "n_snapshots": float(count),
                "subspace_error": float(learned.alignment_with or 0.0),
                "mean_detection_probability": float(np.mean(probabilities)),
            }
        )
    return curve


__all__ = [
    "SubspaceLearner",
    "LearnedSubspace",
    "learned_attack",
    "knowledge_decay_curve",
]
