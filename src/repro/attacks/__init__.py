"""False data injection (FDI) attacks against state estimation.

Implements the attacker of Section IV-A of the paper: an adversary who has
learned the (pre-perturbation) measurement matrix ``H`` and injects attack
vectors of the form ``a = Hc``, which bypass the bad-data detector of the
unperturbed system with probability no greater than the false-positive rate.
"""

from repro.attacks.fdi import (
    stealthy_attack,
    targeted_state_attack,
    is_undetectable_under,
)
from repro.attacks.scaling import scale_attack_to_measurement_ratio
from repro.attacks.generator import AttackEnsemble, generate_attack_ensemble
from repro.attacks.impact import AttackImpact, estimate_attack_cost_impact
from repro.attacks.learning import (
    LearnedSubspace,
    SubspaceLearner,
    knowledge_decay_curve,
    learned_attack,
)

__all__ = [
    "stealthy_attack",
    "targeted_state_attack",
    "is_undetectable_under",
    "scale_attack_to_measurement_ratio",
    "AttackEnsemble",
    "generate_attack_ensemble",
    "AttackImpact",
    "estimate_attack_cost_impact",
    "SubspaceLearner",
    "LearnedSubspace",
    "learned_attack",
    "knowledge_decay_curve",
]
