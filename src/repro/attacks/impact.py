"""Economic impact of successful (undetected) FDI attacks.

Section VII-D of the paper puts the MTD operational cost in perspective by
comparing it with the damage an undetected attack can cause — prior work
reports OPF-cost increases of up to ≈28 % from load-redistribution attacks
on the same IEEE 14-bus system.  This module provides a simple
load-redistribution impact model so that the comparison can be reproduced
end to end:

1. the attacker biases the estimated state by ``c``, which changes the loads
   the operator *believes* exist at each bus (total load preserved, as in
   load-redistribution attacks);
2. the operator redispatches against the falsified loads;
3. the realised cost is evaluated by applying that dispatch to the *true*
   loads, with any shortfall covered by the most expensive unit (a standard
   proxy for emergency balancing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import AttackConstructionError, OPFInfeasibleError
from repro.grid.matrices import incidence_matrix, non_slack_indices
from repro.grid.network import PowerNetwork
from repro.opf.dc_opf import solve_dc_opf


@dataclass(frozen=True)
class AttackImpact:
    """Outcome of :func:`estimate_attack_cost_impact`.

    Attributes
    ----------
    baseline_cost:
        OPF cost without the attack ($/h).
    attacked_cost:
        Realised cost when dispatching against the falsified loads ($/h).
    relative_increase:
        ``(attacked − baseline) / baseline``.
    falsified_loads_mw:
        The per-bus loads the operator believed after the attack.
    feasible:
        False when the OPF against the falsified loads was infeasible (the
        attack then causes an operational emergency rather than a quiet cost
        increase).
    """

    baseline_cost: float
    attacked_cost: float
    relative_increase: float
    falsified_loads_mw: np.ndarray
    feasible: bool


def falsified_loads_from_state_bias(
    network: PowerNetwork,
    state_bias: np.ndarray,
) -> np.ndarray:
    """Loads the operator infers when the estimated state is biased by ``c``.

    A state bias ``c`` shifts the estimated nodal injections by
    ``ΔP = B c`` (per unit).  Loads are the negative injections at load
    buses, so the operator's load picture becomes ``l − ΔP·base``.  Negative
    inferred loads are clipped at zero and the total load is re-normalised so
    that the attack is a pure redistribution, as in the load-redistribution
    attack literature the paper cites.
    """
    c = np.asarray(state_bias, dtype=float).ravel()
    keep = non_slack_indices(network)
    if c.shape[0] != keep.shape[0]:
        raise AttackConstructionError(
            f"state bias length {c.shape[0]} does not match state dimension {keep.shape[0]}"
        )
    A = incidence_matrix(network)
    D = np.diag(1.0 / network.reactances())
    B = A @ D @ A.T
    delta_injection_pu = B[:, keep] @ c
    loads = network.loads_mw()
    falsified = loads - delta_injection_pu * network.base_mva
    falsified = np.clip(falsified, 0.0, None)
    total_true = float(np.sum(loads))
    total_falsified = float(np.sum(falsified))
    if total_falsified > 0:
        falsified = falsified * (total_true / total_falsified)
    return falsified


def estimate_attack_cost_impact(
    network: PowerNetwork,
    state_bias: np.ndarray,
) -> AttackImpact:
    """Estimate the OPF-cost impact of an undetected FDI attack.

    Parameters
    ----------
    network:
        The true network.
    state_bias:
        The attacker's state bias ``c`` (one entry per non-slack bus, rad).

    Returns
    -------
    AttackImpact
    """
    baseline = solve_dc_opf(network)
    falsified = falsified_loads_from_state_bias(network, state_bias)
    try:
        fooled = solve_dc_opf(network, loads_mw=falsified)
    except OPFInfeasibleError:
        return AttackImpact(
            baseline_cost=baseline.cost,
            attacked_cost=float("inf"),
            relative_increase=float("inf"),
            falsified_loads_mw=falsified,
            feasible=False,
        )
    realised_cost = _realised_cost(network, fooled.dispatch_mw)
    increase = (realised_cost - baseline.cost) / baseline.cost
    return AttackImpact(
        baseline_cost=baseline.cost,
        attacked_cost=realised_cost,
        relative_increase=float(increase),
        falsified_loads_mw=falsified,
        feasible=True,
    )


def _realised_cost(network: PowerNetwork, dispatch_mw: np.ndarray) -> float:
    """Cost of a dispatch applied to the true loads.

    Any mismatch between the dispatched total and the true total load is
    covered (or curtailed) by the most expensive generator, which prices the
    emergency balancing the attack forces on the operator.
    """
    costs = network.generator_costs()
    dispatch = np.asarray(dispatch_mw, dtype=float).copy()
    mismatch = network.total_load_mw() - float(np.sum(dispatch))
    expensive = int(np.argmax(costs))
    dispatch[expensive] = max(0.0, dispatch[expensive] + mismatch)
    return float(np.dot(costs, dispatch))


__all__ = [
    "AttackImpact",
    "estimate_attack_cost_impact",
    "falsified_loads_from_state_bias",
]
