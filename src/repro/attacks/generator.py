"""Random ensembles of stealthy FDI attacks.

The paper's effectiveness metric ``η'(δ)`` is estimated over an ensemble of
attack vectors ``a = Hc`` with ``c`` drawn from a Gaussian distribution and
the magnitude scaled to a fixed fraction of the legitimate measurements.
This module builds such ensembles reproducibly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import AttackConstructionError
from repro.attacks.fdi import stealthy_attack
from repro.attacks.scaling import (
    DEFAULT_MEASUREMENT_RATIO,
    scale_attack_to_measurement_ratio,
)
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class AttackEnsemble:
    """A collection of stealthy attacks crafted from one measurement matrix.

    Attributes
    ----------
    attacks:
        Array of shape ``(n_attacks, M)``; each row is one attack vector.
    state_biases:
        Array of shape ``(n_attacks, N−1)``; the corresponding ``c`` vectors.
    measurement_matrix:
        The attacker's measurement matrix ``H`` the attacks were built from.
    reference_measurements:
        The legitimate measurement vector the magnitudes were scaled against.
    target_ratio:
        The ``‖a‖₁/‖z‖₁`` ratio the attacks were scaled to.
    """

    attacks: np.ndarray
    state_biases: np.ndarray
    measurement_matrix: np.ndarray
    reference_measurements: np.ndarray
    target_ratio: float

    def __len__(self) -> int:
        return self.attacks.shape[0]

    def __iter__(self):
        return iter(self.attacks)

    def subset(self, indices: np.ndarray | list[int]) -> "AttackEnsemble":
        """Return a new ensemble restricted to ``indices``."""
        idx = np.asarray(indices, dtype=int)
        return AttackEnsemble(
            attacks=self.attacks[idx],
            state_biases=self.state_biases[idx],
            measurement_matrix=self.measurement_matrix,
            reference_measurements=self.reference_measurements,
            target_ratio=self.target_ratio,
        )


def generate_attack_ensemble(
    measurement_matrix: np.ndarray,
    reference_measurements: np.ndarray,
    n_attacks: int = 1000,
    target_ratio: float = DEFAULT_MEASUREMENT_RATIO,
    seed: int | np.random.Generator | None = 0,
) -> AttackEnsemble:
    """Draw ``n_attacks`` random stealthy attacks ``a = Hc``.

    Parameters
    ----------
    measurement_matrix:
        The attacker's (pre-perturbation) measurement matrix ``H``.
    reference_measurements:
        A legitimate measurement vector ``z`` used for magnitude scaling.
    n_attacks:
        Ensemble size (the paper uses 1000).
    target_ratio:
        Desired ``‖a‖₁/‖z‖₁`` (the paper uses ≈0.08).
    seed:
        Seed or generator for reproducibility.

    Returns
    -------
    AttackEnsemble
    """
    if n_attacks <= 0:
        raise AttackConstructionError(f"n_attacks must be positive, got {n_attacks}")
    H = np.asarray(measurement_matrix, dtype=float)
    z = np.asarray(reference_measurements, dtype=float).ravel()
    if H.ndim != 2:
        raise AttackConstructionError(f"expected a 2-D measurement matrix, got shape {H.shape}")
    if z.shape[0] != H.shape[0]:
        raise AttackConstructionError(
            f"reference measurement length {z.shape[0]} does not match matrix rows {H.shape[0]}"
        )
    rng = as_generator(seed)
    n_states = H.shape[1]

    biases = np.empty((n_attacks, n_states))
    attacks = np.empty((n_attacks, H.shape[0]))
    for k in range(n_attacks):
        c = rng.standard_normal(n_states)
        # Guard against the (measure-zero) event of an all-zero draw.
        while not np.any(np.abs(c) > 1e-12):  # pragma: no cover
            c = rng.standard_normal(n_states)
        raw = stealthy_attack(H, c)
        scaled = scale_attack_to_measurement_ratio(raw, z, target_ratio)
        # Record the bias consistent with the applied scaling.
        scale = np.sum(np.abs(scaled)) / np.sum(np.abs(raw))
        biases[k] = c * scale
        attacks[k] = scaled
    return AttackEnsemble(
        attacks=attacks,
        state_biases=biases,
        measurement_matrix=H.copy(),
        reference_measurements=z.copy(),
        target_ratio=float(target_ratio),
    )


__all__ = ["AttackEnsemble", "generate_attack_ensemble"]
