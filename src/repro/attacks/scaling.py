"""Attack magnitude scaling.

The paper scales random attacks so that ``‖a‖₁ / ‖z‖₁ ≈ 0.08``, i.e. the
injected corruption is small relative to the legitimate measurements, which
makes the resulting detection-probability statistics meaningful (an
arbitrarily large attack is trivially detectable after any perturbation).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AttackConstructionError

#: The relative attack magnitude used in the paper's Monte-Carlo study.
DEFAULT_MEASUREMENT_RATIO: float = 0.08


def scale_attack_to_measurement_ratio(
    attack: np.ndarray,
    measurements: np.ndarray,
    target_ratio: float = DEFAULT_MEASUREMENT_RATIO,
) -> np.ndarray:
    """Rescale ``attack`` so that ``‖a‖₁ / ‖z‖₁`` equals ``target_ratio``.

    Parameters
    ----------
    attack:
        The unscaled attack vector ``a``.
    measurements:
        The legitimate measurement vector ``z`` the ratio is taken against.
    target_ratio:
        Desired value of ``‖a‖₁ / ‖z‖₁`` (default 0.08 as in the paper).

    Returns
    -------
    numpy.ndarray
        The rescaled attack.  Scaling preserves the attack's direction, so a
        stealthy attack stays stealthy.
    """
    a = np.asarray(attack, dtype=float).ravel()
    z = np.asarray(measurements, dtype=float).ravel()
    if a.shape[0] != z.shape[0]:
        raise AttackConstructionError(
            f"attack length {a.shape[0]} does not match measurement count {z.shape[0]}"
        )
    if target_ratio <= 0:
        raise AttackConstructionError(
            f"target_ratio must be strictly positive, got {target_ratio}"
        )
    attack_norm = float(np.sum(np.abs(a)))
    measurement_norm = float(np.sum(np.abs(z)))
    if attack_norm <= 0:
        raise AttackConstructionError("cannot scale an all-zero attack vector")
    if measurement_norm <= 0:
        raise AttackConstructionError("measurement vector has zero L1 norm")
    return a * (target_ratio * measurement_norm / attack_norm)


def attack_measurement_ratio(attack: np.ndarray, measurements: np.ndarray) -> float:
    """Return the current ratio ``‖a‖₁ / ‖z‖₁``."""
    a = np.asarray(attack, dtype=float).ravel()
    z = np.asarray(measurements, dtype=float).ravel()
    measurement_norm = float(np.sum(np.abs(z)))
    if measurement_norm <= 0:
        raise AttackConstructionError("measurement vector has zero L1 norm")
    return float(np.sum(np.abs(a))) / measurement_norm


__all__ = [
    "scale_attack_to_measurement_ratio",
    "attack_measurement_ratio",
    "DEFAULT_MEASUREMENT_RATIO",
]
