"""MultiStart driver for non-linear programs.

The paper solves its non-convex problems (the joint reactance OPF of eq. (1)
and the SPA-constrained MTD design of eq. (4)) with MATLAB's ``fmincon``
wrapped in the MultiStart global-search heuristic.  This module provides the
equivalent: run a local SQP solver (:func:`scipy.optimize.minimize` with
SLSQP) from several starting points and keep the best feasible local
optimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np
from scipy.optimize import NonlinearConstraint, minimize

from repro.exceptions import OPFConvergenceError


@dataclass
class LocalSolve:
    """Outcome of a single local optimisation run."""

    x: np.ndarray
    objective: float
    max_violation: float
    success: bool
    message: str
    iterations: int

    @property
    def feasible(self) -> bool:
        return self.max_violation <= LocalSolve.FEASIBILITY_TOL

    FEASIBILITY_TOL: float = 1e-5


@dataclass
class MultiStartOutcome:
    """Aggregated result of a MultiStart search.

    Attributes
    ----------
    best:
        The best feasible local solve (lowest objective); ``None`` when no
        start converged to a feasible point.
    runs:
        Every local solve, in the order the starts were tried.
    """

    best: LocalSolve | None
    runs: list[LocalSolve] = field(default_factory=list)

    @property
    def n_feasible(self) -> int:
        return sum(1 for run in self.runs if run.feasible)

    def require_best(self) -> LocalSolve:
        """Return the best run or raise :class:`OPFConvergenceError`."""
        if self.best is None:
            best_attempt = min(self.runs, key=lambda r: r.max_violation) if self.runs else None
            raise OPFConvergenceError(
                "no feasible local optimum found by MultiStart "
                f"({len(self.runs)} starts tried)",
                best_result=best_attempt,
            )
        return self.best


class MultiStartOptimizer:
    """Run a local NLP solver from multiple starting points.

    Parameters
    ----------
    objective:
        Callable mapping the decision vector to a scalar cost.
    bounds:
        Sequence of ``(low, high)`` pairs, one per decision variable.
    equality_constraints:
        Callable returning a vector that must equal zero at feasible points
        (or ``None``).
    inequality_constraints:
        Callable returning a vector that must be **non-negative** at feasible
        points (or ``None``), matching scipy's SLSQP convention.
    max_iterations:
        Iteration cap for each local solve.
    tolerance:
        Convergence tolerance passed to the local solver.
    """

    def __init__(
        self,
        objective: Callable[[np.ndarray], float],
        bounds: Sequence[tuple[float | None, float | None]],
        equality_constraints: Callable[[np.ndarray], np.ndarray] | None = None,
        inequality_constraints: Callable[[np.ndarray], np.ndarray] | None = None,
        max_iterations: int = 200,
        tolerance: float = 1e-8,
    ) -> None:
        self._objective = objective
        self._bounds = list(bounds)
        self._eq = equality_constraints
        self._ineq = inequality_constraints
        self._max_iterations = int(max_iterations)
        self._tolerance = float(tolerance)

    # ------------------------------------------------------------------
    def solve(self, starts: Sequence[np.ndarray]) -> MultiStartOutcome:
        """Run the local solver from every start and keep the best feasible run."""
        if not starts:
            raise ValueError("at least one starting point is required")
        runs: list[LocalSolve] = []
        for start in starts:
            runs.append(self._solve_single(np.asarray(start, dtype=float)))
        feasible = [run for run in runs if run.feasible]
        best = min(feasible, key=lambda r: r.objective) if feasible else None
        return MultiStartOutcome(best=best, runs=runs)

    # ------------------------------------------------------------------
    def _solve_single(self, start: np.ndarray) -> LocalSolve:
        constraints = []
        if self._eq is not None:
            constraints.append({"type": "eq", "fun": self._eq})
        if self._ineq is not None:
            constraints.append({"type": "ineq", "fun": self._ineq})
        try:
            result = minimize(
                self._objective,
                start,
                method="SLSQP",
                bounds=self._bounds,
                constraints=constraints,
                options={"maxiter": self._max_iterations, "ftol": self._tolerance},
            )
        except (ValueError, np.linalg.LinAlgError) as exc:
            # A start can push the finite-difference Jacobian into an invalid
            # region (e.g. non-positive reactance just outside the bounds).
            return LocalSolve(
                x=start,
                objective=float("inf"),
                max_violation=float("inf"),
                success=False,
                message=f"local solver error: {exc}",
                iterations=0,
            )
        x = np.asarray(result.x, dtype=float)
        return LocalSolve(
            x=x,
            objective=float(result.fun),
            max_violation=self._max_violation(x),
            success=bool(result.success),
            message=str(result.message),
            iterations=int(getattr(result, "nit", 0) or 0),
        )

    def _max_violation(self, x: np.ndarray) -> float:
        violation = 0.0
        if self._eq is not None:
            eq_values = np.atleast_1d(np.asarray(self._eq(x), dtype=float))
            if eq_values.size:
                violation = max(violation, float(np.max(np.abs(eq_values))))
        if self._ineq is not None:
            ineq_values = np.atleast_1d(np.asarray(self._ineq(x), dtype=float))
            if ineq_values.size:
                violation = max(violation, float(np.max(np.maximum(0.0, -ineq_values))))
        for index, (low, high) in enumerate(self._bounds):
            if low is not None:
                violation = max(violation, float(max(0.0, low - x[index])))
            if high is not None:
                violation = max(violation, float(max(0.0, x[index] - high)))
        return violation


__all__ = ["MultiStartOptimizer", "MultiStartOutcome", "LocalSolve"]
