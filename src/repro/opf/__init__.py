"""Optimal power flow solvers.

Two solvers are provided:

* :func:`~repro.opf.dc_opf.solve_dc_opf` — the classic dispatch-only DC-OPF
  (reactances fixed), a linear program solved with HiGHS via
  :func:`scipy.optimize.linprog`.  This is the problem the system operator
  solves between MTD updates (paper eq. (1) without the reactance decision).
* :func:`~repro.opf.reactance_opf.solve_reactance_opf` — the joint dispatch +
  D-FACTS reactance OPF of paper eq. (1), a non-linear program solved with
  SLSQP under a MultiStart driver (the Python equivalent of the paper's
  ``fmincon`` + MultiStart).  The MTD design problem (paper eq. (4)) reuses
  this machinery and adds the subspace-angle constraint.
"""

from repro.opf.result import OPFResult
from repro.opf.dc_opf import solve_dc_opf
from repro.opf.reactance_opf import ReactanceOPFProblem, solve_reactance_opf
from repro.opf.multistart import MultiStartOptimizer, MultiStartOutcome

__all__ = [
    "OPFResult",
    "solve_dc_opf",
    "solve_reactance_opf",
    "ReactanceOPFProblem",
    "MultiStartOptimizer",
    "MultiStartOutcome",
]
