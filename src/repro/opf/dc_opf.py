"""Dispatch-only DC optimal power flow (paper eq. (1) with fixed reactances).

The problem is a linear program:

.. math::

    \\min_{g, θ} \\; \\sum_i c_i G_i
    \\quad \\text{s.t.} \\quad
    C g − l = B θ, \\;
    −f^{max} ≤ D A^T θ ≤ f^{max}, \\;
    g^{min} ≤ g ≤ g^{max},

with the slack angle fixed to zero.  It is solved with the HiGHS solver via
:func:`scipy.optimize.linprog`.  This is the OPF the operator runs every few
minutes between MTD updates; it is also used to price the *post*-perturbation
system once the MTD reactances have been chosen.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import OPFInfeasibleError
from repro.grid.matrices import (
    NetworkLike,
    branch_flow_matrix,
    non_slack_indices,
    susceptance_matrix,
)
from repro.opf.result import OPFResult


def solve_dc_opf(
    network: NetworkLike,
    reactances: np.ndarray | None = None,
    loads_mw: np.ndarray | None = None,
) -> OPFResult:
    """Solve the dispatch-only DC-OPF.

    Parameters
    ----------
    network:
        Network to dispatch.
    reactances:
        Optional branch-reactance override (per unit, one entry per branch).
        Used to evaluate the cost of an MTD-perturbed system without
        materialising a new network object.
    loads_mw:
        Optional bus-load override (MW, one entry per bus).  Used by the
        dynamic-load experiments.

    Returns
    -------
    OPFResult

    Raises
    ------
    OPFInfeasibleError
        If no feasible dispatch exists (e.g. after an aggressive reactance
        perturbation under tight flow limits).
    """
    base = network.base_mva
    n_gen = network.n_generators
    n_bus = network.n_buses
    keep = non_slack_indices(network)
    n_theta = keep.shape[0]

    loads = network.loads_mw() if loads_mw is None else np.asarray(loads_mw, dtype=float)
    if loads.shape[0] != n_bus:
        raise OPFInfeasibleError(
            f"expected {n_bus} loads, got {loads.shape[0]}", status="bad-input"
        )

    # Per-unit quantities for numerical conditioning.
    loads_pu = loads / base
    p_min, p_max = network.generator_limits_mw()
    costs = network.generator_costs()  # $/MWh
    limits = network.flow_limits_mw() / base

    C = network.arrays.topology.generator_incidence()  # N x G (cached, read-only)
    B = susceptance_matrix(network, reactances)     # N x N (per unit)
    F = branch_flow_matrix(network, reactances)     # L x N (per unit)

    # Decision variables: [g (G, p.u.), theta (N-1, rad)].
    n_var = n_gen + n_theta

    # Objective: minimise sum_i c_i * G_i(MW) = sum_i (c_i * base) * g_i(p.u.).
    objective = np.concatenate([costs * base, np.zeros(n_theta)])

    # Nodal balance: C g − l = B θ  →  C g − B_keep θ = l.
    A_eq = np.zeros((n_bus, n_var))
    A_eq[:, :n_gen] = C
    A_eq[:, n_gen:] = -B[:, keep]
    b_eq = loads_pu

    # Flow limits: −f^max ≤ F_keep θ ≤ f^max (rows with infinite limits dropped).
    finite = np.isfinite(limits)
    F_keep = F[np.ix_(finite, keep)]
    n_limited = int(np.sum(finite))
    A_ub = np.zeros((2 * n_limited, n_var))
    A_ub[:n_limited, n_gen:] = F_keep
    A_ub[n_limited:, n_gen:] = -F_keep
    b_ub = np.concatenate([limits[finite], limits[finite]])

    bounds = [(p_min[g] / base, p_max[g] / base) for g in range(n_gen)]
    bounds += [(None, None)] * n_theta

    solution = linprog(
        objective,
        A_ub=A_ub if n_limited else None,
        b_ub=b_ub if n_limited else None,
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not solution.success:
        raise OPFInfeasibleError(
            f"DC-OPF is infeasible or unbounded: {solution.message}",
            status=str(solution.status),
        )

    dispatch_pu = solution.x[:n_gen]
    theta = np.zeros(n_bus)
    theta[keep] = solution.x[n_gen:]
    flows_pu = F @ theta

    x_solution = network.reactances() if reactances is None else np.asarray(reactances, dtype=float)
    return OPFResult(
        cost=float(solution.fun),
        dispatch_mw=dispatch_pu * base,
        angles_rad=theta,
        flows_mw=flows_pu * base,
        reactances=x_solution.copy(),
        success=True,
        status="optimal",
        iterations=int(getattr(solution, "nit", 0) or 0),
        constraint_violation=0.0,
    )


def opf_cost(network: NetworkLike, reactances: np.ndarray | None = None,
             loads_mw: np.ndarray | None = None) -> float:
    """Convenience wrapper returning only the optimal cost ``C_OPF``."""
    return solve_dc_opf(network, reactances=reactances, loads_mw=loads_mw).cost


__all__ = ["solve_dc_opf", "opf_cost"]
