"""Joint dispatch + D-FACTS reactance OPF (paper eq. (1)).

When D-FACTS devices are installed, the operator may optimise branch
reactances alongside the generation dispatch.  The resulting problem is
non-linear (the nodal balance couples reactances and angles through
``B(x) θ``) and non-convex; following the paper we solve it with a local SQP
method under a MultiStart driver.

The same machinery serves the MTD design problem of eq. (4): the caller adds
extra inequality constraints that depend only on the full branch-reactance
vector (e.g. the subspace-angle constraint ``γ(H_t, H'(x)) ≥ γ_th``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import OPFConvergenceError, OPFInfeasibleError
from repro.grid.matrices import (
    NetworkLike,
    generator_incidence_matrix,
    incidence_matrix,
    non_slack_indices,
)
from repro.opf.dc_opf import solve_dc_opf
from repro.opf.multistart import MultiStartOptimizer
from repro.opf.result import OPFResult
from repro.utils.rng import as_generator

#: Signature of a constraint depending only on the branch reactance vector.
#: The callable must return a value (or vector) that is non-negative when
#: the constraint is satisfied.
ReactanceConstraint = Callable[[np.ndarray], float | np.ndarray]


@dataclass
class ReactanceOPFProblem:
    """The joint dispatch + reactance OPF in decision-vector form.

    The decision vector is ``z = [g (p.u.), θ_non-slack (rad), x_D (p.u.)]``
    where ``x_D`` contains only the reactances of D-FACTS-equipped branches.
    """

    network: NetworkLike
    loads_mw: np.ndarray
    extra_reactance_constraints: tuple[ReactanceConstraint, ...] = ()

    def __post_init__(self) -> None:
        network = self.network
        self.loads_mw = np.asarray(self.loads_mw, dtype=float).ravel()
        if self.loads_mw.shape[0] != network.n_buses:
            raise OPFInfeasibleError(
                f"expected {network.n_buses} loads, got {self.loads_mw.shape[0]}",
                status="bad-input",
            )
        self._base = network.base_mva
        self._n_gen = network.n_generators
        self._keep = non_slack_indices(network)
        self._n_theta = self._keep.shape[0]
        self._dfacts = np.array(network.dfacts_branches, dtype=int)
        self._n_dfacts = self._dfacts.shape[0]
        self._A = incidence_matrix(network)
        self._C = generator_incidence_matrix(network)
        self._costs = network.generator_costs()
        self._p_min, self._p_max = network.generator_limits_mw()
        self._x_nominal = network.reactances()
        self._x_min, self._x_max = network.reactance_bounds()
        self._limits_pu = network.flow_limits_mw() / self._base
        self._finite_limits = np.isfinite(self._limits_pu)
        self._loads_pu = self.loads_mw / self._base

    # ------------------------------------------------------------------
    # Decision-vector layout helpers
    # ------------------------------------------------------------------
    @property
    def n_variables(self) -> int:
        return self._n_gen + self._n_theta + self._n_dfacts

    @property
    def n_dfacts(self) -> int:
        return self._n_dfacts

    def split(self, z: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split ``z`` into ``(g_pu, θ_non-slack, x_D)``."""
        z = np.asarray(z, dtype=float).ravel()
        g = z[: self._n_gen]
        theta = z[self._n_gen : self._n_gen + self._n_theta]
        x_d = z[self._n_gen + self._n_theta :]
        return g, theta, x_d

    def full_reactances(self, x_d: np.ndarray) -> np.ndarray:
        """Expand D-FACTS reactances into the full branch reactance vector."""
        x = self._x_nominal.copy()
        if self._n_dfacts:
            x[self._dfacts] = x_d
        return x

    def full_angles(self, theta_reduced: np.ndarray) -> np.ndarray:
        """Expand reduced angles (non-slack buses) into a full angle vector."""
        theta = np.zeros(self.network.n_buses)
        theta[self._keep] = theta_reduced
        return theta

    # ------------------------------------------------------------------
    # Objective and constraints (SLSQP conventions)
    # ------------------------------------------------------------------
    def objective(self, z: np.ndarray) -> float:
        """Generation cost in $ per hour (scaled to keep SLSQP well conditioned)."""
        g, _, _ = self.split(z)
        return float(np.dot(self._costs * self._base, g)) * self._objective_scale

    #: Objective values around 1e4 $ are rescaled to O(10) for the SQP solver.
    _objective_scale: float = 1e-3

    def cost_from_objective(self, value: float) -> float:
        """Convert a scaled objective value back to $ per hour."""
        return float(value) / self._objective_scale

    def equality_constraints(self, z: np.ndarray) -> np.ndarray:
        """Nodal power balance ``C g − l − B(x) θ`` (p.u.), must be zero."""
        g, theta_red, x_d = self.split(z)
        x = self.full_reactances(x_d)
        theta = self.full_angles(theta_red)
        susceptance = self._A @ np.diag(1.0 / x) @ self._A.T
        return self._C @ g - self._loads_pu - susceptance @ theta

    def inequality_constraints(self, z: np.ndarray) -> np.ndarray:
        """All inequality constraints, non-negative when satisfied."""
        _, theta_red, x_d = self.split(z)
        x = self.full_reactances(x_d)
        theta = self.full_angles(theta_red)
        flows = np.diag(1.0 / x) @ self._A.T @ theta
        parts = []
        if np.any(self._finite_limits):
            limited = self._finite_limits
            parts.append(self._limits_pu[limited] - flows[limited])
            parts.append(self._limits_pu[limited] + flows[limited])
        for constraint in self.extra_reactance_constraints:
            value = np.atleast_1d(np.asarray(constraint(x), dtype=float))
            parts.append(value)
        if not parts:
            return np.zeros(0)
        return np.concatenate(parts)

    def bounds(self) -> list[tuple[float | None, float | None]]:
        """Bounds for ``z``: generator limits, free angles, D-FACTS limits."""
        bounds: list[tuple[float | None, float | None]] = []
        for g in range(self._n_gen):
            bounds.append((self._p_min[g] / self._base, self._p_max[g] / self._base))
        bounds.extend([(-np.pi, np.pi)] * self._n_theta)
        for branch_index in self._dfacts:
            bounds.append((self._x_min[branch_index], self._x_max[branch_index]))
        return bounds

    # ------------------------------------------------------------------
    # Starting points
    # ------------------------------------------------------------------
    def starting_points(
        self,
        n_random: int = 4,
        seed: int | np.random.Generator | None = 0,
    ) -> list[np.ndarray]:
        """Generate MultiStart starting points.

        Each start fixes a candidate D-FACTS reactance vector (the nominal
        values, the box corners, and random interior samples) and warm-starts
        the dispatch and angles from the dispatch-only LP solved at those
        reactances, which gives a point satisfying every constraint except
        possibly the caller's extra reactance constraints.
        """
        rng = as_generator(seed)
        candidates: list[np.ndarray] = []
        if self._n_dfacts:
            nominal = self._x_nominal[self._dfacts]
            lower = self._x_min[self._dfacts]
            upper = self._x_max[self._dfacts]
            candidates.append(nominal)
            candidates.append(lower)
            candidates.append(upper)
            # Alternating corner: odd-indexed devices low, even-indexed high.
            alternating = np.where(np.arange(self._n_dfacts) % 2 == 0, upper, lower)
            candidates.append(alternating)
            for _ in range(max(0, n_random)):
                candidates.append(rng.uniform(lower, upper))
        else:
            candidates.append(np.zeros(0))

        starts = []
        for x_d in candidates:
            starts.append(self._warm_start(x_d))
        return starts

    def _warm_start(self, x_d: np.ndarray) -> np.ndarray:
        x = self.full_reactances(np.asarray(x_d, dtype=float))
        try:
            warm = solve_dc_opf(self.network, reactances=x, loads_mw=self.loads_mw)
            g_pu = warm.dispatch_mw / self._base
            theta_red = warm.angles_rad[self._keep]
        except OPFInfeasibleError:
            # Fall back to a flat start: mid-range dispatch, zero angles.
            g_pu = 0.5 * (self._p_min + self._p_max) / self._base
            theta_red = np.zeros(self._n_theta)
        return np.concatenate([g_pu, theta_red, np.asarray(x_d, dtype=float)])

    # ------------------------------------------------------------------
    def result_from_vector(self, z: np.ndarray, status: str, iterations: int,
                           violation: float) -> OPFResult:
        """Package a solved decision vector into an :class:`OPFResult`."""
        g, theta_red, x_d = self.split(z)
        x = self.full_reactances(x_d)
        theta = self.full_angles(theta_red)
        flows_pu = np.diag(1.0 / x) @ self._A.T @ theta
        cost = float(np.dot(self._costs * self._base, g))
        return OPFResult(
            cost=cost,
            dispatch_mw=g * self._base,
            angles_rad=theta,
            flows_mw=flows_pu * self._base,
            reactances=x,
            success=True,
            status=status,
            iterations=iterations,
            constraint_violation=violation,
        )


def solve_reactance_opf(
    network: NetworkLike,
    loads_mw: np.ndarray | None = None,
    extra_reactance_constraints: Sequence[ReactanceConstraint] = (),
    n_random_starts: int = 4,
    max_iterations: int = 300,
    seed: int | np.random.Generator | None = 0,
) -> OPFResult:
    """Solve the joint dispatch + reactance OPF (paper eq. (1)).

    Parameters
    ----------
    network:
        Network with D-FACTS devices installed on at least one branch (the
        problem degenerates to the dispatch-only LP otherwise, which is then
        solved directly).
    loads_mw:
        Optional load override (MW per bus).
    extra_reactance_constraints:
        Additional inequality constraints evaluated on the *full* branch
        reactance vector; each must return a non-negative value when
        satisfied.  The MTD design problem passes the SPA constraint here.
    n_random_starts:
        Number of random-interior MultiStart points (in addition to the
        nominal and corner starts).
    max_iterations:
        Iteration cap per local solve.
    seed:
        Seed for the random starting points.

    Returns
    -------
    OPFResult

    Raises
    ------
    OPFConvergenceError
        If no MultiStart run reaches a feasible point.
    """
    loads = network.loads_mw() if loads_mw is None else np.asarray(loads_mw, dtype=float)

    if not network.dfacts_branches and not extra_reactance_constraints:
        return solve_dc_opf(network, loads_mw=loads)

    problem = ReactanceOPFProblem(
        network=network,
        loads_mw=loads,
        extra_reactance_constraints=tuple(extra_reactance_constraints),
    )
    optimizer = MultiStartOptimizer(
        objective=problem.objective,
        bounds=problem.bounds(),
        equality_constraints=problem.equality_constraints,
        inequality_constraints=problem.inequality_constraints,
        max_iterations=max_iterations,
    )
    outcome = optimizer.solve(problem.starting_points(n_random=n_random_starts, seed=seed))
    best = outcome.require_best()
    return problem.result_from_vector(
        best.x,
        status=f"slsqp multistart ({outcome.n_feasible}/{len(outcome.runs)} feasible)",
        iterations=best.iterations,
        violation=best.max_violation,
    )


__all__ = ["ReactanceOPFProblem", "solve_reactance_opf", "ReactanceConstraint"]
