"""Result container shared by all OPF solvers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grid.network import PowerNetwork


@dataclass(frozen=True)
class OPFResult:
    """Solution of an optimal power flow problem.

    Attributes
    ----------
    cost:
        Objective value — total generation cost in $ per hour.
    dispatch_mw:
        Generator outputs in MW, ordered by generator index.
    angles_rad:
        Bus voltage phase angles (radians), slack angle zero.
    flows_mw:
        Branch flows in MW.
    reactances:
        Branch reactances (p.u.) at the solution.  Equal to the network's
        nominal reactances for the dispatch-only OPF; for the joint problem
        they include the optimised D-FACTS settings.
    success:
        Whether the solver reports an optimal (feasible) solution.
    status:
        Human-readable solver status message.
    iterations:
        Iteration count reported by the solver (0 when unavailable).
    constraint_violation:
        Maximum constraint violation at the returned point (0 for LP
        solutions; small positive numbers may occur for the non-linear
        solver and are checked against a tolerance by callers).
    """

    cost: float
    dispatch_mw: np.ndarray
    angles_rad: np.ndarray
    flows_mw: np.ndarray
    reactances: np.ndarray
    success: bool
    status: str = ""
    iterations: int = 0
    constraint_violation: float = 0.0

    def total_generation_mw(self) -> float:
        """Total dispatched generation in MW."""
        return float(np.sum(self.dispatch_mw))

    def binding_flow_limits(self, network: PowerNetwork, tol: float = 1e-3) -> list[int]:
        """Branches whose flow is within ``tol`` MW of the limit (congested lines)."""
        limits = network.flow_limits_mw()
        binding = []
        for i in range(network.n_branches):
            if np.isfinite(limits[i]) and abs(abs(self.flows_mw[i]) - limits[i]) <= tol:
                binding.append(i)
        return binding

    def dispatch_by_bus(self, network: PowerNetwork) -> np.ndarray:
        """Aggregate dispatched generation per bus (MW)."""
        per_bus = np.zeros(network.n_buses)
        for gen in network.generators:
            per_bus[gen.bus] += self.dispatch_mw[gen.index]
        return per_bus

    def summary(self) -> str:
        """Short, human-readable description of the solution."""
        return (
            f"OPFResult(cost=${self.cost:,.2f}, "
            f"generation={self.total_generation_mw():.1f} MW, "
            f"success={self.success}, status={self.status!r})"
        )


__all__ = ["OPFResult"]
