"""Power transfer distribution factors (PTDF).

The PTDF matrix maps changes in nodal injections to changes in branch flows
under the DC model.  It is used by the attack-impact analysis (how much an
FDI-induced redispatch shifts line flows) and by diagnostics in the OPF
layer, and offers a convenient cross-check of the DC power-flow solver in
tests.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.linalg

from repro.exceptions import PowerFlowError
from repro.grid.matrices import (
    NetworkLike,
    branch_flow_matrix,
    non_slack_indices,
    reduced_susceptance_matrix,
    reduced_susceptance_matrix_sparse,
    use_sparse_backend,
)


def ptdf_matrix(
    network: NetworkLike,
    reactances: np.ndarray | None = None,
    sparse: bool | None = None,
) -> np.ndarray:
    """Return the ``L x N`` PTDF matrix with respect to the slack bus.

    Column ``i`` gives the change in every branch flow per 1 MW injected at
    bus ``i`` and withdrawn at the slack bus.  The slack column is zero.

    Parameters
    ----------
    network:
        The network to compute distribution factors for.
    reactances:
        Optional branch-reactance override, shape ``(L,)``.
    sparse:
        Backend selection: ``None`` (default) picks the ``scipy.sparse``
        LU path automatically once the bus count reaches
        :data:`~repro.grid.matrices.SPARSE_BUS_THRESHOLD`; ``True`` /
        ``False`` force it.  Both backends agree to solver accuracy.
    """
    keep = non_slack_indices(network)
    flow_map = branch_flow_matrix(network, reactances)  # L x N
    ptdf = np.zeros((network.n_branches, network.n_buses))
    if use_sparse_backend(network, sparse):
        B_red = reduced_susceptance_matrix_sparse(network, reactances)
        try:
            lu = scipy.sparse.linalg.splu(B_red)
        except RuntimeError as exc:
            raise PowerFlowError(
                "susceptance matrix is singular; cannot compute PTDF"
            ) from exc
        # B is symmetric, so solving Bᵀ X = flow_mapᵀ gives X = B⁻¹flow_mapᵀ
        # and the PTDF block is Xᵀ = flow_map B⁻¹ without forming B⁻¹.
        ptdf[:, keep] = lu.solve(np.ascontiguousarray(flow_map[:, keep].T)).T
    else:
        B_red = reduced_susceptance_matrix(network, reactances)
        try:
            B_inv = np.linalg.inv(B_red)
        except np.linalg.LinAlgError as exc:
            raise PowerFlowError(
                "susceptance matrix is singular; cannot compute PTDF"
            ) from exc
        ptdf[:, keep] = flow_map[:, keep] @ B_inv
    return ptdf


def generation_shift_factors(
    network: NetworkLike,
    from_bus: int,
    to_bus: int,
    reactances: np.ndarray | None = None,
) -> np.ndarray:
    """Flow sensitivity to shifting 1 MW of injection from one bus to another.

    Returns an ``L``-vector: entry ``l`` is the change of flow on branch
    ``l`` when 1 MW of generation moves from ``from_bus`` to ``to_bus``.
    """
    if from_bus < 0 or from_bus >= network.n_buses:
        raise PowerFlowError(f"unknown bus index {from_bus}")
    if to_bus < 0 or to_bus >= network.n_buses:
        raise PowerFlowError(f"unknown bus index {to_bus}")
    ptdf = ptdf_matrix(network, reactances)
    return ptdf[:, from_bus] - ptdf[:, to_bus]


def flows_from_injections(
    network: NetworkLike,
    injections_mw: np.ndarray,
    reactances: np.ndarray | None = None,
) -> np.ndarray:
    """Branch flows implied by a balanced injection vector, via the PTDF.

    This is an alternative route to :func:`repro.powerflow.dc.solve_dc_power_flow`
    used for cross-validation in tests.
    """
    injections = np.asarray(injections_mw, dtype=float).ravel()
    if injections.shape[0] != network.n_buses:
        raise PowerFlowError(
            f"expected {network.n_buses} injections, got {injections.shape[0]}"
        )
    return ptdf_matrix(network, reactances) @ injections


__all__ = ["ptdf_matrix", "generation_shift_factors", "flows_from_injections"]
