"""N-1 contingency analysis: LODF factors and incremental PTDF updates.

A branch outage changes the network topology, which historically forced a
full rebuild of every derived matrix (``B``, ``H``, PTDF) per contingency.
This module provides the *incremental* route: the classical line outage
distribution factors (LODF) express every post-outage quantity as a rank-1
update of the base-case PTDF,

.. math::

    \\text{LODF}_{l,k} = \\frac{\\varphi_{l,i_k} - \\varphi_{l,j_k}}
                              {1 - (\\varphi_{k,i_k} - \\varphi_{k,j_k})}

where ``φ`` is the base PTDF and ``(i_k, j_k)`` the terminals of the
outaged branch ``k``.  The post-outage PTDF is then

.. math::  \\varphi' = \\varphi + \\text{LODF}_{:,k} \\, \\varphi_{k,:}

with row ``k`` zeroed (a dead branch carries no flow) — a Sherman–Morrison
rank-1 identity on the reduced susceptance inverse.  The denominator
vanishes exactly when branch ``k`` is a bridge, i.e. when its outage
islands the grid, so a near-zero denominator doubles as the islanding
detector.

Decision policy (mirrored by :func:`post_outage_ptdf`):

* single-branch outage, well-conditioned denominator → rank-1 update;
* denominator within :data:`ISLANDING_TOL` of zero → exact graph check:
  a true bridge raises :class:`~repro.exceptions.IslandingError`, a merely
  ill-conditioned (but connected) outage falls back to a full rebuild;
* multi-branch outage → full rebuild on the status-derived network (the
  rank-1 identity does not compose safely across interacting outages).

The derived-network route (:meth:`PowerNetwork.with_branch_status
<repro.grid.network.PowerNetwork.with_branch_status>`) stays the semantic
ground truth: the golden tests assert the rank-1 results bit-close against
matrices rebuilt from the derived network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import IslandingError, PowerFlowError
from repro.grid.matrices import NetworkLike
from repro.powerflow.ptdf import ptdf_matrix
from repro.telemetry import metrics as _metrics
from repro.telemetry.config import _STATE as _TELEMETRY

#: Denominator magnitude below which a rank-1 LODF update is not trusted.
#: ``1 - (φ_{k,i_k} - φ_{k,j_k})`` is exactly zero for a bridge; values
#: merely *near* zero trigger the exact graph check / rebuild fallback.
ISLANDING_TOL: float = 1e-8


def _count(event: str) -> None:
    """Mirror one contingency-path decision into the telemetry counters."""
    if _TELEMETRY.enabled:
        _metrics.counter(f"contingency.{event}")


def _branch_terminals(network: NetworkLike) -> tuple[np.ndarray, np.ndarray]:
    arrays = network.arrays
    return arrays.branch_from, arrays.branch_to


def _check_branch_index(network: NetworkLike, branch: int) -> int:
    k = int(branch)
    if not (0 <= k < network.n_branches):
        raise PowerFlowError(f"unknown branch index {k}")
    return k


def bridge_branches(network: NetworkLike) -> tuple[int, ...]:
    """Indices of in-service branches whose outage would island the grid.

    Classical bridge finding (iterative Tarjan low-link) over the
    in-service branch multigraph.  Parallel branches between the same bus
    pair are never bridges — the edge *index*, not the neighbour, is
    excluded when recursing — and out-of-service branches neither appear
    as edges nor as candidates.
    """
    arrays = network.arrays
    n = arrays.n_buses
    status = arrays.branch_status
    adjacency: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for k in range(arrays.n_branches):
        if status is not None and not status[k]:
            continue
        u, v = int(arrays.branch_from[k]), int(arrays.branch_to[k])
        adjacency[u].append((v, k))
        adjacency[v].append((u, k))

    order = np.full(n, -1, dtype=int)
    low = np.zeros(n, dtype=int)
    bridges: list[int] = []
    counter = 0
    for root in range(n):
        if order[root] != -1:
            continue
        # Iterative DFS: each stack frame is (node, incoming edge index,
        # iterator position into the adjacency list).
        stack: list[tuple[int, int, int]] = [(root, -1, 0)]
        order[root] = low[root] = counter
        counter += 1
        while stack:
            node, in_edge, pos = stack[-1]
            if pos < len(adjacency[node]):
                stack[-1] = (node, in_edge, pos + 1)
                neighbour, edge = adjacency[node][pos]
                if edge == in_edge:
                    continue
                if order[neighbour] == -1:
                    order[neighbour] = low[neighbour] = counter
                    counter += 1
                    stack.append((neighbour, edge, 0))
                else:
                    low[node] = min(low[node], order[neighbour])
            else:
                stack.pop()
                if stack:
                    parent = stack[-1][0]
                    low[parent] = min(low[parent], low[node])
                    if low[node] > order[parent]:
                        bridges.append(in_edge)
    return tuple(sorted(bridges))


def lodf_matrix(
    network: NetworkLike,
    base_ptdf: np.ndarray | None = None,
    reactances: np.ndarray | None = None,
) -> np.ndarray:
    """The ``L x L`` line outage distribution factor matrix.

    Entry ``(l, k)`` is the fraction of branch ``k``'s pre-outage flow
    that appears on branch ``l`` after ``k`` is outaged.  Columns of
    bridge branches (whose outage islands the grid — zero denominator)
    are set to ``NaN``; the diagonal is ``-1`` (the outaged branch loses
    its own flow).

    Parameters
    ----------
    network:
        The base (pre-outage) network.
    base_ptdf:
        Optional precomputed :func:`~repro.powerflow.ptdf.ptdf_matrix` of
        ``network`` (with the same ``reactances``), to amortise the one
        factorisation a screen needs.
    reactances:
        Optional branch-reactance override, shape ``(L,)``.
    """
    phi = ptdf_matrix(network, reactances) if base_ptdf is None else base_ptdf
    from_bus, to_bus = _branch_terminals(network)
    # Column k of the numerator: sensitivity of every branch flow to the
    # injection pair (+1 at i_k, −1 at j_k) — an L x L gather.
    numerator = phi[:, from_bus] - phi[:, to_bus]
    d = numerator[np.arange(network.n_branches), np.arange(network.n_branches)]
    denominator = 1.0 - d
    with np.errstate(divide="ignore", invalid="ignore"):
        lodf = numerator / denominator[None, :]
    lodf[:, np.abs(denominator) < ISLANDING_TOL] = np.nan
    np.fill_diagonal(lodf, -1.0)
    return lodf


def ptdf_with_branch_outage(
    network: NetworkLike,
    branch: int,
    base_ptdf: np.ndarray | None = None,
    reactances: np.ndarray | None = None,
) -> np.ndarray:
    """Post-outage PTDF of a single branch outage via the rank-1 update.

    Equivalent (to floating-point accuracy; asserted in the golden tests)
    to ``ptdf_matrix(network.with_branch_outages([branch]))`` but reuses
    the base factorisation: given ``base_ptdf`` the update costs one
    ``L x N`` outer product instead of a reduced-``B`` factorisation.

    Raises
    ------
    IslandingError
        When ``branch`` is a bridge (its LODF denominator vanishes).
    """
    k = _check_branch_index(network, branch)
    phi = ptdf_matrix(network, reactances) if base_ptdf is None else base_ptdf
    from_bus, to_bus = _branch_terminals(network)
    column = phi[:, from_bus[k]] - phi[:, to_bus[k]]
    denominator = 1.0 - column[k]
    if abs(denominator) < ISLANDING_TOL:
        raise IslandingError(
            f"branch outage [{k}] islands the network "
            f"(LODF denominator {denominator:.3e} vanishes)",
            branches=(k,),
        )
    _count("rank1_updates")
    updated = phi + np.outer(column / denominator, phi[k, :])
    updated[k, :] = 0.0
    return updated


def post_outage_ptdf(
    network: NetworkLike,
    branches: Sequence[int],
    base_ptdf: np.ndarray | None = None,
    reactances: np.ndarray | None = None,
) -> np.ndarray:
    """Post-outage PTDF for an arbitrary outage set, fast path when possible.

    Single-branch outages take the rank-1 route of
    :func:`ptdf_with_branch_outage`; multi-branch outages (where rank-1
    updates interact) and numerically borderline single outages fall back
    to a full rebuild on the status-derived network.  Islanding outage
    sets raise :class:`~repro.exceptions.IslandingError` on either route.
    """
    outages = sorted({_check_branch_index(network, b) for b in branches})
    if not outages:
        return ptdf_matrix(network, reactances) if base_ptdf is None else base_ptdf.copy()
    if len(outages) == 1:
        k = outages[0]
        phi = ptdf_matrix(network, reactances) if base_ptdf is None else base_ptdf
        from_bus, to_bus = _branch_terminals(network)
        denominator = 1.0 - (phi[k, from_bus[k]] - phi[k, to_bus[k]])
        if abs(denominator) >= ISLANDING_TOL:
            return ptdf_with_branch_outage(
                network, k, base_ptdf=phi, reactances=reactances
            )
        # Borderline denominator: an exact graph check separates a true
        # bridge (raise) from a merely ill-conditioned update (rebuild).
        # with_branch_outages performs the check and raises IslandingError.
    _count("rebuilds")
    derived = network.arrays.with_branch_outages(outages)
    if reactances is not None:
        derived = derived.with_reactances(reactances)
    return ptdf_matrix(derived)


@dataclass(frozen=True)
class ContingencyScreenResult:
    """Outcome of one N-1 screening sweep.

    Attributes
    ----------
    branch_indices:
        The outaged branch per screened contingency, in input order.
    flows_mw:
        Post-outage branch flows, shape ``(n_contingencies, L)``; row
        ``c`` is the flow vector with ``branch_indices[c]`` outaged (its
        own entry zero).
    method:
        ``"incremental"`` or ``"rebuild"`` — the route actually taken.
    """

    branch_indices: tuple[int, ...]
    flows_mw: np.ndarray
    method: str

    def overloads(self, limits_mw: np.ndarray, margin: float = 1.0) -> list[tuple[int, int]]:
        """``(outaged_branch, overloaded_branch)`` pairs exceeding limits."""
        limits = np.asarray(limits_mw, dtype=float).ravel()
        rows, cols = np.nonzero(np.abs(self.flows_mw) > margin * limits[None, :])
        return [(int(self.branch_indices[r]), int(c)) for r, c in zip(rows, cols)]


def screen_branch_outages(
    network: NetworkLike,
    branch_indices: Sequence[int],
    injections_mw: np.ndarray,
    method: str = "auto",
    reactances: np.ndarray | None = None,
    base_ptdf: np.ndarray | None = None,
) -> ContingencyScreenResult:
    """Screen single-branch outages: post-outage flows for each contingency.

    Parameters
    ----------
    network:
        The base network (all screened branches must be in service).
    branch_indices:
        Branches to outage, one contingency each.  A requested bridge
        raises :class:`~repro.exceptions.IslandingError` naming it; use
        :func:`bridge_branches` to pre-filter candidates.
    injections_mw:
        Balanced nodal injection vector, shape ``(N,)``.
    method:
        ``"incremental"`` (LODF flow transfer off one base PTDF,
        default via ``"auto"``) or ``"rebuild"`` (one PTDF factorisation
        per contingency on the status-derived network — the reference the
        incremental path is validated against).
    reactances:
        Optional branch-reactance override for the base case.
    base_ptdf:
        Optional precomputed base PTDF (incremental path only).
    """
    injections = np.asarray(injections_mw, dtype=float).ravel()
    if injections.shape[0] != network.n_buses:
        raise PowerFlowError(
            f"expected {network.n_buses} injections, got {injections.shape[0]}"
        )
    outages = [_check_branch_index(network, b) for b in branch_indices]
    if method == "auto":
        method = "incremental"
    if method not in ("incremental", "rebuild"):
        raise PowerFlowError(
            f"unknown screening method {method!r}; use 'auto', 'incremental' or 'rebuild'"
        )
    if method == "rebuild":
        arrays = network.arrays
        if reactances is not None:
            arrays = arrays.with_reactances(reactances)
        rows = []
        for k in outages:
            derived = arrays.with_branch_outages([k])
            rows.append(ptdf_matrix(derived) @ injections)
        _count("screen_rebuild")
        flows = np.asarray(rows) if rows else np.empty((0, network.n_branches))
        return ContingencyScreenResult(
            branch_indices=tuple(outages), flows_mw=flows, method="rebuild"
        )

    phi = ptdf_matrix(network, reactances) if base_ptdf is None else base_ptdf
    base_flows = phi @ injections
    from_bus, to_bus = _branch_terminals(network)
    k_idx = np.asarray(outages, dtype=np.intp)
    # (L, K) gather: column c is the flow-transfer direction of outage c.
    transfer = phi[:, from_bus[k_idx]] - phi[:, to_bus[k_idx]]
    denominator = 1.0 - transfer[k_idx, np.arange(k_idx.shape[0])]
    islanded = np.abs(denominator) < ISLANDING_TOL
    if np.any(islanded):
        offenders = tuple(int(k) for k in sorted(set(k_idx[islanded].tolist())))
        raise IslandingError(
            f"branch outage {list(offenders)} islands the network "
            "(LODF denominator vanishes)",
            branches=offenders,
        )
    scale = base_flows[k_idx] / denominator
    flows = base_flows[None, :] + (transfer * scale[None, :]).T
    flows[np.arange(k_idx.shape[0]), k_idx] = 0.0
    _count("screen_incremental")
    return ContingencyScreenResult(
        branch_indices=tuple(outages), flows_mw=flows, method="incremental"
    )


__all__ = [
    "ISLANDING_TOL",
    "ContingencyScreenResult",
    "bridge_branches",
    "lodf_matrix",
    "ptdf_with_branch_outage",
    "post_outage_ptdf",
    "screen_branch_outages",
]
