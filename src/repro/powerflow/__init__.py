"""DC power-flow computations.

Implements the linearised (dc) power-flow model adopted by the paper:
branch flows are ``F_l = (θ_i − θ_j) / x_l`` and nodal balance is
``g − l = B θ`` with ``B = A D Aᵀ``.
"""

from repro.powerflow.dc import DCPowerFlowResult, solve_dc_power_flow, flows_from_angles
from repro.powerflow.ptdf import ptdf_matrix, generation_shift_factors
from repro.powerflow.contingency import (
    ContingencyScreenResult,
    bridge_branches,
    lodf_matrix,
    post_outage_ptdf,
    ptdf_with_branch_outage,
    screen_branch_outages,
)

__all__ = [
    "DCPowerFlowResult",
    "solve_dc_power_flow",
    "flows_from_angles",
    "ptdf_matrix",
    "generation_shift_factors",
    "ContingencyScreenResult",
    "bridge_branches",
    "lodf_matrix",
    "post_outage_ptdf",
    "ptdf_with_branch_outage",
    "screen_branch_outages",
]
