"""DC power-flow solver.

The DC model treats the network as a linear resistive analogue: given the
net nodal injections ``p = g − l`` (in MW), the bus voltage phase angles
solve the reduced linear system ``B_red θ_red = p_red`` with the slack angle
fixed to zero, and the branch flows follow as ``f = D Aᵀ θ``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse.linalg

from repro.exceptions import PowerFlowError
from repro.grid.matrices import (
    NetworkLike,
    branch_flow_matrix,
    non_slack_indices,
    reduced_susceptance_matrix,
    reduced_susceptance_matrix_sparse,
    use_sparse_backend,
)


@dataclass(frozen=True)
class DCPowerFlowResult:
    """Outcome of a DC power-flow solution.

    Attributes
    ----------
    angles_rad:
        Bus voltage phase angles in radians (slack angle is zero), ordered
        by bus index.
    flows_mw:
        Branch active-power flows in MW, ordered by branch index, positive
        in the from→to direction.
    injections_mw:
        Net nodal injections used as input, in MW.
    slack_injection_mw:
        The injection at the slack bus implied by the other injections
        (i.e. minus their sum), useful when the caller supplies only
        non-slack injections.
    """

    angles_rad: np.ndarray
    flows_mw: np.ndarray
    injections_mw: np.ndarray
    slack_injection_mw: float

    def max_loading(self, limits_mw: np.ndarray) -> float:
        """Return the maximum branch loading ratio ``|f| / F^max``."""
        limits = np.asarray(limits_mw, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.abs(self.flows_mw) / limits
        ratios = np.where(np.isfinite(ratios), ratios, 0.0)
        return float(np.max(ratios)) if ratios.size else 0.0

    def overloaded_branches(self, limits_mw: np.ndarray, tol: float = 1e-6) -> list[int]:
        """Indices of branches whose |flow| exceeds the limit by more than ``tol``."""
        limits = np.asarray(limits_mw, dtype=float)
        return [
            int(i)
            for i in range(self.flows_mw.shape[0])
            if np.isfinite(limits[i]) and abs(self.flows_mw[i]) > limits[i] + tol
        ]


def solve_dc_power_flow(
    network: NetworkLike,
    injections_mw: np.ndarray | None = None,
    generation_mw: np.ndarray | None = None,
    reactances: np.ndarray | None = None,
    balance_at_slack: bool = True,
    sparse: bool | None = None,
) -> DCPowerFlowResult:
    """Solve the DC power flow for ``network``.

    Exactly one of ``injections_mw`` (per-bus net injections) or
    ``generation_mw`` (per-generator outputs, combined with the network's
    loads) must describe the injections; if both are omitted the network
    loads are used with zero generation (useful only for testing).

    Parameters
    ----------
    network:
        The network to solve.
    injections_mw:
        Net injection per bus (generation minus load), in MW.
    generation_mw:
        Output of each generator in MW (ordered by generator index); the
        bus-level injection is computed as ``C g − l``.
    reactances:
        Optional branch-reactance override (one entry per branch).
    balance_at_slack:
        When true (default), any active-power imbalance is absorbed by the
        slack bus, mirroring the standard DC power-flow convention.  When
        false, an imbalance larger than 1e-6 of the total load raises
        :class:`PowerFlowError`.
    sparse:
        Backend selection: ``None`` (default) picks the ``scipy.sparse`` LU
        path automatically once the bus count reaches
        :data:`~repro.grid.matrices.SPARSE_BUS_THRESHOLD`; ``True`` /
        ``False`` force it (e.g. to cross-check the backends on a large
        network).

    Returns
    -------
    DCPowerFlowResult
    """
    injections = _resolve_injections(network, injections_mw, generation_mw)

    slack = network.slack_bus
    imbalance = float(np.sum(injections))
    if balance_at_slack:
        injections = injections.copy()
        injections[slack] -= imbalance
    else:
        scale = max(1.0, network.total_load_mw())
        if abs(imbalance) > 1e-6 * scale:
            raise PowerFlowError(
                f"net injections do not balance (residual {imbalance:.6f} MW) "
                "and balance_at_slack is disabled"
            )

    keep = non_slack_indices(network)
    if use_sparse_backend(network, sparse):
        # Large networks route through the scipy.sparse LU backend (see
        # repro.grid.matrices.SPARSE_BUS_THRESHOLD); small cases keep the
        # dense solve whose numerics the paper-reproduction tests pin.
        B_red = reduced_susceptance_matrix_sparse(network, reactances)
        try:
            theta_red = scipy.sparse.linalg.splu(B_red).solve(injections[keep])
        except RuntimeError as exc:
            raise PowerFlowError(
                "susceptance matrix is singular; the network appears disconnected"
            ) from exc
    else:
        B_red = reduced_susceptance_matrix(network, reactances)
        try:
            theta_red = np.linalg.solve(B_red, injections[keep])
        except np.linalg.LinAlgError as exc:
            raise PowerFlowError(
                "susceptance matrix is singular; the network appears disconnected"
            ) from exc

    angles = np.zeros(network.n_buses)
    angles[keep] = theta_red
    flows = flows_from_angles(network, angles, reactances)
    return DCPowerFlowResult(
        angles_rad=angles,
        flows_mw=flows,
        injections_mw=injections,
        slack_injection_mw=float(injections[slack]),
    )


def flows_from_angles(
    network: NetworkLike,
    angles_rad: np.ndarray,
    reactances: np.ndarray | None = None,
) -> np.ndarray:
    """Compute branch flows (MW) from bus angles using ``f = D Aᵀ θ``."""
    angles = np.asarray(angles_rad, dtype=float).ravel()
    if angles.shape[0] != network.n_buses:
        raise PowerFlowError(
            f"expected {network.n_buses} angles, got {angles.shape[0]}"
        )
    return branch_flow_matrix(network, reactances) @ angles


def _resolve_injections(
    network: NetworkLike,
    injections_mw: np.ndarray | None,
    generation_mw: np.ndarray | None,
) -> np.ndarray:
    if injections_mw is not None and generation_mw is not None:
        raise PowerFlowError(
            "provide either injections_mw or generation_mw, not both"
        )
    if injections_mw is not None:
        injections = np.asarray(injections_mw, dtype=float).ravel()
        if injections.shape[0] != network.n_buses:
            raise PowerFlowError(
                f"expected {network.n_buses} injections, got {injections.shape[0]}"
            )
        return injections.copy()
    arrays = network.arrays
    loads = arrays.loads_mw()
    if generation_mw is None:
        return -loads
    generation = np.asarray(generation_mw, dtype=float).ravel()
    if generation.shape[0] != arrays.n_generators:
        raise PowerFlowError(
            f"expected {arrays.n_generators} generator outputs, got {generation.shape[0]}"
        )
    injections = -loads
    # Unbuffered scatter-add in generator order: identical accumulation
    # order (hence bit-identical floats) to the historical per-object loop,
    # including generators sharing a bus.
    np.add.at(injections, arrays.gen_bus, generation)
    return injections


__all__ = ["DCPowerFlowResult", "solve_dc_power_flow", "flows_from_angles"]
