"""Load profiles for the dynamic-load experiments."""

from repro.loads.profiles import (
    nyiso_like_winter_day,
    scale_profile_to_band,
    hourly_loads_for_network,
)

__all__ = [
    "nyiso_like_winter_day",
    "scale_profile_to_band",
    "hourly_loads_for_network",
]
