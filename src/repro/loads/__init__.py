"""Load profiles for the dynamic-load experiments."""

from repro.loads.profiles import (
    PROFILE_SHAPES,
    available_shapes,
    day_shape,
    nyiso_like_winter_day,
    multi_day_profile,
    profile_for_network,
    scale_profile_to_band,
    hourly_loads_for_network,
)

__all__ = [
    "PROFILE_SHAPES",
    "available_shapes",
    "day_shape",
    "nyiso_like_winter_day",
    "multi_day_profile",
    "profile_for_network",
    "scale_profile_to_band",
    "hourly_loads_for_network",
]
