"""Hourly load profiles: daily shapes, multi-day horizons, normalisation.

The paper drives its dynamic-load experiments (Figs. 9-11) with the NYISO
hourly load trace of 25 January 2016.  That trace is not redistributable, so
this module provides synthetic day *shapes* with the same qualitative
structure — an overnight trough, a morning ramp, a midday plateau and an
evening peak around 6-7 PM for the winter weekday the paper uses — plus
weekend and summer variants for the time-series operation engine's longer
horizons.  Only the shape matters for the reproduced results: the MTD
operational cost rises with system load because congestion forces
redispatch, and the daily peak is where the trade-off bites.

Three layers build on the shapes:

* :func:`day_shape` / :data:`PROFILE_SHAPES` — normalised 24-hour shapes;
* :func:`multi_day_profile` — concatenate day shapes into an N-day horizon
  and affinely scale the whole horizon into an absolute MW band;
* :func:`profile_for_network` — per-case normalisation: express the band as
  fractions of a network's nominal total load, so the same spec drives any
  registered case at a comparable stress level.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.grid.network import PowerNetwork

#: Normalised (peak = 1.0) hourly shape of a winter weekday, hour 0 = 1 AM,
#: mirroring the qualitative shape of the NYISO 25-JAN-2016 trace used in
#: the paper: trough around 3-4 AM, morning ramp from 6 AM, sustained
#: daytime level, evening peak at 6-7 PM, decline towards midnight.
_WINTER_WEEKDAY_SHAPE = np.array(
    [
        0.700,  # 1 AM
        0.672,  # 2 AM
        0.655,  # 3 AM
        0.650,  # 4 AM
        0.664,  # 5 AM
        0.705,  # 6 AM
        0.780,  # 7 AM
        0.855,  # 8 AM
        0.895,  # 9 AM
        0.910,  # 10 AM
        0.918,  # 11 AM
        0.920,  # 12 PM
        0.915,  # 1 PM
        0.910,  # 2 PM
        0.905,  # 3 PM
        0.912,  # 4 PM
        0.945,  # 5 PM
        1.000,  # 6 PM  (evening peak)
        0.990,  # 7 PM
        0.960,  # 8 PM
        0.925,  # 9 PM
        0.880,  # 10 PM
        0.820,  # 11 PM
        0.755,  # 12 AM
    ]
)

#: Winter weekend: no commuter morning ramp — demand rises later and more
#: gently, the midday level sits below the weekday plateau, and the evening
#: peak (still around 7 PM) stays a few percent below the weekday's, so a
#: mixed weekday/weekend horizon keeps its relative day-to-day levels.
_WINTER_WEEKEND_SHAPE = 0.93 * np.array(
    [
        0.710,  # 1 AM
        0.680,  # 2 AM
        0.660,  # 3 AM
        0.652,  # 4 AM
        0.660,  # 5 AM
        0.678,  # 6 AM
        0.705,  # 7 AM
        0.745,  # 8 AM
        0.790,  # 9 AM
        0.830,  # 10 AM
        0.855,  # 11 AM
        0.868,  # 12 PM
        0.870,  # 1 PM
        0.865,  # 2 PM
        0.862,  # 3 PM
        0.875,  # 4 PM
        0.920,  # 5 PM
        0.985,  # 6 PM  (evening peak, slightly below the weekday's)
        1.000,  # 7 PM
        0.965,  # 8 PM
        0.930,  # 9 PM
        0.885,  # 10 PM
        0.830,  # 11 PM
        0.765,  # 12 AM
    ]
)

#: Summer weekday: cooling load builds through the day to a broad
#: mid-afternoon peak (4-5 PM) instead of the winter evening spike, a few
#: percent below the winter-weekday peak for the NYISO-like band used here.
_SUMMER_WEEKDAY_SHAPE = 0.97 * np.array(
    [
        0.660,  # 1 AM
        0.630,  # 2 AM
        0.612,  # 3 AM
        0.605,  # 4 AM
        0.615,  # 5 AM
        0.650,  # 6 AM
        0.715,  # 7 AM
        0.790,  # 8 AM
        0.855,  # 9 AM
        0.905,  # 10 AM
        0.940,  # 11 AM
        0.965,  # 12 PM
        0.980,  # 1 PM
        0.990,  # 2 PM
        0.997,  # 3 PM
        1.000,  # 4 PM  (afternoon cooling peak)
        0.998,  # 5 PM
        0.985,  # 6 PM
        0.955,  # 7 PM
        0.920,  # 8 PM
        0.885,  # 9 PM
        0.840,  # 10 PM
        0.780,  # 11 PM
        0.715,  # 12 AM
    ]
)

#: Registered day shapes, hour 0 = 1 AM, normalised so the *strongest* day
#: (the winter weekday) peaks at 1.0 and the other shapes keep their level
#: relative to it.
PROFILE_SHAPES: dict[str, np.ndarray] = {
    "winter-weekday": _WINTER_WEEKDAY_SHAPE,
    "winter-weekend": _WINTER_WEEKEND_SHAPE,
    "summer-weekday": _SUMMER_WEEKDAY_SHAPE,
    "flat": np.ones(24),
}


def available_shapes() -> tuple[str, ...]:
    """Sorted names of the registered 24-hour day shapes."""
    return tuple(sorted(PROFILE_SHAPES))


def day_shape(name: str) -> np.ndarray:
    """Return a copy of the normalised 24-hour shape registered as ``name``."""
    key = str(name).strip().lower()
    if key not in PROFILE_SHAPES:
        raise ConfigurationError(
            f"unknown profile shape {name!r}; available: {', '.join(available_shapes())}"
        )
    return PROFILE_SHAPES[key].copy()


def nyiso_like_winter_day(
    peak_load_mw: float = 220.0,
    min_load_mw: float = 143.0,
) -> np.ndarray:
    """Return 24 hourly total-load values with a winter-weekday shape.

    Parameters
    ----------
    peak_load_mw:
        Total system load at the evening peak (defaults to the ≈220 MW the
        paper's Fig. 10 shows for the scaled 14-bus system).
    min_load_mw:
        Total system load at the overnight trough (default ≈143 MW).

    Returns
    -------
    numpy.ndarray
        24 values, hour 0 corresponding to 1 AM as in the paper's plots.
    """
    if peak_load_mw <= 0 or min_load_mw <= 0:
        raise ConfigurationError("load levels must be positive")
    if min_load_mw >= peak_load_mw:
        raise ConfigurationError(
            f"min_load_mw ({min_load_mw}) must be below peak_load_mw ({peak_load_mw})"
        )
    return scale_profile_to_band(_WINTER_WEEKDAY_SHAPE, min_load_mw, peak_load_mw)


def scale_profile_to_band(
    shape: np.ndarray, low: float, high: float
) -> np.ndarray:
    """Affinely rescale a profile so its minimum is ``low`` and maximum ``high``."""
    profile = np.asarray(shape, dtype=float).ravel()
    if profile.size == 0:
        raise ConfigurationError("profile must contain at least one value")
    lo, hi = float(np.min(profile)), float(np.max(profile))
    if hi - lo < 1e-12:
        return np.full(profile.shape, 0.5 * (low + high))
    return low + (profile - lo) * (high - low) / (hi - lo)


def multi_day_profile(
    day_shapes: Sequence[str],
    peak_load_mw: float,
    min_load_mw: float,
) -> np.ndarray:
    """Hourly total loads over several days, scaled into one absolute band.

    The named day shapes are concatenated (24 hours each) and the *whole
    horizon* is affinely rescaled so its minimum is ``min_load_mw`` and its
    maximum ``peak_load_mw`` — weekend/summer days therefore keep their
    relative level against the strongest day rather than each being
    stretched to the same peak.

    Parameters
    ----------
    day_shapes:
        One registered shape name (see :func:`available_shapes`) per day,
        in order, e.g. ``["winter-weekday"] * 5 + ["winter-weekend"] * 2``.
    peak_load_mw, min_load_mw:
        Total-load band of the horizon.
    """
    if not day_shapes:
        raise ConfigurationError("multi_day_profile needs at least one day shape")
    if peak_load_mw <= 0 or min_load_mw <= 0:
        raise ConfigurationError("load levels must be positive")
    if min_load_mw >= peak_load_mw:
        raise ConfigurationError(
            f"min_load_mw ({min_load_mw}) must be below peak_load_mw ({peak_load_mw})"
        )
    horizon = np.concatenate([day_shape(name) for name in day_shapes])
    return scale_profile_to_band(horizon, min_load_mw, peak_load_mw)


def profile_for_network(
    network: PowerNetwork,
    day_shapes: Sequence[str] = ("winter-weekday",),
    peak_fraction: float = 1.0,
    min_fraction: float = 0.65,
) -> np.ndarray:
    """Multi-day hourly totals normalised to a network's nominal load.

    The per-case analogue of :func:`multi_day_profile`: the band is
    expressed as fractions of the network's nominal total load, so one
    profile specification stresses any registered case at a comparable
    level (``peak_fraction=1.0`` peaks at the nominal dispatch point).
    """
    if peak_fraction <= 0 or min_fraction <= 0:
        raise ConfigurationError("profile fractions must be positive")
    nominal_total = network.total_load_mw()
    if nominal_total <= 0:
        raise ConfigurationError(
            "the network has zero total load; cannot normalise a profile to it"
        )
    return multi_day_profile(
        day_shapes,
        peak_load_mw=nominal_total * peak_fraction,
        min_load_mw=nominal_total * min_fraction,
    )


def hourly_loads_for_network(
    network: PowerNetwork,
    hourly_totals_mw: np.ndarray | None = None,
) -> list[np.ndarray]:
    """Per-bus load vectors for each hour, keeping the nominal proportions.

    Parameters
    ----------
    network:
        Network whose nominal per-bus loads define the spatial distribution.
    hourly_totals_mw:
        Hourly total loads; defaults to :func:`nyiso_like_winter_day`.

    Returns
    -------
    list of numpy.ndarray
        One per-bus load vector (MW) per hour.
    """
    totals = nyiso_like_winter_day() if hourly_totals_mw is None else np.asarray(hourly_totals_mw, dtype=float)
    nominal = network.loads_mw()
    nominal_total = float(np.sum(nominal))
    if nominal_total <= 0:
        raise ConfigurationError("the network has zero total load; cannot scale a profile")
    return [nominal * (total / nominal_total) for total in totals]


__all__ = [
    "PROFILE_SHAPES",
    "available_shapes",
    "day_shape",
    "nyiso_like_winter_day",
    "multi_day_profile",
    "profile_for_network",
    "scale_profile_to_band",
    "hourly_loads_for_network",
]
