"""Hourly load profiles.

The paper drives its dynamic-load experiments (Figs. 9-11) with the NYISO
hourly load trace of 25 January 2016.  That trace is not redistributable, so
this module provides a synthetic winter-weekday profile with the same
qualitative shape — an overnight trough, a morning ramp, a midday plateau
and an evening peak around 6-7 PM — normalised to the same total-load band
(≈140-220 MW) the paper plots for the scaled IEEE 14-bus system.  Only that
shape matters for the reproduced results: the MTD operational cost rises
with system load because congestion forces redispatch, and the evening peak
is where the trade-off bites.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.grid.network import PowerNetwork

#: Normalised (peak = 1.0) hourly shape of a winter weekday, hour 0 = 1 AM,
#: mirroring the qualitative shape of the NYISO 25-JAN-2016 trace used in
#: the paper: trough around 3-4 AM, morning ramp from 6 AM, sustained
#: daytime level, evening peak at 6-7 PM, decline towards midnight.
_WINTER_WEEKDAY_SHAPE = np.array(
    [
        0.700,  # 1 AM
        0.672,  # 2 AM
        0.655,  # 3 AM
        0.650,  # 4 AM
        0.664,  # 5 AM
        0.705,  # 6 AM
        0.780,  # 7 AM
        0.855,  # 8 AM
        0.895,  # 9 AM
        0.910,  # 10 AM
        0.918,  # 11 AM
        0.920,  # 12 PM
        0.915,  # 1 PM
        0.910,  # 2 PM
        0.905,  # 3 PM
        0.912,  # 4 PM
        0.945,  # 5 PM
        1.000,  # 6 PM  (evening peak)
        0.990,  # 7 PM
        0.960,  # 8 PM
        0.925,  # 9 PM
        0.880,  # 10 PM
        0.820,  # 11 PM
        0.755,  # 12 AM
    ]
)


def nyiso_like_winter_day(
    peak_load_mw: float = 220.0,
    min_load_mw: float = 143.0,
) -> np.ndarray:
    """Return 24 hourly total-load values with a winter-weekday shape.

    Parameters
    ----------
    peak_load_mw:
        Total system load at the evening peak (defaults to the ≈220 MW the
        paper's Fig. 10 shows for the scaled 14-bus system).
    min_load_mw:
        Total system load at the overnight trough (default ≈143 MW).

    Returns
    -------
    numpy.ndarray
        24 values, hour 0 corresponding to 1 AM as in the paper's plots.
    """
    if peak_load_mw <= 0 or min_load_mw <= 0:
        raise ConfigurationError("load levels must be positive")
    if min_load_mw >= peak_load_mw:
        raise ConfigurationError(
            f"min_load_mw ({min_load_mw}) must be below peak_load_mw ({peak_load_mw})"
        )
    return scale_profile_to_band(_WINTER_WEEKDAY_SHAPE, min_load_mw, peak_load_mw)


def scale_profile_to_band(
    shape: np.ndarray, low: float, high: float
) -> np.ndarray:
    """Affinely rescale a profile so its minimum is ``low`` and maximum ``high``."""
    profile = np.asarray(shape, dtype=float).ravel()
    if profile.size == 0:
        raise ConfigurationError("profile must contain at least one value")
    lo, hi = float(np.min(profile)), float(np.max(profile))
    if hi - lo < 1e-12:
        return np.full(profile.shape, 0.5 * (low + high))
    return low + (profile - lo) * (high - low) / (hi - lo)


def hourly_loads_for_network(
    network: PowerNetwork,
    hourly_totals_mw: np.ndarray | None = None,
) -> list[np.ndarray]:
    """Per-bus load vectors for each hour, keeping the nominal proportions.

    Parameters
    ----------
    network:
        Network whose nominal per-bus loads define the spatial distribution.
    hourly_totals_mw:
        Hourly total loads; defaults to :func:`nyiso_like_winter_day`.

    Returns
    -------
    list of numpy.ndarray
        One per-bus load vector (MW) per hour.
    """
    totals = nyiso_like_winter_day() if hourly_totals_mw is None else np.asarray(hourly_totals_mw, dtype=float)
    nominal = network.loads_mw()
    nominal_total = float(np.sum(nominal))
    if nominal_total <= 0:
        raise ConfigurationError("the network has zero total load; cannot scale a profile")
    return [nominal * (total / nominal_total) for total in totals]


__all__ = [
    "nyiso_like_winter_day",
    "scale_profile_to_band",
    "hourly_loads_for_network",
]
