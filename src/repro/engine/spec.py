"""Declarative scenario specifications.

A :class:`ScenarioSpec` names everything a Monte-Carlo experiment of the
paper depends on — grid case, operating baseline, attack model, MTD policy,
detector configuration and trial budget — as a frozen, hashable value
object.  Specs round-trip losslessly through ``dict``/JSON, and expose a
stable content hash (:meth:`ScenarioSpec.content_hash`) that identifies the
*result* of running them: two specs with the same hash produce bit-identical
trial outcomes, which is what the on-disk cache keys on.

Labelling fields (``name``, ``description``, ``tags``) are excluded from the
hash so that renaming a scenario does not invalidate cached results.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field, fields, is_dataclass, replace
from typing import Any, Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.timeseries.spec import OperationSpec

#: Bumped whenever the trial semantics change in a way that invalidates
#: previously cached results (the version participates in the content hash).
#: Version 2: the batched trial kernel — detection probabilities are
#: evaluated with vectorised BLAS kernels, which shifts results by
#: floating-point rounding relative to the version-1 per-attack loops.
SPEC_SCHEMA_VERSION = 2

#: Spec fields that label a scenario without affecting its outcome.
_LABEL_FIELDS = ("name", "description", "tags")

#: Spec fields that tune *how* a scenario executes without affecting its
#: outcome (batched results are bit-identical to serial ones, and the
#: factorization backends agree within solver tolerance — the dense path
#: is unchanged), and are therefore excluded from the content hash like
#: the label fields.
_EXECUTION_FIELDS = ("batch_size", "backend")


def _freeze(value: Any) -> Any:
    """Recursively convert lists to tuples so spec fields stay hashable."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    return value


@dataclass(frozen=True)
class GridSpec:
    """Which network a scenario runs on and how it is dispatched.

    Attributes
    ----------
    case:
        Name in the case registry (:func:`repro.grid.cases.load_case`),
        e.g. ``"ieee14"`` or ``"synthetic57"`` — or a file-referenced
        MATPOWER case: names ending in ``.m`` resolve to an existing path
        or a bundled case file (``"case30.m"``), loaded through
        :mod:`repro.grid.matpower`, so any standard test case can back a
        scenario.  Note the content hash covers the case *name*, not the
        file bytes: after editing a referenced ``.m`` file, use a new file
        name (or clear the cache/store) so stale results are not replayed,
        and prefer absolute paths when campaigns may resume from another
        working directory.
    case_kwargs:
        Extra keyword arguments for the case factory, stored as a sorted
        tuple of ``(key, value)`` pairs so the spec stays hashable.
    load_scale:
        Multiplier applied to every nominal bus load (1.0 = nominal); used
        by the daily-operation scenarios to sweep the load profile.
    baseline:
        Operating-point solver: ``"dc-opf"`` (dispatch-only OPF) or
        ``"reactance-opf"`` (joint dispatch + D-FACTS OPF of paper eq. (1)).
    """

    case: str = "ieee14"
    case_kwargs: tuple[tuple[str, Any], ...] = ()
    load_scale: float = 1.0
    baseline: str = "dc-opf"

    def __post_init__(self) -> None:
        if self.baseline not in ("dc-opf", "reactance-opf"):
            raise ConfigurationError(
                f"baseline must be 'dc-opf' or 'reactance-opf', got {self.baseline!r}"
            )
        if self.load_scale <= 0:
            raise ConfigurationError(f"load_scale must be positive, got {self.load_scale}")
        object.__setattr__(self, "case_kwargs", _freeze(self.case_kwargs))

    def kwargs(self) -> dict[str, Any]:
        """The case factory keyword arguments as a plain dict."""
        return {k: v for k, v in self.case_kwargs}


@dataclass(frozen=True)
class AttackSpec:
    """The attacker model: a random stealthy-FDI ensemble.

    Attributes
    ----------
    n_attacks:
        Ensemble size (the paper uses 1000).
    ratio:
        Attack magnitude ``‖a‖₁/‖z‖₁`` (the paper uses ≈0.08).
    seed:
        Ensemble seed.  An integer pins the *same* ensemble for every trial
        (the paper's setup: trials vary the defense, not the attacks);
        ``None`` draws a fresh ensemble from each trial's private stream so
        the Monte-Carlo average is also over attack draws.
    """

    n_attacks: int = 200
    ratio: float = 0.08
    seed: int | None = 1

    def __post_init__(self) -> None:
        if self.n_attacks <= 0:
            raise ConfigurationError(f"n_attacks must be positive, got {self.n_attacks}")
        if self.ratio <= 0:
            raise ConfigurationError(f"ratio must be positive, got {self.ratio}")


@dataclass(frozen=True)
class DetectorSpec:
    """Measurement-noise and bad-data-detector configuration.

    Attributes
    ----------
    noise_sigma:
        Measurement noise standard deviation (p.u.).
    false_positive_rate:
        BDD false-positive rate ``α``.
    method:
        How per-attack detection probabilities are computed:
        ``"analytic"`` (noncentral-χ², fast) or ``"monte-carlo"`` (the
        paper's procedure — ``n_noise_trials`` noisy measurement draws per
        attack, drawn from the trial's private noise stream).
    n_noise_trials:
        Noise draws per attack for the Monte-Carlo method.
    """

    noise_sigma: float = 0.0015
    false_positive_rate: float = 5e-4
    method: str = "analytic"
    n_noise_trials: int = 1000

    def __post_init__(self) -> None:
        if self.noise_sigma <= 0:
            raise ConfigurationError(f"noise_sigma must be positive, got {self.noise_sigma}")
        if not (0.0 < self.false_positive_rate < 1.0):
            raise ConfigurationError(
                f"false_positive_rate must be in (0, 1), got {self.false_positive_rate}"
            )
        if self.method not in ("analytic", "monte-carlo"):
            raise ConfigurationError(
                f"method must be 'analytic' or 'monte-carlo', got {self.method!r}"
            )
        if self.n_noise_trials <= 0:
            raise ConfigurationError(
                f"n_noise_trials must be positive, got {self.n_noise_trials}"
            )


@dataclass(frozen=True)
class MTDSpec:
    """The defender's moving-target policy.

    Attributes
    ----------
    policy:
        ``"designed"`` — the paper's SPA-constrained design (eq. (4));
        ``"random"`` — the prior-work baseline drawing a random perturbation
        per trial; ``"none"`` — no perturbation (control).
    gamma_threshold:
        SPA target ``γ_th`` in radians for the designed policy.
    design_method:
        ``"joint"``, ``"two-stage"`` or ``"max-spa"``
        (see :func:`repro.mtd.design.design_mtd_perturbation`).
    max_relative_change:
        Per-line relative reactance bound of the random policy (paper: 0.02).
    perturb_all_dfacts:
        Random policy: perturb every D-FACTS line (paper setup) or a random
        non-empty subset per trial.
    include_cost:
        Also solve the post-perturbation OPF and record the MTD cost premium
        per trial (adds one OPF solve per trial).
    on_infeasible:
        What the designed policy does when the D-FACTS range cannot reach
        ``gamma_threshold``: ``"saturate"`` (default) falls back to the
        maximum-SPA perturbation — the natural endpoint of the paper's
        γ_th sweeps — while ``"raise"`` propagates the design error.
    """

    policy: str = "designed"
    gamma_threshold: float | None = 0.25
    design_method: str = "two-stage"
    max_relative_change: float = 0.02
    perturb_all_dfacts: bool = True
    include_cost: bool = False
    on_infeasible: str = "saturate"

    def __post_init__(self) -> None:
        if self.policy not in ("designed", "random", "none"):
            raise ConfigurationError(
                f"policy must be 'designed', 'random' or 'none', got {self.policy!r}"
            )
        if self.policy == "designed":
            if self.gamma_threshold is None:
                raise ConfigurationError("the designed policy requires gamma_threshold")
            if not (0.0 <= self.gamma_threshold <= math.pi / 2):
                raise ConfigurationError(
                    "gamma_threshold must lie in [0, pi/2] radians, "
                    f"got {self.gamma_threshold}"
                )
        if self.on_infeasible not in ("saturate", "raise"):
            raise ConfigurationError(
                f"on_infeasible must be 'saturate' or 'raise', got {self.on_infeasible!r}"
            )
        if self.max_relative_change <= 0:
            raise ConfigurationError(
                f"max_relative_change must be positive, got {self.max_relative_change}"
            )


@dataclass(frozen=True)
class ContingencySpec:
    """An N-k contingency applied to the scenario's network.

    Outage lists are first-class sweep dimensions: ``expand_grid(base,
    {"contingency.branch_outages": [(0,), (1,), ...]})`` fans a base
    scenario out into one spec per contingency, each content-hashed like
    every other spec, so campaigns cache/resume per outage.

    Attributes
    ----------
    branch_outages:
        Branch indices taken out of service (sorted, deduplicated).  The
        branches keep their slots in the network — measurement dimensions
        and indexing are contingency-invariant — and an outage set that
        islands the grid is rejected at trial setup with
        :class:`~repro.exceptions.IslandingError` naming the branches.
    generator_outages:
        Generator indices taken out of service (dispatch range pinned to
        ``[0, 0]``; the unit keeps its slot).
    outage:
        Derived scalar label, e.g. ``"none"``, ``"b5"`` or ``"b3+g1"`` —
        the stable key for ``--group-by contingency.outage`` queries
        (group-by requires scalar leaves, not lists).  Not an input: it is
        recomputed from the outage lists.
    """

    branch_outages: tuple[int, ...] = ()
    generator_outages: tuple[int, ...] = ()
    outage: str = field(init=False, default="none")

    def __post_init__(self) -> None:
        branches = tuple(sorted({int(b) for b in _freeze(self.branch_outages)}))
        generators = tuple(sorted({int(g) for g in _freeze(self.generator_outages)}))
        if any(b < 0 for b in branches):
            raise ConfigurationError(
                f"branch_outages must be non-negative, got {list(branches)}"
            )
        if any(g < 0 for g in generators):
            raise ConfigurationError(
                f"generator_outages must be non-negative, got {list(generators)}"
            )
        object.__setattr__(self, "branch_outages", branches)
        object.__setattr__(self, "generator_outages", generators)
        label = "+".join(
            [f"b{k}" for k in branches] + [f"g{k}" for k in generators]
        )
        object.__setattr__(self, "outage", label or "none")

    @property
    def is_noop(self) -> bool:
        """Whether this contingency leaves the network unchanged."""
        return not self.branch_outages and not self.generator_outages


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, self-describing Monte-Carlo experiment.

    The spec is the unit of work of the scenario engine: expanding it yields
    ``n_trials`` independent trials whose random streams are spawned from
    ``base_seed``, so results do not depend on execution order or worker
    count.

    Attributes
    ----------
    name:
        Human-readable label (excluded from the content hash).
    grid, attack, detector, mtd:
        The component specifications.
    operation:
        Optional :class:`~repro.timeseries.spec.OperationSpec` turning the
        scenario into a time-series operation experiment (Figs. 10-11):
        trial ``t`` becomes hour ``t`` of the operated horizon, executed by
        :mod:`repro.timeseries.engine`.  When set, ``n_trials`` is pinned
        to the horizon length, the MTD policy must be ``"designed"`` (the
        per-hour tuning loop supersedes ``mtd.gamma_threshold``) and the
        detector method must be ``"analytic"``.
    contingency:
        Optional :class:`ContingencySpec` running the whole experiment on
        the post-contingency network: the listed outages are applied to
        the grid before the operating point, the attack ensemble and the
        detector are built.  Contingency trials additionally record the
        post-contingency BDD empirical false-alarm rate
        (``bdd_false_alarm_rate``).  Mutually exclusive with ``operation``.
    n_trials:
        Number of Monte-Carlo trials.
    base_seed:
        Root of the per-trial seed tree.
    deltas:
        Detection-probability thresholds at which ``η'(δ)`` is recorded.
    metric:
        The headline per-trial metric, e.g. ``"eta(0.9)"`` or ``"spa"``.
    batch_size:
        Execution hint (excluded from the content hash): how many trials
        the engine groups into one batched-kernel call sharing a
        :class:`~repro.estimation.linear_model.LinearModelCache`.  ``None``
        (default) leaves the choice to the engine; batching never changes
        results — batched trials are bit-identical to serial ones.
    backend:
        Execution hint (excluded from the content hash): the factorization
        backend of the estimation stack — ``"auto"`` (default: dense below
        :data:`~repro.grid.matrices.SPARSE_BUS_THRESHOLD` buses, sparse Q-less
        at or above), ``"dense"`` or ``"sparse"``.  The dense path is
        byte-for-byte the pre-backend arithmetic and the backends agree
        within solver tolerance, so cached results stay valid across
        backend switches.
    description, tags:
        Free-form labels (excluded from the content hash).
    """

    name: str
    grid: GridSpec = field(default_factory=GridSpec)
    attack: AttackSpec = field(default_factory=AttackSpec)
    detector: DetectorSpec = field(default_factory=DetectorSpec)
    mtd: MTDSpec = field(default_factory=MTDSpec)
    operation: OperationSpec | None = None
    contingency: ContingencySpec | None = None
    n_trials: int = 1
    base_seed: int = 0
    deltas: tuple[float, ...] = (0.5, 0.8, 0.9, 0.95)
    metric: str = "eta(0.9)"
    batch_size: int | None = None
    backend: str = "auto"
    description: str = ""
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be a non-empty string")
        if self.operation is not None:
            if self.mtd.policy != "designed":
                raise ConfigurationError(
                    "operation scenarios tune a designed MTD per hour; "
                    f"mtd.policy must be 'designed', got {self.mtd.policy!r}"
                )
            if self.detector.method != "analytic":
                raise ConfigurationError(
                    "operation scenarios evaluate the per-hour ensemble "
                    "analytically; detector.method must be 'analytic'"
                )
            # One trial per operated hour: the horizon defines the count.
            object.__setattr__(self, "n_trials", self.operation.n_hours())
        if self.operation is not None and self.contingency is not None:
            raise ConfigurationError(
                "operation and contingency cannot be combined: time-series "
                "scenarios operate the nominal topology"
            )
        if self.n_trials <= 0:
            raise ConfigurationError(f"n_trials must be positive, got {self.n_trials}")
        if self.batch_size is not None and self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be at least 1 (or None), got {self.batch_size}"
            )
        if self.backend not in ("auto", "dense", "sparse"):
            raise ConfigurationError(
                f"backend must be 'auto', 'dense' or 'sparse', got {self.backend!r}"
            )
        object.__setattr__(self, "deltas", tuple(float(d) for d in self.deltas))
        object.__setattr__(self, "tags", tuple(str(t) for t in self.tags))

    # ------------------------------------------------------------------
    # dict / JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data representation (tuples become lists, JSON-safe).

        The ``operation`` and ``contingency`` keys are present only when
        the component is set, so plain Monte-Carlo specs keep their
        historical JSON shape (and content hash).
        """
        payload = asdict(self)
        if self.operation is None:
            payload.pop("operation", None)
        if self.contingency is None:
            payload.pop("contingency", None)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (or parsed JSON)."""
        payload = dict(data)
        payload["grid"] = _component_from(GridSpec, payload.get("grid", {}))
        payload["attack"] = _component_from(AttackSpec, payload.get("attack", {}))
        payload["detector"] = _component_from(DetectorSpec, payload.get("detector", {}))
        payload["mtd"] = _component_from(MTDSpec, payload.get("mtd", {}))
        if payload.get("operation") is not None:
            payload["operation"] = OperationSpec.from_dict(payload["operation"])
        if payload.get("contingency") is not None:
            contingency = payload["contingency"]
            if isinstance(contingency, Mapping):
                # ``outage`` is a derived label, recomputed on construction.
                contingency = {k: v for k, v in contingency.items() if k != "outage"}
            payload["contingency"] = _component_from(ContingencySpec, contingency)
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(f"unknown ScenarioSpec fields: {sorted(unknown)}")
        return cls(**payload)

    def to_json(self, indent: int | None = None) -> str:
        """Serialise the spec to canonical (sorted-key) JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def content_hash(self) -> str:
        """SHA-256 over the execution-relevant content of the spec.

        Stable across processes and Python versions; labelling and
        execution-tuning fields (``batch_size``) are excluded, so renaming
        a scenario or changing how it is batched keeps its cached results
        valid.
        """
        payload = self.to_dict()
        for excluded in _LABEL_FIELDS + _EXECUTION_FIELDS:
            payload.pop(excluded, None)
        payload["schema_version"] = SPEC_SCHEMA_VERSION
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def with_updates(
        self, updates: Mapping[str, Any] | None = None, **top_level: Any
    ) -> "ScenarioSpec":
        """Return a copy with dotted-path overrides applied.

        ``updates`` maps dotted paths into the nested components, e.g.
        ``{"mtd.gamma_threshold": 0.4, "grid.case": "ieee30"}``; paths
        descend through nested dataclasses to any depth
        (``"operation.profile.hours"``).  Keyword arguments override
        top-level fields (``name=...``, ``n_trials=...``).
        """
        spec = self
        for path, value in (updates or {}).items():
            spec = _replace_path(spec, path, path.split("."), value)
        if top_level:
            spec = replace(spec, **top_level)
        return spec


#: Optional spec components that dotted update paths may descend into even
#: when unset on the base spec: a path like ``contingency.branch_outages``
#: materialises a default component first, so contingency-less base specs
#: can be swept over outage dimensions directly.
_OPTIONAL_COMPONENTS: dict[str, Any] = {}


def _replace_path(obj: Any, full_path: str, parts: Sequence[str], value: Any) -> Any:
    """Rebuild ``obj`` with the dotted-path field replaced by ``value``."""
    if len(parts) == 1:
        return replace(obj, **{parts[0]: value})
    component = getattr(obj, parts[0], None)
    if component is None and parts[0] in _OPTIONAL_COMPONENTS:
        component = _OPTIONAL_COMPONENTS[parts[0]]()
    if not is_dataclass(component):
        raise ConfigurationError(
            f"unknown spec component {parts[0]!r} in update path {full_path!r}"
        )
    return replace(obj, **{parts[0]: _replace_path(component, full_path, parts[1:], value)})


_OPTIONAL_COMPONENTS["contingency"] = ContingencySpec


def _component_from(cls: type, data: Any) -> Any:
    """Build a component dataclass from a mapping or pass an instance through."""
    if isinstance(data, cls):
        return data
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"expected a mapping for {cls.__name__}, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(f"unknown {cls.__name__} fields: {sorted(unknown)}")
    payload = {k: _freeze(v) if isinstance(v, (list, tuple, dict)) else v for k, v in data.items()}
    return cls(**payload)


def expand_grid(
    base: ScenarioSpec,
    grid: Mapping[str, Sequence[Any]],
    name_format: str | None = None,
) -> list[ScenarioSpec]:
    """Expand a base spec into the cartesian product of parameter sweeps.

    Delegates to :func:`repro.campaign.plan.expand_sweep`, the campaign
    planner's canonical grid expansion (imported lazily to keep the
    spec → planner → spec edge acyclic at import time), so in-memory sweeps
    and persistent campaigns share one set of grid semantics.

    Parameters
    ----------
    base:
        The spec every point starts from.
    grid:
        Mapping of dotted parameter paths (as accepted by
        :meth:`ScenarioSpec.with_updates`) to the values to sweep.
    name_format:
        Optional ``str.format`` template receiving the *leaf* parameter
        names as keys (e.g. ``"{case}-g{gamma_threshold}"``); by default the
        points are named ``base.name[k=v,...]``.

    Returns
    -------
    list of ScenarioSpec
        One spec per grid point, in row-major order of the given axes.
    """
    from repro.campaign.plan import expand_sweep

    return expand_sweep(base, grid, name_format=name_format)


__all__ = [
    "SPEC_SCHEMA_VERSION",
    "GridSpec",
    "AttackSpec",
    "DetectorSpec",
    "MTDSpec",
    "ContingencySpec",
    "ScenarioSpec",
    "expand_grid",
]
