"""Execution of a single scenario trial.

:func:`run_trial` is the unit of work the engine schedules.  It is a
module-level function of picklable arguments so that
``concurrent.futures.ProcessPoolExecutor`` can ship it to workers, and it is
*self-seeding*: trial ``i`` of a scenario derives its random streams from
``SeedSequence(base_seed, spawn_key=(i,))``, so the result of a trial
depends only on the spec and the trial index — never on execution order,
worker count or process boundaries.  This is what makes the engine's
parallel results bit-identical to serial ones.

Within a process, the deterministic per-scenario context (network, baseline
OPF, and — when the attack seed is pinned — the shared attack ensemble) is
memoised, so running many trials of one scenario pays for the grid setup
once per worker instead of once per trial.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.engine.results import TrialResult
from repro.engine.spec import (
    AttackSpec,
    ContingencySpec,
    DetectorSpec,
    GridSpec,
    ScenarioSpec,
)
from repro.estimation.linear_model import LinearModelCache
from repro.exceptions import ConfigurationError, MTDDesignError
from repro.grid.cases.registry import load_case
from repro.grid.network import PowerNetwork
from repro.mtd.cost import mtd_operational_cost
from repro.mtd.design import design_mtd_perturbation
from repro.mtd.effectiveness import EffectivenessEvaluator
from repro.mtd.random_mtd import RandomMTDBaseline
from repro.mtd.subspace import subspace_angle
from repro.opf.dc_opf import solve_dc_opf
from repro.opf.reactance_opf import solve_reactance_opf
from repro.opf.result import OPFResult
from repro.telemetry import metrics as _metrics
from repro.telemetry.config import _STATE as _TELEMETRY
from repro.telemetry.spans import span as _span


def network_for_grid(grid: GridSpec) -> PowerNetwork:
    """The (deterministic) network of a grid spec.

    The single owner of GridSpec → PowerNetwork construction; the
    time-series engine's per-process network cache builds on it too.
    Registry names and file-referenced MATPOWER cases (``"case30.m"``)
    both resolve through :func:`repro.grid.cases.registry.load_case`.
    """
    network = load_case(grid.case, **grid.kwargs())
    if grid.load_scale != 1.0:
        network = network.with_loads(network.loads_mw() * grid.load_scale)
    return network


def apply_contingency(
    network: PowerNetwork, contingency: ContingencySpec | None
) -> PowerNetwork:
    """The post-contingency network of a spec's contingency component.

    Branch outages take the fast status-derivation path
    (:meth:`PowerNetwork.with_branch_outages`), sharing the base network's
    topology cache; generator outages pin the unit's dispatch range to
    ``[0, 0]``.  ``None`` or a no-op contingency returns ``network``
    unchanged.  Unknown indices raise
    :class:`~repro.exceptions.GridModelError`; outage sets that island the
    grid raise :class:`~repro.exceptions.IslandingError` naming the
    branches.
    """
    if contingency is None or contingency.is_noop:
        return network
    derived = network
    if contingency.branch_outages:
        derived = derived.with_branch_outages(contingency.branch_outages)
    if contingency.generator_outages:
        derived = derived.with_generator_status(
            {int(g): False for g in contingency.generator_outages}
        )
    return derived


@lru_cache(maxsize=32)
def _grid_context(
    grid: GridSpec, contingency: ContingencySpec | None = None
) -> tuple[PowerNetwork, OPFResult]:
    """The (deterministic) post-contingency network and no-MTD operating point."""
    network = apply_contingency(network_for_grid(grid), contingency)
    if grid.baseline == "reactance-opf":
        baseline = solve_reactance_opf(network, n_random_starts=2, seed=0)
    else:
        baseline = solve_dc_opf(network)
    return network, baseline


@lru_cache(maxsize=32)
def _shared_evaluator(
    grid: GridSpec,
    attack: AttackSpec,
    detector: DetectorSpec,
    contingency: ContingencySpec | None = None,
    backend: str = "auto",
) -> EffectivenessEvaluator:
    """Evaluator with a pinned attack ensemble, shared by all trials.

    ``backend`` participates in the memo key: evaluators resolve the
    factorization backend at construction, so specs differing only in
    ``spec.backend`` must not share an evaluator.
    """
    network, baseline = _grid_context(grid, contingency)
    return EffectivenessEvaluator(
        network,
        operating_angles_rad=baseline.angles_rad,
        base_reactances=baseline.reactances,
        noise_sigma=detector.noise_sigma,
        false_positive_rate=detector.false_positive_rate,
        n_attacks=attack.n_attacks,
        attack_ratio=attack.ratio,
        seed=attack.seed,
        backend=backend,
    )


def clear_context_caches() -> None:
    """Drop the per-process grid/evaluator memoisation (mostly for tests)."""
    _grid_context.cache_clear()
    _shared_evaluator.cache_clear()
    from repro.timeseries.engine import clear_operation_caches

    clear_operation_caches()


def trial_seed_sequence(base_seed: int, trial_index: int) -> np.random.SeedSequence:
    """The root seed sequence of one trial.

    Constructed directly with a spawn key so a worker does not have to
    materialise the whole sibling list; identical to
    ``SeedSequence(base_seed).spawn(n)[trial_index]``.
    """
    return np.random.SeedSequence(base_seed, spawn_key=(trial_index,))


def run_trial(
    spec: ScenarioSpec,
    trial_index: int,
    model_cache: LinearModelCache | None = None,
) -> TrialResult:
    """Run trial ``trial_index`` of ``spec`` and record its metrics.

    Every trial reports ``eta(δ)`` for each threshold in ``spec.deltas``,
    the mean detection probability over the ensemble, the fraction of
    attacks that stay undetectable, and the achieved subspace angle
    ``spa``; with ``mtd.include_cost`` it additionally reports the baseline
    and post-MTD OPF costs and the relative MTD premium.

    Parameters
    ----------
    spec:
        The scenario the trial belongs to.
    trial_index:
        Position of the trial in ``[0, spec.n_trials)``; selects the
        trial's seed-spawned random streams.
    model_cache:
        Optional :class:`~repro.estimation.linear_model.LinearModelCache`
        shared with neighbouring trials (the batched execution path of
        :func:`repro.engine.batch.run_trial_batch` passes one per batch),
        so trials evaluating the same perturbed reactances factorize the
        measurement Jacobian once.  Factorisation reuse is bit-identical to
        rebuilding, so the result does not depend on the cache.

    Returns
    -------
    TrialResult
        The trial's flat metric mapping.
    """
    if _TELEMETRY.enabled:
        # Observation only: the span/counter never touch the computation,
        # so instrumented trials are bit-identical to uninstrumented ones.
        with _span("engine.trial", trial=trial_index):
            _metrics.counter("engine.trials")
            return _run_trial_body(spec, trial_index, model_cache)
    return _run_trial_body(spec, trial_index, model_cache)


def _run_trial_body(
    spec: ScenarioSpec,
    trial_index: int,
    model_cache: LinearModelCache | None,
) -> TrialResult:
    if not (0 <= trial_index < spec.n_trials):
        raise ConfigurationError(
            f"trial_index must be in [0, {spec.n_trials}), got {trial_index}"
        )
    if spec.operation is not None:
        # Time-series operation scenarios: trial ``t`` is hour ``t`` of the
        # horizon (imported lazily — the timeseries engine builds on this
        # module's machinery).
        from repro.timeseries.engine import run_operation_trial

        return run_operation_trial(spec, trial_index, model_cache=model_cache)
    # Contingency trials spawn a fourth stream for the false-alarm draws;
    # spawned streams are derived independently per index, so the first
    # three streams — and with them every existing metric — are identical
    # to the contingency-free layout.
    root = trial_seed_sequence(spec.base_seed, trial_index)
    if spec.contingency is not None:
        attack_seq, mtd_seq, noise_seq, false_alarm_seq = root.spawn(4)
    else:
        attack_seq, mtd_seq, noise_seq = root.spawn(3)
        false_alarm_seq = None

    network, baseline = _grid_context(spec.grid, spec.contingency)
    if spec.attack.seed is not None:
        evaluator = _shared_evaluator(
            spec.grid, spec.attack, spec.detector, spec.contingency, spec.backend
        )
    else:
        evaluator = EffectivenessEvaluator(
            network,
            operating_angles_rad=baseline.angles_rad,
            base_reactances=baseline.reactances,
            noise_sigma=spec.detector.noise_sigma,
            false_positive_rate=spec.detector.false_positive_rate,
            n_attacks=spec.attack.n_attacks,
            attack_ratio=spec.attack.ratio,
            seed=np.random.Generator(np.random.PCG64(attack_seq)),
            backend=spec.backend,
        )

    reactances, spa = _apply_policy(
        spec, network, baseline, evaluator, np.random.Generator(np.random.PCG64(mtd_seq))
    )
    if spec.detector.method == "monte-carlo":
        effectiveness = evaluator.evaluate(
            reactances,
            method="monte-carlo",
            n_noise_trials=spec.detector.n_noise_trials,
            seed=np.random.Generator(np.random.PCG64(noise_seq)),
            model_cache=model_cache,
        )
    else:
        effectiveness = evaluator.evaluate(reactances, model_cache=model_cache)

    metrics: dict[str, float] = {}
    for delta in spec.deltas:
        metrics[f"eta({delta:g})"] = effectiveness.eta(delta)
    probs = effectiveness.detection_probabilities
    metrics["mean_detection_probability"] = float(np.mean(probs)) if probs.size else 0.0
    metrics["undetectable_fraction"] = effectiveness.undetectable_fraction()
    metrics["spa"] = float(spa)

    if false_alarm_seq is not None:
        # Post-contingency BDD health check: the empirical false-alarm
        # rate of the perturbed detector at the (post-contingency)
        # operating point, from the trial's dedicated fourth stream.
        metrics["bdd_false_alarm_rate"] = evaluator.false_alarm_rate(
            reactances,
            n_trials=spec.detector.n_noise_trials,
            seed=np.random.Generator(np.random.PCG64(false_alarm_seq)),
            model_cache=model_cache,
        )

    if spec.mtd.include_cost:
        cost = mtd_operational_cost(network, reactances, baseline_result=baseline)
        metrics["baseline_cost"] = float(cost.baseline_cost)
        metrics["mtd_cost"] = float(cost.mtd_cost)
        metrics["cost_increase_percent"] = float(cost.percent_increase)

    return TrialResult(trial_index=trial_index, metrics=metrics)


def run_trial_instrumented(
    spec: ScenarioSpec, trial_index: int
) -> tuple[TrialResult, dict]:
    """Pool-worker entry point that forces telemetry on for one trial.

    Returns ``(trial, snapshot_dict)`` where the snapshot is the worker's
    metrics delta for exactly this trial, ready for the parent to merge.
    Shipped to workers instead of :func:`run_trial` when telemetry is
    enabled, because pool workers do not inherit the parent's runtime
    telemetry switch under every start method.
    """
    from repro.telemetry.config import set_enabled

    set_enabled(True)
    before = _metrics.snapshot()
    trial = run_trial(spec, trial_index)
    return trial, _metrics.snapshot().subtract(before).to_dict()


def _apply_policy(
    spec: ScenarioSpec,
    network: PowerNetwork,
    baseline: OPFResult,
    evaluator: EffectivenessEvaluator,
    rng: np.random.Generator,
) -> tuple[np.ndarray, float]:
    """Select the post-perturbation reactances according to the MTD policy.

    Returns the reactance vector together with the achieved subspace angle
    against the attacker's matrix.
    """
    mtd = spec.mtd
    if mtd.policy == "none":
        return evaluator.base_reactances, 0.0
    if mtd.policy == "designed":
        try:
            design = design_mtd_perturbation(
                network,
                gamma_threshold=float(mtd.gamma_threshold),
                attacker_reactances=evaluator.base_reactances,
                preferred_reactances=baseline.reactances,
                method=mtd.design_method,
                seed=rng,
            )
        except MTDDesignError:
            if mtd.on_infeasible != "saturate":
                raise
            # γ_th exceeds the achievable SPA: saturate at the maximum-angle
            # perturbation, the endpoint the paper's sweeps flatten out at.
            design = design_mtd_perturbation(
                network,
                gamma_threshold=0.0,
                attacker_reactances=evaluator.base_reactances,
                preferred_reactances=baseline.reactances,
                method="max-spa",
                seed=rng,
            )
        return design.perturbed_reactances, float(design.achieved_spa)
    if mtd.policy == "random":
        sampler = RandomMTDBaseline(
            network,
            evaluator,
            max_relative_change=mtd.max_relative_change,
            perturb_all_dfacts=mtd.perturb_all_dfacts,
        )
        perturbation = sampler.draw_perturbation(seed=rng)
        spa = subspace_angle(
            evaluator.attacker_matrix, perturbation.post_measurement_matrix()
        )
        return perturbation.perturbed_reactances, float(spa)
    raise ConfigurationError(f"unknown MTD policy {mtd.policy!r}")


__all__ = [
    "run_trial",
    "run_trial_instrumented",
    "trial_seed_sequence",
    "network_for_grid",
    "apply_contingency",
    "clear_context_caches",
]
