"""Typed result records of the scenario engine.

A scenario run produces one :class:`TrialResult` per trial — a flat mapping
of named scalar metrics — collected into a :class:`ScenarioResult` that
aggregates any metric into the library's standard
:class:`~repro.analysis.montecarlo.MonteCarloSummary`.  Both records
round-trip through plain dicts/JSON, which is what the on-disk cache stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping

import numpy as np

from repro.analysis.montecarlo import MonteCarloSummary, summarize_values
from repro.engine.spec import ScenarioSpec
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one Monte-Carlo trial.

    Attributes
    ----------
    trial_index:
        Position of the trial in the scenario (also selects its RNG stream).
    metrics:
        Named scalar outcomes, e.g. ``{"eta(0.9)": 0.97, "spa": 0.41}``.
    """

    trial_index: int
    metrics: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "metrics", {str(k): float(v) for k, v in self.metrics.items()}
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-data (JSON-safe) representation of the trial."""
        return {"trial_index": self.trial_index, "metrics": dict(self.metrics)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrialResult":
        """Rebuild a trial record from :meth:`to_dict` output."""
        return cls(trial_index=int(data["trial_index"]), metrics=dict(data["metrics"]))


@dataclass(frozen=True)
class ScenarioResult:
    """All trials of one scenario, plus execution metadata.

    The trial tuple is ordered by ``trial_index`` and — because every trial
    draws from its own seed-spawned stream — is bit-identical whether the
    engine ran serially or on a process pool.  Equality of two results'
    ``trials`` is therefore the engine's determinism contract.
    """

    spec: ScenarioSpec
    trials: tuple[TrialResult, ...]
    elapsed_seconds: float = 0.0
    n_workers: int = 1
    from_cache: bool = False
    #: Per-scenario telemetry delta (a plain
    #: :meth:`~repro.telemetry.metrics.MetricsSnapshot.to_dict` payload), or
    #: ``None`` when telemetry was off.  In-memory only: excluded from
    #: equality and from :meth:`to_dict`, so stored records — and therefore
    #: every cache entry and campaign segment — are byte-identical whether
    #: telemetry was on or off.
    telemetry: dict[str, Any] | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "trials", tuple(self.trials))

    # ------------------------------------------------------------------
    @property
    def n_trials(self) -> int:
        """Number of trials the scenario produced."""
        return len(self.trials)

    def metric_names(self) -> tuple[str, ...]:
        """Names of the metrics every trial recorded."""
        if not self.trials:
            return ()
        return tuple(self.trials[0].metrics)

    def values(self, metric: str | None = None) -> np.ndarray:
        """Per-trial values of ``metric``, shape ``(n_trials,)``.

        Defaults to the spec's headline metric (``spec.metric``).
        """
        name = self.spec.metric if metric is None else metric
        try:
            return np.array([trial.metrics[name] for trial in self.trials])
        except KeyError:
            raise ConfigurationError(
                f"scenario {self.spec.name!r} has no metric {name!r}; "
                f"available: {', '.join(self.metric_names())}"
            ) from None

    def summarize(self, metric: str | None = None) -> MonteCarloSummary:
        """Aggregate a metric over trials into a :class:`MonteCarloSummary`."""
        return summarize_values(self.values(metric))

    def fraction_meeting(self, metric: str, target: float) -> float:
        """Fraction of trials with ``metric >= target`` (the Fig. 8 statistic)."""
        values = self.values(metric)
        return float(np.mean(values >= target)) if values.size else 0.0

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data representation (what the on-disk cache stores)."""
        return {
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec.content_hash(),
            "trials": [trial.to_dict() for trial in self.trials],
            "elapsed_seconds": self.elapsed_seconds,
            "n_workers": self.n_workers,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], from_cache: bool = False) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_dict` output (or parsed JSON)."""
        return cls(
            spec=ScenarioSpec.from_dict(data["spec"]),
            trials=tuple(TrialResult.from_dict(t) for t in data["trials"]),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            n_workers=int(data.get("n_workers", 1)),
            from_cache=from_cache,
        )

    def as_cached(self) -> "ScenarioResult":
        """A copy flagged as served from the cache."""
        return replace(self, from_cache=True)


def merge_metric(results: Iterable[ScenarioResult], metric: str | None = None) -> np.ndarray:
    """Concatenate one metric across several scenario results.

    Convenience for suite-level statistics, e.g. pooling the ``spa`` values
    of every case in a sweep.
    """
    arrays = [result.values(metric) for result in results]
    if not arrays:
        return np.array([])
    return np.concatenate(arrays)


__all__ = ["TrialResult", "ScenarioResult", "merge_metric"]
