"""Scenario engine: declarative experiment specs with parallel, cached runs.

The engine separates *what* an experiment is from *how* it executes:

* :mod:`repro.engine.spec` — frozen :class:`ScenarioSpec` value objects
  with dict/JSON round-trip, a stable content hash, dotted-path derivation
  (:meth:`~ScenarioSpec.with_updates`) and grid expansion
  (:func:`expand_grid`);
* :mod:`repro.engine.runner` — :class:`ScenarioEngine`, executing specs
  serially or on a process pool with bit-identical results;
* :mod:`repro.engine.batch` — :func:`run_trial_batch`, the batched trial
  kernel sharing one factorization cache per trial block (the
  ``batch_size`` knob; bit-identical to the per-trial path);
* :mod:`repro.engine.cache` — :class:`ResultCache`, an on-disk store keyed
  by spec hash so re-running a suite is free;
* :mod:`repro.engine.results` — :class:`TrialResult` /
  :class:`ScenarioResult`, aggregating into the library's
  :class:`~repro.analysis.montecarlo.MonteCarloSummary`;
* :mod:`repro.engine.scenarios` — canonical suites for the paper's
  figures/tables and the 57-/118-bus synthetic scale cases.

Grid-expansion semantics (``expand_grid`` / ``run_sweep``) are owned by
the campaign planner (:mod:`repro.campaign.plan`); for durable, sharded,
resumable sweeps over the same specs see :mod:`repro.campaign` and the
``python -m repro`` CLI.

Quickstart
----------
>>> from repro.engine import ScenarioEngine, ScenarioSpec, GridSpec, MTDSpec
>>> spec = ScenarioSpec(
...     name="demo",
...     grid=GridSpec(case="ieee14"),
...     mtd=MTDSpec(policy="designed", gamma_threshold=0.25),
...     n_trials=4,
... )
>>> engine = ScenarioEngine(cache=".repro-cache", n_workers=4)
>>> result = engine.run(spec)          # doctest: +SKIP
>>> result.summarize("eta(0.9)").mean  # doctest: +SKIP
0.97
"""

from repro.engine.batch import DEFAULT_MODEL_CACHE_SIZE, run_trial_batch
from repro.engine.cache import ResultCache
from repro.engine.results import ScenarioResult, TrialResult, merge_metric
from repro.engine.runner import ScenarioEngine, run_scenario
from repro.engine.scenarios import (
    available_scenarios,
    paper_scenarios,
    scenario_suite,
)
from repro.engine.spec import (
    AttackSpec,
    ContingencySpec,
    DetectorSpec,
    GridSpec,
    MTDSpec,
    ScenarioSpec,
    expand_grid,
)
from repro.engine.trial import clear_context_caches, run_trial, trial_seed_sequence

__all__ = [
    "ScenarioSpec",
    "GridSpec",
    "AttackSpec",
    "DetectorSpec",
    "MTDSpec",
    "ContingencySpec",
    "expand_grid",
    "ScenarioEngine",
    "run_scenario",
    "ResultCache",
    "ScenarioResult",
    "TrialResult",
    "merge_metric",
    "run_trial",
    "run_trial_batch",
    "DEFAULT_MODEL_CACHE_SIZE",
    "trial_seed_sequence",
    "clear_context_caches",
    "available_scenarios",
    "scenario_suite",
    "paper_scenarios",
]
