"""Batched trial execution with factorization caching.

:func:`run_trial_batch` is the batched counterpart of
:func:`repro.engine.trial.run_trial`: it executes a contiguous block of a
scenario's trials inside one process while sharing a single
:class:`~repro.estimation.linear_model.LinearModelCache`, so trials that
evaluate the same (case, perturbation) pair — the common case for the
``designed`` and ``none`` MTD policies, and for every Monte-Carlo detector
run — build and factorize the measurement Jacobian exactly once.  The
cache keys carry the resolved factorization backend (``spec.backend``
resolved per network size), so batches running the dense and sparse
backends never exchange factorisations even when they share a cache.

Determinism contract
--------------------
Batching is purely a throughput knob.  Each trial still derives its random
streams from ``(base_seed, trial_index)`` and runs the same arithmetic as
the serial path; the only thing the batch shares is *factorisations*, whose
reuse is bit-identical to rebuilding.  Therefore::

    [run_trial(spec, i) for i in range(spec.n_trials)]
        == flatten(run_trial_batch(spec, chunk) for chunk in chunks)

bit-for-bit, for any chunking — asserted by the tier-1 suite.

Like :func:`run_trial`, :func:`run_trial_batch` is a module-level function
of picklable arguments so a ``ProcessPoolExecutor`` can ship whole batches
to workers (one factorization cache per worker-side batch).
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.results import TrialResult
from repro.engine.spec import ScenarioSpec
from repro.engine.trial import run_trial
from repro.estimation.linear_model import LinearModelCache
from repro.exceptions import ConfigurationError
from repro.telemetry import metrics as _metrics
from repro.telemetry.config import _STATE as _TELEMETRY, set_enabled
from repro.telemetry.spans import span as _span

#: Default capacity of the per-batch factorization cache.  Random-policy
#: batches touch one perturbation per trial, so the capacity bounds memory
#: at ``DEFAULT_MODEL_CACHE_SIZE`` factorisations per in-flight batch.
DEFAULT_MODEL_CACHE_SIZE = 32


def run_trial_batch(
    spec: ScenarioSpec,
    trial_indices: Sequence[int] | None = None,
    model_cache: LinearModelCache | None = None,
    return_snapshot: bool = False,
) -> list[TrialResult] | tuple[list[TrialResult], dict]:
    """Run a block of trials sharing one factorization cache.

    Parameters
    ----------
    spec:
        The scenario to execute.
    trial_indices:
        Trial positions to run, each in ``[0, spec.n_trials)``; defaults to
        every trial of the scenario.  Results are returned in the given
        order.
    model_cache:
        The :class:`LinearModelCache` shared by the block; a fresh cache of
        :data:`DEFAULT_MODEL_CACHE_SIZE` entries is created when omitted.
        Passing an explicit cache lets callers observe hit/miss accounting
        or share factorisations across batches of the same grid.
    return_snapshot:
        When true, return ``(trials, snapshot_dict)`` where the second
        element is this process's telemetry delta for the batch as a
        plain-data :meth:`~repro.telemetry.metrics.MetricsSnapshot.to_dict`
        payload (empty when telemetry is disabled).  This is the pool
        boundary: worker-side wrappers ship the snapshot back with the
        results so the parent can merge metrics deterministically.

    Returns
    -------
    list of TrialResult
        One result per requested index, bit-identical to calling
        :func:`repro.engine.trial.run_trial` per index.  With
        ``return_snapshot=True``, a ``(trials, snapshot)`` tuple instead.
    """
    if trial_indices is None:
        trial_indices = range(spec.n_trials)
    indices = [int(i) for i in trial_indices]
    for index in indices:
        if not (0 <= index < spec.n_trials):
            raise ConfigurationError(
                f"trial_index must be in [0, {spec.n_trials}), got {index}"
            )
    if model_cache is None:
        model_cache = LinearModelCache(
            maxsize=DEFAULT_MODEL_CACHE_SIZE, telemetry_name="linear_model"
        )
    if not _TELEMETRY.enabled:
        trials = [run_trial(spec, index, model_cache=model_cache) for index in indices]
        return (trials, {}) if return_snapshot else trials
    before = _metrics.snapshot()
    with _span("engine.batch", n_trials=len(indices)):
        _metrics.counter("engine.batches")
        trials = [run_trial(spec, index, model_cache=model_cache) for index in indices]
    if not return_snapshot:
        return trials
    return trials, _metrics.snapshot().subtract(before).to_dict()


def run_trial_batch_instrumented(
    spec: ScenarioSpec,
    trial_indices: Sequence[int] | None = None,
) -> tuple[list[TrialResult], dict]:
    """Pool-worker entry point that forces telemetry on for the batch.

    ``ProcessPoolExecutor`` workers do not inherit a parent's runtime
    telemetry switch under every start method, so the engine ships this
    wrapper (instead of :func:`run_trial_batch`) when telemetry is enabled;
    the flag travels in the function identity rather than in process state.
    """
    set_enabled(True)
    return run_trial_batch(spec, trial_indices, return_snapshot=True)


__all__ = [
    "run_trial_batch",
    "run_trial_batch_instrumented",
    "DEFAULT_MODEL_CACHE_SIZE",
]
