"""Batched trial execution with factorization caching.

:func:`run_trial_batch` is the batched counterpart of
:func:`repro.engine.trial.run_trial`: it executes a contiguous block of a
scenario's trials inside one process while sharing a single
:class:`~repro.estimation.linear_model.LinearModelCache`, so trials that
evaluate the same (case, perturbation) pair — the common case for the
``designed`` and ``none`` MTD policies, and for every Monte-Carlo detector
run — build and factorize the measurement Jacobian exactly once.

Determinism contract
--------------------
Batching is purely a throughput knob.  Each trial still derives its random
streams from ``(base_seed, trial_index)`` and runs the same arithmetic as
the serial path; the only thing the batch shares is *factorisations*, whose
reuse is bit-identical to rebuilding.  Therefore::

    [run_trial(spec, i) for i in range(spec.n_trials)]
        == flatten(run_trial_batch(spec, chunk) for chunk in chunks)

bit-for-bit, for any chunking — asserted by the tier-1 suite.

Like :func:`run_trial`, :func:`run_trial_batch` is a module-level function
of picklable arguments so a ``ProcessPoolExecutor`` can ship whole batches
to workers (one factorization cache per worker-side batch).
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.results import TrialResult
from repro.engine.spec import ScenarioSpec
from repro.engine.trial import run_trial
from repro.estimation.linear_model import LinearModelCache
from repro.exceptions import ConfigurationError

#: Default capacity of the per-batch factorization cache.  Random-policy
#: batches touch one perturbation per trial, so the capacity bounds memory
#: at ``DEFAULT_MODEL_CACHE_SIZE`` factorisations per in-flight batch.
DEFAULT_MODEL_CACHE_SIZE = 32


def run_trial_batch(
    spec: ScenarioSpec,
    trial_indices: Sequence[int] | None = None,
    model_cache: LinearModelCache | None = None,
) -> list[TrialResult]:
    """Run a block of trials sharing one factorization cache.

    Parameters
    ----------
    spec:
        The scenario to execute.
    trial_indices:
        Trial positions to run, each in ``[0, spec.n_trials)``; defaults to
        every trial of the scenario.  Results are returned in the given
        order.
    model_cache:
        The :class:`LinearModelCache` shared by the block; a fresh cache of
        :data:`DEFAULT_MODEL_CACHE_SIZE` entries is created when omitted.
        Passing an explicit cache lets callers observe hit/miss accounting
        or share factorisations across batches of the same grid.

    Returns
    -------
    list of TrialResult
        One result per requested index, bit-identical to calling
        :func:`repro.engine.trial.run_trial` per index.
    """
    if trial_indices is None:
        trial_indices = range(spec.n_trials)
    indices = [int(i) for i in trial_indices]
    for index in indices:
        if not (0 <= index < spec.n_trials):
            raise ConfigurationError(
                f"trial_index must be in [0, {spec.n_trials}), got {index}"
            )
    if model_cache is None:
        model_cache = LinearModelCache(maxsize=DEFAULT_MODEL_CACHE_SIZE)
    return [run_trial(spec, index, model_cache=model_cache) for index in indices]


__all__ = ["run_trial_batch", "DEFAULT_MODEL_CACHE_SIZE"]
