"""The scenario engine: expand specs into trials and execute them.

:class:`ScenarioEngine` is the single entry point the benchmarks, examples
and tests drive Monte-Carlo experiments through.  It expands a
:class:`~repro.engine.spec.ScenarioSpec` (or a suite/sweep of them) into
independent trials and executes them either serially or on a
``concurrent.futures`` process pool.  Because every trial seeds itself from
``(base_seed, trial_index)`` (see :mod:`repro.engine.trial`), the parallel
results are bit-identical to the serial ones — parallelism is purely a
throughput knob.

With a :class:`~repro.engine.cache.ResultCache` attached, completed
scenarios are persisted by content hash and replayed for free on the next
run; re-running a whole suite after an interruption only executes the
missing scenarios.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from itertools import repeat
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.engine.cache import ResultCache
from repro.engine.results import ScenarioResult
from repro.engine.spec import ScenarioSpec, expand_grid
from repro.engine.trial import run_trial
from repro.exceptions import ConfigurationError


class ScenarioEngine:
    """Executes scenario specifications.

    Parameters
    ----------
    cache:
        ``None`` (no caching), an existing :class:`ResultCache`, or a
        directory path to create one in.
    n_workers:
        Default worker count for :meth:`run`; 1 means serial in-process
        execution, larger values use a process pool.
    """

    def __init__(
        self,
        cache: ResultCache | str | Path | None = None,
        n_workers: int = 1,
    ) -> None:
        if cache is None or isinstance(cache, ResultCache):
            self._cache = cache
        else:
            self._cache = ResultCache(cache)
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be at least 1, got {n_workers}")
        self._n_workers = int(n_workers)
        self.executed_trials = 0

    @property
    def cache(self) -> ResultCache | None:
        return self._cache

    @property
    def n_workers(self) -> int:
        return self._n_workers

    # ------------------------------------------------------------------
    def run(
        self,
        spec: ScenarioSpec,
        n_workers: int | None = None,
        use_cache: bool = True,
    ) -> ScenarioResult:
        """Run one scenario (or replay it from the cache).

        Parameters
        ----------
        spec:
            The scenario to execute.
        n_workers:
            Override of the engine's default worker count for this run.
        use_cache:
            Set to ``False`` to force re-execution even on a cache hit (the
            fresh result still overwrites the cache entry).
        """
        if use_cache and self._cache is not None:
            hit = self._cache.get(spec)
            if hit is not None:
                return hit

        workers = self._n_workers if n_workers is None else int(n_workers)
        if workers < 1:
            raise ConfigurationError(f"n_workers must be at least 1, got {workers}")
        workers = min(workers, spec.n_trials)

        start = time.perf_counter()
        if workers <= 1:
            trials = [run_trial(spec, index) for index in range(spec.n_trials)]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                trials = list(pool.map(run_trial, repeat(spec), range(spec.n_trials)))
        elapsed = time.perf_counter() - start
        self.executed_trials += spec.n_trials

        result = ScenarioResult(
            spec=spec,
            trials=tuple(trials),
            elapsed_seconds=elapsed,
            n_workers=workers,
        )
        if self._cache is not None:
            self._cache.put(spec, result)
        return result

    # ------------------------------------------------------------------
    def run_suite(
        self,
        specs: Iterable[ScenarioSpec],
        n_workers: int | None = None,
        use_cache: bool = True,
    ) -> list[ScenarioResult]:
        """Run several scenarios in order; each is independently cached.

        Scenario *trials* are parallelised; scenarios themselves run one
        after another so that a suite's memory high-water mark stays at one
        scenario's working set.
        """
        return [self.run(spec, n_workers=n_workers, use_cache=use_cache) for spec in specs]

    def run_sweep(
        self,
        base: ScenarioSpec,
        grid: Mapping[str, Sequence[Any]],
        n_workers: int | None = None,
        use_cache: bool = True,
        name_format: str | None = None,
    ) -> list[ScenarioResult]:
        """Expand ``base`` over a parameter grid and run every point.

        ``grid`` maps dotted spec paths to value sequences, e.g.
        ``{"mtd.gamma_threshold": (0.1, 0.2, 0.3), "grid.case": ("ieee14",
        "ieee30")}``; the cartesian product is executed in row-major order.
        """
        specs = expand_grid(base, grid, name_format=name_format)
        return self.run_suite(specs, n_workers=n_workers, use_cache=use_cache)


def run_scenario(
    spec: ScenarioSpec,
    n_workers: int = 1,
    cache: ResultCache | str | Path | None = None,
) -> ScenarioResult:
    """One-shot convenience wrapper around :class:`ScenarioEngine`."""
    return ScenarioEngine(cache=cache, n_workers=n_workers).run(spec)


__all__ = ["ScenarioEngine", "run_scenario"]
