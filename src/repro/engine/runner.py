"""The scenario engine: expand specs into trials and execute them.

:class:`ScenarioEngine` is the single entry point the benchmarks, examples
and tests drive Monte-Carlo experiments through.  It expands a
:class:`~repro.engine.spec.ScenarioSpec` (or a suite/sweep of them) into
independent trials and executes them either serially or on a
``concurrent.futures`` process pool.  Because every trial seeds itself from
``(base_seed, trial_index)`` (see :mod:`repro.engine.trial`), the parallel
results are bit-identical to the serial ones — parallelism is purely a
throughput knob.

The same holds for *batching*: with a ``batch_size`` (on the engine, the
spec, or the :meth:`ScenarioEngine.run` call), trials are executed in
blocks through :func:`repro.engine.batch.run_trial_batch`, sharing one
:class:`~repro.estimation.linear_model.LinearModelCache` per block so that
trials evaluating the same (case, perturbation) pair factorize the
measurement Jacobian once.  Batched results are bit-identical to serial
per-trial results.

With a :class:`~repro.engine.cache.ResultCache` attached, completed
scenarios are persisted by content hash and replayed for free on the next
run; re-running a whole suite after an interruption only executes the
missing scenarios.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from itertools import repeat
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.campaign.plan import plan_sweep
from repro.engine.batch import run_trial_batch, run_trial_batch_instrumented
from repro.engine.cache import ResultCache
from repro.engine.results import ScenarioResult
from repro.engine.spec import ScenarioSpec
from repro.engine.trial import run_trial, run_trial_instrumented
from repro.exceptions import ConfigurationError
from repro.telemetry import metrics as _metrics
from repro.telemetry import progress as _progress
from repro.telemetry.config import _STATE as _TELEMETRY
from repro.telemetry.spans import span as _span


class ScenarioEngine:
    """Executes scenario specifications.

    Parameters
    ----------
    cache:
        ``None`` (no caching), an existing :class:`ResultCache`, or a
        directory path to create one in.
    n_workers:
        Default worker count for :meth:`run`; 1 means serial in-process
        execution, larger values use a process pool.
    batch_size:
        Default trial-batch size for :meth:`run`.  ``None`` or 1 runs the
        per-trial path; larger values execute trials in blocks of
        ``batch_size`` through the batched kernel with per-block
        factorization caching.  Results are bit-identical either way.
    """

    def __init__(
        self,
        cache: ResultCache | str | Path | None = None,
        n_workers: int = 1,
        batch_size: int | None = None,
    ) -> None:
        if cache is None or isinstance(cache, ResultCache):
            self._cache = cache
        else:
            self._cache = ResultCache(cache)
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be at least 1, got {n_workers}")
        if batch_size is not None and batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be at least 1 (or None), got {batch_size}"
            )
        self._n_workers = int(n_workers)
        self._batch_size = None if batch_size is None else int(batch_size)
        self.executed_trials = 0

    @property
    def cache(self) -> ResultCache | None:
        """The attached result cache, or ``None``."""
        return self._cache

    @property
    def n_workers(self) -> int:
        """Default worker count used by :meth:`run`."""
        return self._n_workers

    @property
    def batch_size(self) -> int | None:
        """Default trial-batch size used by :meth:`run` (``None`` = per-trial)."""
        return self._batch_size

    # ------------------------------------------------------------------
    def run(
        self,
        spec: ScenarioSpec,
        n_workers: int | None = None,
        use_cache: bool = True,
        batch_size: int | None = None,
    ) -> ScenarioResult:
        """Run one scenario (or replay it from the cache).

        Parameters
        ----------
        spec:
            The scenario to execute.
        n_workers:
            Override of the engine's default worker count for this run.
        use_cache:
            Set to ``False`` to force re-execution even on a cache hit (the
            fresh result still overwrites the cache entry).
        batch_size:
            Override of the trial-batch size for this run; falls back to
            ``spec.batch_size``, then the engine default.  Never changes
            results, only how they are computed.
        """
        if use_cache and self._cache is not None:
            hit = self._cache.get(spec)
            if hit is not None:
                return hit

        workers = self._n_workers if n_workers is None else int(n_workers)
        if workers < 1:
            raise ConfigurationError(f"n_workers must be at least 1, got {workers}")
        workers = min(workers, spec.n_trials)
        if batch_size is None:
            batch_size = spec.batch_size if spec.batch_size is not None else self._batch_size
        if batch_size is not None and batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be at least 1 (or None), got {batch_size}"
            )

        instrumented = _TELEMETRY.enabled
        before = _metrics.snapshot() if instrumented else None
        scenario_span = (
            _span("engine.scenario", scenario=spec.name, n_trials=spec.n_trials)
            if instrumented
            else None
        )
        start = time.perf_counter()
        if scenario_span is not None:
            scenario_span.__enter__()
        try:
            if batch_size is None or batch_size <= 1:
                if workers <= 1:
                    # Explicit loop (not a comprehension) so the progress
                    # sink can heartbeat mid-scenario; a no-op without one.
                    trials = []
                    for index in range(spec.n_trials):
                        trials.append(run_trial(spec, index))
                        _progress.tick(
                            scenario=spec.name,
                            trial=index + 1,
                            n_trials=spec.n_trials,
                        )
                elif instrumented:
                    # Workers run the instrumented wrapper, which forces the
                    # telemetry switch on worker-side and ships back a
                    # (trial, snapshot) pair; merging the per-trial deltas
                    # is exact and order-independent.
                    with ProcessPoolExecutor(max_workers=workers) as pool:
                        pairs = list(
                            pool.map(
                                run_trial_instrumented, repeat(spec), range(spec.n_trials)
                            )
                        )
                    trials = [trial for trial, _ in pairs]
                    for _, worker_snapshot in pairs:
                        _metrics.merge_snapshot(worker_snapshot)
                else:
                    with ProcessPoolExecutor(max_workers=workers) as pool:
                        trials = list(
                            pool.map(run_trial, repeat(spec), range(spec.n_trials))
                        )
            else:
                chunks = _chunk_indices(spec.n_trials, int(batch_size))
                if workers <= 1:
                    batches = []
                    for chunk in chunks:
                        batches.append(run_trial_batch(spec, chunk))
                        _progress.tick(
                            scenario=spec.name,
                            trial=chunk[-1] + 1,
                            n_trials=spec.n_trials,
                        )
                elif instrumented:
                    with ProcessPoolExecutor(max_workers=workers) as pool:
                        pairs = list(
                            pool.map(run_trial_batch_instrumented, repeat(spec), chunks)
                        )
                    batches = [batch for batch, _ in pairs]
                    for _, worker_snapshot in pairs:
                        _metrics.merge_snapshot(worker_snapshot)
                else:
                    with ProcessPoolExecutor(max_workers=workers) as pool:
                        batches = list(pool.map(run_trial_batch, repeat(spec), chunks))
                trials = [trial for batch in batches for trial in batch]
        finally:
            if scenario_span is not None:
                scenario_span.__exit__(None, None, None)
        elapsed = time.perf_counter() - start
        self.executed_trials += spec.n_trials
        if instrumented:
            _metrics.counter("engine.scenarios")
            _metrics.counter("engine.trials_executed", spec.n_trials)
            telemetry = _metrics.snapshot().subtract(before).to_dict()
        else:
            telemetry = None

        result = ScenarioResult(
            spec=spec,
            trials=tuple(trials),
            elapsed_seconds=elapsed,
            n_workers=workers,
            telemetry=telemetry,
        )
        if self._cache is not None:
            self._cache.put(spec, result)
        return result

    # ------------------------------------------------------------------
    def run_suite(
        self,
        specs: Iterable[ScenarioSpec],
        n_workers: int | None = None,
        use_cache: bool = True,
        batch_size: int | None = None,
    ) -> list[ScenarioResult]:
        """Run several scenarios in order; each is independently cached.

        Scenario *trials* are parallelised; scenarios themselves run one
        after another so that a suite's memory high-water mark stays at one
        scenario's working set.
        """
        return [
            self.run(spec, n_workers=n_workers, use_cache=use_cache, batch_size=batch_size)
            for spec in specs
        ]

    def run_sweep(
        self,
        base: ScenarioSpec,
        grid: Mapping[str, Sequence[Any]],
        n_workers: int | None = None,
        use_cache: bool = True,
        name_format: str | None = None,
        batch_size: int | None = None,
    ) -> list[ScenarioResult]:
        """Expand ``base`` over a parameter grid and run every point.

        ``grid`` maps dotted spec paths to value sequences, e.g.
        ``{"mtd.gamma_threshold": (0.1, 0.2, 0.3), "grid.case": ("ieee14",
        "ieee30")}``; the cartesian product is executed in row-major order.

        Expansion and execution order are delegated to the campaign planner
        (:func:`repro.campaign.plan.plan_sweep`), so an in-memory sweep and
        a persistent campaign over the same base/grid run the *same* specs
        with bit-identical results; for a durable, sharded, resumable sweep
        use :func:`repro.campaign.orchestrator.run_campaign` instead.
        """
        plan = plan_sweep(base, grid, name_format=name_format)
        return plan.run(
            self, n_workers=n_workers, use_cache=use_cache, batch_size=batch_size
        )


def _chunk_indices(n_trials: int, batch_size: int) -> list[list[int]]:
    """Contiguous trial-index blocks of at most ``batch_size`` each."""
    return [
        list(range(start, min(start + batch_size, n_trials)))
        for start in range(0, n_trials, batch_size)
    ]


def run_scenario(
    spec: ScenarioSpec,
    n_workers: int = 1,
    cache: ResultCache | str | Path | None = None,
    batch_size: int | None = None,
) -> ScenarioResult:
    """One-shot convenience wrapper around :class:`ScenarioEngine`."""
    return ScenarioEngine(cache=cache, n_workers=n_workers, batch_size=batch_size).run(spec)


__all__ = ["ScenarioEngine", "run_scenario"]
