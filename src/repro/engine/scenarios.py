"""Registry of canonical scenario suites.

Each entry maps a name to a *suite* — a tuple of
:class:`~repro.engine.spec.ScenarioSpec` — that captures the setup of one
published result of the paper (Figs. 6-11, Tables I-III) or one of the
larger synthetic stress cases this repository adds on top (57-, 118- and
300-bus networks from :func:`repro.grid.cases.synthetic_case`, registered
in the case registry as ``synthetic57`` / ``synthetic118`` /
``synthetic300``).

The registry stores *specifications only*: building a suite is free, and
nothing runs until the suite is handed to a
:class:`~repro.engine.runner.ScenarioEngine`.  Trial budgets follow the
paper (e.g. 1000-attack ensembles); scale them down with
``spec.with_updates({"attack.n_attacks": ...}, n_trials=...)`` for quick
runs — derived specs hash differently, so caches stay consistent.
"""

from __future__ import annotations

from typing import Callable, Mapping

from functools import lru_cache

from repro.engine.spec import (
    AttackSpec,
    ContingencySpec,
    DetectorSpec,
    GridSpec,
    MTDSpec,
    ScenarioSpec,
    expand_grid,
)
from repro.exceptions import ConfigurationError
from repro.timeseries.engine import daily_operation_spec
from repro.timeseries.spec import ProfileSpec

#: η'(δ) thresholds reported by the paper's effectiveness figures.
PAPER_DELTAS = (0.5, 0.8, 0.9, 0.95)

#: γ_th sweep of the Fig. 6 / Fig. 9 experiments (radians).
GAMMA_GRID = tuple(round(0.05 * k, 2) for k in range(1, 11))

#: Normalised hourly load multipliers with the winter-weekday shape used by
#: the daily-operation experiments (Figs. 9-11): overnight trough at 65 % of
#: the evening peak, matching the ≈143/220 MW band of the paper's trace.
DAILY_LOAD_SCALES = (
    0.70, 0.67, 0.66, 0.65, 0.66, 0.71, 0.78, 0.86, 0.90, 0.91, 0.92, 0.92,
    0.92, 0.91, 0.91, 0.91, 0.95, 1.00, 0.99, 0.96, 0.93, 0.88, 0.82, 0.76,
)


def _fig6(case: str, *, noise_sigma: float, baseline: str, seed: int) -> tuple[ScenarioSpec, ...]:
    base = ScenarioSpec(
        name=f"fig6-{case}",
        grid=GridSpec(case=case, baseline=baseline),
        attack=AttackSpec(n_attacks=1000, seed=seed),
        detector=DetectorSpec(noise_sigma=noise_sigma),
        mtd=MTDSpec(policy="designed", design_method="two-stage"),
        deltas=PAPER_DELTAS,
        metric="eta(0.9)",
        description=(
            "MTD effectiveness eta'(delta) versus the designed subspace angle "
            "gamma(H_t, H'_t') — paper Fig. 6."
        ),
        tags=("paper", "fig6", case),
    )
    return tuple(expand_grid(base, {"mtd.gamma_threshold": GAMMA_GRID}))


def _fig7() -> tuple[ScenarioSpec, ...]:
    return (
        ScenarioSpec(
            name="fig7-random-mtd",
            grid=GridSpec(case="ieee14", baseline="reactance-opf"),
            attack=AttackSpec(n_attacks=1000, seed=1),
            mtd=MTDSpec(policy="random", max_relative_change=0.02),
            n_trials=5,
            base_seed=5,
            deltas=(0.1, 0.2, 0.4, 0.6, 0.8, 0.9),
            metric="eta(0.9)",
            description=(
                "Five randomly chosen 2%-bounded MTD perturbations evaluated "
                "against the shared attack ensemble — paper Fig. 7."
            ),
            tags=("paper", "fig7", "random-mtd"),
        ),
    )


def _fig8() -> tuple[ScenarioSpec, ...]:
    return (
        ScenarioSpec(
            name="fig8-keyspace",
            grid=GridSpec(case="ieee14", baseline="reactance-opf"),
            attack=AttackSpec(n_attacks=1000, seed=1),
            mtd=MTDSpec(policy="random", max_relative_change=0.02),
            n_trials=500,
            base_seed=8,
            deltas=(0.1, 0.3, 0.5, 0.7, 0.9),
            metric="eta(0.9)",
            description=(
                "500-sample keyspace of random MTD perturbations; the Fig. 8 "
                "statistic is the fraction of trials with eta'(delta) >= 0.9."
            ),
            tags=("paper", "fig8", "random-mtd"),
        ),
    )


def _fig9() -> tuple[ScenarioSpec, ...]:
    base = ScenarioSpec(
        name="fig9-tradeoff",
        grid=GridSpec(case="ieee14", baseline="reactance-opf"),
        attack=AttackSpec(n_attacks=1000, seed=1),
        mtd=MTDSpec(policy="designed", design_method="two-stage", include_cost=True),
        deltas=PAPER_DELTAS,
        metric="cost_increase_percent",
        description=(
            "Effectiveness/operational-cost trade-off of the designed MTD at "
            "the evening-peak load — paper Fig. 9."
        ),
        tags=("paper", "fig9", "tradeoff"),
    )
    return tuple(expand_grid(base, {"mtd.gamma_threshold": GAMMA_GRID}))


def _fig10_fig11() -> tuple[ScenarioSpec, ...]:
    """The *static* per-hour approximation kept from before the time-series
    engine existed: one independent scenario per load level at a fixed SPA
    threshold.  The faithful Section VII-C simulation — chained baselines,
    stale attacker knowledge, per-hour threshold tuning — is the ``fig10``
    / ``fig11`` suite below."""
    base = ScenarioSpec(
        name="fig10-daily",
        grid=GridSpec(case="ieee14", baseline="reactance-opf"),
        attack=AttackSpec(n_attacks=1000, seed=1),
        mtd=MTDSpec(policy="designed", gamma_threshold=0.25, include_cost=True),
        deltas=PAPER_DELTAS,
        metric="cost_increase_percent",
        description=(
            "Static per-load-level approximation of the Fig. 10 cost series "
            "(fixed gamma_th, independent hours); see the 'fig10' suite for "
            "the faithful hourly-operation simulation."
        ),
        tags=("paper", "fig10", "fig11", "daily"),
    )
    return tuple(
        base.with_updates(
            {"grid.load_scale": scale}, name=f"fig10-daily-h{hour:02d}"
        )
        for hour, scale in enumerate(DAILY_LOAD_SCALES)
    )


def _fig10_operation() -> tuple[ScenarioSpec, ...]:
    """Figs. 10-11, faithfully: one spec'd day of hourly MTD operation.

    A single time-series operation scenario — 24 hours of the winter
    weekday profile, one-hour-stale attacker knowledge with wrap-around
    warm-up, per-hour SPA-threshold bisection to ``η'(0.9) ≥ 0.9`` — whose
    24 trials are the 24 operated hours.  Both figures read off the same
    run: Fig. 10 from ``cost_increase_percent``/``total_load_mw``, Fig. 11
    from the three ``spa_*`` metrics.
    """
    return (
        daily_operation_spec(
            name="fig10-operation",
            case="ieee14",
            cost_baseline="reactance-opf",
            n_attacks=300,
            seed=0,
            description=(
                "Hourly MTD operation over a winter-weekday load profile "
                "with one-hour-stale attacker knowledge — the cost series "
                "of Fig. 10 and the angle series of Fig. 11."
            ),
            tags=("paper", "fig10", "fig11", "daily", "operation"),
        ),
    )


def _daily_ops() -> tuple[ScenarioSpec, ...]:
    """Beyond the paper: seasonal and multi-day operation horizons.

    The weekday/weekend/summer shapes and a two-day weekday+weekend
    horizon, all on the IEEE 14-bus case — the scenario diversity the
    time-series engine exists for, and a multi-point suite whose campaigns
    exercise sharding and resume at the spec level.
    """
    variants = (
        ("weekday", ProfileSpec(shape="winter-weekday")),
        ("weekend", ProfileSpec(shape="winter-weekend")),
        ("summer", ProfileSpec(shape="summer-weekday")),
        ("weekend-transition", ProfileSpec(days=("winter-weekday", "winter-weekend"))),
    )
    return tuple(
        daily_operation_spec(
            name=f"daily-ops-{label}",
            case="ieee14",
            cost_baseline="reactance-opf",
            profile=profile,
            n_attacks=300,
            seed=0,
            description=f"Hourly MTD operation over a {label} load horizon.",
            tags=("daily", "operation", label),
        )
        for label, profile in variants
    )


def _tables() -> tuple[ScenarioSpec, ...]:
    """Tables I-III: the 4-bus motivating example.

    Table I shows that the crafted FDI attack is stealthy before the MTD
    (the ``none`` control: every attack stays at the false-positive floor)
    and exposed after it; Tables II/III report the pre-/post-perturbation
    dispatch costs, captured here by ``include_cost``.
    """
    common = dict(
        grid=GridSpec(case="case4gs", baseline="dc-opf"),
        attack=AttackSpec(n_attacks=200, seed=4),
        deltas=PAPER_DELTAS,
    )
    return (
        ScenarioSpec(
            name="table1-table2-preperturbation",
            mtd=MTDSpec(policy="none", gamma_threshold=None, include_cost=True),
            metric="undetectable_fraction",
            description=(
                "4-bus system before the perturbation: stealthy attacks stay "
                "at the BDD false-positive floor (Table I) at the Table II "
                "operating point."
            ),
            tags=("paper", "table1", "table2", "case4"),
            **common,
        ),
        ScenarioSpec(
            name="table1-table3-postperturbation",
            mtd=MTDSpec(policy="designed", gamma_threshold=0.2, include_cost=True),
            metric="mean_detection_probability",
            description=(
                "4-bus system after a designed reactance perturbation: the "
                "attack residuals become visible (Table I) at the re-dispatch "
                "cost of Table III."
            ),
            tags=("paper", "table1", "table3", "case4"),
            **common,
        ),
    )


@lru_cache(maxsize=8)
def _screenable_branches(case: str) -> tuple[int, ...]:
    """Branches of ``case`` whose N-1 outage admits a post-contingency OPF.

    Excludes bridges (their outage islands the grid — rejected with
    :class:`~repro.exceptions.IslandingError` at derivation time) and
    outages whose post-contingency flow limits make the DC-OPF infeasible
    (on the tightly-rated IEEE 14-bus case a handful of lines are
    security-critical at nominal load).  Deterministic per case, memoised
    because suite builders may be invoked repeatedly.
    """
    from repro.exceptions import OPFInfeasibleError
    from repro.grid.cases.registry import load_case
    from repro.opf.dc_opf import solve_dc_opf
    from repro.powerflow.contingency import bridge_branches

    network = load_case(case)
    bridges = set(bridge_branches(network))
    screenable = []
    for k in range(network.n_branches):
        if k in bridges:
            continue
        try:
            solve_dc_opf(network.with_branch_outages([k]))
        except OPFInfeasibleError:
            continue
        screenable.append(k)
    return tuple(screenable)


def _n1_screening(case: str, *, seed: int) -> tuple[ScenarioSpec, ...]:
    """N-1 contingency screening: the full MTD pipeline per outage.

    One scenario per screenable single-branch outage (plus the intact-grid
    reference point, whose no-op contingency keeps ``contingency.outage``
    a groupable key across the whole suite): the post-contingency operating
    point is re-dispatched, the attacker's ensemble is built against the
    post-contingency measurement matrix, and each trial reports the usual
    effectiveness metrics plus the post-contingency BDD false-alarm rate.
    """
    base = ScenarioSpec(
        name=f"n1-{case}",
        grid=GridSpec(case=case, baseline="dc-opf"),
        attack=AttackSpec(n_attacks=200, seed=seed),
        mtd=MTDSpec(policy="designed", gamma_threshold=0.25, design_method="two-stage"),
        contingency=ContingencySpec(),
        n_trials=2,
        base_seed=41,
        deltas=PAPER_DELTAS,
        metric="eta(0.9)",
        description=(
            "N-1 contingency screening of the designed MTD: effectiveness "
            "and BDD false-alarm rate under each post-contingency topology."
        ),
        tags=("n1", "contingency", case),
    )
    specs = [
        base.with_updates(
            name=f"n1-{case}-base",
            description="Intact-grid reference point of the N-1 screen.",
        )
    ]
    for k in _screenable_branches(case):
        specs.append(
            base.with_updates(
                {"contingency.branch_outages": (int(k),)},
                name=f"n1-{case}-b{k}",
                description=f"Branch {k} outage on {case}.",
            )
        )
    return tuple(specs)


def _scale_suite() -> tuple[ScenarioSpec, ...]:
    """Beyond the paper: the same pipeline on progressively larger grids.

    Random-policy Monte Carlo with per-trial attack ensembles (``seed=None``)
    across the IEEE cases and the 57-/118-/300-/1354-bus synthetic networks —
    the workload the engine's process pool, batched kernel, cache and sparse
    factorization backend exist for (cases at or above
    ``SPARSE_BUS_THRESHOLD`` buses resolve ``backend="auto"`` to the sparse
    Q-less kernels).
    """
    specs = []
    for case, baseline in (
        ("ieee14", "dc-opf"),
        ("ieee30", "dc-opf"),
        ("synthetic57", "dc-opf"),
        ("synthetic118", "dc-opf"),
        ("synthetic300", "dc-opf"),
        ("synthetic1354", "dc-opf"),
    ):
        specs.append(
            ScenarioSpec(
                name=f"scale-{case}",
                grid=GridSpec(case=case, baseline=baseline),
                attack=AttackSpec(n_attacks=200, seed=None),
                mtd=MTDSpec(policy="random", max_relative_change=0.2),
                n_trials=8,
                base_seed=1729,
                deltas=PAPER_DELTAS,
                metric="eta(0.9)",
                description=(
                    f"Random-MTD Monte Carlo on {case}: per-trial attack "
                    "ensembles and perturbations, for scale-out stress runs."
                ),
                tags=("scale", case),
            )
        )
    return tuple(specs)


_SUITES: Mapping[str, Callable[[], tuple[ScenarioSpec, ...]]] = {
    "fig6a": lambda: _fig6("ieee14", noise_sigma=0.0015, baseline="reactance-opf", seed=1),
    "fig6b": lambda: _fig6("ieee30", noise_sigma=0.0007, baseline="dc-opf", seed=2),
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10-fig11": _fig10_fig11,
    "fig10": _fig10_operation,
    "fig11": _fig10_operation,  # same simulated day; Fig. 11 reads the spa_* metrics
    "daily-ops": _daily_ops,
    "tables": _tables,
    "scale": _scale_suite,
    "n1-screening": lambda: _n1_screening("ieee14", seed=11),
    "n1-screening-30": lambda: _n1_screening("ieee30", seed=12),
}


def available_scenarios() -> tuple[str, ...]:
    """Sorted names of the registered scenario suites."""
    return tuple(sorted(_SUITES))


def scenario_suite(name: str) -> tuple[ScenarioSpec, ...]:
    """Build the scenario suite registered under ``name``."""
    key = name.strip().lower()
    if key not in _SUITES:
        raise ConfigurationError(
            f"unknown scenario suite {name!r}; available: {', '.join(available_scenarios())}"
        )
    return _SUITES[key]()


def paper_scenarios() -> dict[str, tuple[ScenarioSpec, ...]]:
    """Every registered suite, keyed by name."""
    return {name: scenario_suite(name) for name in available_scenarios()}


__all__ = [
    "PAPER_DELTAS",
    "GAMMA_GRID",
    "DAILY_LOAD_SCALES",
    "available_scenarios",
    "scenario_suite",
    "paper_scenarios",
]
