"""On-disk result cache keyed by spec content hash.

Scenario results are pure functions of their spec (see
:mod:`repro.engine.trial`), so a completed run can be stored once and
replayed for free.  The cache is a directory of JSON files named by the
spec's :meth:`~repro.engine.spec.ScenarioSpec.content_hash`; entries are
self-describing (they embed the spec that produced them), human-readable,
and safe to copy between machines.

Writes are atomic (write to a temp file, then ``os.replace``) so a crashed
or concurrent run can never leave a truncated entry behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.engine.results import ScenarioResult
from repro.engine.spec import ScenarioSpec
from repro.exceptions import ReproError
from repro.telemetry import metrics as _metrics
from repro.telemetry.config import _STATE as _TELEMETRY


class ResultCache:
    """A directory of cached :class:`ScenarioResult` records.

    Parameters
    ----------
    directory:
        Cache root; created (with parents) if missing.
    """

    def __init__(self, directory: str | Path) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @property
    def directory(self) -> Path:
        """Root directory the cache entries live in."""
        return self._directory

    def path_for(self, spec: ScenarioSpec) -> Path:
        """The file that does / would hold the result of ``spec``."""
        return self._directory / f"{spec.content_hash()}.json"

    # ------------------------------------------------------------------
    def get(self, spec: ScenarioSpec) -> ScenarioResult | None:
        """Return the cached result of ``spec``, or ``None`` on a miss.

        Unreadable or stale entries (hash collisions, schema drift) count as
        misses and are ignored rather than raised.
        """
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self._record(hit=False)
            return None
        if payload.get("spec_hash") != spec.content_hash():
            self._record(hit=False)
            return None
        try:
            result = ScenarioResult.from_dict(payload, from_cache=True)
        except (KeyError, TypeError, ValueError, ReproError):
            self._record(hit=False)
            return None
        self._record(hit=True)
        return result

    def _record(self, hit: bool) -> None:
        if hit:
            self.hits += 1
            if _TELEMETRY.enabled:
                _metrics.counter("cache.result_cache.hits")
        else:
            self.misses += 1
            if _TELEMETRY.enabled:
                _metrics.counter("cache.result_cache.misses")

    def put(self, spec: ScenarioSpec, result: ScenarioResult) -> Path:
        """Store ``result`` under the hash of ``spec`` (atomically).

        The entry is staged in a uniquely named temp file so concurrent
        writers of the same spec cannot interleave; last replace wins with
        both writers holding identical content.
        """
        path = self.path_for(spec)
        fd, tmp = tempfile.mkstemp(
            prefix=f".{spec.content_hash()[:16]}-", suffix=".tmp", dir=self._directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(result.to_dict(), handle, indent=1, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    def __contains__(self, spec: ScenarioSpec) -> bool:
        return self.path_for(spec).exists()

    def __len__(self) -> int:
        # Sorted traversal: Path.glob enumerates in filesystem order, which
        # differs between machines — the motivating example of the
        # `unsorted-iteration` contract rule (`repro lint`).
        return len(sorted(self._directory.glob("*.json")))

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed.

        Entries are removed in sorted name order so the deletion sequence
        (and any interleaving with concurrent readers) is deterministic
        across machines.
        """
        removed = 0
        for path in sorted(self._directory.glob("*.json")):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def stats(self) -> dict[str, int]:
        """Hit/miss counters of this cache instance plus the entry count."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self)}


__all__ = ["ResultCache"]
