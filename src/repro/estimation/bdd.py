"""Residual-based bad-data detection.

The detector compares the weighted residual norm of a state-estimation run
against a threshold ``τ`` chosen so that the false-positive (FP) rate under
attack-free Gaussian noise equals a target ``α`` (paper Section III).  With
measurement weights equal to ``1/σ²``, the squared weighted residual under
the null hypothesis follows a χ² distribution with ``M − (N−1)`` degrees of
freedom, which gives the threshold in closed form; under an FDI attack the
statistic is noncentral χ² with noncentrality ``‖W^{1/2}(I−Γ)a‖²`` (paper
Appendix B), which gives the detection probability in closed form as well.
Monte-Carlo counterparts of both quantities are provided for validation and
for exactly mirroring the paper's simulation methodology.

Every probability evaluator comes in a *batched* form
(:meth:`BadDataDetector.detection_probabilities`,
:meth:`BadDataDetector.raises_alarms`,
:meth:`BadDataDetector.detection_probabilities_monte_carlo`) that consumes
``(B, M)`` stacks and evaluates them with single BLAS calls; the scalar
methods are thin wrappers over a batch of one, so scalar and batched
results are bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.exceptions import EstimationError
from repro.estimation.backends import BACKEND_AUTO
from repro.estimation.linear_model import LinearModel
from repro.estimation.measurement import MeasurementSystem
from repro.estimation.state_estimator import WLSStateEstimator
from repro.utils.rng import as_generator

#: False-positive rate used throughout the paper's simulations.
DEFAULT_FALSE_POSITIVE_RATE: float = 5e-4


@dataclass(frozen=True)
class DetectionOutcome:
    """Result of applying the BDD to one measurement vector."""

    alarm: bool
    residual_norm: float
    threshold: float


class BadDataDetector:
    """χ²-threshold bad-data detector bound to a measurement system.

    Parameters
    ----------
    system:
        The measurement model of the (possibly MTD-perturbed) grid the
        operator currently runs.
    false_positive_rate:
        Target FP rate ``α`` (default ``5e-4`` as in the paper).
    model:
        Optional pre-factorized :class:`LinearModel` for ``system`` (e.g.
        served from a :class:`~repro.estimation.linear_model.
        LinearModelCache`), so that trials sharing a perturbation do not
        refactorize the Jacobian.  Built from the system when omitted.
    backend:
        Factorisation backend for the model built when ``model`` is
        omitted: ``"auto"`` (default), ``"dense"`` or ``"sparse"`` (see
        :mod:`repro.estimation.backends`).
    """

    def __init__(
        self,
        system: MeasurementSystem,
        false_positive_rate: float = DEFAULT_FALSE_POSITIVE_RATE,
        model: LinearModel | None = None,
        backend: str = BACKEND_AUTO,
    ) -> None:
        if not (0.0 < false_positive_rate < 1.0):
            raise EstimationError(
                f"false_positive_rate must be in (0, 1), got {false_positive_rate}"
            )
        self._system = system
        self._alpha = float(false_positive_rate)
        self._estimator = WLSStateEstimator(system, model=model, backend=backend)
        dof = self._estimator.degrees_of_freedom
        if dof <= 0:
            raise EstimationError(
                "the measurement set has no redundancy; bad-data detection is impossible"
            )
        self._dof = dof
        # r² = ‖W^{1/2}(z − Hθ̂)‖² ~ χ²(dof) under H0, so the threshold on the
        # norm is the square root of the χ² quantile.
        self._threshold = float(np.sqrt(stats.chi2.ppf(1.0 - self._alpha, dof)))

    # ------------------------------------------------------------------
    @property
    def estimator(self) -> WLSStateEstimator:
        """The underlying WLS estimator."""
        return self._estimator

    @property
    def model(self) -> LinearModel:
        """The factorized linear model shared with the estimator."""
        return self._estimator.model

    @property
    def system(self) -> MeasurementSystem:
        """The measurement system the detector operates on."""
        return self._system

    @property
    def threshold(self) -> float:
        """Detection threshold ``τ`` on the weighted residual norm."""
        return self._threshold

    @property
    def false_positive_rate(self) -> float:
        """Configured false-positive rate ``α``."""
        return self._alpha

    @property
    def degrees_of_freedom(self) -> int:
        """Degrees of freedom of the residual statistic."""
        return self._dof

    # ------------------------------------------------------------------
    def inspect(self, measurements: np.ndarray) -> DetectionOutcome:
        """Run the detector on one measurement vector (``(M,)``)."""
        residual = self._estimator.residual_norm(measurements)
        return DetectionOutcome(
            alarm=residual >= self._threshold,
            residual_norm=residual,
            threshold=self._threshold,
        )

    def raises_alarm(self, measurements: np.ndarray) -> bool:
        """True when the residual exceeds the threshold."""
        return self.inspect(measurements).alarm

    def raises_alarms(self, measurements: np.ndarray) -> np.ndarray:
        """Vectorised alarm decisions for a measurement batch.

        Parameters
        ----------
        measurements:
            Stacked measurement vectors, shape ``(B, M)``.

        Returns
        -------
        numpy.ndarray
            Boolean alarms, shape ``(B,)``; entry ``i`` equals
            ``raises_alarm(measurements[i])`` bit-for-bit.
        """
        return self._estimator.residual_norms(measurements) >= self._threshold

    # ------------------------------------------------------------------
    # Detection probability of an FDI attack
    # ------------------------------------------------------------------
    def attack_noncentrality(self, attack: np.ndarray) -> float:
        """Noncentrality parameter ``λ = ‖W^{1/2}(I−Γ)a‖²`` of an attack."""
        return self._estimator.attack_residual_norm(attack) ** 2

    def detection_probability(self, attack: np.ndarray) -> float:
        """Closed-form detection probability ``P_D(a) = P(r ≥ τ)``.

        Under the attack the squared weighted residual is noncentral χ² with
        ``dof`` degrees of freedom and noncentrality
        ``λ = ‖W^{1/2}(I−Γ)a‖²`` (paper Appendix B), so
        ``P_D = 1 − F_{ncχ²}(τ²; dof, λ)``.
        """
        a = np.asarray(attack, dtype=float).ravel()
        return float(self.detection_probabilities(a[None, :])[0])

    def detection_probabilities(self, attacks: np.ndarray) -> np.ndarray:
        """Closed-form detection probabilities of a whole attack batch.

        Parameters
        ----------
        attacks:
            Stacked attack vectors, shape ``(B, M)``.

        Returns
        -------
        numpy.ndarray
            ``P_D(a_i)``, shape ``(B,)``.  Attacks with zero residual
            component (stealthy against *this* model) report the
            false-positive floor ``α``.

        Notes
        -----
        One gemm for the batch of noncentralities plus one vectorised
        noncentral-χ² survival evaluation — the per-attack Python loop of
        the reference implementation is gone.
        """
        lams = self.model.attack_noncentralities(attacks)
        probabilities = np.full(lams.shape, self._alpha)
        visible = lams > 0.0
        if np.any(visible):
            probabilities[visible] = stats.ncx2.sf(
                self._threshold**2, self._dof, lams[visible]
            )
        return probabilities

    def detection_probability_monte_carlo(
        self,
        attack: np.ndarray,
        angles_rad: np.ndarray,
        n_trials: int = 1000,
        rng: int | np.random.Generator | None = None,
    ) -> float:
        """Monte-Carlo detection probability, mirroring the paper's method.

        ``n_trials`` noisy measurement vectors are generated for the true
        state ``angles_rad``, the attack is added to each, and the fraction
        of trials raising an alarm is returned.  The noise matrix is drawn
        in one ``(n_trials, M)`` call and all residual norms are evaluated
        with a single BLAS call; the random stream consumed is identical to
        ``n_trials`` sequential draws.
        """
        if n_trials <= 0:
            raise EstimationError(f"n_trials must be positive, got {n_trials}")
        rng = as_generator(rng)
        Z = self._system.measure_batch(angles_rad, n_trials, rng=rng, attack=attack)
        return float(np.count_nonzero(self.raises_alarms(Z))) / n_trials

    def detection_probabilities_monte_carlo(
        self,
        attacks: np.ndarray,
        angles_rad: np.ndarray,
        n_trials: int = 1000,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Monte-Carlo detection probabilities of a whole attack batch.

        Parameters
        ----------
        attacks:
            Stacked attack vectors, shape ``(n_attacks, M)``.
        angles_rad:
            True bus angles (full vector including the slack), shape
            ``(N,)``.
        n_trials:
            Noise draws per attack.
        rng:
            Seed or generator; the noise streams are consumed attack by
            attack in row order, identically to calling
            :meth:`detection_probability_monte_carlo` per attack.

        Returns
        -------
        numpy.ndarray
            Estimated detection probabilities, shape ``(n_attacks,)``.
        """
        if n_trials <= 0:
            raise EstimationError(f"n_trials must be positive, got {n_trials}")
        rng = as_generator(rng)
        A = np.atleast_2d(np.asarray(attacks, dtype=float))
        # The noiseless measurement vector is shared by every attack; hoist
        # it out of the loop (the per-attack arithmetic and RNG stream stay
        # identical to per-attack measure_batch calls, reusing the already
        # factorized Jacobian instead of rebuilding it each iteration —
        # apply_states keeps the product sparse on the sparse backend).
        z0 = self.model.apply_states(self._system.reduce_angles(angles_rad))
        if A.shape[1] != z0.shape[0]:
            raise EstimationError(
                f"attack length {A.shape[1]} does not match measurement count {z0.shape[0]}"
            )
        sigma = self._system.noise_sigma
        probabilities = np.empty(A.shape[0])
        for k in range(A.shape[0]):
            Z = z0[None, :] + rng.normal(0.0, sigma, size=(n_trials, z0.shape[0]))
            Z = Z + A[k][None, :]
            probabilities[k] = np.count_nonzero(self.raises_alarms(Z)) / n_trials
        return probabilities

    def empirical_false_positive_rate(
        self,
        angles_rad: np.ndarray,
        n_trials: int = 2000,
        rng: int | np.random.Generator | None = None,
    ) -> float:
        """Estimate the FP rate by Monte Carlo on attack-free measurements."""
        if n_trials <= 0:
            raise EstimationError(f"n_trials must be positive, got {n_trials}")
        rng = as_generator(rng)
        Z = self._system.measure_batch(angles_rad, n_trials, rng=rng)
        return float(np.count_nonzero(self.raises_alarms(Z))) / n_trials


__all__ = ["BadDataDetector", "DetectionOutcome", "DEFAULT_FALSE_POSITIVE_RATE"]
