"""Residual-based bad-data detection.

The detector compares the weighted residual norm of a state-estimation run
against a threshold ``τ`` chosen so that the false-positive (FP) rate under
attack-free Gaussian noise equals a target ``α`` (paper Section III).  With
measurement weights equal to ``1/σ²``, the squared weighted residual under
the null hypothesis follows a χ² distribution with ``M − (N−1)`` degrees of
freedom, which gives the threshold in closed form; under an FDI attack the
statistic is noncentral χ² with noncentrality ``‖W^{1/2}(I−Γ)a‖²`` (paper
Appendix B), which gives the detection probability in closed form as well.
Monte-Carlo counterparts of both quantities are provided for validation and
for exactly mirroring the paper's simulation methodology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.exceptions import EstimationError
from repro.estimation.measurement import MeasurementSystem
from repro.estimation.state_estimator import WLSStateEstimator
from repro.utils.rng import as_generator

#: False-positive rate used throughout the paper's simulations.
DEFAULT_FALSE_POSITIVE_RATE: float = 5e-4


@dataclass(frozen=True)
class DetectionOutcome:
    """Result of applying the BDD to one measurement vector."""

    alarm: bool
    residual_norm: float
    threshold: float


class BadDataDetector:
    """χ²-threshold bad-data detector bound to a measurement system.

    Parameters
    ----------
    system:
        The measurement model of the (possibly MTD-perturbed) grid the
        operator currently runs.
    false_positive_rate:
        Target FP rate ``α`` (default ``5e-4`` as in the paper).
    """

    def __init__(
        self,
        system: MeasurementSystem,
        false_positive_rate: float = DEFAULT_FALSE_POSITIVE_RATE,
    ) -> None:
        if not (0.0 < false_positive_rate < 1.0):
            raise EstimationError(
                f"false_positive_rate must be in (0, 1), got {false_positive_rate}"
            )
        self._system = system
        self._alpha = float(false_positive_rate)
        self._estimator = WLSStateEstimator(system)
        dof = self._estimator.degrees_of_freedom
        if dof <= 0:
            raise EstimationError(
                "the measurement set has no redundancy; bad-data detection is impossible"
            )
        self._dof = dof
        # r² = ‖W^{1/2}(z − Hθ̂)‖² ~ χ²(dof) under H0, so the threshold on the
        # norm is the square root of the χ² quantile.
        self._threshold = float(np.sqrt(stats.chi2.ppf(1.0 - self._alpha, dof)))

    # ------------------------------------------------------------------
    @property
    def estimator(self) -> WLSStateEstimator:
        """The underlying WLS estimator."""
        return self._estimator

    @property
    def system(self) -> MeasurementSystem:
        """The measurement system the detector operates on."""
        return self._system

    @property
    def threshold(self) -> float:
        """Detection threshold ``τ`` on the weighted residual norm."""
        return self._threshold

    @property
    def false_positive_rate(self) -> float:
        """Configured false-positive rate ``α``."""
        return self._alpha

    @property
    def degrees_of_freedom(self) -> int:
        """Degrees of freedom of the residual statistic."""
        return self._dof

    # ------------------------------------------------------------------
    def inspect(self, measurements: np.ndarray) -> DetectionOutcome:
        """Run the detector on a measurement vector."""
        residual = self._estimator.residual_norm(measurements)
        return DetectionOutcome(
            alarm=residual >= self._threshold,
            residual_norm=residual,
            threshold=self._threshold,
        )

    def raises_alarm(self, measurements: np.ndarray) -> bool:
        """True when the residual exceeds the threshold."""
        return self.inspect(measurements).alarm

    # ------------------------------------------------------------------
    # Detection probability of an FDI attack
    # ------------------------------------------------------------------
    def attack_noncentrality(self, attack: np.ndarray) -> float:
        """Noncentrality parameter ``λ = ‖W^{1/2}(I−Γ)a‖²`` of an attack."""
        return self._estimator.attack_residual_norm(attack) ** 2

    def detection_probability(self, attack: np.ndarray) -> float:
        """Closed-form detection probability ``P_D(a) = P(r ≥ τ)``.

        Under the attack the squared weighted residual is noncentral χ² with
        ``dof`` degrees of freedom and noncentrality
        ``λ = ‖W^{1/2}(I−Γ)a‖²`` (paper Appendix B), so
        ``P_D = 1 − F_{ncχ²}(τ²; dof, λ)``.
        """
        lam = self.attack_noncentrality(attack)
        if lam <= 0.0:
            return float(self._alpha)
        return float(stats.ncx2.sf(self._threshold**2, self._dof, lam))

    def detection_probability_monte_carlo(
        self,
        attack: np.ndarray,
        angles_rad: np.ndarray,
        n_trials: int = 1000,
        rng: int | np.random.Generator | None = None,
    ) -> float:
        """Monte-Carlo detection probability, mirroring the paper's method.

        ``n_trials`` noisy measurement vectors are generated for the true
        state ``angles_rad``, the attack is added to each, and the fraction
        of trials raising an alarm is returned.
        """
        if n_trials <= 0:
            raise EstimationError(f"n_trials must be positive, got {n_trials}")
        rng = as_generator(rng)
        alarms = 0
        for _ in range(n_trials):
            z = self._system.measure(angles_rad, rng=rng, attack=attack)
            if self.raises_alarm(z):
                alarms += 1
        return alarms / n_trials

    def empirical_false_positive_rate(
        self,
        angles_rad: np.ndarray,
        n_trials: int = 2000,
        rng: int | np.random.Generator | None = None,
    ) -> float:
        """Estimate the FP rate by Monte Carlo on attack-free measurements."""
        if n_trials <= 0:
            raise EstimationError(f"n_trials must be positive, got {n_trials}")
        rng = as_generator(rng)
        alarms = 0
        for _ in range(n_trials):
            z = self._system.measure(angles_rad, rng=rng)
            if self.raises_alarm(z):
                alarms += 1
        return alarms / n_trials


__all__ = ["BadDataDetector", "DetectionOutcome", "DEFAULT_FALSE_POSITIVE_RATE"]
