"""Pluggable factorization backends for the linear estimation stack.

A :class:`FactorizationBackend` owns everything a
:class:`~repro.estimation.linear_model.LinearModel` derives from one
(measurement matrix, weights) pair and answers the model's batched
linear-algebra queries.  Two first-class implementations exist:

``dense`` — :class:`DenseQRBackend`
    The original path: SVD observability guard, then the thin QR
    factorisation ``W^{1/2}H = QR`` with ``Q`` (shape ``(M, n)``)
    materialised.  States come from one triangular solve, residual norms
    from the projector identity ``‖(I − QQᵀ)W^{1/2}z‖``.  Its arithmetic
    is byte-for-byte the pre-backend ``LinearModel`` (golden-pinned by the
    tier-1 tests).

``sparse`` — :class:`SparseQlessBackend`
    The scale path: ``H`` stays CSR, the sparse gain matrix ``G = HᵀWH``
    (shape ``(n, n)``, ~``O(nnz)`` memory) is factorised once with a
    permutation-ordered sparse LU (:func:`scipy.sparse.linalg.splu`,
    COLAMD column ordering), and **no dense ``(M, n)`` factor is ever
    materialised** — neither ``Q`` nor a densified ``H``.  States are two
    sparse-triangular solves through the LU, residual norms are evaluated
    directly as ``‖W^{1/2}(z − Hθ̂)‖`` (mathematically identical to the
    projector form; the tier-1 agreement tests pin the two paths to
    ~1e-9 relative tolerance), and the observability guard is derived
    from the factorisation itself — a zero/vanishing pivot on the diagonal
    of ``U`` — instead of a dense SVD, so the guard stops being the
    O(M·n²) bottleneck.

``auto`` resolves per model: sparse at or above
:data:`~repro.grid.matrices.SPARSE_BUS_THRESHOLD` buses (the same
crossover the grid layer uses for its CSR builders), dense below it.

Shapes follow the paper's Section III conventions: ``M`` measurements,
``n = N − 1`` states, ``B`` batch rows.  Every batched method takes
*weighted* rows ``W^{1/2}z`` of shape ``(B, M)`` — the caller
(:class:`LinearModel`) owns input coercion and weighting so scalar and
batched entry points share one code path.
"""

from __future__ import annotations

import abc
from typing import Any, Union

import numpy as np
import scipy.linalg
import scipy.sparse
import scipy.sparse.linalg

from repro.exceptions import ConfigurationError, EstimationError
from repro.grid.matrices import SPARSE_BUS_THRESHOLD
from repro.utils.linalg import is_full_column_rank

#: A measurement Jacobian as accepted by the backends: dense array(-like)
#: or any scipy sparse matrix (converted to CSR internally).
MatrixLike = Union[np.ndarray, "scipy.sparse.spmatrix"]

#: Resolve per model size (the default everywhere a ``backend=`` knob
#: appears).
BACKEND_AUTO = "auto"
#: The original dense-QR path (byte-for-byte pre-backend arithmetic).
BACKEND_DENSE = "dense"
#: The Q-less sparse-LU path for large cases.
BACKEND_SPARSE = "sparse"

#: Every accepted value of a ``backend=`` knob.
BACKEND_CHOICES = (BACKEND_AUTO, BACKEND_DENSE, BACKEND_SPARSE)

#: Relative pivot tolerance of the sparse observability guard: the model
#: is rejected as rank deficient when ``min|diag(U)| ≤ rtol · max|diag(U)|``
#: for the LU factor ``U`` of ``G = HᵀWH``.  ``G`` squares ``H``'s
#: condition number, so this is deliberately looser than the SVD guard's
#: machine-epsilon criterion; a network unobservable in exact arithmetic
#: produces an exactly (or catastrophically) singular ``G`` either way.
SPARSE_RANK_RTOL = 1e-10

#: Error raised when a model's Jacobian cannot support state estimation.
_RANK_DEFICIENT_MSG = (
    "measurement matrix is rank deficient; the network is unobservable"
)


def available_backends() -> tuple[str, ...]:
    """The concrete backend names this build can instantiate."""
    return (BACKEND_DENSE, BACKEND_SPARSE)


def resolve_backend(backend: str, n_buses: int) -> str:
    """Resolve a ``backend=`` knob to a concrete backend name.

    Parameters
    ----------
    backend:
        ``"auto"``, ``"dense"`` or ``"sparse"``.
    n_buses:
        Bus count of the model's network (``n_states + 1``); ``"auto"``
        selects ``"sparse"`` at or above
        :data:`~repro.grid.matrices.SPARSE_BUS_THRESHOLD` buses.

    Returns
    -------
    str
        ``"dense"`` or ``"sparse"``.

    Raises
    ------
    ConfigurationError
        For an unknown backend name.
    """
    if backend not in BACKEND_CHOICES:
        raise ConfigurationError(
            f"unknown factorization backend {backend!r}; "
            f"expected one of {BACKEND_CHOICES}"
        )
    if backend != BACKEND_AUTO:
        return backend
    return BACKEND_SPARSE if n_buses >= SPARSE_BUS_THRESHOLD else BACKEND_DENSE


class FactorizationBackend(abc.ABC):
    """One factorisation of a weighted Jacobian ``W^{1/2}H``.

    Subclasses factorise in ``__init__`` (raising
    :class:`~repro.exceptions.EstimationError` on a rank-deficient model)
    and then answer the batched queries below.  All ``weighted`` arguments
    are ``W^{1/2}z`` rows of shape ``(B, M)``.
    """

    #: Concrete backend name (``"dense"`` or ``"sparse"``).
    name: str = ""

    @property
    @abc.abstractmethod
    def n_measurements(self) -> int:
        """``M``, the number of measurements."""

    @property
    @abc.abstractmethod
    def n_states(self) -> int:
        """``n``, the number of estimated states."""

    @abc.abstractmethod
    def matrix_dense(self) -> np.ndarray:
        """The Jacobian ``H`` as a dense ``(M, n)`` array.

        The sparse backend densifies on demand — a diagnostic accessor,
        not part of any batched kernel.
        """

    @abc.abstractmethod
    def apply_states(self, states: np.ndarray) -> np.ndarray:
        """``Hθ`` for a ``(n,)`` state vector or ``(B, n)`` stack."""

    @abc.abstractmethod
    def solve_states(self, weighted: np.ndarray) -> np.ndarray:
        """WLS states ``θ̂`` for weighted rows, shape ``(B, n)``."""

    @abc.abstractmethod
    def estimate(
        self, weighted: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """States, weighted residual norms and fitted measurements.

        Returns ``(θ̂ (B, n), ‖W^{1/2}(z − Hθ̂)‖ (B,), Hθ̂ (B, M))`` with
        shared intermediates computed once.
        """

    @abc.abstractmethod
    def residual_norms(self, weighted: np.ndarray) -> np.ndarray:
        """Weighted residual norms ``‖W^{1/2}(z − Hθ̂)‖``, shape ``(B,)``."""

    @abc.abstractmethod
    def project_weighted(self, weighted: np.ndarray) -> np.ndarray:
        """The fitted component ``Γ_w v = W^{1/2}Hθ̂`` of weighted rows.

        The attack-residual kernels derive ``(I − Γ)a`` and its norms from
        this single projection.
        """

    @abc.abstractmethod
    def gain_cholesky(self) -> np.ndarray:
        """Upper Cholesky factor ``U`` of ``G = HᵀWH`` (``UᵀU = G``)."""

    # -- dense-only accessors ------------------------------------------
    @property
    def q(self) -> np.ndarray:
        """Orthonormal QR factor — dense backend only."""
        raise EstimationError(
            f"the {self.name!r} backend is Q-less and does not materialize "
            "the Q/R factors; use backend='dense' for explicit factors"
        )

    @property
    def r(self) -> np.ndarray:
        """Triangular QR factor — dense backend only."""
        raise EstimationError(
            f"the {self.name!r} backend is Q-less and does not materialize "
            "the Q/R factors; use backend='dense' for explicit factors"
        )


class DenseQRBackend(FactorizationBackend):
    """Dense thin-QR factorisation — the library's original arithmetic.

    Stores ``Q`` (``(M, n)``) and ``R`` (``(n, n)``) of ``W^{1/2}H = QR``.
    Every method reproduces the pre-backend ``LinearModel`` expressions
    verbatim, so results are bit-identical to the golden-pinned baseline.
    """

    name = BACKEND_DENSE

    def __init__(self, matrix: MatrixLike, sqrt_weights: np.ndarray) -> None:
        if scipy.sparse.issparse(matrix):
            H = np.asarray(matrix.toarray(), dtype=float)
        else:
            H = np.asarray(matrix, dtype=float)
        self._H = H
        weighted_H = sqrt_weights[:, None] * H
        # SVD-based rank test: an unpivoted QR diagonal can look healthy on
        # nearly singular (Kahan-type) matrices, so the observability guard
        # keeps the singular-value criterion the estimator always used.
        if not is_full_column_rank(weighted_H):
            raise EstimationError(_RANK_DEFICIENT_MSG)
        self._q, self._r = np.linalg.qr(weighted_H)

    @property
    def n_measurements(self) -> int:
        return self._H.shape[0]

    @property
    def n_states(self) -> int:
        return self._H.shape[1]

    @property
    def q(self) -> np.ndarray:
        return self._q

    @property
    def r(self) -> np.ndarray:
        return self._r

    def matrix_dense(self) -> np.ndarray:
        return self._H

    def apply_states(self, states: np.ndarray) -> np.ndarray:
        if states.ndim == 1:
            return self._H @ states
        return states @ self._H.T

    def solve_states(self, weighted: np.ndarray) -> np.ndarray:
        theta: np.ndarray = scipy.linalg.solve_triangular(
            self._r, (weighted @ self._q).T
        ).T
        return theta

    def estimate(
        self, weighted: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        coeffs = weighted @ self._q                 # (B, n)
        theta: np.ndarray = scipy.linalg.solve_triangular(self._r, coeffs.T).T
        fitted = theta @ self._H.T
        # The norm uses the projector identity ‖W^{1/2}(z − Hθ̂)‖ =
        # ‖(I − QQᵀ)W^{1/2}z‖ — the same arithmetic as residual_norms(), so
        # every alarm decision in the library agrees bit-for-bit.
        residual_norms = np.linalg.norm(weighted - coeffs @ self._q.T, axis=1)
        return theta, residual_norms, fitted

    def residual_norms(self, weighted: np.ndarray) -> np.ndarray:
        coeffs = weighted @ self._q                 # (B, n)
        projected = coeffs @ self._q.T              # (B, M)
        return np.asarray(np.linalg.norm(weighted - projected, axis=1))

    def project_weighted(self, weighted: np.ndarray) -> np.ndarray:
        return (weighted @ self._q) @ self._q.T

    def gain_cholesky(self) -> np.ndarray:
        signs = np.where(np.diag(self._r) < 0.0, -1.0, 1.0)
        return np.asarray(signs[:, None] * self._r)


class SparseQlessBackend(FactorizationBackend):
    """Sparse Q-less factorisation via LU of the gain matrix.

    Keeps ``H`` and ``W^{1/2}H`` in CSR, factorises the sparse gain matrix
    ``G = HᵀWH`` once with COLAMD-ordered :func:`scipy.sparse.linalg.splu`
    and answers every query through the LU solve — no ``(M, n)`` dense
    array is ever formed.  Memory is ``O(nnz(H) + nnz(L + U))`` versus the
    dense backend's ``O(M·n)`` for ``Q`` alone.

    The observability guard comes from the factorisation itself: an
    exactly singular ``G`` aborts inside ``splu`` and a numerically
    rank-deficient one surfaces as a vanishing pivot on ``diag(U)``
    (relative tolerance :data:`SPARSE_RANK_RTOL`), replacing the dense-SVD
    check that would otherwise dominate the sparse path's cost.
    """

    name = BACKEND_SPARSE

    def __init__(self, matrix: MatrixLike, sqrt_weights: np.ndarray) -> None:
        if scipy.sparse.issparse(matrix):
            H = matrix.tocsr()
            if H.dtype != np.float64:
                H = H.astype(np.float64)
        else:
            H = scipy.sparse.csr_matrix(np.asarray(matrix, dtype=float))
        self._H = H
        self._Hw = H.multiply(sqrt_weights[:, None]).tocsr()
        gain = (self._Hw.T @ self._Hw).tocsc()
        try:
            self._lu = scipy.sparse.linalg.splu(gain, permc_spec="COLAMD")
        except RuntimeError as exc:
            # SuperLU reports exact singularity ("Factor is exactly
            # singular") — the sparse equivalent of the SVD guard firing.
            raise EstimationError(_RANK_DEFICIENT_MSG) from exc
        pivots = np.abs(np.asarray(self._lu.U.diagonal(), dtype=float))
        if pivots.size == 0 or not np.all(pivots > pivots.max() * SPARSE_RANK_RTOL):
            raise EstimationError(_RANK_DEFICIENT_MSG)

    @property
    def n_measurements(self) -> int:
        return int(self._H.shape[0])

    @property
    def n_states(self) -> int:
        return int(self._H.shape[1])

    def matrix_dense(self) -> np.ndarray:
        return np.asarray(self._H.toarray(), dtype=float)

    @property
    def matrix_sparse(self) -> Any:
        """The Jacobian ``H`` in CSR form (no densification)."""
        return self._H

    def apply_states(self, states: np.ndarray) -> np.ndarray:
        if states.ndim == 1:
            return np.asarray(self._H @ states)
        return np.asarray((self._H @ states.T).T)

    def _solve_gain(self, weighted: np.ndarray) -> np.ndarray:
        """``G⁻¹HᵀW^{1/2}·`` for weighted rows: states as ``(n, B)``."""
        rhs = np.asarray(self._Hw.T @ weighted.T)
        solved: np.ndarray = self._lu.solve(rhs)
        return solved

    def solve_states(self, weighted: np.ndarray) -> np.ndarray:
        return self._solve_gain(weighted).T

    def estimate(
        self, weighted: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        theta_t = self._solve_gain(weighted)        # (n, B)
        fitted_weighted = np.asarray((self._Hw @ theta_t).T)
        # Direct form ‖W^{1/2}(z − Hθ̂)‖ — no projector, no Q.
        residual_norms = np.linalg.norm(weighted - fitted_weighted, axis=1)
        fitted = np.asarray((self._H @ theta_t).T)
        return theta_t.T, residual_norms, fitted

    def residual_norms(self, weighted: np.ndarray) -> np.ndarray:
        fitted_weighted = np.asarray((self._Hw @ self._solve_gain(weighted)).T)
        return np.asarray(np.linalg.norm(weighted - fitted_weighted, axis=1))

    def project_weighted(self, weighted: np.ndarray) -> np.ndarray:
        return np.asarray((self._Hw @ self._solve_gain(weighted)).T)

    def gain_cholesky(self) -> np.ndarray:
        # Diagnostic accessor: densifies the (n, n) gain matrix — small
        # next to any (M, n) dense factor — and Cholesky-factorises it.
        gain = (self._Hw.T @ self._Hw).toarray()
        return np.asarray(scipy.linalg.cholesky(gain, lower=False))


def build_backend(
    matrix: MatrixLike, sqrt_weights: np.ndarray, backend: str
) -> FactorizationBackend:
    """Factorise ``matrix`` with the *concrete* backend ``backend``.

    ``backend`` must already be resolved (``"dense"`` or ``"sparse"``);
    pass knob values through :func:`resolve_backend` first.
    """
    if backend == BACKEND_DENSE:
        return DenseQRBackend(matrix, sqrt_weights)
    if backend == BACKEND_SPARSE:
        return SparseQlessBackend(matrix, sqrt_weights)
    raise ConfigurationError(
        f"unresolved factorization backend {backend!r}; "
        f"expected {BACKEND_DENSE!r} or {BACKEND_SPARSE!r}"
    )


__all__ = [
    "BACKEND_AUTO",
    "BACKEND_CHOICES",
    "BACKEND_DENSE",
    "BACKEND_SPARSE",
    "SPARSE_RANK_RTOL",
    "FactorizationBackend",
    "DenseQRBackend",
    "SparseQlessBackend",
    "available_backends",
    "build_backend",
    "resolve_backend",
]
