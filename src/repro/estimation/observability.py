"""Observability analysis of the measurement configuration.

The full SCADA measurement set of the paper (all injections plus both flow
directions) always makes a connected network observable, but users may study
reduced measurement sets; these helpers report whether weighted least squares
estimation is possible and which states are undetermined if not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.matrices import NetworkLike, reduced_measurement_matrix
from repro.utils.linalg import is_full_column_rank


@dataclass(frozen=True)
class ObservabilityReport:
    """Result of :func:`observability_report`.

    Attributes
    ----------
    observable:
        True when the (possibly row-restricted) measurement matrix has full
        column rank.
    rank:
        Numerical rank of the measurement matrix.
    n_states:
        Number of states to estimate (``N − 1``).
    undetermined_states:
        Indices (into the non-slack bus ordering) of state directions that
        are not pinned down by the measurements.  Empty when observable.
    """

    observable: bool
    rank: int
    n_states: int
    undetermined_states: tuple[int, ...]


def is_observable(
    network: NetworkLike,
    measurement_rows: np.ndarray | None = None,
    reactances: np.ndarray | None = None,
) -> bool:
    """Check whether the network is observable from the selected measurements."""
    H = _selected_matrix(network, measurement_rows, reactances)
    return is_full_column_rank(H)


def observability_report(
    network: NetworkLike,
    measurement_rows: np.ndarray | None = None,
    reactances: np.ndarray | None = None,
    tol: float = 1e-9,
) -> ObservabilityReport:
    """Full observability diagnosis.

    Parameters
    ----------
    network:
        Network under study.
    measurement_rows:
        Optional boolean mask or index array selecting a subset of the
        ``2L + N`` measurements (e.g. to model meters lost to failures or to
        an attacker's jamming).  Defaults to all measurements.
    reactances:
        Optional reactance override.
    tol:
        Singular-value threshold for the rank decision.
    """
    H = _selected_matrix(network, measurement_rows, reactances)
    n_states = H.shape[1]
    # full_matrices=True so that vt spans all of R^n_states and its trailing
    # rows form a basis of the null space even when there are fewer
    # measurements than states.
    _, s, vt = np.linalg.svd(H, full_matrices=True)
    rank = int(np.sum(s > tol * (s[0] if s.size else 1.0)))
    observable = rank == n_states
    undetermined: tuple[int, ...] = ()
    if not observable:
        # Null-space directions indicate which state combinations are free;
        # report the states with the largest participation in them.
        null_vectors = vt[rank:]
        participation = np.sum(null_vectors**2, axis=0)
        undetermined = tuple(int(i) for i in np.where(participation > 1e-6)[0])
    return ObservabilityReport(
        observable=observable,
        rank=rank,
        n_states=n_states,
        undetermined_states=undetermined,
    )


def _selected_matrix(
    network: NetworkLike,
    measurement_rows: np.ndarray | None,
    reactances: np.ndarray | None,
) -> np.ndarray:
    H = reduced_measurement_matrix(network, reactances)
    if measurement_rows is None:
        return H
    rows = np.asarray(measurement_rows)
    if rows.dtype == bool:
        if rows.shape[0] != H.shape[0]:
            raise ValueError(
                f"boolean mask length {rows.shape[0]} does not match measurement count {H.shape[0]}"
            )
        return H[rows]
    return H[rows.astype(int)]


__all__ = ["is_observable", "observability_report", "ObservabilityReport"]
