"""The SCADA measurement model.

Measurements are, in the paper's convention, the nodal power injections and
the forward and reverse branch power flows:

.. math::  z = Hθ + n, \\qquad H = [D Aᵀ; −D Aᵀ; A D Aᵀ]

with ``n`` zero-mean Gaussian noise.  The library works with the *reduced*
measurement matrix (slack column removed) and expresses measurements in per
unit; bus angles are in radians.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import EstimationError
from repro.grid.matrices import (
    NetworkLike,
    reduced_measurement_matrix,
    reduced_measurement_matrix_sparse,
)
from repro.utils.rng import as_generator

#: Default measurement noise standard deviation, in per unit (0.15 % of the
#: 100 MVA base, i.e. 0.15 MW).  The paper does not state its noise level;
#: this value is calibrated so that, with the paper's attack magnitude
#: (``‖a‖₁/‖z‖₁ ≈ 0.08``) and false-positive rate (5e-4), the detection
#: probability of the attack ensemble transitions from near zero to near one
#: across the subspace-angle range achievable by the paper's D-FACTS limits,
#: reproducing the shape of Fig. 6.  See EXPERIMENTS.md for the calibration.
DEFAULT_NOISE_SIGMA: float = 0.0015


@dataclass(frozen=True)
class MeasurementSystem:
    """The measurement model of a (possibly perturbed) network.

    Instances are cheap, immutable views binding a network to a reactance
    vector and a noise level; the MTD machinery builds one per candidate
    perturbation.

    Parameters
    ----------
    network:
        The underlying network (provides topology and slack bus); either a
        :class:`~repro.grid.network.PowerNetwork` or its
        :class:`~repro.grid.arrays.NetworkArrays` view — both carry the
        shared topology cache, so building the measurement matrix for a
        perturbed reactance vector reuses the incidence matrix instead of
        rebuilding it.
    reactances:
        Branch reactances defining the measurement matrix.  Defaults to the
        network's nominal reactances.
    noise_sigma:
        Standard deviation of the Gaussian measurement noise (per unit),
        identical for every sensor as in the paper's simulations.
    """

    network: NetworkLike
    reactances: tuple[float, ...] | None = None
    noise_sigma: float = DEFAULT_NOISE_SIGMA

    def __post_init__(self) -> None:
        if self.noise_sigma <= 0:
            raise EstimationError(
                f"noise_sigma must be strictly positive, got {self.noise_sigma}"
            )
        if self.reactances is not None:
            x = np.asarray(self.reactances, dtype=float)
            if x.shape[0] != self.network.n_branches:
                raise EstimationError(
                    f"expected {self.network.n_branches} reactances, got {x.shape[0]}"
                )
            if np.any(x <= 0):
                raise EstimationError("all reactances must be strictly positive")

    # ------------------------------------------------------------------
    @classmethod
    def for_network(
        cls,
        network: NetworkLike,
        reactances: np.ndarray | None = None,
        noise_sigma: float = DEFAULT_NOISE_SIGMA,
    ) -> "MeasurementSystem":
        """Build a measurement system, accepting an array reactance override."""
        packed = None if reactances is None else tuple(float(v) for v in np.asarray(reactances).ravel())
        return cls(network=network, reactances=packed, noise_sigma=noise_sigma)

    # ------------------------------------------------------------------
    @property
    def n_measurements(self) -> int:
        """Number of measurements ``M = 2L + N``."""
        return self.network.n_measurements

    @property
    def n_states(self) -> int:
        """Number of estimated states (non-slack bus angles, ``N − 1``)."""
        return self.network.n_buses - 1

    def reactance_vector(self) -> np.ndarray:
        """The reactance vector backing this measurement system."""
        if self.reactances is None:
            return self.network.reactances()
        return np.asarray(self.reactances, dtype=float)

    def matrix(self) -> np.ndarray:
        """The reduced measurement matrix ``H`` (``M x (N−1)``)."""
        return reduced_measurement_matrix(self.network, self.reactance_vector())

    def matrix_sparse(self):
        """The reduced measurement matrix ``H`` in CSR form.

        Same entries as :meth:`matrix` but built through the grid layer's
        sparse assembly, so the sparse factorization backend never forms
        the dense ``(M, N−1)`` array.
        """
        return reduced_measurement_matrix_sparse(self.network, self.reactance_vector())

    def weights(self) -> np.ndarray:
        """Measurement weights ``1/σ²`` (one per measurement)."""
        return np.full(self.n_measurements, 1.0 / self.noise_sigma**2)

    # ------------------------------------------------------------------
    def reduce_angles(self, angles_rad: np.ndarray) -> np.ndarray:
        """Drop the slack entry from a full bus-angle vector."""
        angles = np.asarray(angles_rad, dtype=float).ravel()
        if angles.shape[0] != self.network.n_buses:
            raise EstimationError(
                f"expected {self.network.n_buses} angles, got {angles.shape[0]}"
            )
        return angles[self.network.arrays.topology.non_slack()]

    def noiseless_measurements(self, angles_rad: np.ndarray) -> np.ndarray:
        """The exact measurement vector ``Hθ`` for a full angle vector (p.u.)."""
        return self.matrix() @ self.reduce_angles(angles_rad)

    def measure(
        self,
        angles_rad: np.ndarray,
        rng: int | np.random.Generator | None = None,
        attack: np.ndarray | None = None,
    ) -> np.ndarray:
        """Draw a noisy (optionally attacked) measurement vector.

        Parameters
        ----------
        angles_rad:
            True bus voltage angles (full vector including the slack).
        rng:
            Seed or generator for the measurement noise.
        attack:
            Optional FDI attack vector ``a`` added to the measurements.
        """
        rng = as_generator(rng)
        z = self.noiseless_measurements(angles_rad)
        z = z + rng.normal(0.0, self.noise_sigma, size=z.shape[0])
        if attack is not None:
            a = np.asarray(attack, dtype=float).ravel()
            if a.shape[0] != z.shape[0]:
                raise EstimationError(
                    f"attack length {a.shape[0]} does not match measurement count {z.shape[0]}"
                )
            z = z + a
        return z

    def measure_batch(
        self,
        angles_rad: np.ndarray,
        n_draws: int,
        rng: int | np.random.Generator | None = None,
        attack: np.ndarray | None = None,
    ) -> np.ndarray:
        """Draw a whole batch of noisy (optionally attacked) measurements.

        Parameters
        ----------
        angles_rad:
            True bus voltage angles (full vector including the slack),
            shape ``(N,)``.
        n_draws:
            Number of measurement vectors to draw.
        rng:
            Seed or generator for the measurement noise.  The noise matrix
            is requested as one ``(n_draws, M)`` normal draw, which consumes
            the generator's stream identically to ``n_draws`` sequential
            :meth:`measure` calls — batched and per-draw paths see the same
            noise bit-for-bit.
        attack:
            Optional FDI attack vector ``a`` (shape ``(M,)``) added to every
            row.

        Returns
        -------
        numpy.ndarray
            Measurement matrix of shape ``(n_draws, M)``; row ``i`` equals
            the ``i``-th sequential :meth:`measure` draw.
        """
        if n_draws <= 0:
            raise EstimationError(f"n_draws must be positive, got {n_draws}")
        rng = as_generator(rng)
        z0 = self.noiseless_measurements(angles_rad)
        Z = z0[None, :] + rng.normal(0.0, self.noise_sigma, size=(n_draws, z0.shape[0]))
        if attack is not None:
            a = np.asarray(attack, dtype=float).ravel()
            if a.shape[0] != z0.shape[0]:
                raise EstimationError(
                    f"attack length {a.shape[0]} does not match measurement count {z0.shape[0]}"
                )
            Z = Z + a[None, :]
        return Z

    def with_reactances(self, reactances: np.ndarray) -> "MeasurementSystem":
        """Return a measurement system for a perturbed reactance vector."""
        return MeasurementSystem.for_network(
            self.network, reactances=reactances, noise_sigma=self.noise_sigma
        )


__all__ = ["MeasurementSystem", "DEFAULT_NOISE_SIGMA"]
