"""State estimation and bad-data detection.

Implements the DC-model supervisory stack of Section III of the paper:

* :class:`~repro.estimation.measurement.MeasurementSystem` — the SCADA
  measurement model ``z = Hθ + n`` (forward/reverse branch flows and nodal
  injections, Gaussian noise).
* :class:`~repro.estimation.state_estimator.WLSStateEstimator` — the
  maximum-likelihood (weighted least squares) estimator
  ``θ̂ = (HᵀWH)⁻¹HᵀWz``.
* :class:`~repro.estimation.bdd.BadDataDetector` — the residual-based
  detector with a threshold calibrated to a target false-positive rate, plus
  analytic (noncentral-χ²) and Monte-Carlo detection-probability evaluators.
* :class:`~repro.estimation.linear_model.LinearModel` /
  :class:`~repro.estimation.linear_model.LinearModelCache` — the factorized
  batched kernel behind both: Jacobian, gain-matrix Cholesky and residual
  projector computed once per perturbation and applied to whole ``(B, M)``
  measurement/attack batches with single BLAS calls.
* :mod:`~repro.estimation.backends` — pluggable factorization backends:
  dense QR (the original arithmetic) and a sparse Q-less gain-matrix LU
  for 1000+ bus cases, selected per model via ``backend="auto"``.
"""

from repro.estimation.backends import (
    BACKEND_CHOICES,
    DenseQRBackend,
    FactorizationBackend,
    SparseQlessBackend,
    available_backends,
    resolve_backend,
)
from repro.estimation.linear_model import BatchStateEstimate, LinearModel, LinearModelCache
from repro.estimation.measurement import MeasurementSystem
from repro.estimation.state_estimator import StateEstimate, WLSStateEstimator
from repro.estimation.bdd import BadDataDetector
from repro.estimation.observability import is_observable, observability_report

__all__ = [
    "MeasurementSystem",
    "WLSStateEstimator",
    "StateEstimate",
    "BadDataDetector",
    "LinearModel",
    "LinearModelCache",
    "BatchStateEstimate",
    "FactorizationBackend",
    "DenseQRBackend",
    "SparseQlessBackend",
    "BACKEND_CHOICES",
    "available_backends",
    "resolve_backend",
    "is_observable",
    "observability_report",
]
