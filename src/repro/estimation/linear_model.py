"""Factorized linear measurement models and their cache.

This module is the heart of the batched trial kernel.  A
:class:`LinearModel` captures everything the estimation stack derives from
one (measurement matrix, weights) pair — the Jacobian ``H``, a
factorisation of the weighted Jacobian ``W^{1/2}H`` and the implied
residual projector — and exposes *batched* linear-algebra entry points:
state estimation, weighted residual norms and attack noncentralities for
``(B, M)`` stacks of measurement / attack vectors, each evaluated with a
single BLAS call instead of a per-vector Python loop.

The factorisation itself is pluggable (see
:mod:`repro.estimation.backends`): the default ``backend="auto"`` keeps
the original dense QR path — byte-for-byte unchanged — below
:data:`~repro.grid.matrices.SPARSE_BUS_THRESHOLD` buses and switches to a
sparse Q-less gain-matrix LU above it, so 1000+ bus cases never
materialise a dense ``(M, n)`` factor.

A :class:`LinearModelCache` memoises the factorisations by caller-chosen
keys so that Monte-Carlo trials sharing a (case, perturbation) pair pay for
the Jacobian build and factorisation exactly once; hit/miss/eviction
counters make the reuse observable and testable.

Shapes used throughout (matching the paper's Section III):

* ``M`` — number of measurements (``2L + N``),
* ``n`` — number of estimated states (``N − 1``),
* ``B`` — batch size (noise draws, attacks, or trials).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Hashable

import numpy as np
import scipy.sparse

from repro.estimation.backends import (
    BACKEND_AUTO,
    BACKEND_SPARSE,
    MatrixLike,
    build_backend,
    resolve_backend,
)
from repro.exceptions import ConfigurationError, EstimationError
from repro.telemetry import metrics as _metrics
from repro.telemetry.config import _STATE as _TELEMETRY

if TYPE_CHECKING:
    from repro.estimation.measurement import MeasurementSystem

#: Internal sentinel distinguishing "absent" from a legitimately cached
#: falsy value (None, empty array) in :class:`LinearModelCache`.
_MISSING = object()


@dataclass(frozen=True)
class BatchStateEstimate:
    """Vectorised output of a batched WLS state-estimation run.

    Attributes
    ----------
    angles_rad:
        Estimated non-slack bus angles, shape ``(B, n)``; row ``i`` is the
        state vector of measurement row ``i``.
    residual_norms:
        Weighted residual norms ``‖W^{1/2}(z_i − Hθ̂_i)‖``, shape ``(B,)``.
    estimated_measurements:
        Fitted measurement vectors ``Hθ̂_i``, shape ``(B, M)``.
    """

    angles_rad: np.ndarray
    residual_norms: np.ndarray
    estimated_measurements: np.ndarray


class LinearModel:
    """One-off factorisation of a weighted linear measurement model.

    Parameters
    ----------
    matrix:
        The (reduced) measurement Jacobian ``H``, shape ``(M, n)`` with
        ``M > n`` — a dense array or any scipy sparse matrix.  Must have
        full column rank (observable network).
    weights:
        Measurement weights ``1/σ²``, shape ``(M,)``, all strictly positive.
    backend:
        Factorisation backend: ``"auto"`` (default — dense below
        :data:`~repro.grid.matrices.SPARSE_BUS_THRESHOLD` buses, sparse at
        or above it), ``"dense"`` (thin QR, the original golden-pinned
        arithmetic) or ``"sparse"`` (Q-less gain-matrix LU; see
        :mod:`repro.estimation.backends`).

    Raises
    ------
    EstimationError
        If shapes are inconsistent, weights are not positive, or ``H`` is
        rank deficient.
    ConfigurationError
        For an unknown backend name.

    Notes
    -----
    On the dense backend the model stores the thin QR factorisation
    ``W^{1/2}H = QR`` and all derived quantities reuse it:

    * states: ``θ̂ = R⁻¹ Qᵀ W^{1/2} z``,
    * residual projector (weighted space): ``I − QQᵀ``,
    * gain-matrix Cholesky: ``G = HᵀWH = RᵀR``, so the upper Cholesky
      factor of ``G`` is ``R`` with rows sign-normalised.

    The sparse backend factorises ``G = HᵀWH`` directly (COLAMD-ordered
    sparse LU) and evaluates the same quantities without materialising
    ``Q``; results agree with the dense backend to solver tolerance (the
    tier-1 agreement tests pin the bound).
    """

    def __init__(
        self,
        matrix: MatrixLike,
        weights: np.ndarray,
        backend: str = BACKEND_AUTO,
    ) -> None:
        sparse_input = scipy.sparse.issparse(matrix)
        if sparse_input:
            H: MatrixLike = matrix
            shape = matrix.shape
        else:
            H = np.asarray(matrix, dtype=float)
            if H.ndim != 2:
                raise EstimationError(
                    f"expected a 2-D measurement matrix, got shape {H.shape}"
                )
            shape = H.shape
        w = np.asarray(weights, dtype=float).ravel()
        if w.shape[0] != shape[0]:
            raise EstimationError(
                f"weights length {w.shape[0]} does not match measurement count {shape[0]}"
            )
        if np.any(w <= 0):
            raise EstimationError("all measurement weights must be strictly positive")
        self._sqrt_w = np.sqrt(w)
        # The reduced Jacobian has one column per non-slack bus, so the
        # network size that drives the "auto" crossover is ``n + 1``.
        resolved = resolve_backend(backend, n_buses=shape[1] + 1)
        start = time.perf_counter()
        self._fact = build_backend(H, self._sqrt_w, resolved)
        elapsed = time.perf_counter() - start
        if _TELEMETRY.enabled:
            # Observation only: the factorisation is timed unconditionally
            # (it is one perf_counter call), the metrics are recorded only
            # when telemetry is on.
            _metrics.counter("estimation.factorizations")
            _metrics.counter(f"estimation.backend.{resolved}")
            _metrics.histogram("estimation.factorize_seconds", elapsed)
        self._gain_chol: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_measurement_system(
        cls, system: "MeasurementSystem", backend: str = BACKEND_AUTO
    ) -> "LinearModel":
        """Build the model of a measurement system, backend-aware.

        Resolves ``backend`` first so the sparse path builds ``H`` with
        the CSR builder (:meth:`~repro.estimation.measurement.
        MeasurementSystem.matrix_sparse`) — the dense Jacobian is never
        formed above the crossover.
        """
        resolved = resolve_backend(backend, n_buses=system.n_states + 1)
        if resolved == BACKEND_SPARSE:
            return cls(system.matrix_sparse(), system.weights(), backend=resolved)
        return cls(system.matrix(), system.weights(), backend=resolved)

    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """The resolved backend name, ``"dense"`` or ``"sparse"``."""
        return self._fact.name

    @property
    def matrix(self) -> np.ndarray:
        """The measurement Jacobian ``H``, shape ``(M, n)``, densified.

        The dense backend returns its stored array; the sparse backend
        densifies on demand (a diagnostic accessor — the batched kernels
        never call it).
        """
        return self._fact.matrix_dense()

    @property
    def sqrt_weights(self) -> np.ndarray:
        """``W^{1/2}`` as a vector, shape ``(M,)``."""
        return self._sqrt_w

    @property
    def q(self) -> np.ndarray:
        """Orthonormal factor of ``W^{1/2}H``, shape ``(M, n)``.

        Raises :class:`EstimationError` on the Q-less sparse backend.
        """
        return self._fact.q

    @property
    def r(self) -> np.ndarray:
        """Triangular factor of ``W^{1/2}H``, shape ``(n, n)``.

        Raises :class:`EstimationError` on the Q-less sparse backend.
        """
        return self._fact.r

    @property
    def n_measurements(self) -> int:
        """``M``, the number of measurements."""
        return self._fact.n_measurements

    @property
    def n_states(self) -> int:
        """``n``, the number of estimated states."""
        return self._fact.n_states

    @property
    def degrees_of_freedom(self) -> int:
        """Residual degrees of freedom ``M − n`` of the χ² statistic."""
        return self.n_measurements - self.n_states

    def gain_cholesky(self) -> np.ndarray:
        """Upper Cholesky factor of the gain matrix ``G = HᵀWH``.

        Returns
        -------
        numpy.ndarray
            Upper-triangular ``(n, n)`` matrix ``U`` with positive diagonal
            and ``UᵀU = G``; on the dense backend derived from the QR
            factor for free (``G = RᵀR``), on the sparse backend via a
            dense ``(n, n)`` Cholesky of the gain matrix.  Cached after
            the first call.
        """
        if self._gain_chol is None:
            self._gain_chol = self._fact.gain_cholesky()
        return self._gain_chol

    def apply_states(self, states: np.ndarray) -> np.ndarray:
        """Noiseless measurements ``Hθ`` of a state vector or stack.

        Parameters
        ----------
        states:
            Reduced (non-slack) state vector, shape ``(n,)``, or a stack
            ``(B, n)``.

        Returns
        -------
        numpy.ndarray
            ``Hθ`` (shape ``(M,)``) or ``θ Hᵀ`` (shape ``(B, M)``) —
            evaluated sparsely on the sparse backend, so hot loops never
            densify ``H``.
        """
        arr = np.asarray(states, dtype=float)
        if arr.ndim not in (1, 2) or arr.shape[-1] != self.n_states:
            raise EstimationError(
                f"expected states of shape (B, {self.n_states}) or "
                f"({self.n_states},), got {arr.shape}"
            )
        return self._fact.apply_states(arr)

    # ------------------------------------------------------------------
    def _as_batch(self, vectors: np.ndarray, what: str) -> tuple[np.ndarray, bool]:
        """Coerce a ``(M,)`` vector or ``(B, M)`` stack to 2-D."""
        arr = np.asarray(vectors, dtype=float)
        single = arr.ndim == 1
        if single:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self.n_measurements:
            raise EstimationError(
                f"expected {what} of shape (B, {self.n_measurements}) or "
                f"({self.n_measurements},), got {np.asarray(vectors).shape}"
            )
        return arr, single

    def solve_states(self, measurements: np.ndarray) -> np.ndarray:
        """Batched WLS state solve ``θ̂ = R⁻¹QᵀW^{1/2}z``.

        Parameters
        ----------
        measurements:
            Measurement vectors, shape ``(B, M)`` (or ``(M,)``).

        Returns
        -------
        numpy.ndarray
            Estimated states, shape ``(B, n)`` (or ``(n,)`` for 1-D input).
        """
        Z, single = self._as_batch(measurements, "measurements")
        weighted = Z * self._sqrt_w
        theta = self._fact.solve_states(weighted)
        return theta[0] if single else theta

    def estimate_batch(self, measurements: np.ndarray) -> BatchStateEstimate:
        """Batched state estimation with residual norms.

        Parameters
        ----------
        measurements:
            Measurement vectors, shape ``(B, M)``.

        Returns
        -------
        BatchStateEstimate
            States ``(B, n)``, weighted residual norms ``(B,)`` and fitted
            measurements ``(B, M)``, all computed with single BLAS calls.
        """
        Z, _ = self._as_batch(measurements, "measurements")
        weighted = Z * self._sqrt_w
        # Each backend computes the three outputs from shared
        # intermediates; per backend the norm arithmetic is identical to
        # residual_norms(), so every alarm decision agrees bit-for-bit.
        theta, residual_norms, fitted = self._fact.estimate(weighted)
        return BatchStateEstimate(
            angles_rad=theta,
            residual_norms=residual_norms,
            estimated_measurements=fitted,
        )

    def residual_norms(self, measurements: np.ndarray) -> np.ndarray:
        """Weighted residual norms of a measurement batch.

        Parameters
        ----------
        measurements:
            Measurement vectors, shape ``(B, M)``.

        Returns
        -------
        numpy.ndarray
            ``‖W^{1/2}(I − QQᵀW^{1/2}·)z_i‖`` for every row, shape ``(B,)``.

        Notes
        -----
        The dense backend uses the residual projector in weighted space
        (``r = ‖(I − QQᵀ)W^{1/2}z‖``) — one ``(B, M) @ (M, n)`` product
        and one ``(B, n) @ (n, M)`` product; the sparse backend evaluates
        the mathematically identical direct form ``‖W^{1/2}(z − Hθ̂)‖``
        through the gain-matrix LU.
        """
        Z, _ = self._as_batch(measurements, "measurements")
        weighted = Z * self._sqrt_w
        return self._fact.residual_norms(weighted)

    def attack_residuals(self, attacks: np.ndarray) -> np.ndarray:
        """Deterministic residual components ``(I − Γ)a`` of an attack batch.

        Parameters
        ----------
        attacks:
            Attack vectors ``a``, shape ``(B, M)`` (or ``(M,)``).

        Returns
        -------
        numpy.ndarray
            Measurement-space residuals, shape matching the input.
        """
        A, single = self._as_batch(attacks, "attacks")
        weighted = A * self._sqrt_w
        projected = self._fact.project_weighted(weighted)
        residual = (weighted - projected) / self._sqrt_w
        return residual[0] if single else residual

    def attack_residual_norms(self, attacks: np.ndarray) -> np.ndarray:
        """Weighted norms ``‖W^{1/2}(I − Γ)a_i‖`` of an attack batch.

        Parameters
        ----------
        attacks:
            Attack vectors, shape ``(B, M)``.

        Returns
        -------
        numpy.ndarray
            Norms, shape ``(B,)``.
        """
        A, _ = self._as_batch(attacks, "attacks")
        weighted = A * self._sqrt_w
        projected = self._fact.project_weighted(weighted)
        return np.linalg.norm(weighted - projected, axis=1)

    def attack_noncentralities(self, attacks: np.ndarray) -> np.ndarray:
        """Noncentrality parameters ``λ_i = ‖W^{1/2}(I − Γ)a_i‖²``.

        Parameters
        ----------
        attacks:
            Attack vectors, shape ``(B, M)``.

        Returns
        -------
        numpy.ndarray
            Noncentralities of the residual χ² statistic, shape ``(B,)``.
        """
        return self.attack_residual_norms(attacks) ** 2


class LinearModelCache:
    """Bounded LRU cache of expensive per-perturbation computations.

    Trials that share a (case, perturbation) pair produce byte-identical
    measurement Jacobians, so their factorisations — and any value derived
    purely from them, such as an ensemble's analytic detection
    probabilities — are interchangeable; the cache makes that reuse
    explicit.  Keys are chosen by the caller (the engine keys on the
    perturbed reactance vector's bytes plus the noise level) and must be
    hashable; values are typically :class:`LinearModel` instances but any
    deterministic build product may be stored (the effectiveness layer
    caches per-perturbation probability arrays through the same
    mechanism).

    Parameters
    ----------
    maxsize:
        Maximum number of retained entries; the least recently used entry
        is evicted beyond that.  Must be at least 1.
    telemetry_name:
        When set, cache traffic is also mirrored into the telemetry
        counters ``cache.<telemetry_name>.{hits,misses,evictions}`` so it
        survives the process-pool snapshot merge; ``None`` (the default)
        keeps the cache invisible to telemetry.

    Attributes
    ----------
    hits, misses, evictions:
        Counters of cache behaviour, exposed via :meth:`stats` and asserted
        in the tier-1 tests.
    """

    def __init__(self, maxsize: int = 32, telemetry_name: str | None = None) -> None:
        if maxsize < 1:
            raise ConfigurationError(f"maxsize must be at least 1, got {maxsize}")
        self._maxsize = int(maxsize)
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.telemetry_name = telemetry_name
        if telemetry_name is None:
            self._hit_key = self._miss_key = self._evict_key = None
        else:
            self._hit_key = f"cache.{telemetry_name}.hits"
            self._miss_key = f"cache.{telemetry_name}.misses"
            self._evict_key = f"cache.{telemetry_name}.evictions"

    @property
    def maxsize(self) -> int:
        """The configured capacity."""
        return self._maxsize

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    def get_or_build(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """Return the value cached under ``key``, building it on a miss.

        Parameters
        ----------
        key:
            Hashable cache key; callers must include everything the value
            depends on (reactances, noise level, and — when one cache spans
            several grids — the case identity).
        builder:
            Zero-argument callable producing the value on a miss.  Because
            the cached computations are deterministic, a cache hit is
            bit-identical to rebuilding.

        Returns
        -------
        Any
            The cached or freshly built value (a :class:`LinearModel` for
            the engine's factorization cache).
        """
        mirror = self._hit_key is not None and _TELEMETRY.enabled
        value = self._entries.get(key, _MISSING)
        if value is not _MISSING:
            self.hits += 1
            self._entries.move_to_end(key)
            if mirror:
                _metrics.counter(self._hit_key)
            return value
        self.misses += 1
        if mirror:
            _metrics.counter(self._miss_key)
        value = builder()
        self._entries[key] = value
        if len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
            if mirror:
                _metrics.counter(self._evict_key)
        return value

    def clear(self) -> None:
        """Drop every cached factorisation (counters are preserved)."""
        self._entries.clear()

    def stats(self) -> dict[str, Any]:
        """Hit/miss/eviction counters plus current occupancy."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "maxsize": self._maxsize,
        }


__all__ = ["LinearModel", "LinearModelCache", "BatchStateEstimate"]
