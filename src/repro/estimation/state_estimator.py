"""Weighted least squares (maximum likelihood) state estimation.

Implements the estimator of Section III of the paper:

.. math::  θ̂ = (Hᵀ W H)^{-1} Hᵀ W z

together with the residual quantities consumed by the bad-data detector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import EstimationError
from repro.estimation.measurement import MeasurementSystem
from repro.utils.linalg import is_full_column_rank


@dataclass(frozen=True)
class StateEstimate:
    """Output of a single state-estimation run.

    Attributes
    ----------
    angles_rad:
        Estimated non-slack bus angles (the state vector ``θ̂``).
    residual_vector:
        Raw measurement residual ``z − Hθ̂``.
    residual_norm:
        Weighted residual norm ``‖W^{1/2}(z − Hθ̂)‖`` used by the BDD.
    estimated_measurements:
        The fitted measurement vector ``Hθ̂``.
    """

    angles_rad: np.ndarray
    residual_vector: np.ndarray
    residual_norm: float
    estimated_measurements: np.ndarray


class WLSStateEstimator:
    """Weighted least squares estimator bound to a measurement system.

    Parameters
    ----------
    system:
        The measurement model providing ``H`` and the weights ``W``.

    Raises
    ------
    EstimationError
        If the measurement matrix is rank deficient (unobservable network).
    """

    def __init__(self, system: MeasurementSystem) -> None:
        self._system = system
        H = system.matrix()
        if not is_full_column_rank(H):
            raise EstimationError(
                "measurement matrix is rank deficient; the network is unobservable"
            )
        self._H = H
        weights = system.weights()
        self._sqrt_w = np.sqrt(weights)
        # Precompute the weighted pseudo-inverse (HᵀWH)⁻¹HᵀW via a QR
        # factorisation of W^{1/2}H for numerical stability.
        weighted_H = self._sqrt_w[:, None] * H
        q, r = np.linalg.qr(weighted_H)
        self._q = q
        self._r = r

    # ------------------------------------------------------------------
    @property
    def system(self) -> MeasurementSystem:
        """The measurement system this estimator was built for."""
        return self._system

    @property
    def measurement_matrix(self) -> np.ndarray:
        """The reduced measurement matrix ``H``."""
        return self._H

    @property
    def degrees_of_freedom(self) -> int:
        """Residual degrees of freedom ``M − (N − 1)``."""
        return self._H.shape[0] - self._H.shape[1]

    # ------------------------------------------------------------------
    def estimate(self, measurements: np.ndarray) -> StateEstimate:
        """Estimate the state from a measurement vector ``z``."""
        z = np.asarray(measurements, dtype=float).ravel()
        if z.shape[0] != self._H.shape[0]:
            raise EstimationError(
                f"expected {self._H.shape[0]} measurements, got {z.shape[0]}"
            )
        weighted_z = self._sqrt_w * z
        theta = np.linalg.solve(self._r, self._q.T @ weighted_z)
        fitted = self._H @ theta
        residual = z - fitted
        weighted_residual = self._sqrt_w * residual
        return StateEstimate(
            angles_rad=theta,
            residual_vector=residual,
            residual_norm=float(np.linalg.norm(weighted_residual)),
            estimated_measurements=fitted,
        )

    def residual_norm(self, measurements: np.ndarray) -> float:
        """Shortcut returning only the weighted residual norm."""
        return self.estimate(measurements).residual_norm

    def attack_residual(self, attack: np.ndarray) -> np.ndarray:
        """The deterministic residual component ``(I − Γ)a`` of an attack.

        This is the quantity ``r'_a`` of the paper's Appendix A: the part of
        the BDD residual contributed by the attack vector itself, independent
        of the measurement noise.
        """
        a = np.asarray(attack, dtype=float).ravel()
        if a.shape[0] != self._H.shape[0]:
            raise EstimationError(
                f"attack length {a.shape[0]} does not match measurement count {self._H.shape[0]}"
            )
        weighted_a = self._sqrt_w * a
        projection = self._q @ (self._q.T @ weighted_a)
        # Convert the weighted-space residual back to measurement space.
        return (weighted_a - projection) / self._sqrt_w

    def attack_residual_norm(self, attack: np.ndarray) -> float:
        """Weighted norm of the attack residual ``‖W^{1/2}(I − Γ)a‖``."""
        residual = self.attack_residual(attack)
        return float(np.linalg.norm(self._sqrt_w * residual))


__all__ = ["WLSStateEstimator", "StateEstimate"]
