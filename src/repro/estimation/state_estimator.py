"""Weighted least squares (maximum likelihood) state estimation.

Implements the estimator of Section III of the paper:

.. math::  θ̂ = (Hᵀ W H)^{-1} Hᵀ W z

together with the residual quantities consumed by the bad-data detector.
All linear algebra is delegated to a factorized
:class:`~repro.estimation.linear_model.LinearModel`, so the per-vector
methods here and the batched entry points (:meth:`WLSStateEstimator.
estimate_batch`, :meth:`WLSStateEstimator.residual_norms`) perform the
exact same arithmetic — a batch of one is bit-identical to the scalar
call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import EstimationError
from repro.estimation.backends import BACKEND_AUTO
from repro.estimation.linear_model import BatchStateEstimate, LinearModel
from repro.estimation.measurement import MeasurementSystem


@dataclass(frozen=True)
class StateEstimate:
    """Output of a single state-estimation run.

    Attributes
    ----------
    angles_rad:
        Estimated non-slack bus angles (the state vector ``θ̂``), shape
        ``(N − 1,)``.
    residual_vector:
        Raw measurement residual ``z − Hθ̂``, shape ``(M,)``.
    residual_norm:
        Weighted residual norm ``‖W^{1/2}(z − Hθ̂)‖`` used by the BDD.
    estimated_measurements:
        The fitted measurement vector ``Hθ̂``, shape ``(M,)``.
    """

    angles_rad: np.ndarray
    residual_vector: np.ndarray
    residual_norm: float
    estimated_measurements: np.ndarray


class WLSStateEstimator:
    """Weighted least squares estimator bound to a measurement system.

    Parameters
    ----------
    system:
        The measurement model providing ``H`` and the weights ``W``.
    model:
        Optional pre-factorized :class:`LinearModel` for ``system`` (e.g.
        served from a :class:`~repro.estimation.linear_model.
        LinearModelCache`); built from the system when omitted.
    backend:
        Factorisation backend for the model built when ``model`` is
        omitted: ``"auto"`` (default), ``"dense"`` or ``"sparse"`` (see
        :mod:`repro.estimation.backends`).  When a concrete backend is
        requested *and* a model is injected, the two must agree.

    Raises
    ------
    EstimationError
        If the measurement matrix is rank deficient (unobservable network),
        or an injected model conflicts with the system or the requested
        backend.
    """

    def __init__(
        self,
        system: MeasurementSystem,
        model: LinearModel | None = None,
        backend: str = BACKEND_AUTO,
    ) -> None:
        self._system = system
        if model is None:
            model = LinearModel.from_measurement_system(system, backend=backend)
        else:
            if backend != BACKEND_AUTO and model.backend != backend:
                raise EstimationError(
                    f"injected model was factorized with the {model.backend!r} "
                    f"backend but {backend!r} was requested; the factorization "
                    "cache key must include the backend"
                )
            # Guard against a mis-keyed cache handing over a factorization
            # of a different model.  Comparing the full Jacobian would cost
            # the very rebuild the cache avoids, but the dimensions and the
            # weight vector (which encodes noise_sigma) are cheap to check
            # exactly — they catch the classic "keyed on reactances but
            # forgot noise_sigma" mistake.
            if model.n_measurements != system.n_measurements or model.n_states != system.n_states:
                raise EstimationError(
                    f"injected model shape ({model.n_measurements}, {model.n_states}) does "
                    f"not match the measurement system "
                    f"({system.n_measurements}, {system.n_states})"
                )
            if not np.array_equal(model.sqrt_weights, np.sqrt(system.weights())):
                raise EstimationError(
                    "injected model weights disagree with the measurement system; "
                    "the factorization cache key must include the noise level"
                )
        self._model = model

    # ------------------------------------------------------------------
    @property
    def system(self) -> MeasurementSystem:
        """The measurement system this estimator was built for."""
        return self._system

    @property
    def model(self) -> LinearModel:
        """The underlying factorized linear model."""
        return self._model

    @property
    def measurement_matrix(self) -> np.ndarray:
        """The reduced measurement matrix ``H``, shape ``(M, N − 1)``."""
        return self._model.matrix

    @property
    def degrees_of_freedom(self) -> int:
        """Residual degrees of freedom ``M − (N − 1)``."""
        return self._model.degrees_of_freedom

    def gain_cholesky(self) -> np.ndarray:
        """Upper Cholesky factor of the gain matrix ``G = HᵀWH``."""
        return self._model.gain_cholesky()

    # ------------------------------------------------------------------
    def estimate(self, measurements: np.ndarray) -> StateEstimate:
        """Estimate the state from one measurement vector ``z`` (``(M,)``)."""
        z = np.asarray(measurements, dtype=float).ravel()
        batch = self.estimate_batch(z[None, :])
        fitted = batch.estimated_measurements[0]
        return StateEstimate(
            angles_rad=batch.angles_rad[0],
            residual_vector=z - fitted,
            residual_norm=float(batch.residual_norms[0]),
            estimated_measurements=fitted,
        )

    def estimate_batch(self, measurements: np.ndarray) -> BatchStateEstimate:
        """Estimate states for a whole measurement batch at once.

        Parameters
        ----------
        measurements:
            Stacked measurement vectors, shape ``(B, M)``.

        Returns
        -------
        BatchStateEstimate
            States ``(B, N − 1)``, weighted residual norms ``(B,)`` and
            fitted measurements ``(B, M)``, evaluated with single BLAS
            calls.
        """
        return self._model.estimate_batch(measurements)

    def residual_norm(self, measurements: np.ndarray) -> float:
        """Shortcut returning only the weighted residual norm of one ``z``."""
        return float(self._model.residual_norms(np.asarray(measurements, dtype=float).ravel()[None, :])[0])

    def residual_norms(self, measurements: np.ndarray) -> np.ndarray:
        """Weighted residual norms of a measurement batch, shape ``(B,)``."""
        return self._model.residual_norms(measurements)

    def attack_residual(self, attack: np.ndarray) -> np.ndarray:
        """The deterministic residual component ``(I − Γ)a`` of an attack.

        This is the quantity ``r'_a`` of the paper's Appendix A: the part of
        the BDD residual contributed by the attack vector itself, independent
        of the measurement noise.

        Parameters
        ----------
        attack:
            One attack vector, shape ``(M,)``.

        Returns
        -------
        numpy.ndarray
            Measurement-space residual, shape ``(M,)``.
        """
        a = np.asarray(attack, dtype=float).ravel()
        if a.shape[0] != self._model.n_measurements:
            raise EstimationError(
                f"attack length {a.shape[0]} does not match measurement count "
                f"{self._model.n_measurements}"
            )
        return self._model.attack_residuals(a)

    def attack_residual_norm(self, attack: np.ndarray) -> float:
        """Weighted norm of the attack residual ``‖W^{1/2}(I − Γ)a‖``."""
        a = np.asarray(attack, dtype=float).ravel()
        if a.shape[0] != self._model.n_measurements:
            raise EstimationError(
                f"attack length {a.shape[0]} does not match measurement count "
                f"{self._model.n_measurements}"
            )
        return float(self._model.attack_residual_norms(a[None, :])[0])

    def attack_residual_norms(self, attacks: np.ndarray) -> np.ndarray:
        """Weighted attack-residual norms for a ``(B, M)`` batch, shape ``(B,)``."""
        return self._model.attack_residual_norms(attacks)


__all__ = ["WLSStateEstimator", "StateEstimate"]
