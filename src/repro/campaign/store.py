"""Persistent, crash-safe campaign result store.

A :class:`CampaignStore` is a directory holding everything a campaign has
produced::

    <store>/
    ├── campaign.json          # manifest: definition + plan hash
    ├── index.sqlite           # SQLite index keyed by spec content hash
    └── segments/
        ├── segment-000001.ndjson   # append-only result records
        └── segment-000002.ndjson   # (one new segment per run/resume)

The **segments are the source of truth**: each line is one completed
scenario (the :meth:`~repro.engine.results.ScenarioResult.to_dict` payload
plus the shard index), appended and flushed as soon as the scenario
finishes, never rewritten.  The **SQLite index is an accelerator** mapping
``spec_hash`` → (segment, byte offset) plus per-segment high-water marks;
it can always be rebuilt from the segments.

Crash safety follows from that split:

* a record is durable once its line (with trailing newline) hits the
  segment; the index entry may lag behind;
* on open, :meth:`CampaignStore.reconcile` scans every segment past its
  indexed high-water mark and indexes any complete records found there —
  recovering from a crash between the segment append and the index commit;
* a torn final line (the process died mid-write) simply never becomes a
  complete record: it is skipped, stays unindexed, and the scenario is
  re-executed on resume.  New runs append to a *fresh* segment, so the
  torn tail is never written after;
* a corrupt or missing ``index.sqlite`` is rebuilt from the segments.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
import time
from pathlib import Path
from typing import Any, Iterator, Mapping

try:  # advisory single-writer locking (POSIX; absent on some platforms)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.engine.results import ScenarioResult
from repro.exceptions import ConfigurationError
from repro.telemetry import metrics as _metrics

#: Store layout names.
MANIFEST_NAME = "campaign.json"
INDEX_NAME = "index.sqlite"
SEGMENT_DIR = "segments"
SEGMENT_SUFFIX = ".ndjson"
LOCK_NAME = ".writer.lock"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    spec_hash   TEXT PRIMARY KEY,
    name        TEXT NOT NULL,
    segment     TEXT NOT NULL,
    offset      INTEGER NOT NULL,
    length      INTEGER NOT NULL,
    shard       INTEGER,
    n_trials    INTEGER NOT NULL,
    created_unix REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS segments (
    segment       TEXT PRIMARY KEY,
    indexed_bytes INTEGER NOT NULL
);
"""


def spec_field(spec: Mapping[str, Any], path: str) -> Any:
    """Look up a dotted path (``"mtd.gamma_threshold"``) in a spec dict."""
    obj: Any = spec
    for part in path.split("."):
        if not isinstance(obj, Mapping) or part not in obj:
            raise KeyError(path)
        obj = obj[part]
    return obj


class CampaignStore:
    """Append-only ndjson segments with a SQLite index, keyed by spec hash.

    Parameters
    ----------
    directory:
        Store root; created (with parents) if missing.  Opening an existing
        store reconciles the index with the segments on disk, recovering
        any records a previous crash left unindexed.
    create:
        Pass ``False`` to require an existing store — a directory holding a
        manifest or segments.  Read-only commands (``status``/``query``)
        use this so a mistyped path fails fast instead of scaffolding store
        files into an arbitrary (or nonexistent) directory.
    """

    def __init__(self, directory: str | Path, create: bool = True) -> None:
        self._directory = Path(directory)
        self._segment_dir = self._directory / SEGMENT_DIR
        if not create and not (
            self._segment_dir.is_dir() or (self._directory / MANIFEST_NAME).exists()
        ):
            raise ConfigurationError(f"no campaign store at {self._directory}")
        self._segment_dir.mkdir(parents=True, exist_ok=True)
        self._connection = self._open_index()
        self._segment_handle = None  # lazily opened per-instance segment
        self._segment_name: str | None = None
        self._lock_handle = None  # held from first append until close
        self.recovered_records = 0
        self.skipped_lines = 0
        self.reconcile()

    # ------------------------------------------------------------------
    # index bootstrap / recovery
    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        """Root directory of the store."""
        return self._directory

    @property
    def index_path(self) -> Path:
        return self._directory / INDEX_NAME

    @property
    def progress_path(self) -> Path:
        """Where this store's live progress stream lives (may not exist)."""
        from repro.telemetry.progress import progress_path

        return progress_path(self._directory)

    def _open_index(self) -> sqlite3.Connection:
        """Connect to the index, discarding it if unreadable (it is derived
        data — the segments carry the truth)."""
        connection = None
        try:
            connection = self._connect()
            return connection
        except sqlite3.DatabaseError:
            if connection is not None:
                try:
                    connection.close()
                except sqlite3.Error:
                    pass
            self.index_path.unlink(missing_ok=True)
            return self._connect()

    def _connect(self) -> sqlite3.Connection:
        connection = sqlite3.connect(self.index_path)
        # Readers (status/query) may reconcile while a writer commits
        # appends; let SQLite wait briefly instead of surfacing transient
        # "database is locked" errors.
        connection.execute("PRAGMA busy_timeout = 5000")
        connection.executescript(_SCHEMA)
        connection.commit()
        return connection

    def _segment_files(self) -> list[Path]:
        return sorted(self._segment_dir.glob(f"*{SEGMENT_SUFFIX}"))

    def reconcile(self) -> int:
        """Index every complete segment record past the indexed high-water
        marks; returns the number of records recovered.

        Handles all three crash shapes: records appended but never indexed,
        a torn (incomplete) final line, and corrupt lines in the middle of
        a segment (skipped, counted in ``skipped_lines``).  A segment
        *shorter* than its recorded high-water mark (external truncation)
        is re-indexed from scratch.
        """
        recovered = 0
        marks = dict(
            self._connection.execute("SELECT segment, indexed_bytes FROM segments")
        )
        # Segments are the source of truth: rows for segment files that no
        # longer exist are dropped, so deleting a segment is a supported way
        # to force its scenarios to re-execute.
        existing = {path.name for path in self._segment_files()}
        placeholders = ",".join("?" * len(existing))
        for table in ("results", "segments"):
            self._connection.execute(
                f"DELETE FROM {table} WHERE segment NOT IN ({placeholders})"
                if existing
                else f"DELETE FROM {table}",
                tuple(existing),
            )
        for path in self._segment_files():
            name = path.name
            size = path.stat().st_size
            mark = int(marks.get(name, 0))
            if size < mark:
                self._connection.execute(
                    "DELETE FROM results WHERE segment = ?", (name,)
                )
                mark = 0
            if size == mark:
                continue
            recovered += self._index_segment_tail(path, mark)
        self._connection.commit()
        self.recovered_records += recovered
        return recovered

    def _index_segment_tail(self, path: Path, start: int) -> int:
        """Index complete records of ``path`` from byte ``start`` onward."""
        name = path.name
        recovered = 0
        with path.open("rb") as handle:
            handle.seek(start)
            offset = start
            while True:
                line = handle.readline()
                if not line:
                    break
                if not line.endswith(b"\n"):
                    break  # torn tail: incomplete record, leave unindexed
                record = self._parse_record(line)
                if record is None:
                    self.skipped_lines += 1
                else:
                    self._index_record(record, name, offset, len(line))
                    recovered += 1
                offset += len(line)
        self._connection.execute(
            "INSERT OR REPLACE INTO segments (segment, indexed_bytes) VALUES (?, ?)",
            (name, offset),
        )
        return recovered

    @staticmethod
    def _parse_record(line: bytes) -> dict[str, Any] | None:
        """Parse one segment line; ``None`` for corrupt/foreign content."""
        try:
            record = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(record, dict) or "spec_hash" not in record:
            return None
        if "spec" not in record or "trials" not in record:
            return None
        return record

    def _index_record(
        self, record: Mapping[str, Any], segment: str, offset: int, length: int
    ) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO results "
            "(spec_hash, name, segment, offset, length, shard, n_trials, created_unix) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                record["spec_hash"],
                str(record.get("spec", {}).get("name", "")),
                segment,
                offset,
                length,
                record.get("shard"),
                len(record.get("trials", ())),
                float(record.get("created_unix", time.time())),
            ),
        )

    def rebuild_index(self) -> int:
        """Drop the index and rebuild it from the segments; returns the
        number of records indexed."""
        self._connection.execute("DELETE FROM results")
        self._connection.execute("DELETE FROM segments")
        self._connection.commit()
        return self.reconcile()

    # ------------------------------------------------------------------
    # appends
    # ------------------------------------------------------------------
    def _next_segment_name(self) -> str:
        numbers = [0]
        for path in self._segment_files():
            stem = path.name[: -len(SEGMENT_SUFFIX)]
            try:
                numbers.append(int(stem.rsplit("-", 1)[-1]))
            except ValueError:
                continue
        return f"segment-{max(numbers) + 1:06d}{SEGMENT_SUFFIX}"

    def _acquire_writer_lock(self) -> None:
        """Become the store's single writer (advisory ``flock``).

        Concurrent writers would race on segment numbering and index
        offsets, so a second live writer is rejected outright; the lock
        dies with its process, so a ``kill -9`` never wedges the store.
        """
        if fcntl is None or self._lock_handle is not None:
            return
        handle = (self._directory / LOCK_NAME).open("w")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            raise ConfigurationError(
                f"campaign store {self._directory} is being written by another "
                "process; wait for it to finish (the lock clears when it exits)"
            ) from None
        self._lock_handle = handle

    def _segment_for_append(self):
        """The store instance's private segment, opened on first append.

        Every store instance (hence every run/resume generation) writes a
        fresh segment, so old segments — including any torn tail a crash
        left behind — are never appended to.
        """
        if self._segment_handle is None:
            self._acquire_writer_lock()
            self._segment_name = self._next_segment_name()
            self._segment_handle = (self._segment_dir / self._segment_name).open("ab")
        return self._segment_handle

    def append(self, result: ScenarioResult, shard: int | None = None) -> str:
        """Persist one scenario result; returns its spec hash.

        The record is durable (flushed and fsynced) before the index entry
        is committed, so a crash can only ever lose index entries — which
        :meth:`reconcile` recovers — never result data.
        """
        record = result.to_dict()
        record["shard"] = shard
        record["created_unix"] = time.time()
        line = (json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n").encode(
            "utf-8"
        )
        handle = self._segment_for_append()
        offset = handle.tell()
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())
        self._index_record(record, self._segment_name, offset, len(line))
        self._connection.execute(
            "INSERT OR REPLACE INTO segments (segment, indexed_bytes) VALUES (?, ?)",
            (self._segment_name, offset + len(line)),
        )
        self._connection.commit()
        _metrics.counter("store.appends")
        _metrics.counter("store.bytes_written", len(line))
        return record["spec_hash"]

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def __contains__(self, spec_hash: str) -> bool:
        row = self._connection.execute(
            "SELECT 1 FROM results WHERE spec_hash = ?", (spec_hash,)
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        (count,) = self._connection.execute("SELECT COUNT(*) FROM results").fetchone()
        return int(count)

    def completed_hashes(self) -> set[str]:
        """Spec hashes of every stored scenario."""
        return {
            row[0]
            for row in self._connection.execute("SELECT spec_hash FROM results")
        }

    def _read_record(self, segment: str, offset: int, length: int) -> dict[str, Any]:
        path = self._segment_dir / segment
        with path.open("rb") as handle:
            handle.seek(offset)
            line = handle.read(length)
        record = self._parse_record(line)
        if record is None:
            raise ConfigurationError(
                f"segment record at {segment}:{offset} is unreadable; "
                "run rebuild_index() to re-derive the index"
            )
        return record

    def get(self, spec_hash: str) -> ScenarioResult | None:
        """Load the stored result of one scenario, or ``None`` if absent."""
        row = self._connection.execute(
            "SELECT segment, offset, length FROM results WHERE spec_hash = ?",
            (spec_hash,),
        ).fetchone()
        if row is None:
            return None
        record = self._read_record(*row)
        return ScenarioResult.from_dict(record, from_cache=True)

    def records(self) -> Iterator[dict[str, Any]]:
        """Every stored record (raw dicts), in insertion order.

        Insertion order is segment-sequential in the common case, so one
        file handle is kept open per run of consecutive same-segment rows
        instead of re-opening the segment for every record.
        """
        rows = self._connection.execute(
            "SELECT segment, offset, length FROM results ORDER BY rowid"
        ).fetchall()
        open_segment: str | None = None
        handle = None
        try:
            for segment, offset, length in rows:
                if segment != open_segment:
                    if handle is not None:
                        handle.close()
                    handle = (self._segment_dir / segment).open("rb")
                    open_segment = segment
                handle.seek(offset)
                line = handle.read(length)
                record = self._parse_record(line)
                if record is None:
                    raise ConfigurationError(
                        f"segment record at {segment}:{offset} is unreadable; "
                        "run rebuild_index() to re-derive the index"
                    )
                yield record
        finally:
            if handle is not None:
                handle.close()

    def results(self) -> Iterator[ScenarioResult]:
        """Every stored :class:`ScenarioResult`, in insertion order."""
        for record in self.records():
            yield ScenarioResult.from_dict(record, from_cache=True)

    def stats(self) -> dict[str, int]:
        """Entry/segment counts plus recovery accounting of this instance."""
        return {
            "entries": len(self),
            "segments": len(self._segment_files()),
            "recovered_records": self.recovered_records,
            "skipped_lines": self.skipped_lines,
        }

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self._directory / MANIFEST_NAME

    def read_manifest(self) -> dict[str, Any] | None:
        """The stored campaign manifest, or ``None`` for a fresh store."""
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return manifest if isinstance(manifest, dict) else None

    def write_manifest(self, manifest: Mapping[str, Any]) -> None:
        """Atomically persist the campaign manifest."""
        fd, tmp = tempfile.mkstemp(prefix=".manifest-", suffix=".tmp", dir=self._directory)
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
            os.replace(tmp, self.manifest_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def release_writer(self) -> None:
        """Close the segment handle and release the writer lock.

        Called by the orchestrator when a run finishes so the store can be
        written again (by this process or another) without waiting for
        garbage collection; reads stay available, and a later append simply
        re-acquires the lock and opens a fresh segment.
        """
        if self._segment_handle is not None:
            self._segment_handle.close()
            self._segment_handle = None
            self._segment_name = None
        if self._lock_handle is not None:
            self._lock_handle.close()  # closing the fd releases the flock
            self._lock_handle = None

    def close(self) -> None:
        """Flush and close the segment handle, writer lock and index."""
        self.release_writer()
        self._connection.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


__all__ = [
    "CampaignStore",
    "spec_field",
    "MANIFEST_NAME",
    "INDEX_NAME",
    "SEGMENT_DIR",
]
