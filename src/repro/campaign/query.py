"""Query and aggregation over a campaign store.

The store holds raw :class:`~repro.engine.results.ScenarioResult` records;
this module turns them into answers: filter scenarios by dotted spec
fields, group them, roll each group's trials up into the library's standard
:class:`~repro.analysis.montecarlo.MonteCarloSummary`, and export flat CSV
tables.  Because stored trial metrics round-trip losslessly through JSON,
a summary computed from the store is bit-identical to one computed from the
equivalent in-memory run.
"""

from __future__ import annotations

import csv
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.montecarlo import MonteCarloSummary, summarize_values
from repro.engine.results import ScenarioResult, merge_metric
from repro.campaign.store import CampaignStore, spec_field
from repro.exceptions import ConfigurationError
from repro.telemetry import metrics as _metrics


def _matches(spec: Mapping[str, Any], where: Mapping[str, Any]) -> bool:
    """Whether a spec dict satisfies every dotted-field equality clause."""
    for path, expected in where.items():
        try:
            actual = spec_field(spec, path)
        except KeyError:
            return False
        if isinstance(actual, bool) or isinstance(expected, bool):
            # ``bool`` subclasses ``int``, so the float comparison below
            # would make ``enabled=true`` match spec values ``1``/``1.0``
            # (and vice versa).  Booleans only ever equal booleans.
            if not (isinstance(actual, bool) and isinstance(expected, bool)):
                return False
            if actual is not expected:
                return False
        elif isinstance(actual, (int, float)) and isinstance(expected, (int, float)):
            if float(actual) != float(expected):
                return False
        elif actual != expected:
            return False
    return True


#: Per-store memo of the spec-hash → plan-position map, keyed weakly on the
#: store instance and invalidated by the manifest's plan hash.  Expanding and
#: re-hashing a large campaign plan is O(plan); repeated ``query_results``
#: calls against the same store must not pay it more than once.
_PLAN_ORDER_CACHE: "weakref.WeakKeyDictionary[CampaignStore, tuple[str, dict[str, int]]]" = (
    weakref.WeakKeyDictionary()
)


def _plan_order(store: CampaignStore) -> dict[str, int] | None:
    """Spec-hash → plan-position map from the store's manifest, if any.

    Memoized per store instance: the plan is re-derived only when the
    manifest's plan hash changes (a different campaign was bound to the
    store), so repeated queries pay a dict lookup instead of a full plan
    expansion + per-spec content hashing.
    """
    manifest = store.read_manifest()
    if manifest is None or "definition" not in manifest:
        return None
    plan_hash = str(manifest.get("plan_hash", ""))
    cached = _PLAN_ORDER_CACHE.get(store)
    if cached is not None and cached[0] == plan_hash:
        _metrics.counter("cache.plan_order.hits")
        return cached[1]
    _metrics.counter("cache.plan_order.misses")
    from repro.campaign.definition import CampaignDefinition
    from repro.campaign.plan import plan_campaign

    try:
        plan = plan_campaign(CampaignDefinition.from_dict(manifest["definition"]))
    except ConfigurationError:
        return None
    order = {spec_hash: rank for rank, spec_hash in enumerate(plan.items)}
    _PLAN_ORDER_CACHE[store] = (plan_hash, order)
    return order


def query_results(
    store: CampaignStore,
    where: Mapping[str, Any] | None = None,
    tags: Sequence[str] | None = None,
) -> list[ScenarioResult]:
    """Stored results matching the filters, in deterministic order.

    Results come back in campaign-plan order (from the store's manifest),
    so pooled roll-ups reduce in the same order as the equivalent in-memory
    sweep regardless of which worker finished first; stores without a
    manifest fall back to (name, spec-hash) order.

    Parameters
    ----------
    store:
        The campaign store to read.
    where:
        Dotted spec-field equality clauses, e.g.
        ``{"grid.case": "ieee14", "mtd.gamma_threshold": 0.25}``.
        Numeric clauses compare as floats.
    tags:
        Keep only scenarios carrying every listed tag.
    """
    selected = []
    for record in store.records():
        spec = record.get("spec", {})
        if where and not _matches(spec, where):
            continue
        if tags and not set(tags).issubset(set(spec.get("tags", ()))):
            continue
        # Records carry their spec hash, so ordering never re-hashes specs.
        selected.append(
            (record["spec_hash"], ScenarioResult.from_dict(record, from_cache=True))
        )
    order = _plan_order(store)
    if order is not None:
        fallback = len(order)
        selected.sort(key=lambda pair: order.get(pair[0], fallback))
    else:
        selected.sort(key=lambda pair: (pair[1].spec.name, pair[0]))
    return [result for _, result in selected]


@dataclass(frozen=True)
class GroupSummary:
    """One group of a grouped roll-up: its key, members, pooled summary."""

    key: tuple[Any, ...]
    n_scenarios: int
    summary: MonteCarloSummary


def summarize_groups(
    results: Iterable[ScenarioResult],
    metric: str | None = None,
    group_by: Sequence[str] = (),
) -> list[GroupSummary]:
    """Pool trials per group and summarise them.

    ``group_by`` lists dotted spec fields; scenarios with equal field
    tuples pool their per-trial metric values into one
    :class:`MonteCarloSummary`.  With no ``group_by`` every scenario forms
    its own group keyed by name (the per-scenario roll-up).  Groups keep
    first-occurrence order.
    """
    groups: dict[tuple[Any, ...], list[ScenarioResult]] = {}
    for result in results:
        if group_by:
            spec = result.spec.to_dict()
            try:
                key = tuple(spec_field(spec, path) for path in group_by)
            except KeyError as missing:
                raise ConfigurationError(
                    f"unknown group-by field {missing.args[0]!r} "
                    f"for scenario {result.spec.name!r}"
                ) from None
            for path, value in zip(group_by, key):
                if isinstance(value, (dict, list)):
                    raise ConfigurationError(
                        f"group-by field {path!r} is not a scalar "
                        f"(got {type(value).__name__}); group by a leaf "
                        "field such as 'mtd.gamma_threshold'"
                    )
        else:
            key = (result.spec.name,)
        groups.setdefault(key, []).append(result)
    return [
        GroupSummary(
            key=key,
            n_scenarios=len(members),
            summary=summarize_values(merge_metric(members, metric)),
        )
        for key, members in groups.items()
    ]


def export_csv(
    path: str | Path,
    results: Iterable[ScenarioResult],
    metric: str | None = None,
    fields: Sequence[str] = (),
) -> Path:
    """Write one CSV row per scenario: identity, spec fields, summary.

    Columns: ``name``, ``spec_hash``, the requested dotted ``fields``, then
    ``n_trials``, ``metric``, ``mean``, ``std``, ``ci_halfwidth``,
    ``median``.  Floats are written with ``repr`` precision, so the file
    reconstructs summary values exactly.
    """
    path = Path(path)
    header = (
        ["name", "spec_hash"]
        + list(fields)
        + ["n_trials", "metric", "mean", "std", "ci_halfwidth", "median"]
    )
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for result in results:
            spec = result.spec.to_dict()
            name = result.spec.metric if metric is None else metric
            summary = result.summarize(metric)
            row = [result.spec.name, result.spec.content_hash()]
            for field in fields:
                try:
                    row.append(spec_field(spec, field))
                except KeyError:
                    row.append("")
            row += [
                result.n_trials,
                name,
                repr(summary.mean),
                repr(summary.std),
                repr(summary.confidence_halfwidth),
                repr(summary.median),
            ]
            writer.writerow(row)
    return path


__all__ = ["GroupSummary", "query_results", "summarize_groups", "export_csv"]
